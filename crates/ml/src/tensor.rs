//! Dense feature maps for the convolutional layers.

/// A dense `channels × height × width` feature map, stored row-major per
/// channel. This is the unit of data flowing through the CNN (one sample;
/// batches are slices of maps).
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureMap {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f64>,
}

impl FeatureMap {
    /// Creates a zero-filled map.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        assert!(c > 0 && h > 0 && w > 0, "feature map dimensions must be positive");
        FeatureMap { c, h, w, data: vec![0.0; c * h * w] }
    }

    /// Wraps existing data laid out `[c][h][w]`.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), c * h * w, "data length must equal c*h*w");
        assert!(c > 0 && h > 0 && w > 0, "feature map dimensions must be positive");
        FeatureMap { c, h, w, data }
    }

    /// Builds a single-channel map from a grayscale image in `[0, 1]`.
    pub fn from_image(width: usize, height: usize, pixels: &[f64]) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel count must equal width*height");
        FeatureMap { c: 1, h: height, w: width, data: pixels.to_vec() }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// `(c, h, w)` tuple.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the map holds no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrowed flat data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element at `(c, y, x)` without bounds checks beyond debug assertions.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f64 {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        self.data[(c * self.h + y) * self.w + x]
    }

    /// Sets the element at `(c, y, x)`.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f64) {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        self.data[(c * self.h + y) * self.w + x] = v;
    }

    /// Adds `v` to the element at `(c, y, x)`.
    #[inline]
    pub fn add_at(&mut self, c: usize, y: usize, x: usize, v: f64) {
        debug_assert!(c < self.c && y < self.h && x < self.w);
        self.data[(c * self.h + y) * self.w + x] += v;
    }

    /// One channel as a flat `h × w` slice.
    pub fn channel(&self, c: usize) -> &[f64] {
        assert!(c < self.c, "channel {c} out of bounds");
        &self.data[c * self.h * self.w..(c + 1) * self.h * self.w]
    }

    /// Element-wise sum with another map of identical shape.
    pub fn add(&self, other: &FeatureMap) -> FeatureMap {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        FeatureMap { c: self.c, h: self.h, w: self.w, data }
    }

    /// In-place element-wise accumulate.
    pub fn add_assign(&mut self, other: &FeatureMap) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Mean over all elements of each channel: `c` values.
    pub fn channel_means(&self) -> Vec<f64> {
        let plane = (self.h * self.w) as f64;
        (0..self.c).map(|c| self.channel(c).iter().sum::<f64>() / plane).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = FeatureMap::zeros(2, 3, 4);
        assert_eq!(m.shape(), (2, 3, 4));
        assert_eq!(m.len(), 24);
        assert!(!m.is_empty());
        m.set(1, 2, 3, 7.0);
        assert_eq!(m.get(1, 2, 3), 7.0);
        m.add_at(1, 2, 3, 1.0);
        assert_eq!(m.get(1, 2, 3), 8.0);
        // Last element of the flat layout.
        assert_eq!(m.data()[23], 8.0);
    }

    #[test]
    fn from_vec_layout_is_channel_major() {
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let m = FeatureMap::from_vec(2, 2, 3, data);
        assert_eq!(m.get(0, 0, 0), 0.0);
        assert_eq!(m.get(0, 1, 2), 5.0);
        assert_eq!(m.get(1, 0, 0), 6.0);
        assert_eq!(m.channel(1), &[6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn from_image_is_single_channel() {
        let m = FeatureMap::from_image(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (1, 2, 3));
        assert_eq!(m.get(0, 1, 0), 4.0);
    }

    #[test]
    fn add_and_add_assign() {
        let a = FeatureMap::from_vec(1, 1, 3, vec![1.0, 2.0, 3.0]);
        let b = FeatureMap::from_vec(1, 1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn channel_means() {
        let m = FeatureMap::from_vec(2, 1, 2, vec![1.0, 3.0, 10.0, 30.0]);
        assert_eq!(m.channel_means(), vec![2.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = FeatureMap::zeros(1, 2, 2);
        let b = FeatureMap::zeros(1, 2, 3);
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic(expected = "c*h*w")]
    fn from_vec_wrong_length_panics() {
        let _ = FeatureMap::from_vec(1, 2, 2, vec![0.0; 5]);
    }
}
