//! Labelled datasets, splits and standardization.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dataset of flat feature vectors with integer class labels.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

/// A train/test split of a [`Dataset`].
#[derive(Clone, Debug)]
pub struct Split {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion.
    pub test: Dataset,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dataset from parallel feature/label vectors.
    pub fn from_pairs(features: Vec<Vec<f64>>, labels: Vec<usize>) -> Self {
        assert_eq!(features.len(), labels.len(), "features and labels must align");
        if let Some(first) = features.first() {
            let d = first.len();
            assert!(
                features.iter().all(|f| f.len() == d),
                "all feature vectors must have the same dimension"
            );
        }
        Dataset { features, labels }
    }

    /// Appends one example.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        if let Some(first) = self.features.first() {
            assert_eq!(features.len(), first.len(), "feature dimension mismatch");
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimension (zero when empty).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Borrowed feature matrix.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Borrowed labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Distinct labels present, sorted.
    pub fn classes(&self) -> Vec<usize> {
        let mut cs = self.labels.clone();
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// Splits into train/test with `test_fraction` of examples held out,
    /// shuffled deterministically by `seed`.
    pub fn split(&self, test_fraction: f64, seed: u64) -> Split {
        assert!((0.0..1.0).contains(&test_fraction), "test fraction must be in [0, 1)");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_test = (self.len() as f64 * test_fraction).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test);
        let pick = |ids: &[usize]| {
            Dataset::from_pairs(
                ids.iter().map(|&i| self.features[i].clone()).collect(),
                ids.iter().map(|&i| self.labels[i]).collect(),
            )
        };
        Split { train: pick(train_idx), test: pick(test_idx) }
    }

    /// Per-dimension mean and standard deviation over the dataset.
    pub fn feature_moments(&self) -> (Vec<f64>, Vec<f64>) {
        let d = self.dim();
        let n = self.len().max(1) as f64;
        let mut mean = vec![0.0; d];
        for f in &self.features {
            for (m, x) in mean.iter_mut().zip(f) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; d];
        for f in &self.features {
            for ((s, x), m) in std.iter_mut().zip(f).zip(&mean) {
                *s += (x - m).powi(2);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
        }
        (mean, std)
    }

    /// Standardizes features in place using the supplied moments (zero-std
    /// dimensions pass through unscaled). The moments must come from the
    /// *training* split to avoid leakage.
    pub fn standardize(&mut self, mean: &[f64], std: &[f64]) {
        assert_eq!(mean.len(), self.dim(), "moment dimension mismatch");
        assert_eq!(std.len(), self.dim(), "moment dimension mismatch");
        for f in &mut self.features {
            for ((x, m), s) in f.iter_mut().zip(mean).zip(std) {
                if *s > 0.0 {
                    *x = (*x - m) / s;
                } else {
                    *x -= m;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::from_pairs(
            (0..10).map(|i| vec![i as f64, (i * 2) as f64]).collect(),
            (0..10).map(|i| i % 2).collect(),
        )
    }

    #[test]
    fn construction() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.classes(), vec![0, 1]);
        assert!(!d.is_empty());
    }

    #[test]
    fn push_checks_dimension() {
        let mut d = toy();
        d.push(vec![1.0, 2.0], 0);
        assert_eq!(d.len(), 11);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_wrong_dimension_panics() {
        let mut d = toy();
        d.push(vec![1.0], 0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_pairs_panic() {
        let _ = Dataset::from_pairs(vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let d = toy();
        let split = d.split(0.3, 42);
        assert_eq!(split.test.len(), 3);
        assert_eq!(split.train.len(), 7);
        // Every original example appears exactly once across splits.
        let mut seen: Vec<f64> =
            split.train.features().iter().chain(split.test.features()).map(|f| f[0]).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy();
        let a = d.split(0.3, 7);
        let b = d.split(0.3, 7);
        assert_eq!(a.test.features(), b.test.features());
        let c = d.split(0.3, 8);
        assert_ne!(a.test.features(), c.test.features());
    }

    #[test]
    fn moments_and_standardize() {
        let mut d = Dataset::from_pairs(vec![vec![1.0, 5.0], vec![3.0, 5.0]], vec![0, 1]);
        let (mean, std) = d.feature_moments();
        assert_eq!(mean, vec![2.0, 5.0]);
        assert_eq!(std[0], 1.0);
        assert_eq!(std[1], 0.0);
        d.standardize(&mean, &std);
        assert_eq!(d.features()[0], vec![-1.0, 0.0]);
        assert_eq!(d.features()[1], vec![1.0, 0.0]);
    }

    #[test]
    fn standardized_train_has_zero_mean_unit_std() {
        let d = toy();
        let mut train = d.clone();
        let (mean, std) = train.feature_moments();
        train.standardize(&mean, &std);
        let (m2, s2) = train.feature_moments();
        for v in m2 {
            assert!(v.abs() < 1e-12);
        }
        for v in s2 {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
