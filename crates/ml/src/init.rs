//! Weight initialization helpers.

use rand::Rng;

/// Standard normal sample via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// He-normal initialization: 𝒩(0, √(2 / fan_in)), the standard choice for
/// ReLU networks.
pub fn he_normal<R: Rng + ?Sized>(fan_in: usize, rng: &mut R) -> f64 {
    standard_normal(rng) * (2.0 / fan_in.max(1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.05);
    }

    #[test]
    fn he_variance_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let fan_in = 50;
        let xs: Vec<f64> = (0..n).map(|_| he_normal(fan_in, &mut rng)).collect();
        let var = xs.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((var - 2.0 / fan_in as f64).abs() < 0.01);
    }
}
