//! Post-training quantization and int8 integer inference.
//!
//! Energy-constrained edge inference commonly quantizes weights to 8 bits;
//! on a Raspberry-Pi-class device this shrinks the model and enables
//! integer arithmetic. Two layers of machinery live here:
//!
//! 1. **Fake quantization** ([`QuantParams`], [`quantize_tensor`],
//!    [`quantize_resnet`]) — symmetric per-tensor rounding with dequantized
//!    f64 inference, used to measure the accuracy cost of a bit width.
//! 2. **A true integer engine** ([`QuantizedResNetLite`]) — per-channel
//!    symmetric int8 weights, activations quantized on the fly during
//!    im2col, an i8×i8→i32 GEMM kernel, and a per-channel rescale back to
//!    f64 at each layer output. Activation scales come from a one-shot
//!    calibration pass over a sample corpus; the f32 network stays around
//!    as the accuracy oracle.
//!
//! The integer accumulation is *exact*: a fan-in of `F` taps bounds
//! `|acc| ≤ F·127²`, so any layer with `F ≤ 133 000` fits an `i32` with
//! no saturation (asserted at construction). The only error versus a
//! dequantized-f64 reference is the final `bias + s_w·s_x·acc` rounding,
//! which the parity proptest pins to ≤1e-9 relative.
//!
//! Batched inference ([`QuantizedResNetLite::forward_batch`]) fans clips
//! over the persistent worker pool in a fixed number of lanes derived
//! only from the batch length — never the worker count — with one
//! [`ClipScratch`] arena per lane, so results are bit-identical at any
//! `RAYON_NUM_THREADS` and steady-state forward allocates nothing.

use crate::nn::conv::{Conv2d, ConvScratch};
use crate::nn::layers::{global_avg_pool, relu, Dense};
use crate::nn::resnet::ResNetLite;
use crate::tensor::FeatureMap;

/// Largest representable int8 magnitude on the symmetric grid.
pub const Q_MAX_I8: i32 = 127;

/// Lanes used by [`QuantizedResNetLite::forward_batch`]. The lane count
/// is `min(batch_len, MAX_BATCH_LANES)` — a function of the batch alone,
/// so the clip→lane assignment (and therefore every result bit) is
/// independent of how many pool workers execute the lanes.
pub const MAX_BATCH_LANES: usize = 8;

/// K-dimension panel width of the blocked int8 GEMM. Wider than the f64
/// kernel's panel because int8 weight rows are 8× smaller.
const GEMM_KB_I8: usize = 128;

/// Symmetric per-tensor quantization parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantParams {
    /// Scale: real value = scale × quantized integer.
    pub scale: f64,
    /// Number of bits (2–16).
    pub bits: u32,
}

impl QuantParams {
    /// Chooses the scale covering `values` symmetrically at `bits` bits.
    /// A degenerate all-zero tensor gets scale 1.
    pub fn fit(values: &[f64], bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        let max_abs = values.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        let q_max = ((1i64 << (bits - 1)) - 1) as f64;
        let scale = if max_abs > 0.0 { max_abs / q_max } else { 1.0 };
        QuantParams { scale, bits }
    }

    /// Quantizes one value to the integer grid, saturating at `±q_max` so
    /// the grid stays symmetric: `-max_abs` and `+max_abs` round-trip to
    /// values of equal magnitude.
    pub fn quantize(&self, v: f64) -> i32 {
        let q_max = (1i64 << (self.bits - 1)) - 1;
        ((v / self.scale).round() as i64).clamp(-q_max, q_max) as i32
    }

    /// Dequantizes an integer back to a real value.
    pub fn dequantize(&self, q: i32) -> f64 {
        f64::from(q) * self.scale
    }

    /// Round-trips a value through the grid (fake quantization).
    pub fn fake_quantize(&self, v: f64) -> f64 {
        self.dequantize(self.quantize(v))
    }

    /// Worst-case absolute rounding error of this grid.
    pub fn max_error(&self) -> f64 {
        self.scale * 0.5
    }
}

/// Statistics of quantizing one tensor.
#[derive(Clone, Copy, Debug)]
pub struct TensorQuantReport {
    /// Elements quantized.
    pub n: usize,
    /// Root-mean-square quantization error.
    pub rms_error: f64,
}

/// Fake-quantizes a tensor in place; returns the error report.
pub fn quantize_tensor(values: &mut [f64], bits: u32) -> TensorQuantReport {
    let params = QuantParams::fit(values, bits);
    let mut sq = 0.0;
    for v in values.iter_mut() {
        let q = params.fake_quantize(*v);
        sq += (q - *v).powi(2);
        *v = q;
    }
    TensorQuantReport { n: values.len(), rms_error: (sq / values.len().max(1) as f64).sqrt() }
}

/// Report of quantizing a whole network.
#[derive(Clone, Debug)]
pub struct ModelQuantReport {
    /// Bits used.
    pub bits: u32,
    /// Per-tensor reports in network order.
    pub tensors: Vec<TensorQuantReport>,
}

impl ModelQuantReport {
    /// Parameter-weighted mean RMS error.
    pub fn mean_rms_error(&self) -> f64 {
        let total: usize = self.tensors.iter().map(|t| t.n).sum();
        if total == 0 {
            return 0.0;
        }
        self.tensors.iter().map(|t| t.rms_error * t.n as f64).sum::<f64>() / total as f64
    }

    /// Model size in bytes at this bit width (weights only, no packing
    /// overhead).
    pub fn model_bytes(&self) -> usize {
        let params: usize = self.tensors.iter().map(|t| t.n).sum();
        (params * self.bits as usize).div_ceil(8)
    }
}

/// Fake-quantizes every weight tensor of a [`ResNetLite`] in place
/// (biases stay in float, as deployment stacks typically keep them at
/// 32 bits).
pub fn quantize_resnet(net: &mut ResNetLite, bits: u32) -> ModelQuantReport {
    let mut tensors = Vec::new();
    for w in net.weight_tensors_mut() {
        tensors.push(quantize_tensor(w, bits));
    }
    ModelQuantReport { bits, tensors }
}

// ---------------------------------------------------------------------------
// The int8 integer engine.
// ---------------------------------------------------------------------------

/// Saturating round-to-nearest int8 quantization by reciprocal scale —
/// the activation quantizer of the hot path. Rounds half away from zero
/// via shift-and-truncate rather than `f64::round` (a libm call that
/// blocks autovectorization of the plane-quantization loop). The
/// reference (dequantized) parity tests call the same function, so both
/// sides see identical grids.
#[inline]
pub(crate) fn quantize_sat_i8(v: f64, inv_scale: f64) -> i8 {
    let q = v * inv_scale;
    let r = q + if q >= 0.0 { 0.5 } else { -0.5 };
    (r as i32).clamp(-Q_MAX_I8, Q_MAX_I8) as i8
}

fn max_abs(values: &[f64]) -> f64 {
    values.iter().fold(0.0f64, |a, &v| a.max(v.abs()))
}

fn scale_for(range: f64) -> f64 {
    if range > 0.0 {
        range / Q_MAX_I8 as f64
    } else {
        1.0
    }
}

/// Quantizes one `[fan_in]`-long weight row to int8 at its own symmetric
/// scale; returns the scale.
fn quantize_weight_row(row: &[f64], out: &mut Vec<i8>) -> f64 {
    let scale = scale_for(max_abs(row));
    let inv = 1.0 / scale;
    out.extend(row.iter().map(|&v| quantize_sat_i8(v, inv)));
    scale
}

/// Blocked int8 GEMM: `acc[oc][p] = Σ_f w[oc][f] · qcols[f][p]` in exact
/// i32 arithmetic, panelled over the K dimension like the f64 kernel.
fn gemm_i8(
    weights: &[i8],
    out_c: usize,
    fan_in: usize,
    qcols: &[i8],
    n_patch: usize,
    acc: &mut [i32],
) {
    acc.fill(0);
    let mut f0 = 0;
    while f0 < fan_in {
        let f1 = (f0 + GEMM_KB_I8).min(fan_in);
        for oc in 0..out_c {
            let arow = &mut acc[oc * n_patch..(oc + 1) * n_patch];
            for f in f0..f1 {
                let wv = i32::from(weights[oc * fan_in + f]);
                if wv == 0 {
                    continue;
                }
                let crow = &qcols[f * n_patch..(f + 1) * n_patch];
                for (a, &c) in arow.iter_mut().zip(crow) {
                    *a += wv * i32::from(c);
                }
            }
        }
        f0 = f1;
    }
}

/// A convolution whose weights live on per-output-channel symmetric int8
/// grids, with the input activation grid fixed by calibration.
#[derive(Clone, Debug)]
pub struct QuantizedConv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    /// Packed int8 weights, `[out_c][fan_in]` row-major — each GEMM row is
    /// one contiguous 1-byte-per-tap panel.
    weights_i8: Vec<i8>,
    /// Per-output-channel weight scales.
    w_scales: Vec<f64>,
    /// Biases stay in f64.
    bias: Vec<f64>,
    /// Input activation scale (per tensor, from calibration).
    x_scale: f64,
    inv_x_scale: f64,
}

impl QuantizedConv2d {
    /// Quantizes `conv`'s weights per channel; `x_range` is the calibrated
    /// maximum absolute input activation.
    pub fn from_conv(conv: &Conv2d, x_range: f64) -> Self {
        let fan_in = conv.in_c * conv.k * conv.k;
        assert!(
            (fan_in as i64) * (Q_MAX_I8 as i64).pow(2) < i64::from(i32::MAX),
            "fan-in {fan_in} could overflow the i32 accumulator"
        );
        let mut weights_i8 = Vec::with_capacity(conv.out_c * fan_in);
        let mut w_scales = Vec::with_capacity(conv.out_c);
        for row in conv.weights.chunks_exact(fan_in) {
            w_scales.push(quantize_weight_row(row, &mut weights_i8));
        }
        let x_scale = scale_for(x_range);
        QuantizedConv2d {
            in_c: conv.in_c,
            out_c: conv.out_c,
            k: conv.k,
            stride: conv.stride,
            pad: conv.pad,
            weights_i8,
            w_scales,
            bias: conv.bias.clone(),
            x_scale,
            inv_x_scale: 1.0 / x_scale,
        }
    }

    /// Output spatial size for an input of `(h, w)` — same contract as
    /// [`Conv2d::output_size`].
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h + 2 * self.pad >= self.k && w + 2 * self.pad >= self.k,
            "input {h}x{w} too small for kernel {} with padding {}",
            self.k,
            self.pad
        );
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }

    /// Output channel count.
    pub fn out_c(&self) -> usize {
        self.out_c
    }

    /// The calibrated activation scale.
    pub fn x_scale(&self) -> f64 {
        self.x_scale
    }

    /// Per-channel weight scales.
    pub fn w_scales(&self) -> &[f64] {
        &self.w_scales
    }

    /// The packed int8 weight rows.
    pub fn weights_i8(&self) -> &[i8] {
        &self.weights_i8
    }

    /// Quantizes one activation onto this layer's input grid.
    pub fn quantize_activation(&self, v: f64) -> i8 {
        quantize_sat_i8(v, self.inv_x_scale)
    }

    /// Weight bytes of the packed layout.
    pub fn weight_bytes(&self) -> usize {
        self.weights_i8.len()
    }

    /// Quantizes a whole `in_c × h × w` activation plane onto this
    /// layer's input grid in one vectorizable pass. Each input sample is
    /// quantized exactly once here; the im2col unroll that replicates it
    /// under up to `k·k` kernel taps then moves plain bytes.
    pub(crate) fn quantize_plane(&self, data: &[f64], qplane: &mut Vec<i8>) {
        qplane.clear();
        qplane.resize(data.len(), 0);
        let inv = self.inv_x_scale;
        for (q, &v) in qplane.iter_mut().zip(data) {
            *q = quantize_sat_i8(v, inv);
        }
    }

    /// im2col over the *already quantized* plane: row
    /// `f = (ic·k + ky)·k + kx` of the `fan_in × (oh·ow)` patch matrix
    /// holds the int8 sample under kernel tap `(ic, ky, kx)`, zero where
    /// the tap falls in padding (the symmetric grid's zero-point). Same
    /// geometry as the f64 [`Conv2d`] unroll, but every move is a byte
    /// copy.
    fn im2col_i8(
        &self,
        qplane: &[i8],
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        qcols: &mut Vec<i8>,
    ) {
        let n_patch = oh * ow;
        qcols.clear();
        qcols.resize(self.in_c * self.k * self.k * n_patch, 0);
        for ic in 0..self.in_c {
            let chan = &qplane[ic * h * w..(ic + 1) * h * w];
            for ky in 0..self.k {
                let off_y = ky as isize - self.pad as isize;
                for kx in 0..self.k {
                    let off_x = kx as isize - self.pad as isize;
                    let f = (ic * self.k + ky) * self.k + kx;
                    let row = &mut qcols[f * n_patch..(f + 1) * n_patch];
                    let ox_lo =
                        if off_x >= 0 { 0 } else { ((-off_x) as usize).div_ceil(self.stride) };
                    let ox_hi = if (w as isize) <= off_x {
                        0
                    } else {
                        (((w as isize - 1 - off_x) as usize) / self.stride + 1).min(ow)
                    };
                    if ox_lo >= ox_hi {
                        continue;
                    }
                    for oy in 0..oh {
                        let iy = oy as isize * self.stride as isize + off_y;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let src = &chan[iy as usize * w..(iy as usize + 1) * w];
                        let dst = &mut row[oy * ow..(oy + 1) * ow];
                        if self.stride == 1 {
                            let ix0 = (ox_lo as isize + off_x) as usize;
                            dst[ox_lo..ox_hi].copy_from_slice(&src[ix0..ix0 + (ox_hi - ox_lo)]);
                        } else {
                            for (ox, d) in dst[..ox_hi].iter_mut().enumerate().skip(ox_lo) {
                                *d = src[(ox as isize * self.stride as isize + off_x) as usize];
                            }
                        }
                    }
                }
            }
        }
    }

    /// Integer forward pass: plane quantization, byte-copy im2col, int8
    /// GEMM, then a per-channel rescale
    /// `out[oc][p] = bias[oc] + s_w[oc]·s_x·acc` with an optionally fused
    /// ReLU. `out` is resized to `out_c·oh·ow`; all buffers reuse their
    /// capacity on warm calls.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_into(
        &self,
        data: &[f64],
        h: usize,
        w: usize,
        qplane: &mut Vec<i8>,
        qcols: &mut Vec<i8>,
        acc: &mut Vec<i32>,
        out: &mut Vec<f64>,
        fuse_relu: bool,
    ) -> (usize, usize) {
        assert_eq!(data.len(), self.in_c * h * w, "input shape mismatch");
        self.quantize_plane(data, qplane);
        self.forward_quantized(qplane, h, w, qcols, acc, out, fuse_relu)
    }

    /// [`QuantizedConv2d::forward_into`] from a plane already on this
    /// layer's input grid — lets sibling layers that share a calibrated
    /// input range (a residual block's conv1 and its projection) quantize
    /// the plane once between them.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn forward_quantized(
        &self,
        qplane: &[i8],
        h: usize,
        w: usize,
        qcols: &mut Vec<i8>,
        acc: &mut Vec<i32>,
        out: &mut Vec<f64>,
        fuse_relu: bool,
    ) -> (usize, usize) {
        assert_eq!(qplane.len(), self.in_c * h * w, "input shape mismatch");
        let (oh, ow) = self.output_size(h, w);
        let n_patch = oh * ow;
        self.im2col_i8(qplane, h, w, oh, ow, qcols);
        acc.clear();
        acc.resize(self.out_c * n_patch, 0);
        let fan_in = self.in_c * self.k * self.k;
        gemm_i8(&self.weights_i8, self.out_c, fan_in, qcols, n_patch, acc);
        out.clear();
        out.resize(self.out_c * n_patch, 0.0);
        for oc in 0..self.out_c {
            let s = self.w_scales[oc] * self.x_scale;
            let b = self.bias[oc];
            let arow = &acc[oc * n_patch..(oc + 1) * n_patch];
            let orow = &mut out[oc * n_patch..(oc + 1) * n_patch];
            if fuse_relu {
                for (o, &a) in orow.iter_mut().zip(arow) {
                    *o = (b + s * f64::from(a)).max(0.0);
                }
            } else {
                for (o, &a) in orow.iter_mut().zip(arow) {
                    *o = b + s * f64::from(a);
                }
            }
        }
        (oh, ow)
    }
}

/// A dense head on a per-output-row symmetric int8 grid.
#[derive(Clone, Debug)]
pub struct QuantizedDense {
    in_dim: usize,
    out_dim: usize,
    weights_i8: Vec<i8>,
    w_scales: Vec<f64>,
    bias: Vec<f64>,
    x_scale: f64,
    inv_x_scale: f64,
}

impl QuantizedDense {
    /// Quantizes `dense`'s weights per output row; `x_range` is the
    /// calibrated maximum absolute input.
    pub fn from_dense(dense: &Dense, x_range: f64) -> Self {
        let mut weights_i8 = Vec::with_capacity(dense.weights.len());
        let mut w_scales = Vec::with_capacity(dense.out_dim);
        for row in dense.weights.chunks_exact(dense.in_dim) {
            w_scales.push(quantize_weight_row(row, &mut weights_i8));
        }
        let x_scale = scale_for(x_range);
        QuantizedDense {
            in_dim: dense.in_dim,
            out_dim: dense.out_dim,
            weights_i8,
            w_scales,
            bias: dense.bias.clone(),
            x_scale,
            inv_x_scale: 1.0 / x_scale,
        }
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight bytes of the packed layout.
    pub fn weight_bytes(&self) -> usize {
        self.weights_i8.len()
    }

    /// Integer forward: quantizes `x` into `qvec`, then one exact i32 dot
    /// product per output row, rescaled to f64.
    pub fn forward_into(&self, x: &[f64], qvec: &mut Vec<i8>, out: &mut [f64]) {
        assert_eq!(x.len(), self.in_dim, "dense input dimension mismatch");
        assert_eq!(out.len(), self.out_dim, "dense output dimension mismatch");
        qvec.clear();
        qvec.extend(x.iter().map(|&v| quantize_sat_i8(v, self.inv_x_scale)));
        for (o, (row, (&s, &b))) in out.iter_mut().zip(
            self.weights_i8
                .chunks_exact(self.in_dim)
                .zip(self.w_scales.iter().zip(self.bias.iter())),
        ) {
            let acc: i32 =
                row.iter().zip(qvec.iter()).map(|(&w, &q)| i32::from(w) * i32::from(q)).sum();
            *o = b + s * self.x_scale * f64::from(acc);
        }
    }
}

/// Per-clip scratch arena: the quantized patch matrix, the i32
/// accumulator, ping-pong f64 activation planes, the projection/skip
/// buffer, and the pooled/quantized head inputs. After the first clip of
/// a given geometry every buffer is capacity-warm, so steady-state
/// forward is allocation-free.
#[derive(Clone, Debug, Default)]
pub struct ClipScratch {
    qplane: Vec<i8>,
    qcols: Vec<i8>,
    acc: Vec<i32>,
    a: Vec<f64>,
    b: Vec<f64>,
    t: Vec<f64>,
    skip: Vec<f64>,
    pooled: Vec<f64>,
    qvec: Vec<i8>,
}

/// Caller-held scratch for [`QuantizedResNetLite`]: one [`ClipScratch`]
/// lane per parallel worker slot of a batched forward.
#[derive(Clone, Debug, Default)]
pub struct QuantScratch {
    lanes: Vec<ClipScratch>,
}

impl QuantScratch {
    fn ensure_lanes(&mut self, n: usize) {
        if self.lanes.len() < n {
            self.lanes.resize_with(n, ClipScratch::default);
        }
    }
}

/// One quantized residual block.
#[derive(Clone, Debug)]
struct QuantBlock {
    conv1: QuantizedConv2d,
    conv2: QuantizedConv2d,
    projection: Option<QuantizedConv2d>,
}

/// The int8 residual classifier: per-channel int8 weights, calibrated
/// activation grids, integer GEMM throughout, f64 only between layers.
#[derive(Clone, Debug)]
pub struct QuantizedResNetLite {
    stem: QuantizedConv2d,
    blocks: Vec<QuantBlock>,
    fc: QuantizedDense,
    n_classes: usize,
    telemetry: pb_telemetry::Telemetry,
}

impl QuantizedResNetLite {
    /// One-shot calibration + quantization. Runs the f32 `net` forward
    /// over `calib` recording the maximum absolute input activation of
    /// every convolution and the dense head, fixes each layer's
    /// activation grid to that range, and quantizes all weights per
    /// channel to int8. The f32 network is untouched — it remains the
    /// accuracy oracle.
    pub fn quantize(net: &ResNetLite, calib: &[FeatureMap]) -> Self {
        assert!(!calib.is_empty(), "calibration corpus must be non-empty");
        let nb = net.blocks.len();
        let mut stem_in = 0.0f64;
        let mut block_in = vec![0.0f64; nb];
        let mut r1_in = vec![0.0f64; nb];
        let mut fc_in = 0.0f64;
        let mut scratch = ConvScratch::default();
        for x in calib {
            stem_in = stem_in.max(max_abs(x.data()));
            let mut cur = relu(&net.stem.forward_with_scratch(x, &mut scratch));
            for (i, blk) in net.blocks.iter().enumerate() {
                block_in[i] = block_in[i].max(max_abs(cur.data()));
                let r1 = relu(&blk.conv1.forward_with_scratch(&cur, &mut scratch));
                r1_in[i] = r1_in[i].max(max_abs(r1.data()));
                let a2 = blk.conv2.forward_with_scratch(&r1, &mut scratch);
                let skip = match &blk.projection {
                    Some(p) => p.forward_with_scratch(&cur, &mut scratch),
                    None => cur.clone(),
                };
                cur = relu(&a2.add(&skip));
            }
            fc_in = fc_in.max(max_abs(&global_avg_pool(&cur)));
        }

        let stem = QuantizedConv2d::from_conv(&net.stem, stem_in);
        let blocks = net
            .blocks
            .iter()
            .enumerate()
            .map(|(i, blk)| QuantBlock {
                conv1: QuantizedConv2d::from_conv(&blk.conv1, block_in[i]),
                conv2: QuantizedConv2d::from_conv(&blk.conv2, r1_in[i]),
                projection: blk
                    .projection
                    .as_ref()
                    .map(|p| QuantizedConv2d::from_conv(p, block_in[i])),
            })
            .collect();
        let fc = QuantizedDense::from_dense(&net.fc, fc_in);
        QuantizedResNetLite {
            stem,
            blocks,
            fc,
            n_classes: net.fc.out_dim,
            telemetry: pb_telemetry::Telemetry::disabled(),
        }
    }

    /// Times every int8 inference into `telemetry` as the
    /// `cnn.forward.int8` wall-time histogram and publishes batch sizes
    /// on the `quant.batch.size` gauge. Logits are unchanged.
    pub fn with_telemetry(mut self, telemetry: pb_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total packed int8 weight bytes (biases and scales excluded) —
    /// 1/8 of the f64 weight footprint.
    pub fn weight_bytes(&self) -> usize {
        self.stem.weight_bytes()
            + self
                .blocks
                .iter()
                .map(|b| {
                    b.conv1.weight_bytes()
                        + b.conv2.weight_bytes()
                        + b.projection.as_ref().map_or(0, QuantizedConv2d::weight_bytes)
                })
                .sum::<usize>()
            + self.fc.weight_bytes()
    }

    /// Single-clip integer forward pass producing class logits.
    pub fn forward(&self, x: &FeatureMap, scratch: &mut QuantScratch) -> Vec<f64> {
        let _span = self.telemetry.span("cnn.forward.int8");
        self.telemetry.set_gauge("quant.batch.size", 1.0);
        scratch.ensure_lanes(1);
        let mut out = vec![0.0; self.n_classes];
        self.forward_clip(x, &mut scratch.lanes[0], &mut out);
        out
    }

    /// Predicted class of an input.
    pub fn predict(&self, x: &FeatureMap, scratch: &mut QuantScratch) -> usize {
        let logits = self.forward(x, scratch);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Batched integer forward over `clips`; returns one logit vector per
    /// clip, in order. Clips fan out over the persistent pool in
    /// [`MAX_BATCH_LANES`]-bounded lanes; each lane owns one
    /// [`ClipScratch`], and the clip→lane split depends only on
    /// `clips.len()`, so logits are bit-identical to a serial loop at any
    /// worker count.
    pub fn forward_batch(&self, clips: &[FeatureMap], scratch: &mut QuantScratch) -> Vec<Vec<f64>> {
        let mut flat = vec![0.0; clips.len() * self.n_classes];
        self.forward_batch_into(clips, scratch, &mut flat);
        flat.chunks(self.n_classes.max(1)).map(|c| c.to_vec()).collect()
    }

    /// Allocation-free batched forward: logits land in `out` as
    /// `clips.len() × n_classes` row-major.
    pub fn forward_batch_into(
        &self,
        clips: &[FeatureMap],
        scratch: &mut QuantScratch,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), clips.len() * self.n_classes, "output buffer shape mismatch");
        if clips.is_empty() {
            return;
        }
        let _span = self.telemetry.span("cnn.forward.int8");
        self.telemetry.set_gauge("quant.batch.size", clips.len() as f64);
        let n_lanes = clips.len().min(MAX_BATCH_LANES);
        scratch.ensure_lanes(n_lanes);
        let per = clips.len().div_ceil(n_lanes);
        let n_classes = self.n_classes;
        rayon::scope(|s| {
            for ((chunk, ochunk), lane) in
                clips.chunks(per).zip(out.chunks_mut(per * n_classes)).zip(scratch.lanes.iter_mut())
            {
                s.spawn(move |_| {
                    for (clip, o) in chunk.iter().zip(ochunk.chunks_mut(n_classes)) {
                        self.forward_clip(clip, lane, o);
                    }
                });
            }
        });
    }

    /// Runs one clip through stem → blocks → GAP → head entirely within
    /// `s`'s buffers, writing logits to `out`.
    fn forward_clip(&self, x: &FeatureMap, s: &mut ClipScratch, out: &mut [f64]) {
        let ClipScratch { qplane, qcols, acc, a, b, t, skip, pooled, qvec } = s;
        let (mut h, mut w) = (x.height(), x.width());
        let (oh, ow) = self.stem.forward_into(x.data(), h, w, qplane, qcols, acc, a, true);
        (h, w) = (oh, ow);
        let mut c = self.stem.out_c();
        for blk in &self.blocks {
            // conv1 and the projection share the block-input grid, so the
            // plane is quantized once and fed to both.
            blk.conv1.quantize_plane(a, qplane);
            let (h1, w1) = blk.conv1.forward_quantized(qplane, h, w, qcols, acc, b, true);
            if let Some(p) = &blk.projection {
                debug_assert_eq!(
                    p.x_scale(),
                    blk.conv1.x_scale(),
                    "projection must share conv1's input grid"
                );
                p.forward_quantized(qplane, h, w, qcols, acc, skip, false);
            }
            let (h2, w2) = blk.conv2.forward_into(b, h1, w1, qplane, qcols, acc, t, false);
            match &blk.projection {
                Some(_) => {
                    for (tv, &sv) in t.iter_mut().zip(skip.iter()) {
                        *tv = (*tv + sv).max(0.0);
                    }
                }
                None => {
                    debug_assert_eq!((h, w), (h2, w2), "identity skip needs matching shape");
                    for (tv, &av) in t.iter_mut().zip(a.iter()) {
                        *tv = (*tv + av).max(0.0);
                    }
                }
            }
            std::mem::swap(a, t);
            (h, w) = (h2, w2);
            c = blk.conv2.out_c();
        }
        // Global average pooling from the final activation plane.
        pooled.clear();
        let plane = h * w;
        let inv = 1.0 / plane as f64;
        pooled.extend(a.chunks_exact(plane).take(c).map(|ch| ch.iter().sum::<f64>() * inv));
        self.fc.forward_into(pooled, qvec, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::resnet::{ResNetConfig, StageSpec};
    use crate::tensor::FeatureMap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fit_covers_the_range() {
        let p = QuantParams::fit(&[-2.0, 1.0, 0.5], 8);
        // q_max = 127; scale = 2/127.
        assert!((p.scale - 2.0 / 127.0).abs() < 1e-12);
        assert_eq!(p.quantize(2.0), 127);
        assert_eq!(p.quantize(-2.0), -127);
        assert_eq!(p.quantize(0.0), 0);
    }

    #[test]
    fn clamp_is_symmetric_at_the_range_edges() {
        // Regression: -max_abs used to clamp to -(q_max+1) (e.g. -128)
        // while +max_abs clamps to q_max, breaking round-trip symmetry.
        for bits in [2u32, 4, 8, 16] {
            let q_max = (1i64 << (bits - 1)) - 1;
            let p = QuantParams::fit(&[3.0, -3.0], bits);
            assert_eq!(i64::from(p.quantize(3.0)), q_max, "bits {bits}");
            assert_eq!(i64::from(p.quantize(-3.0)), -q_max, "bits {bits}");
            // Values past the range saturate symmetrically too.
            assert_eq!(i64::from(p.quantize(30.0)), q_max, "bits {bits}");
            assert_eq!(i64::from(p.quantize(-30.0)), -q_max, "bits {bits}");
            // And the round-trip of the two edges has equal magnitude.
            assert_eq!(p.fake_quantize(3.0), -p.fake_quantize(-3.0), "bits {bits}");
        }
    }

    #[test]
    fn round_trip_edge_cases_across_bit_widths() {
        for bits in [2u32, 8, 16] {
            let values: Vec<f64> = vec![-1.5, -0.75, -1e-9, 0.0, 1e-9, 0.3, 1.5];
            let p = QuantParams::fit(&values, bits);
            for &v in &values {
                let rt = p.fake_quantize(v);
                assert!(
                    (rt - v).abs() <= p.max_error() + 1e-12,
                    "bits {bits}: {v} round-tripped to {rt}"
                );
            }
            // The extreme magnitudes are exactly representable.
            assert!((p.fake_quantize(1.5) - 1.5).abs() < 1e-12, "bits {bits}");
            assert!((p.fake_quantize(-1.5) + 1.5).abs() < 1e-12, "bits {bits}");
        }
    }

    #[test]
    fn degenerate_tensor() {
        let p = QuantParams::fit(&[0.0, 0.0], 8);
        assert_eq!(p.scale, 1.0);
        assert_eq!(p.fake_quantize(0.0), 0.0);
    }

    #[test]
    fn round_trip_error_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<f64> = (0..1000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let p = QuantParams::fit(&values, 8);
        for &v in &values {
            assert!((p.fake_quantize(v) - v).abs() <= p.max_error() + 1e-12);
        }
    }

    #[test]
    fn more_bits_less_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<f64> = (0..500).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut v4 = values.clone();
        let mut v8 = values.clone();
        let r4 = quantize_tensor(&mut v4, 4);
        let r8 = quantize_tensor(&mut v8, 8);
        assert!(
            r8.rms_error < r4.rms_error / 4.0,
            "8-bit {} vs 4-bit {}",
            r8.rms_error,
            r4.rms_error
        );
    }

    fn tiny_net() -> ResNetLite {
        ResNetLite::new(ResNetConfig {
            input_channels: 1,
            base_width: 4,
            stages: vec![
                StageSpec { channels: 4, stride: 1 },
                StageSpec { channels: 8, stride: 2 },
            ],
            n_classes: 2,
            seed: 5,
        })
    }

    fn random_clip(side: usize, seed: u64) -> FeatureMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..side * side).map(|_| rng.gen_range(0.0..1.0)).collect();
        FeatureMap::from_vec(1, side, side, data)
    }

    #[test]
    fn quantized_network_stays_close_in_logits() {
        let float_net = tiny_net();
        let mut q_net = float_net.clone();
        let report = quantize_resnet(&mut q_net, 8);
        assert!(report.mean_rms_error() < 0.01, "rms {}", report.mean_rms_error());

        let x = random_clip(10, 7);
        let a = float_net.forward(&x);
        let b = q_net.forward(&x);
        for (fa, fb) in a.iter().zip(&b) {
            assert!((fa - fb).abs() < 0.2, "logits drifted: {fa} vs {fb}");
        }
        // Predictions agree on a batch of random inputs.
        let mut agree = 0;
        for s in 0..20u64 {
            let x = random_clip(10, 100 + s);
            if float_net.predict(&x) == q_net.predict(&x) {
                agree += 1;
            }
        }
        assert!(agree >= 18, "only {agree}/20 predictions agree after int8 quantization");
    }

    #[test]
    fn model_bytes_shrink_with_bits() {
        let mut a = tiny_net();
        let r8 = quantize_resnet(&mut a, 8);
        let mut b = tiny_net();
        let r4 = quantize_resnet(&mut b, 4);
        assert_eq!(r8.model_bytes(), 2 * r4.model_bytes());
        // int8 is a quarter of f32.
        let n_weights: usize = r8.tensors.iter().map(|t| t.n).sum();
        assert_eq!(r8.model_bytes(), n_weights);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn silly_bit_width_panics() {
        let _ = QuantParams::fit(&[1.0], 1);
    }

    // --- int8 engine ---

    fn calib_corpus(side: usize) -> Vec<FeatureMap> {
        (0..6u64).map(|s| random_clip(side, 900 + s)).collect()
    }

    /// Dequantized-f64 reference for one quantized conv: rebuild an f64
    /// `Conv2d` from the dequantized int8 weights and feed it the
    /// dequantized int8 activations; the integer path must match to
    /// floating-point rounding (the i32 accumulation itself is exact).
    fn dequantized_reference(q: &QuantizedConv2d, conv: &Conv2d, x: &FeatureMap) -> FeatureMap {
        let fan_in = conv.in_c * conv.k * conv.k;
        let weights: Vec<f64> = q
            .weights_i8()
            .iter()
            .enumerate()
            .map(|(i, &wq)| f64::from(wq) * q.w_scales()[i / fan_in])
            .collect();
        let deq_conv = Conv2d { weights, ..conv.clone() };
        let deq_x = FeatureMap::from_vec(
            x.channels(),
            x.height(),
            x.width(),
            x.data().iter().map(|&v| f64::from(q.quantize_activation(v)) * q.x_scale()).collect(),
        );
        deq_conv.forward_direct(&deq_x)
    }

    #[test]
    fn int8_conv_matches_dequantized_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for (i, &(in_c, out_c, k, stride, pad, h, w)) in [
            (1usize, 1usize, 1usize, 1usize, 0usize, 5usize, 5usize),
            (1, 4, 3, 1, 1, 8, 8),
            (3, 8, 3, 2, 1, 9, 7),
            (2, 3, 5, 1, 2, 6, 11),
        ]
        .iter()
        .enumerate()
        {
            let mut conv = Conv2d::new(in_c, out_c, k, stride, pad, &mut rng);
            for b in conv.bias.iter_mut() {
                *b = rng.gen_range(-0.5..0.5);
            }
            let data: Vec<f64> = (0..in_c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = FeatureMap::from_vec(in_c, h, w, data);
            let q = QuantizedConv2d::from_conv(&conv, max_abs(x.data()));

            let (mut qplane, mut qcols) = (Vec::new(), Vec::new());
            let (mut acc, mut out) = (Vec::new(), Vec::new());
            let (oh, ow) =
                q.forward_into(x.data(), h, w, &mut qplane, &mut qcols, &mut acc, &mut out, false);
            let reference = dequantized_reference(&q, &conv, &x);
            assert_eq!((out_c, oh, ow), reference.shape(), "case {i}");
            for (j, (&a, &b)) in out.iter().zip(reference.data()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "case {i} elem {j}: int8 {a} vs reference {b}"
                );
            }
        }
    }

    #[test]
    fn quantized_resnet_tracks_float_oracle() {
        let net = tiny_net();
        let q = QuantizedResNetLite::quantize(&net, &calib_corpus(10));
        let mut scratch = QuantScratch::default();
        let mut agree = 0;
        for s in 0..20u64 {
            let x = random_clip(10, 500 + s);
            let fl = net.forward(&x);
            let il = q.forward(&x, &mut scratch);
            assert_eq!(fl.len(), il.len());
            for (a, b) in fl.iter().zip(&il) {
                assert!((a - b).abs() < 0.25, "logits drifted: f32 {a} vs int8 {b}");
            }
            if net.predict(&x) == q.predict(&x, &mut scratch) {
                agree += 1;
            }
        }
        assert!(agree >= 18, "only {agree}/20 predictions agree");
        // Packed weights are one byte per f64 weight — 1/8 the footprint.
        let n_weights: usize = net.clone().weight_tensors_mut().iter().map(|t| t.len()).sum();
        assert_eq!(q.weight_bytes(), n_weights);
    }

    #[test]
    fn batch_forward_is_bitwise_identical_to_the_loop() {
        let net = tiny_net();
        let q = QuantizedResNetLite::quantize(&net, &calib_corpus(12));
        let clips: Vec<FeatureMap> = (0..13u64).map(|s| random_clip(12, 700 + s)).collect();
        let mut scratch = QuantScratch::default();
        let batched = q.forward_batch(&clips, &mut scratch);
        for (i, clip) in clips.iter().enumerate() {
            let single = q.forward(clip, &mut scratch);
            assert_eq!(batched[i], single, "clip {i} diverged from the serial loop");
        }
    }

    #[test]
    fn batch_forward_is_thread_count_invariant() {
        let net = tiny_net();
        let q = QuantizedResNetLite::quantize(&net, &calib_corpus(12));
        let clips: Vec<FeatureMap> = (0..11u64).map(|s| random_clip(12, 800 + s)).collect();
        let runs: Vec<Vec<Vec<f64>>> = [1usize, 2, 4]
            .iter()
            .map(|&cap| {
                rayon::pool::with_thread_cap(cap, || {
                    let mut scratch = QuantScratch::default();
                    q.forward_batch(&clips, &mut scratch)
                })
            })
            .collect();
        assert_eq!(runs[0], runs[1], "1 vs 2 workers");
        assert_eq!(runs[0], runs[2], "1 vs 4 workers");
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let net = tiny_net();
        let q = QuantizedResNetLite::quantize(&net, &calib_corpus(10));
        let mut scratch = QuantScratch::default();
        assert!(q.forward_batch(&[], &mut scratch).is_empty());
    }

    #[test]
    fn telemetry_records_int8_spans_and_batch_gauge() {
        let tel = pb_telemetry::Telemetry::metrics_only();
        let net = tiny_net();
        let q = QuantizedResNetLite::quantize(&net, &calib_corpus(10)).with_telemetry(tel.clone());
        let clips: Vec<FeatureMap> = (0..5u64).map(|s| random_clip(10, 60 + s)).collect();
        let mut scratch = QuantScratch::default();
        let _ = q.forward_batch(&clips, &mut scratch);
        let _ = q.forward(&clips[0], &mut scratch);
        let snap = tel.snapshot();
        let h = snap.histogram("cnn.forward.int8").cloned().expect("span recorded");
        assert_eq!(h.count, 2);
        let g = snap.gauge("quant.batch.size").expect("gauge set");
        assert_eq!(g, 1.0); // last write was the single-clip forward
    }

    #[test]
    fn warm_forward_is_allocation_free_in_capacity() {
        let net = tiny_net();
        let q = QuantizedResNetLite::quantize(&net, &calib_corpus(12));
        let mut scratch = QuantScratch::default();
        let x = random_clip(12, 1);
        let _ = q.forward(&x, &mut scratch);
        let caps = |s: &QuantScratch| {
            let l = &s.lanes[0];
            (
                l.qcols.capacity(),
                l.acc.capacity(),
                l.a.capacity(),
                l.b.capacity(),
                l.t.capacity(),
                l.skip.capacity(),
            )
        };
        let warm = caps(&scratch);
        for s in 0..4u64 {
            let x = random_clip(12, 2 + s);
            let _ = q.forward(&x, &mut scratch);
        }
        assert_eq!(caps(&scratch), warm, "warm int8 forward grew a scratch buffer");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(32))]
            #[test]
            fn int8_gemm_parity_with_dequantized_reference(
                in_c in 1usize..4,
                out_c in 1usize..4,
                k in 1usize..4,
                stride in 1usize..3,
                pad in 0usize..3,
                extra_h in 0usize..5,
                extra_w in 0usize..5,
                seed in 0u64..1_000_000,
            ) {
                let h = k + extra_h;
                let w = k + extra_w;
                let mut rng = StdRng::seed_from_u64(seed);
                let mut conv = Conv2d::new(in_c, out_c, k, stride, pad, &mut rng);
                for b in conv.bias.iter_mut() {
                    *b = rng.gen_range(-0.5..0.5);
                }
                let data: Vec<f64> =
                    (0..in_c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let x = FeatureMap::from_vec(in_c, h, w, data);
                let q = QuantizedConv2d::from_conv(&conv, max_abs(x.data()));
                let (mut qplane, mut qcols) = (Vec::new(), Vec::new());
                let (mut acc, mut out) = (Vec::new(), Vec::new());
                let _ = q.forward_into(
                    x.data(), h, w, &mut qplane, &mut qcols, &mut acc, &mut out, false,
                );
                let reference = dequantized_reference(&q, &conv, &x);
                for (a, b) in out.iter().zip(reference.data()) {
                    prop_assert!(
                        (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                        "int8 {} vs reference {}", a, b
                    );
                }
            }
        }
    }
}
