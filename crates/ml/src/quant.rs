//! Post-training weight quantization.
//!
//! Energy-constrained edge inference commonly quantizes weights to 8 bits;
//! on a Raspberry-Pi-class device this shrinks the model and enables
//! integer arithmetic. This module implements symmetric per-tensor
//! affine quantization with dequantized (fake-quant) inference, so the
//! accuracy cost of deploying a quantized queen detector can be measured
//! against the float model — an ablation the paper's energy analysis
//! invites but does not run.

use crate::nn::resnet::ResNetLite;

/// Symmetric per-tensor quantization parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantParams {
    /// Scale: real value = scale × quantized integer.
    pub scale: f64,
    /// Number of bits (2–16).
    pub bits: u32,
}

impl QuantParams {
    /// Chooses the scale covering `values` symmetrically at `bits` bits.
    /// A degenerate all-zero tensor gets scale 1.
    pub fn fit(values: &[f64], bits: u32) -> Self {
        assert!((2..=16).contains(&bits), "bits must be in 2..=16");
        let max_abs = values.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        let q_max = ((1i64 << (bits - 1)) - 1) as f64;
        let scale = if max_abs > 0.0 { max_abs / q_max } else { 1.0 };
        QuantParams { scale, bits }
    }

    /// Quantizes one value to the integer grid.
    pub fn quantize(&self, v: f64) -> i32 {
        let q_max = ((1i64 << (self.bits - 1)) - 1) as i32;
        ((v / self.scale).round() as i64).clamp(-(q_max as i64) - 1, q_max as i64) as i32
    }

    /// Dequantizes an integer back to a real value.
    pub fn dequantize(&self, q: i32) -> f64 {
        f64::from(q) * self.scale
    }

    /// Round-trips a value through the grid (fake quantization).
    pub fn fake_quantize(&self, v: f64) -> f64 {
        self.dequantize(self.quantize(v))
    }

    /// Worst-case absolute rounding error of this grid.
    pub fn max_error(&self) -> f64 {
        self.scale * 0.5
    }
}

/// Statistics of quantizing one tensor.
#[derive(Clone, Copy, Debug)]
pub struct TensorQuantReport {
    /// Elements quantized.
    pub n: usize,
    /// Root-mean-square quantization error.
    pub rms_error: f64,
}

/// Fake-quantizes a tensor in place; returns the error report.
pub fn quantize_tensor(values: &mut [f64], bits: u32) -> TensorQuantReport {
    let params = QuantParams::fit(values, bits);
    let mut sq = 0.0;
    for v in values.iter_mut() {
        let q = params.fake_quantize(*v);
        sq += (q - *v).powi(2);
        *v = q;
    }
    TensorQuantReport { n: values.len(), rms_error: (sq / values.len().max(1) as f64).sqrt() }
}

/// Report of quantizing a whole network.
#[derive(Clone, Debug)]
pub struct ModelQuantReport {
    /// Bits used.
    pub bits: u32,
    /// Per-tensor reports in network order.
    pub tensors: Vec<TensorQuantReport>,
}

impl ModelQuantReport {
    /// Parameter-weighted mean RMS error.
    pub fn mean_rms_error(&self) -> f64 {
        let total: usize = self.tensors.iter().map(|t| t.n).sum();
        if total == 0 {
            return 0.0;
        }
        self.tensors.iter().map(|t| t.rms_error * t.n as f64).sum::<f64>() / total as f64
    }

    /// Model size in bytes at this bit width (weights only, no packing
    /// overhead).
    pub fn model_bytes(&self) -> usize {
        let params: usize = self.tensors.iter().map(|t| t.n).sum();
        (params * self.bits as usize).div_ceil(8)
    }
}

/// Fake-quantizes every weight tensor of a [`ResNetLite`] in place
/// (biases stay in float, as deployment stacks typically keep them at
/// 32 bits).
pub fn quantize_resnet(net: &mut ResNetLite, bits: u32) -> ModelQuantReport {
    let mut tensors = Vec::new();
    for w in net.weight_tensors_mut() {
        tensors.push(quantize_tensor(w, bits));
    }
    ModelQuantReport { bits, tensors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::resnet::{ResNetConfig, StageSpec};
    use crate::tensor::FeatureMap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fit_covers_the_range() {
        let p = QuantParams::fit(&[-2.0, 1.0, 0.5], 8);
        // q_max = 127; scale = 2/127.
        assert!((p.scale - 2.0 / 127.0).abs() < 1e-12);
        assert_eq!(p.quantize(2.0), 127);
        assert_eq!(p.quantize(-2.0), -127);
        assert_eq!(p.quantize(0.0), 0);
    }

    #[test]
    fn degenerate_tensor() {
        let p = QuantParams::fit(&[0.0, 0.0], 8);
        assert_eq!(p.scale, 1.0);
        assert_eq!(p.fake_quantize(0.0), 0.0);
    }

    #[test]
    fn round_trip_error_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<f64> = (0..1000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let p = QuantParams::fit(&values, 8);
        for &v in &values {
            assert!((p.fake_quantize(v) - v).abs() <= p.max_error() + 1e-12);
        }
    }

    #[test]
    fn more_bits_less_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<f64> = (0..500).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut v4 = values.clone();
        let mut v8 = values.clone();
        let r4 = quantize_tensor(&mut v4, 4);
        let r8 = quantize_tensor(&mut v8, 8);
        assert!(
            r8.rms_error < r4.rms_error / 4.0,
            "8-bit {} vs 4-bit {}",
            r8.rms_error,
            r4.rms_error
        );
    }

    fn tiny_net() -> ResNetLite {
        ResNetLite::new(ResNetConfig {
            input_channels: 1,
            base_width: 4,
            stages: vec![
                StageSpec { channels: 4, stride: 1 },
                StageSpec { channels: 8, stride: 2 },
            ],
            n_classes: 2,
            seed: 5,
        })
    }

    #[test]
    fn quantized_network_stays_close_in_logits() {
        let float_net = tiny_net();
        let mut q_net = float_net.clone();
        let report = quantize_resnet(&mut q_net, 8);
        assert!(report.mean_rms_error() < 0.01, "rms {}", report.mean_rms_error());

        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<f64> = (0..100).map(|_| rng.gen_range(0.0..1.0)).collect();
        let x = FeatureMap::from_vec(1, 10, 10, data);
        let a = float_net.forward(&x);
        let b = q_net.forward(&x);
        for (fa, fb) in a.iter().zip(&b) {
            assert!((fa - fb).abs() < 0.2, "logits drifted: {fa} vs {fb}");
        }
        // Predictions agree on a batch of random inputs.
        let mut agree = 0;
        for s in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(100 + s);
            let data: Vec<f64> = (0..100).map(|_| rng.gen_range(0.0..1.0)).collect();
            let x = FeatureMap::from_vec(1, 10, 10, data);
            if float_net.predict(&x) == q_net.predict(&x) {
                agree += 1;
            }
        }
        assert!(agree >= 18, "only {agree}/20 predictions agree after int8 quantization");
    }

    #[test]
    fn model_bytes_shrink_with_bits() {
        let mut a = tiny_net();
        let r8 = quantize_resnet(&mut a, 8);
        let mut b = tiny_net();
        let r4 = quantize_resnet(&mut b, 4);
        assert_eq!(r8.model_bytes(), 2 * r4.model_bytes());
        // int8 is a quarter of f32.
        let n_weights: usize = r8.tensors.iter().map(|t| t.n).sum();
        assert_eq!(r8.model_bytes(), n_weights);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn silly_bit_width_panics() {
        let _ = QuantParams::fit(&[1.0], 1);
    }
}
