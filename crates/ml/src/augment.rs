//! Spectrogram-image augmentation.
//!
//! SpecAugment-style masking adapted to the queen-detection images: random
//! time-column and frequency-row masks plus small additive noise. Used as
//! an optional training-time transform to harden the small from-scratch
//! CNN against the synthesizer's limited variability.

use crate::tensor::FeatureMap;
use rand::Rng;

/// Augmentation parameters.
#[derive(Clone, Copy, Debug)]
pub struct Augment {
    /// Maximum width of the time (column) mask, in pixels.
    pub max_time_mask: usize,
    /// Maximum height of the frequency (row) mask, in pixels.
    pub max_freq_mask: usize,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f64,
    /// Value written into masked regions.
    pub mask_value: f64,
}

impl Default for Augment {
    fn default() -> Self {
        Augment { max_time_mask: 6, max_freq_mask: 6, noise_std: 0.02, mask_value: 0.0 }
    }
}

impl Augment {
    /// Returns an augmented copy of a single-channel image.
    pub fn apply<R: Rng + ?Sized>(&self, image: &FeatureMap, rng: &mut R) -> FeatureMap {
        let (c, h, w) = image.shape();
        assert_eq!(c, 1, "augmentation expects single-channel spectrogram images");
        let mut out = image.clone();

        // Time mask: a run of columns.
        if self.max_time_mask > 0 && w > 1 {
            let width = rng.gen_range(0..=self.max_time_mask.min(w - 1));
            if width > 0 {
                let start = rng.gen_range(0..=w - width);
                for y in 0..h {
                    for x in start..start + width {
                        out.set(0, y, x, self.mask_value);
                    }
                }
            }
        }
        // Frequency mask: a run of rows.
        if self.max_freq_mask > 0 && h > 1 {
            let height = rng.gen_range(0..=self.max_freq_mask.min(h - 1));
            if height > 0 {
                let start = rng.gen_range(0..=h - height);
                for y in start..start + height {
                    for x in 0..w {
                        out.set(0, y, x, self.mask_value);
                    }
                }
            }
        }
        // Additive noise.
        if self.noise_std > 0.0 {
            for v in out.data_mut() {
                *v += self.noise_std * crate::init::standard_normal(rng);
            }
        }
        out
    }

    /// Expands a labelled dataset with `copies` augmented variants per
    /// example (originals retained first).
    pub fn expand<R: Rng + ?Sized>(
        &self,
        data: &[(FeatureMap, usize)],
        copies: usize,
        rng: &mut R,
    ) -> Vec<(FeatureMap, usize)> {
        let mut out = Vec::with_capacity(data.len() * (copies + 1));
        out.extend(data.iter().cloned());
        for (img, label) in data {
            for _ in 0..copies {
                out.push((self.apply(img, rng), *label));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn image(side: usize, value: f64) -> FeatureMap {
        FeatureMap::from_vec(1, side, side, vec![value; side * side])
    }

    #[test]
    fn masks_write_the_mask_value() {
        let aug = Augment { noise_std: 0.0, mask_value: -1.0, ..Augment::default() };
        let mut rng = StdRng::seed_from_u64(3);
        // Try several draws; at least one must place a non-empty mask.
        let mut masked_any = false;
        for _ in 0..10 {
            let out = aug.apply(&image(16, 0.5), &mut rng);
            let masked = out.data().iter().filter(|&&v| v == -1.0).count();
            let untouched = out.data().iter().filter(|&&v| v == 0.5).count();
            assert_eq!(masked + untouched, 256, "pixels are either masked or untouched");
            masked_any |= masked > 0;
        }
        assert!(masked_any, "no mask was ever applied");
    }

    #[test]
    fn shape_is_preserved() {
        let aug = Augment::default();
        let mut rng = StdRng::seed_from_u64(4);
        let out = aug.apply(&image(24, 0.3), &mut rng);
        assert_eq!(out.shape(), (1, 24, 24));
    }

    #[test]
    fn noise_only_perturbs_mildly() {
        let aug = Augment { max_time_mask: 0, max_freq_mask: 0, noise_std: 0.05, mask_value: 0.0 };
        let mut rng = StdRng::seed_from_u64(5);
        let out = aug.apply(&image(16, 0.5), &mut rng);
        let max_dev = out.data().iter().map(|v| (v - 0.5).abs()).fold(0.0, f64::max);
        assert!(max_dev > 0.0 && max_dev < 0.3, "max deviation {max_dev}");
    }

    #[test]
    fn expand_multiplies_the_dataset() {
        let data = vec![(image(8, 0.1), 0), (image(8, 0.9), 1)];
        let mut rng = StdRng::seed_from_u64(6);
        let expanded = Augment::default().expand(&data, 3, &mut rng);
        assert_eq!(expanded.len(), 8);
        // Originals first, labels preserved.
        assert_eq!(expanded[0].1, 0);
        assert_eq!(expanded[1].1, 1);
        let zeros = expanded.iter().filter(|(_, l)| *l == 0).count();
        assert_eq!(zeros, 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = vec![(image(8, 0.4), 1)];
        let a = Augment::default().expand(&data, 2, &mut StdRng::seed_from_u64(7));
        let b = Augment::default().expand(&data, 2, &mut StdRng::seed_from_u64(7));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0.data(), y.0.data());
        }
    }

    #[test]
    fn augmented_training_still_learns() {
        use crate::nn::resnet::{ResNetConfig, ResNetLite, StageSpec};
        use crate::nn::train::{evaluate, train, TrainConfig};
        // Bright-left vs bright-right images, augmented 2×.
        let mut rng = StdRng::seed_from_u64(8);
        let base: Vec<(FeatureMap, usize)> = (0..24)
            .map(|i| {
                let label = i % 2;
                let mut data = vec![0.1; 100];
                for y in 0..10 {
                    for x in 0..5 {
                        let xx = if label == 1 { x } else { 9 - x };
                        data[y * 10 + xx] = 0.9;
                    }
                }
                (FeatureMap::from_vec(1, 10, 10, data), label)
            })
            .collect();
        let aug = Augment { max_time_mask: 2, max_freq_mask: 2, ..Augment::default() };
        let expanded = aug.expand(&base, 2, &mut rng);
        let mut net = ResNetLite::new(ResNetConfig {
            input_channels: 1,
            base_width: 4,
            stages: vec![
                StageSpec { channels: 4, stride: 1 },
                StageSpec { channels: 8, stride: 2 },
            ],
            n_classes: 2,
            seed: 2,
        });
        train(&mut net, &expanded, &TrainConfig { epochs: 12, lr: 0.1, batch_size: 8, seed: 3 });
        assert!(evaluate(&net, &base) >= 0.9);
    }

    #[test]
    #[should_panic(expected = "single-channel")]
    fn multichannel_panics() {
        let aug = Augment::default();
        let mut rng = StdRng::seed_from_u64(9);
        let _ = aug.apply(&FeatureMap::zeros(2, 8, 8), &mut rng);
    }
}
