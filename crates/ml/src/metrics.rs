//! Classification metrics.

/// Fraction of predictions equal to the ground truth.
pub fn accuracy(predictions: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predictions.len(), truth.len(), "prediction/truth length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / predictions.len() as f64
}

/// A `k × k` confusion matrix: `counts[truth][prediction]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<usize>,
}

/// Builds a confusion matrix over `k` classes.
pub fn confusion_matrix(predictions: &[usize], truth: &[usize], k: usize) -> ConfusionMatrix {
    assert_eq!(predictions.len(), truth.len(), "prediction/truth length mismatch");
    let mut counts = vec![0usize; k * k];
    for (&p, &t) in predictions.iter().zip(truth) {
        assert!(p < k && t < k, "label out of range for {k} classes");
        counts[t * k + p] += 1;
    }
    ConfusionMatrix { k, counts }
}

impl ConfusionMatrix {
    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.k
    }

    /// Count of examples with ground truth `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        assert!(t < self.k && p < self.k, "index out of range");
        self.counts[t * self.k + p]
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.k).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Precision of class `c`: TP / (TP + FP). `None` when nothing was
    /// predicted as `c`.
    pub fn precision(&self, c: usize) -> Option<f64> {
        let tp = self.count(c, c);
        let predicted: usize = (0..self.k).map(|t| self.count(t, c)).sum();
        if predicted == 0 {
            None
        } else {
            Some(tp as f64 / predicted as f64)
        }
    }

    /// Recall of class `c`: TP / (TP + FN). `None` when class `c` has no
    /// ground-truth examples.
    pub fn recall(&self, c: usize) -> Option<f64> {
        let tp = self.count(c, c);
        let actual: usize = (0..self.k).map(|p| self.count(c, p)).sum();
        if actual == 0 {
            None
        } else {
            Some(tp as f64 / actual as f64)
        }
    }

    /// F1 score of class `c`; `None` when precision or recall is undefined
    /// or both are zero.
    pub fn f1(&self, c: usize) -> Option<f64> {
        let p = self.precision(c)?;
        let r = self.recall(c)?;
        if p + r == 0.0 {
            None
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 0, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_mismatch_panics() {
        accuracy(&[1], &[1, 0]);
    }

    #[test]
    fn confusion_counts() {
        // truth:      0 0 1 1 1
        // prediction: 0 1 1 1 0
        let cm = confusion_matrix(&[0, 1, 1, 1, 0], &[0, 0, 1, 1, 1], 2);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 2);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.total(), 5);
        assert_eq!(cm.classes(), 2);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1() {
        let cm = confusion_matrix(&[0, 1, 1, 1, 0], &[0, 0, 1, 1, 1], 2);
        // Class 1: TP=2, FP=1, FN=1.
        assert!((cm.precision(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn undefined_metrics_are_none() {
        // Nothing predicted as class 1, no ground truth class 1.
        let cm = confusion_matrix(&[0, 0], &[0, 0], 2);
        assert!(cm.precision(1).is_none());
        assert!(cm.recall(1).is_none());
        assert!(cm.f1(1).is_none());
        // Perfect on class 0.
        assert_eq!(cm.precision(0), Some(1.0));
        assert_eq!(cm.recall(0), Some(1.0));
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        let cm = confusion_matrix(&[], &[], 3);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        confusion_matrix(&[2], &[0], 2);
    }
}
