//! Operation counting for the energy model.
//!
//! The paper reports that CNN inference energy on the Raspberry Pi "grows
//! as a quadratic function of the number of pixels" swept over input sizes
//! (Figure 5). The device layer reproduces that curve by converting a
//! model's multiply-accumulate count into joules with a calibrated
//! joules-per-MAC coefficient; this module is the counting side.

/// A count of multiply-accumulate operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct FlopCount {
    /// Multiply-accumulate operations (1 MAC = 2 FLOPs).
    pub macs: u64,
}

impl FlopCount {
    /// Zero operations.
    pub const ZERO: FlopCount = FlopCount { macs: 0 };

    /// Wraps a raw MAC count.
    pub fn from_macs(macs: u64) -> Self {
        FlopCount { macs }
    }

    /// Floating-point operations (2 per MAC).
    pub fn flops(self) -> u64 {
        self.macs * 2
    }

    /// Adds two counts.
    pub fn plus(self, other: FlopCount) -> FlopCount {
        FlopCount { macs: self.macs + other.macs }
    }
}

impl std::ops::Add for FlopCount {
    type Output = FlopCount;
    fn add(self, rhs: FlopCount) -> FlopCount {
        self.plus(rhs)
    }
}

impl std::iter::Sum for FlopCount {
    fn sum<I: Iterator<Item = FlopCount>>(iter: I) -> FlopCount {
        iter.fold(FlopCount::ZERO, FlopCount::plus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::resnet::{ResNetConfig, ResNetLite};

    #[test]
    fn arithmetic() {
        let a = FlopCount::from_macs(10);
        let b = FlopCount::from_macs(5);
        assert_eq!((a + b).macs, 15);
        assert_eq!(a.flops(), 20);
        let total: FlopCount = [a, b, FlopCount::ZERO].into_iter().sum();
        assert_eq!(total.macs, 15);
    }

    #[test]
    fn resnet_macs_grow_with_input_side() {
        let net = ResNetLite::new(ResNetConfig::default());
        let mut prev = 0;
        for side in [20usize, 40, 60, 100, 140] {
            let macs = net.forward_macs(side, side);
            assert!(macs > prev, "MACs must grow with side");
            prev = macs;
        }
    }

    #[test]
    fn resnet_macs_quadratic_in_side() {
        // Doubling the side should roughly quadruple the MACs (fc head and
        // rounding at stride boundaries cause small deviations).
        let net = ResNetLite::new(ResNetConfig::default());
        let r = net.forward_macs(200, 200) as f64 / net.forward_macs(100, 100) as f64;
        assert!((3.5..4.5).contains(&r), "ratio {r}");
    }
}
