//! Binary RBF-kernel SVM trained with SMO.
//!
//! The paper's classical baseline: "the SVM classifier is set with a radial
//! basis function kernel, a regularization parameter of 20, and a kernel
//! coefficient of 10⁻⁵". Training uses the simplified Sequential Minimal
//! Optimization algorithm (Platt) with a precomputed Gram matrix.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SVM hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct SvmConfig {
    /// Regularization parameter C.
    pub c: f64,
    /// RBF kernel coefficient γ in K(x, z) = exp(−γ‖x − z‖²).
    pub gamma: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Number of consecutive non-improving passes before stopping.
    pub max_passes: usize,
    /// RNG seed for the SMO partner choice.
    pub seed: u64,
}

impl Default for SvmConfig {
    /// The paper's hyperparameters: C = 20, γ = 10⁻⁵.
    fn default() -> Self {
        SvmConfig { c: 20.0, gamma: 1e-5, tol: 1e-3, max_passes: 5, seed: 0x5EED }
    }
}

/// A trained binary RBF-SVM. Labels are 0/1 externally, mapped to ±1
/// internally.
#[derive(Clone, Debug)]
pub struct RbfSvm {
    config: SvmConfig,
    support_vectors: Vec<Vec<f64>>,
    /// αᵢ·yᵢ per support vector.
    coefficients: Vec<f64>,
    bias: f64,
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, z)| (x - z).powi(2)).sum();
    (-gamma * d2).exp()
}

impl RbfSvm {
    /// Trains on `data` (binary labels 0/1) with `config`.
    pub fn train(data: &Dataset, config: SvmConfig) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(config.c > 0.0 && config.gamma > 0.0, "C and gamma must be positive");
        let classes = data.classes();
        assert!(classes.iter().all(|&c| c <= 1), "binary SVM expects labels 0/1, got {classes:?}");
        let n = data.len();
        let x = data.features();
        let y: Vec<f64> = data.labels().iter().map(|&l| if l == 1 { 1.0 } else { -1.0 }).collect();

        // Precompute the Gram matrix.
        let gram: Vec<f64> = {
            let mut g = vec![0.0; n * n];
            for i in 0..n {
                for j in i..n {
                    let k = rbf(&x[i], &x[j], config.gamma);
                    g[i * n + j] = k;
                    g[j * n + i] = k;
                }
            }
            g
        };
        let k = |i: usize, j: usize| gram[i * n + j];

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Decision value for training point i.
        let f = |alpha: &[f64], b: f64, i: usize| -> f64 {
            let mut s = b;
            for (j, &a) in alpha.iter().enumerate() {
                if a != 0.0 {
                    s += a * y[j] * k(j, i);
                }
            }
            s
        };

        let mut passes = 0;
        let max_iterations = 200 * n.max(100); // hard safety bound
        let mut iterations = 0;
        while passes < config.max_passes && iterations < max_iterations {
            iterations += 1;
            let mut changed = 0;
            for i in 0..n {
                let e_i = f(&alpha, b, i) - y[i];
                let r = y[i] * e_i;
                if (r < -config.tol && alpha[i] < config.c) || (r > config.tol && alpha[i] > 0.0) {
                    // Pick a random partner j ≠ i.
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    let e_j = f(&alpha, b, j) - y[j];
                    let (a_i_old, a_j_old) = (alpha[i], alpha[j]);

                    let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                        let d = a_j_old - a_i_old;
                        (d.max(0.0), (config.c + d).min(config.c))
                    } else {
                        let s = a_i_old + a_j_old;
                        ((s - config.c).max(0.0), s.min(config.c))
                    };
                    if (hi - lo).abs() < 1e-12 {
                        continue;
                    }
                    let eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
                    a_j = a_j.clamp(lo, hi);
                    if (a_j - a_j_old).abs() < 1e-7 {
                        continue;
                    }
                    let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);

                    let b1 = b
                        - e_i
                        - y[i] * (a_i - a_i_old) * k(i, i)
                        - y[j] * (a_j - a_j_old) * k(i, j);
                    let b2 = b
                        - e_j
                        - y[i] * (a_i - a_i_old) * k(i, j)
                        - y[j] * (a_j - a_j_old) * k(j, j);
                    b = if 0.0 < a_i && a_i < config.c {
                        b1
                    } else if 0.0 < a_j && a_j < config.c {
                        b2
                    } else {
                        0.5 * (b1 + b2)
                    };

                    alpha[i] = a_i;
                    alpha[j] = a_j;
                    changed += 1;
                }
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Retain support vectors only.
        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-9 {
                support_vectors.push(x[i].clone());
                coefficients.push(alpha[i] * y[i]);
            }
        }
        RbfSvm { config, support_vectors, coefficients, bias: b }
    }

    /// Signed decision value for a feature vector (positive → class 1).
    pub fn decision(&self, features: &[f64]) -> f64 {
        let mut s = self.bias;
        for (sv, &coef) in self.support_vectors.iter().zip(&self.coefficients) {
            s += coef * rbf(sv, features, self.config.gamma);
        }
        s
    }

    /// Predicted class label (0 or 1).
    pub fn predict(&self, features: &[f64]) -> usize {
        usize::from(self.decision(features) > 0.0)
    }

    /// Predicts every example of `data`.
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        data.features().iter().map(|f| self.predict(f)).collect()
    }

    /// Number of retained support vectors.
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// Trained bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Hyperparameters the model was trained with.
    pub fn config(&self) -> &SvmConfig {
        &self.config
    }

    /// Multiply-accumulate count of one prediction: one kernel evaluation
    /// per support vector, each costing `dim` MACs (plus the exp).
    pub fn prediction_flops(&self, dim: usize) -> u64 {
        (self.n_support_vectors() as u64) * (dim as u64 * 3 + 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    /// Two Gaussian blobs: around (0,0) labelled 0 and (4,4) labelled 1.
    fn blobs(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for i in 0..2 * n_per_class {
            let label = i % 2;
            let centre = if label == 1 { 4.0 } else { 0.0 };
            let jitter = |rng: &mut StdRng| rng.gen_range(-1.0..1.0);
            d.push(vec![centre + jitter(&mut rng), centre + jitter(&mut rng)], label);
        }
        d
    }

    /// XOR-pattern dataset: only separable with a nonlinear kernel.
    fn xor(n_per_corner: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for i in 0..4 * n_per_corner {
            let corner = i % 4;
            let (cx, cy, label) = match corner {
                0 => (0.0, 0.0, 0),
                1 => (4.0, 4.0, 0),
                2 => (0.0, 4.0, 1),
                _ => (4.0, 0.0, 1),
            };
            let jitter = |rng: &mut StdRng| rng.gen_range(-0.8..0.8);
            d.push(vec![cx + jitter(&mut rng), cy + jitter(&mut rng)], label);
        }
        d
    }

    fn unit_config() -> SvmConfig {
        // Unit-scale synthetic data needs a larger gamma than the paper's
        // 1e-5 (which targets dB-scale mel features).
        SvmConfig { gamma: 0.5, ..SvmConfig::default() }
    }

    #[test]
    fn separable_blobs_reach_full_accuracy() {
        let data = blobs(40, 1);
        let svm = RbfSvm::train(&data, unit_config());
        let acc = accuracy(&svm.predict_all(&data), data.labels());
        assert!(acc >= 0.99, "train accuracy {acc}");
    }

    #[test]
    fn generalizes_to_held_out_blobs() {
        let split = blobs(60, 2).split(0.3, 9);
        let svm = RbfSvm::train(&split.train, unit_config());
        let acc = accuracy(&svm.predict_all(&split.test), split.test.labels());
        assert!(acc >= 0.95, "test accuracy {acc}");
    }

    #[test]
    fn rbf_solves_xor() {
        let data = xor(25, 3);
        let svm = RbfSvm::train(&data, unit_config());
        let acc = accuracy(&svm.predict_all(&data), data.labels());
        assert!(acc >= 0.97, "XOR accuracy {acc}");
    }

    #[test]
    fn decision_sign_matches_prediction() {
        let data = blobs(20, 4);
        let svm = RbfSvm::train(&data, unit_config());
        for f in data.features() {
            assert_eq!(svm.predict(f), usize::from(svm.decision(f) > 0.0));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data = blobs(30, 5);
        let a = RbfSvm::train(&data, unit_config());
        let b = RbfSvm::train(&data, unit_config());
        assert_eq!(a.n_support_vectors(), b.n_support_vectors());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let data = blobs(30, 6);
        let svm = RbfSvm::train(&data, unit_config());
        assert!(svm.n_support_vectors() >= 1);
        assert!(svm.n_support_vectors() <= data.len());
    }

    #[test]
    fn kernel_is_unit_at_zero_distance() {
        assert!((rbf(&[1.0, 2.0], &[1.0, 2.0], 0.3) - 1.0).abs() < 1e-12);
        assert!(rbf(&[0.0], &[10.0], 0.3) < 1e-10);
    }

    #[test]
    fn prediction_flops_scale_with_svs_and_dim() {
        let data = blobs(20, 7);
        let svm = RbfSvm::train(&data, unit_config());
        let f = svm.prediction_flops(128);
        assert_eq!(f, svm.n_support_vectors() as u64 * (128 * 3 + 10));
        assert!(svm.prediction_flops(256) > f);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        let _ = RbfSvm::train(&Dataset::new(), SvmConfig::default());
    }

    #[test]
    #[should_panic(expected = "labels 0/1")]
    fn non_binary_labels_panic() {
        let d = Dataset::from_pairs(vec![vec![0.0], vec![1.0]], vec![0, 2]);
        let _ = RbfSvm::train(&d, SvmConfig::default());
    }

    #[test]
    fn paper_default_config() {
        let c = SvmConfig::default();
        assert_eq!(c.c, 20.0);
        assert_eq!(c.gamma, 1e-5);
    }

    /// KKT optimality spot-check: at an SMO optimum, margin support
    /// vectors (0 < α < C) sit on the margin (y·f(x) ≈ 1) and
    /// non-support points satisfy y·f(x) ≥ 1. The simplified SMO stops at
    /// tolerance `tol`, so the bounds are checked loosely.
    #[test]
    fn kkt_conditions_hold_at_convergence() {
        let data = blobs(40, 8);
        let config = SvmConfig { tol: 1e-4, max_passes: 20, ..unit_config() };
        let svm = RbfSvm::train(&data, config);
        let slack = 0.05;
        let mut margin_vectors = 0;
        for (f, &label) in data.features().iter().zip(data.labels()) {
            let y = if label == 1 { 1.0 } else { -1.0 };
            let yf = y * svm.decision(f);
            // Every training point at an optimum has y·f ≥ 1 unless its α
            // is at the C bound; with well-separated blobs no α should be
            // bound-saturated, so the inequality must hold throughout.
            assert!(yf >= 1.0 - slack || yf > 0.0, "KKT violated: y·f = {yf}");
            if (yf - 1.0).abs() < slack {
                margin_vectors += 1;
            }
        }
        // At least one margin support vector defines the boundary.
        assert!(margin_vectors >= 1, "no margin support vectors found");
        // And the model keeps far fewer SVs than training points on
        // separable data.
        assert!(svm.n_support_vectors() < data.len());
    }
}
