//! Cross-validation and hyperparameter grid search.
//!
//! The paper fixes the SVM at C = 20, γ = 10⁻⁵ "reproducing
//! state-of-the-art performances". This module provides the machinery to
//! *find* such settings: stratification-free k-fold cross-validation and a
//! parallel grid search over (C, γ), used by the model-selection example
//! and the SVM ablation.

use crate::dataset::Dataset;
use crate::metrics::accuracy;
use crate::svm::{RbfSvm, SvmConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Deterministically partitions `n` indices into `k` folds of near-equal
/// size (sizes differ by at most one).
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least two folds");
    assert!(n >= k, "need at least one example per fold");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = vec![Vec::with_capacity(n / k + 1); k];
    for (i, id) in idx.into_iter().enumerate() {
        folds[i % k].push(id);
    }
    folds
}

/// Mean held-out accuracy of an SVM configuration under k-fold CV.
pub fn cross_validate_svm(data: &Dataset, config: SvmConfig, k: usize, seed: u64) -> f64 {
    let folds = kfold_indices(data.len(), k, seed);
    let mut total = 0.0;
    for held_out in &folds {
        let test_set: std::collections::HashSet<usize> = held_out.iter().copied().collect();
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for i in 0..data.len() {
            let (f, l) = (data.features()[i].clone(), data.labels()[i]);
            if test_set.contains(&i) {
                test.push(f, l);
            } else {
                train.push(f, l);
            }
        }
        let model = RbfSvm::train(&train, config);
        total += accuracy(&model.predict_all(&test), test.labels());
    }
    total / k as f64
}

/// One grid-search result.
#[derive(Clone, Copy, Debug)]
pub struct GridPoint {
    /// Regularization parameter evaluated.
    pub c: f64,
    /// Kernel coefficient evaluated.
    pub gamma: f64,
    /// Mean k-fold accuracy.
    pub cv_accuracy: f64,
}

/// Parallel grid search over (C, γ); returns all points sorted by
/// descending accuracy (ties broken toward smaller C — weaker
/// regularization pressure — then smaller γ).
pub fn grid_search_svm(
    data: &Dataset,
    cs: &[f64],
    gammas: &[f64],
    k: usize,
    seed: u64,
) -> Vec<GridPoint> {
    assert!(!cs.is_empty() && !gammas.is_empty(), "grid must be non-empty");
    let grid: Vec<(f64, f64)> =
        cs.iter().flat_map(|&c| gammas.iter().map(move |&g| (c, g))).collect();
    let mut points: Vec<GridPoint> = grid
        .par_iter()
        .map(|&(c, gamma)| {
            let config = SvmConfig { c, gamma, ..SvmConfig::default() };
            GridPoint { c, gamma, cv_accuracy: cross_validate_svm(data, config, k, seed) }
        })
        .collect();
    points.sort_by(|a, b| {
        b.cv_accuracy
            .partial_cmp(&a.cv_accuracy)
            .unwrap()
            .then(a.c.partial_cmp(&b.c).unwrap())
            .then(a.gamma.partial_cmp(&b.gamma).unwrap())
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs(n_per_class: usize, separation: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for i in 0..2 * n_per_class {
            let label = i % 2;
            let centre = if label == 1 { separation } else { 0.0 };
            d.push(
                vec![centre + rng.gen_range(-1.0..1.0), centre + rng.gen_range(-1.0..1.0)],
                label,
            );
        }
        d
    }

    #[test]
    fn folds_partition_everything() {
        let folds = kfold_indices(23, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // Sizes within one of each other.
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn folds_are_seeded() {
        assert_eq!(kfold_indices(20, 4, 7), kfold_indices(20, 4, 7));
        assert_ne!(kfold_indices(20, 4, 7), kfold_indices(20, 4, 8));
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn one_fold_panics() {
        let _ = kfold_indices(10, 1, 0);
    }

    #[test]
    fn cv_accuracy_high_on_separable_data() {
        let data = blobs(30, 5.0, 2);
        let config = SvmConfig { gamma: 0.5, ..SvmConfig::default() };
        let acc = cross_validate_svm(&data, config, 4, 3);
        assert!(acc >= 0.95, "cv accuracy {acc}");
    }

    #[test]
    fn cv_accuracy_low_on_overlapping_data() {
        let data = blobs(30, 0.2, 2);
        let config = SvmConfig { gamma: 0.5, ..SvmConfig::default() };
        let acc = cross_validate_svm(&data, config, 4, 3);
        assert!(acc < 0.8, "overlapping blobs should not be separable: {acc}");
    }

    #[test]
    fn grid_search_prefers_sane_gamma() {
        let data = blobs(25, 4.0, 4);
        let points = grid_search_svm(&data, &[1.0, 20.0], &[1e-6, 0.5], 3, 5);
        assert_eq!(points.len(), 4);
        let best = points[0];
        // γ = 1e-6 on unit-scale data makes the kernel ≈1 everywhere; the
        // 0.5 settings must win.
        assert_eq!(best.gamma, 0.5, "best config {best:?}");
        assert!(best.cv_accuracy >= 0.9);
        // Sorted by descending accuracy.
        for pair in points.windows(2) {
            assert!(pair[0].cv_accuracy >= pair[1].cv_accuracy);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        let data = blobs(5, 4.0, 1);
        let _ = grid_search_svm(&data, &[], &[0.1], 2, 0);
    }
}
