//! Activation, pooling, dense and loss layers.

use crate::init::he_normal;
use crate::tensor::FeatureMap;
use rand::Rng;

/// Element-wise ReLU.
pub fn relu(x: &FeatureMap) -> FeatureMap {
    let (c, h, w) = x.shape();
    FeatureMap::from_vec(c, h, w, x.data().iter().map(|&v| v.max(0.0)).collect())
}

/// Backward of ReLU given the *output* `y = relu(x)` and the gradient with
/// respect to `y`. (Using the output works because `y > 0 ⇔ x > 0`.)
pub fn relu_backward(y: &FeatureMap, gout: &FeatureMap) -> FeatureMap {
    assert_eq!(y.shape(), gout.shape(), "shape mismatch in relu backward");
    let (c, h, w) = y.shape();
    let data =
        y.data().iter().zip(gout.data()).map(|(&yv, &g)| if yv > 0.0 { g } else { 0.0 }).collect();
    FeatureMap::from_vec(c, h, w, data)
}

/// 2×2 max pooling with stride 2 (odd trailing rows/columns are dropped).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxPool2;

impl MaxPool2 {
    /// Forward pass; returns the pooled map and the flat argmax index (into
    /// the input) per output element, needed by the backward pass.
    pub fn forward(&self, x: &FeatureMap) -> (FeatureMap, Vec<usize>) {
        let (c, h, w) = x.shape();
        let (oh, ow) = (h / 2, w / 2);
        assert!(oh > 0 && ow > 0, "input too small for 2x2 pooling");
        let mut out = FeatureMap::zeros(c, oh, ow);
        let mut argmax = vec![0usize; c * oh * ow];
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (iy, ix) = (oy * 2 + dy, ox * 2 + dx);
                            let v = x.get(ci, iy, ix);
                            if v > best {
                                best = v;
                                best_idx = (ci * h + iy) * w + ix;
                            }
                        }
                    }
                    out.set(ci, oy, ox, best);
                    argmax[(ci * oh + oy) * ow + ox] = best_idx;
                }
            }
        }
        (out, argmax)
    }

    /// Backward pass: scatters `gout` to the argmax positions.
    pub fn backward(
        &self,
        input_shape: (usize, usize, usize),
        argmax: &[usize],
        gout: &FeatureMap,
    ) -> FeatureMap {
        let (c, h, w) = input_shape;
        let mut gin = FeatureMap::zeros(c, h, w);
        assert_eq!(argmax.len(), gout.len(), "argmax/gout length mismatch");
        for (i, &g) in gout.data().iter().enumerate() {
            gin.data_mut()[argmax[i]] += g;
        }
        gin
    }
}

/// Global average pooling: one value per channel.
pub fn global_avg_pool(x: &FeatureMap) -> Vec<f64> {
    x.channel_means()
}

/// Backward of global average pooling.
pub fn global_avg_pool_backward(input_shape: (usize, usize, usize), gout: &[f64]) -> FeatureMap {
    let (c, h, w) = input_shape;
    assert_eq!(gout.len(), c, "gradient length must equal channel count");
    let mut gin = FeatureMap::zeros(c, h, w);
    let scale = 1.0 / (h * w) as f64;
    let plane = h * w;
    for (ci, &go) in gout.iter().enumerate() {
        let g = go * scale;
        for v in &mut gin.data_mut()[ci * plane..(ci + 1) * plane] {
            *v = g;
        }
    }
    gin
}

/// A fully connected layer on flat vectors.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Weights, laid out `[out][in]`.
    pub weights: Vec<f64>,
    /// Per-output bias.
    pub bias: Vec<f64>,
}

impl Dense {
    /// Creates a layer with He-normal weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dense dimensions must be positive");
        let weights = (0..in_dim * out_dim).map(|_| he_normal(in_dim, rng)).collect();
        Dense { in_dim, out_dim, weights, bias: vec![0.0; out_dim] }
    }

    /// Forward pass: `y = Wx + b`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "dense input dimension mismatch");
        (0..self.out_dim)
            .map(|o| {
                let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
                self.bias[o] + row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
            })
            .collect()
    }

    /// Backward pass; accumulates parameter gradients, returns input grad.
    pub fn backward(&self, x: &[f64], gout: &[f64], gw: &mut [f64], gb: &mut [f64]) -> Vec<f64> {
        assert_eq!(gout.len(), self.out_dim, "gout dimension mismatch");
        assert_eq!(gw.len(), self.weights.len(), "gw length mismatch");
        assert_eq!(gb.len(), self.out_dim, "gb length mismatch");
        let mut gin = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            let g = gout[o];
            gb[o] += g;
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut gw[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * x[i];
                gin[i] += g * row[i];
            }
        }
        gin
    }

    /// SGD step.
    pub fn apply_gradients(&mut self, gw: &[f64], gb: &[f64], lr: f64) {
        for (w, g) in self.weights.iter_mut().zip(gw) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(gb) {
            *b -= lr * g;
        }
    }

    /// Multiply-accumulate count of one forward pass.
    pub fn forward_macs(&self) -> u64 {
        (self.in_dim * self.out_dim) as u64
    }
}

/// Softmax cross-entropy: returns `(loss, gradient w.r.t. logits)` for a
/// single example with ground-truth class `label`.
pub fn softmax_cross_entropy(logits: &[f64], label: usize) -> (f64, Vec<f64>) {
    assert!(label < logits.len(), "label out of range");
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    let probs: Vec<f64> = exps.iter().map(|e| e / sum).collect();
    let loss = -probs[label].max(1e-300).ln();
    let grad =
        probs.iter().enumerate().map(|(i, &p)| if i == label { p - 1.0 } else { p }).collect();
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn relu_clamps_negatives() {
        let x = FeatureMap::from_vec(1, 1, 4, vec![-2.0, -0.5, 0.0, 3.0]);
        let y = relu(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let x = FeatureMap::from_vec(1, 1, 4, vec![-2.0, -0.5, 0.0, 3.0]);
        let y = relu(&x);
        let g = FeatureMap::from_vec(1, 1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let gin = relu_backward(&y, &g);
        assert_eq!(gin.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_picks_maxima() {
        let x = FeatureMap::from_vec(1, 4, 4, (0..16).map(|i| i as f64).collect());
        let (y, argmax) = MaxPool2.forward(&x);
        assert_eq!(y.shape(), (1, 2, 2));
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let x = FeatureMap::zeros(1, 5, 5);
        let (y, _) = MaxPool2.forward(&x);
        assert_eq!(y.shape(), (1, 2, 2));
    }

    #[test]
    fn maxpool_backward_scatters() {
        let x = FeatureMap::from_vec(1, 2, 2, vec![1.0, 9.0, 3.0, 2.0]);
        let (_, argmax) = MaxPool2.forward(&x);
        let gout = FeatureMap::from_vec(1, 1, 1, vec![5.0]);
        let gin = MaxPool2.backward((1, 2, 2), &argmax, &gout);
        assert_eq!(gin.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn gap_and_backward() {
        let x = FeatureMap::from_vec(2, 1, 2, vec![1.0, 3.0, 10.0, 30.0]);
        let y = global_avg_pool(&x);
        assert_eq!(y, vec![2.0, 20.0]);
        let gin = global_avg_pool_backward((2, 1, 2), &[4.0, 8.0]);
        assert_eq!(gin.data(), &[2.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn dense_forward_matches_manual() {
        let d = Dense {
            in_dim: 2,
            out_dim: 2,
            weights: vec![1.0, 2.0, 3.0, 4.0],
            bias: vec![0.5, -0.5],
        };
        let y = d.forward(&[10.0, 20.0]);
        assert_eq!(y, vec![50.5, 109.5]);
        assert_eq!(d.forward_macs(), 4);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // indices perturb the layer and index grads
    fn dense_gradient_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = Dense::new(5, 3, &mut rng);
        let x: Vec<f64> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let coeffs: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let loss = |d: &Dense, x: &[f64]| {
            d.forward(x).iter().zip(&coeffs).map(|(y, c)| y * c).sum::<f64>()
        };

        let mut gw = vec![0.0; 15];
        let mut gb = vec![0.0; 3];
        let gin = d.backward(&x, &coeffs, &mut gw, &mut gb);

        let eps = 1e-6;
        for widx in 0..15 {
            let orig = d.weights[widx];
            d.weights[widx] = orig + eps;
            let up = loss(&d, &x);
            d.weights[widx] = orig - eps;
            let down = loss(&d, &x);
            d.weights[widx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - gw[widx]).abs() < 1e-6 * (1.0 + numeric.abs()));
        }
        let mut x2 = x.clone();
        for i in 0..5 {
            let orig = x2[i];
            x2[i] = orig + eps;
            let up = loss(&d, &x2);
            x2[i] = orig - eps;
            let down = loss(&d, &x2);
            x2[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - gin[i]).abs() < 1e-6 * (1.0 + numeric.abs()));
        }
        assert_eq!(gb, coeffs);
    }

    #[test]
    fn softmax_ce_probabilities_and_loss() {
        let (loss, grad) = softmax_cross_entropy(&[0.0, 0.0], 0);
        assert!((loss - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((grad[0] + 0.5).abs() < 1e-12);
        assert!((grad[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softmax_ce_confident_correct_has_low_loss() {
        let (loss, grad) = softmax_cross_entropy(&[10.0, -10.0], 0);
        assert!(loss < 1e-6);
        assert!(grad[0].abs() < 1e-6);
    }

    #[test]
    fn softmax_ce_gradient_sums_to_zero() {
        let (_, grad) = softmax_cross_entropy(&[1.0, 2.0, 3.0], 1);
        assert!(grad.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn softmax_ce_is_shift_invariant() {
        let (l1, g1) = softmax_cross_entropy(&[1.0, 2.0], 1);
        let (l2, g2) = softmax_cross_entropy(&[101.0, 102.0], 1);
        assert!((l1 - l2).abs() < 1e-9);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        softmax_cross_entropy(&[0.0, 0.0], 2);
    }
}
