//! 2-D convolution with explicit forward and backward passes.
//!
//! The hot path lowers convolution to matrix multiplication: `im2col`
//! unrolls every receptive field into a column of a `fan_in × (oh·ow)`
//! patch matrix, and a cache-blocked GEMM multiplies the `out_c × fan_in`
//! weight matrix against it. The naive 6-deep loops are retained as
//! [`Conv2d::forward_direct`]/[`Conv2d::backward_direct`] — they are the
//! oracle the fast path is parity-tested against (both accumulate taps in
//! the same ascending `(ic, ky, kx)` order, so the forward pass is
//! bit-identical).

use crate::init::he_normal;
use crate::tensor::FeatureMap;
use rand::Rng;

/// K-dimension panel width of the blocked GEMM: 48 f64 weight/patch rows
/// (~0.4 KB of weights per panel) keeps the active patch-matrix panel
/// resident in L1 while streaming output rows.
const GEMM_KB: usize = 48;

/// Reusable im2col buffer for the f32 forward path. Holding one of these
/// across calls keeps the patch matrix's capacity warm, so steady-state
/// forward passes stop reallocating `cols` per layer.
#[derive(Clone, Debug, Default)]
pub struct ConvScratch {
    cols: Vec<f64>,
}

/// A 2-D convolution layer with square kernels, zero padding and bias.
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Input channel count.
    pub in_c: usize,
    /// Output channel count.
    pub out_c: usize,
    /// Kernel side length.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on every side.
    pub pad: usize,
    /// Weights, laid out `[out_c][in_c][ky][kx]`.
    pub weights: Vec<f64>,
    /// Per-output-channel bias.
    pub bias: Vec<f64>,
}

impl Conv2d {
    /// Creates a layer with He-normal initialized weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_c > 0 && out_c > 0 && k > 0 && stride > 0, "conv dimensions must be positive");
        let fan_in = in_c * k * k;
        let weights = (0..out_c * fan_in).map(|_| he_normal(fan_in, rng)).collect();
        Conv2d { in_c, out_c, k, stride, pad, weights, bias: vec![0.0; out_c] }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h + 2 * self.pad >= self.k && w + 2 * self.pad >= self.k,
            "input {h}x{w} too small for kernel {} with padding {}",
            self.k,
            self.pad
        );
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }

    /// Number of trainable weights.
    pub fn n_weights(&self) -> usize {
        self.out_c * self.in_c * self.k * self.k
    }

    /// Multiply-accumulate count of one forward pass on an `(h, w)` input.
    pub fn forward_macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.output_size(h, w);
        (self.out_c * oh * ow) as u64 * (self.in_c * self.k * self.k) as u64
    }

    #[inline]
    fn w_at(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> f64 {
        self.weights[((oc * self.in_c + ic) * self.k + ky) * self.k + kx]
    }

    /// Unrolls `x` into the `fan_in × (oh·ow)` patch matrix: row
    /// `f = (ic·k + ky)·k + kx` holds, per output position, the input sample
    /// under kernel tap `(ic, ky, kx)` (zero where the tap falls in padding).
    fn im2col(&self, x: &FeatureMap, oh: usize, ow: usize, cols: &mut Vec<f64>) {
        let (h, w) = (x.height(), x.width());
        let n_patch = oh * ow;
        cols.clear();
        cols.resize(self.in_c * self.k * self.k * n_patch, 0.0);
        for ic in 0..self.in_c {
            let chan = x.channel(ic);
            for ky in 0..self.k {
                let off_y = ky as isize - self.pad as isize;
                for kx in 0..self.k {
                    let off_x = kx as isize - self.pad as isize;
                    let f = (ic * self.k + ky) * self.k + kx;
                    let row = &mut cols[f * n_patch..(f + 1) * n_patch];
                    // ox values with ix = ox·stride + off_x inside [0, w).
                    let ox_lo =
                        if off_x >= 0 { 0 } else { ((-off_x) as usize).div_ceil(self.stride) };
                    let ox_hi = if (w as isize) <= off_x {
                        0
                    } else {
                        (((w as isize - 1 - off_x) as usize) / self.stride + 1).min(ow)
                    };
                    if ox_lo >= ox_hi {
                        continue;
                    }
                    for oy in 0..oh {
                        let iy = oy as isize * self.stride as isize + off_y;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let src = &chan[iy as usize * w..(iy as usize + 1) * w];
                        let dst = &mut row[oy * ow..(oy + 1) * ow];
                        if self.stride == 1 {
                            let ix0 = (ox_lo as isize + off_x) as usize;
                            dst[ox_lo..ox_hi].copy_from_slice(&src[ix0..ix0 + (ox_hi - ox_lo)]);
                        } else {
                            for (ox, d) in dst[..ox_hi].iter_mut().enumerate().skip(ox_lo) {
                                *d = src[(ox as isize * self.stride as isize + off_x) as usize];
                            }
                        }
                    }
                }
            }
        }
    }

    /// Blocked GEMM epilogue of the forward pass:
    /// `out[oc][p] = bias[oc] + Σ_f weights[oc][f] · cols[f][p]`.
    ///
    /// The K (`fan_in`) dimension is processed in [`GEMM_KB`]-wide panels
    /// with an i-k-j loop order, so the inner loop is a contiguous axpy over
    /// patch columns. Each output element still accumulates taps in
    /// ascending-`f` order — the same order as the direct loops, which keeps
    /// the two paths bit-identical.
    fn gemm_bias(&self, cols: &[f64], n_patch: usize, out: &mut [f64]) {
        let fan_in = self.in_c * self.k * self.k;
        for (orow, &b) in out.chunks_exact_mut(n_patch).zip(&self.bias) {
            orow.fill(b);
        }
        let mut f0 = 0;
        while f0 < fan_in {
            let f1 = (f0 + GEMM_KB).min(fan_in);
            for oc in 0..self.out_c {
                let orow = &mut out[oc * n_patch..(oc + 1) * n_patch];
                for f in f0..f1 {
                    let wv = self.weights[oc * fan_in + f];
                    let crow = &cols[f * n_patch..(f + 1) * n_patch];
                    for (o, &c) in orow.iter_mut().zip(crow) {
                        *o += wv * c;
                    }
                }
            }
            f0 = f1;
        }
    }

    /// Scatters patch-matrix gradients back onto the input grid — the
    /// adjoint of [`Conv2d::im2col`].
    fn col2im_accumulate(&self, gcols: &[f64], oh: usize, ow: usize, gin: &mut FeatureMap) {
        let (h, w) = (gin.height(), gin.width());
        let n_patch = oh * ow;
        let gin_data = gin.data_mut();
        for ic in 0..self.in_c {
            let chan = &mut gin_data[ic * h * w..(ic + 1) * h * w];
            for ky in 0..self.k {
                let off_y = ky as isize - self.pad as isize;
                for kx in 0..self.k {
                    let off_x = kx as isize - self.pad as isize;
                    let f = (ic * self.k + ky) * self.k + kx;
                    let row = &gcols[f * n_patch..(f + 1) * n_patch];
                    let ox_lo =
                        if off_x >= 0 { 0 } else { ((-off_x) as usize).div_ceil(self.stride) };
                    let ox_hi = if (w as isize) <= off_x {
                        0
                    } else {
                        (((w as isize - 1 - off_x) as usize) / self.stride + 1).min(ow)
                    };
                    if ox_lo >= ox_hi {
                        continue;
                    }
                    for oy in 0..oh {
                        let iy = oy as isize * self.stride as isize + off_y;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst = &mut chan[iy as usize * w..(iy as usize + 1) * w];
                        let src = &row[oy * ow..(oy + 1) * ow];
                        for (ox, &g) in src[..ox_hi].iter().enumerate().skip(ox_lo) {
                            dst[(ox as isize * self.stride as isize + off_x) as usize] += g;
                        }
                    }
                }
            }
        }
    }

    /// Forward pass (im2col + blocked GEMM; bit-identical to
    /// [`Conv2d::forward_direct`]).
    pub fn forward(&self, x: &FeatureMap) -> FeatureMap {
        self.forward_with_scratch(x, &mut ConvScratch::default())
    }

    /// Forward pass reusing a caller-held [`ConvScratch`] for the patch
    /// matrix. Numerically identical to [`Conv2d::forward`] — the scratch
    /// only changes where the `fan_in × (oh·ow)` buffer lives, so warm
    /// calls with stable geometry allocate nothing for `cols`.
    pub fn forward_with_scratch(&self, x: &FeatureMap, scratch: &mut ConvScratch) -> FeatureMap {
        assert_eq!(x.channels(), self.in_c, "input channel mismatch");
        let (h, w) = (x.height(), x.width());
        let (oh, ow) = self.output_size(h, w);
        self.im2col(x, oh, ow, &mut scratch.cols);
        let mut out = FeatureMap::zeros(self.out_c, oh, ow);
        self.gemm_bias(&scratch.cols, oh * ow, out.data_mut());
        out
    }

    /// Reference forward pass: the naive 6-deep loop, kept as the oracle
    /// for the GEMM path's parity tests.
    pub fn forward_direct(&self, x: &FeatureMap) -> FeatureMap {
        assert_eq!(x.channels(), self.in_c, "input channel mismatch");
        let (h, w) = (x.height(), x.width());
        let (oh, ow) = self.output_size(h, w);
        let mut out = FeatureMap::zeros(self.out_c, oh, ow);
        for oc in 0..self.out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[oc];
                    for ic in 0..self.in_c {
                        for ky in 0..self.k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc +=
                                    self.w_at(oc, ic, ky, kx) * x.get(ic, iy as usize, ix as usize);
                            }
                        }
                    }
                    out.set(oc, oy, ox, acc);
                }
            }
        }
        out
    }

    /// Backward pass: given the layer input `x` and the loss gradient with
    /// respect to the output `gout`, accumulates weight/bias gradients into
    /// `gw`/`gb` and returns the gradient with respect to the input.
    ///
    /// Expressed as GEMMs over the same patch matrix as the forward pass:
    /// `gb` is the row sums of `gout`, `gw += gout · colsᵀ`, and the input
    /// gradient is scattered back onto the input grid (the adjoint of the
    /// patch unroll) from `gcols = Wᵀ · gout`. Parity-tested against
    /// [`Conv2d::backward_direct`] to ≤1e-9.
    pub fn backward(
        &self,
        x: &FeatureMap,
        gout: &FeatureMap,
        gw: &mut [f64],
        gb: &mut [f64],
    ) -> FeatureMap {
        assert_eq!(gw.len(), self.n_weights(), "gw length mismatch");
        assert_eq!(gb.len(), self.out_c, "gb length mismatch");
        assert_eq!(x.channels(), self.in_c, "input channel mismatch");
        let (h, w) = (x.height(), x.width());
        let (oh, ow) = self.output_size(h, w);
        assert_eq!(gout.shape(), (self.out_c, oh, ow), "gout shape mismatch");

        let n_patch = oh * ow;
        let fan_in = self.in_c * self.k * self.k;
        let mut cols = Vec::new();
        self.im2col(x, oh, ow, &mut cols);
        let g = gout.data();

        // gb[oc] += Σ_p gout[oc][p]; gw[oc][f] += Σ_p gout[oc][p]·cols[f][p].
        for oc in 0..self.out_c {
            let grow = &g[oc * n_patch..(oc + 1) * n_patch];
            gb[oc] += grow.iter().sum::<f64>();
            let gwrow = &mut gw[oc * fan_in..(oc + 1) * fan_in];
            for (gwf, crow) in gwrow.iter_mut().zip(cols.chunks_exact(n_patch)) {
                *gwf += grow.iter().zip(crow).map(|(&gv, &c)| gv * c).sum::<f64>();
            }
        }

        // gcols = Wᵀ · gout, then scatter back onto the input grid.
        let mut gcols = vec![0.0; fan_in * n_patch];
        for oc in 0..self.out_c {
            let grow = &g[oc * n_patch..(oc + 1) * n_patch];
            let wrow = &self.weights[oc * fan_in..(oc + 1) * fan_in];
            for (&wv, gcrow) in wrow.iter().zip(gcols.chunks_exact_mut(n_patch)) {
                for (gc, &gv) in gcrow.iter_mut().zip(grow) {
                    *gc += wv * gv;
                }
            }
        }
        let mut gin = FeatureMap::zeros(self.in_c, h, w);
        self.col2im_accumulate(&gcols, oh, ow, &mut gin);
        gin
    }

    /// Reference backward pass: the naive loop mirror of
    /// [`Conv2d::forward_direct`], kept as the parity oracle.
    #[allow(clippy::needless_range_loop)] // oc indexes gout, gb and the kernel together
    pub fn backward_direct(
        &self,
        x: &FeatureMap,
        gout: &FeatureMap,
        gw: &mut [f64],
        gb: &mut [f64],
    ) -> FeatureMap {
        assert_eq!(gw.len(), self.n_weights(), "gw length mismatch");
        assert_eq!(gb.len(), self.out_c, "gb length mismatch");
        assert_eq!(x.channels(), self.in_c, "input channel mismatch");
        let (h, w) = (x.height(), x.width());
        let (oh, ow) = self.output_size(h, w);
        assert_eq!(gout.shape(), (self.out_c, oh, ow), "gout shape mismatch");

        let mut gin = FeatureMap::zeros(self.in_c, h, w);
        for oc in 0..self.out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gout.get(oc, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    gb[oc] += g;
                    for ic in 0..self.in_c {
                        for ky in 0..self.k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let widx = ((oc * self.in_c + ic) * self.k + ky) * self.k + kx;
                                gw[widx] += g * x.get(ic, iy as usize, ix as usize);
                                gin.add_at(ic, iy as usize, ix as usize, g * self.weights[widx]);
                            }
                        }
                    }
                }
            }
        }
        gin
    }

    /// Applies an SGD step: `w -= lr * gw`, `b -= lr * gb`.
    pub fn apply_gradients(&mut self, gw: &[f64], gb: &[f64], lr: f64) {
        assert_eq!(gw.len(), self.weights.len(), "gw length mismatch");
        assert_eq!(gb.len(), self.bias.len(), "gb length mismatch");
        for (w, g) in self.weights.iter_mut().zip(gw) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(gb) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity_kernel_conv() -> Conv2d {
        // 1→1 channel 3×3 kernel that copies the centre pixel.
        let mut weights = vec![0.0; 9];
        weights[4] = 1.0;
        Conv2d { in_c: 1, out_c: 1, k: 3, stride: 1, pad: 1, weights, bias: vec![0.0] }
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let conv = identity_kernel_conv();
        let x = FeatureMap::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn output_size_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(1, 4, 3, 2, 1, &mut rng);
        assert_eq!(conv.output_size(8, 8), (4, 4));
        assert_eq!(conv.output_size(7, 9), (4, 5));
        let valid = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        assert_eq!(valid.output_size(5, 5), (3, 3));
    }

    #[test]
    fn bias_shifts_output() {
        let mut conv = identity_kernel_conv();
        conv.bias[0] = 10.0;
        let x = FeatureMap::from_vec(1, 1, 2, vec![1.0, 2.0]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), &[11.0, 12.0]);
    }

    #[test]
    fn sum_kernel_counts_neighbours() {
        // All-ones 3×3 kernel on all-ones input: interior pixels see 9,
        // corners see 4 (with zero padding).
        let conv = Conv2d {
            in_c: 1,
            out_c: 1,
            k: 3,
            stride: 1,
            pad: 1,
            weights: vec![1.0; 9],
            bias: vec![0.0],
        };
        let x = FeatureMap::from_vec(1, 3, 3, vec![1.0; 9]);
        let y = conv.forward(&x);
        assert_eq!(y.get(0, 1, 1), 9.0);
        assert_eq!(y.get(0, 0, 0), 4.0);
        assert_eq!(y.get(0, 0, 1), 6.0);
    }

    #[test]
    fn stride_two_downsamples() {
        let conv = identity_kernel_conv();
        let strided = Conv2d { stride: 2, ..conv };
        let x = FeatureMap::from_vec(1, 4, 4, (0..16).map(|i| i as f64).collect());
        let y = strided.forward(&x);
        assert_eq!(y.shape(), (1, 2, 2));
        // Centre taps at (0,0), (0,2), (2,0), (2,2).
        assert_eq!(y.data(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn forward_macs_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        // 8 out channels × 10×10 outputs × 3·3·3 taps.
        assert_eq!(conv.forward_macs(10, 10), 8 * 100 * 27);
        assert_eq!(conv.n_weights(), 8 * 3 * 9);
    }

    /// Finite-difference gradient check on a small random layer.
    #[test]
    #[allow(clippy::needless_range_loop)] // indices perturb the layer and index grads
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut rng);
        let x = {
            let data: Vec<f64> = (0..2 * 5 * 5).map(|_| rng.gen_range(-1.0..1.0)).collect();
            FeatureMap::from_vec(2, 5, 5, data)
        };
        // Loss = sum of outputs weighted by fixed random coefficients.
        let (oh, ow) = conv.output_size(5, 5);
        let coeffs: Vec<f64> = (0..3 * oh * ow).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let loss = |conv: &Conv2d, x: &FeatureMap| -> f64 {
            conv.forward(x).data().iter().zip(&coeffs).map(|(y, c)| y * c).sum()
        };

        let gout = FeatureMap::from_vec(3, oh, ow, coeffs.clone());
        let mut gw = vec![0.0; conv.n_weights()];
        let mut gb = vec![0.0; conv.out_c];
        let gin = conv.backward(&x, &gout, &mut gw, &mut gb);

        let eps = 1e-5;
        // Check a sample of weight gradients.
        for widx in [0usize, 7, 23, conv.n_weights() - 1] {
            let orig = conv.weights[widx];
            conv.weights[widx] = orig + eps;
            let up = loss(&conv, &x);
            conv.weights[widx] = orig - eps;
            let down = loss(&conv, &x);
            conv.weights[widx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - gw[widx]).abs() < 1e-6 * (1.0 + numeric.abs()),
                "weight {widx}: numeric {numeric}, analytic {}",
                gw[widx]
            );
        }
        // Bias gradients.
        for bidx in 0..conv.out_c {
            let orig = conv.bias[bidx];
            conv.bias[bidx] = orig + eps;
            let up = loss(&conv, &x);
            conv.bias[bidx] = orig - eps;
            let down = loss(&conv, &x);
            conv.bias[bidx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - gb[bidx]).abs() < 1e-6 * (1.0 + numeric.abs()));
        }
        // Input gradients.
        let mut x_mut = x.clone();
        for idx in [0usize, 13, 31, 49] {
            let orig = x_mut.data()[idx];
            x_mut.data_mut()[idx] = orig + eps;
            let up = loss(&conv, &x_mut);
            x_mut.data_mut()[idx] = orig - eps;
            let down = loss(&conv, &x_mut);
            x_mut.data_mut()[idx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - gin.data()[idx]).abs() < 1e-6 * (1.0 + numeric.abs()),
                "input {idx}: numeric {numeric}, analytic {}",
                gin.data()[idx]
            );
        }
    }

    #[test]
    fn apply_gradients_moves_weights() {
        let mut conv = identity_kernel_conv();
        let gw = vec![1.0; 9];
        let gb = vec![2.0];
        conv.apply_gradients(&gw, &gb, 0.1);
        assert!((conv.weights[4] - 0.9).abs() < 1e-12);
        assert!((conv.weights[0] + 0.1).abs() < 1e-12);
        assert!((conv.bias[0] + 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_input_channels_panic() {
        let conv = identity_kernel_conv();
        let x = FeatureMap::zeros(2, 4, 4);
        conv.forward(&x);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_small_input_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(1, 1, 5, 1, 0, &mut rng);
        conv.output_size(3, 3);
    }

    fn random_case(
        (in_c, out_c, k, stride, pad, h, w): (usize, usize, usize, usize, usize, usize, usize),
        seed: u64,
    ) -> (Conv2d, FeatureMap) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(in_c, out_c, k, stride, pad, &mut rng);
        for b in conv.bias.iter_mut() {
            *b = rng.gen_range(-0.5..0.5);
        }
        let data: Vec<f64> = (0..in_c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (conv, FeatureMap::from_vec(in_c, h, w, data))
    }

    /// Geometry grid shared by the GEMM-vs-direct parity tests; the last
    /// rows exercise pad ≥ k (every tap out of bounds for corner outputs).
    const PARITY_CASES: &[(usize, usize, usize, usize, usize, usize, usize)] = &[
        // (in_c, out_c, k, stride, pad, h, w)
        (1, 1, 1, 1, 0, 5, 5),
        (1, 4, 3, 1, 1, 8, 8),
        (3, 8, 3, 2, 1, 9, 7),
        (2, 3, 5, 1, 2, 6, 11),
        (4, 2, 3, 3, 0, 10, 10),
        (2, 2, 3, 1, 3, 4, 4), // pad == k
        (1, 2, 3, 2, 4, 3, 5), // pad > k
        (3, 1, 1, 1, 2, 2, 2), // 1×1 kernel, pad > k
    ];

    #[test]
    fn gemm_forward_matches_direct_oracle() {
        for (i, &(in_c, out_c, k, stride, pad, h, w)) in PARITY_CASES.iter().enumerate() {
            let (conv, x) = random_case((in_c, out_c, k, stride, pad, h, w), 100 + i as u64);
            let fast = conv.forward(&x);
            let direct = conv.forward_direct(&x);
            assert_eq!(fast.shape(), direct.shape(), "case {i}");
            // Both paths accumulate taps in the same order → bit-identical.
            assert_eq!(fast.data(), direct.data(), "case {i}: {:?}", PARITY_CASES[i]);
        }
    }

    #[test]
    fn scratch_forward_is_bit_identical_and_reuses_capacity() {
        let mut scratch = ConvScratch::default();
        for (i, &(in_c, out_c, k, stride, pad, h, w)) in PARITY_CASES.iter().enumerate() {
            let (conv, x) = random_case((in_c, out_c, k, stride, pad, h, w), 400 + i as u64);
            let fresh = conv.forward(&x);
            let reused = conv.forward_with_scratch(&x, &mut scratch);
            assert_eq!(fresh.data(), reused.data(), "case {i}");
        }
        // Warm repeat with stable geometry must not grow the buffer.
        let (conv, x) = random_case(PARITY_CASES[1], 450);
        let _ = conv.forward_with_scratch(&x, &mut scratch);
        let cap = scratch.cols.capacity();
        for _ in 0..3 {
            let _ = conv.forward_with_scratch(&x, &mut scratch);
        }
        assert_eq!(scratch.cols.capacity(), cap, "warm forward reallocated cols");
    }

    #[test]
    fn gemm_backward_matches_direct_oracle() {
        for (i, &(in_c, out_c, k, stride, pad, h, w)) in PARITY_CASES.iter().enumerate() {
            let (conv, x) = random_case((in_c, out_c, k, stride, pad, h, w), 200 + i as u64);
            let (oh, ow) = conv.output_size(h, w);
            let mut rng = StdRng::seed_from_u64(300 + i as u64);
            let gout = FeatureMap::from_vec(
                out_c,
                oh,
                ow,
                (0..out_c * oh * ow).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            );
            let (mut gw_a, mut gb_a) = (vec![0.0; conv.n_weights()], vec![0.0; out_c]);
            let (mut gw_b, mut gb_b) = (vec![0.0; conv.n_weights()], vec![0.0; out_c]);
            let gin_a = conv.backward(&x, &gout, &mut gw_a, &mut gb_a);
            let gin_b = conv.backward_direct(&x, &gout, &mut gw_b, &mut gb_b);
            let close = |a: &[f64], b: &[f64], what: &str| {
                for (j, (&u, &v)) in a.iter().zip(b).enumerate() {
                    assert!(
                        (u - v).abs() <= 1e-9 * (1.0 + v.abs()),
                        "case {i} {what}[{j}]: {u} vs {v}"
                    );
                }
            };
            close(&gw_a, &gw_b, "gw");
            close(&gb_a, &gb_b, "gb");
            close(gin_a.data(), gin_b.data(), "gin");
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(48))]
            #[test]
            fn im2col_conv_matches_direct(
                in_c in 1usize..4,
                out_c in 1usize..4,
                k in 1usize..5,
                stride in 1usize..4,
                pad in 0usize..5,
                extra_h in 0usize..6,
                extra_w in 0usize..6,
                seed in 0u64..1_000_000,
            ) {
                // Keep the input large enough for the kernel even at pad 0.
                let h = k + extra_h;
                let w = k + extra_w;
                let (conv, x) = random_case((in_c, out_c, k, stride, pad, h, w), seed);
                let fast = conv.forward(&x);
                let direct = conv.forward_direct(&x);
                prop_assert_eq!(fast.shape(), direct.shape());
                for (a, b) in fast.data().iter().zip(direct.data()) {
                    prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{} vs {}", a, b);
                }
            }
        }
    }
}
