//! 2-D convolution with explicit forward and backward passes.

use crate::init::he_normal;
use crate::tensor::FeatureMap;
use rand::Rng;

/// A 2-D convolution layer with square kernels, zero padding and bias.
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Input channel count.
    pub in_c: usize,
    /// Output channel count.
    pub out_c: usize,
    /// Kernel side length.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on every side.
    pub pad: usize,
    /// Weights, laid out `[out_c][in_c][ky][kx]`.
    pub weights: Vec<f64>,
    /// Per-output-channel bias.
    pub bias: Vec<f64>,
}

impl Conv2d {
    /// Creates a layer with He-normal initialized weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_c > 0 && out_c > 0 && k > 0 && stride > 0, "conv dimensions must be positive");
        let fan_in = in_c * k * k;
        let weights = (0..out_c * fan_in).map(|_| he_normal(fan_in, rng)).collect();
        Conv2d { in_c, out_c, k, stride, pad, weights, bias: vec![0.0; out_c] }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h + 2 * self.pad >= self.k && w + 2 * self.pad >= self.k,
            "input {h}x{w} too small for kernel {} with padding {}",
            self.k,
            self.pad
        );
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }

    /// Number of trainable weights.
    pub fn n_weights(&self) -> usize {
        self.out_c * self.in_c * self.k * self.k
    }

    /// Multiply-accumulate count of one forward pass on an `(h, w)` input.
    pub fn forward_macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.output_size(h, w);
        (self.out_c * oh * ow) as u64 * (self.in_c * self.k * self.k) as u64
    }

    #[inline]
    fn w_at(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> f64 {
        self.weights[((oc * self.in_c + ic) * self.k + ky) * self.k + kx]
    }

    /// Forward pass.
    pub fn forward(&self, x: &FeatureMap) -> FeatureMap {
        assert_eq!(x.channels(), self.in_c, "input channel mismatch");
        let (h, w) = (x.height(), x.width());
        let (oh, ow) = self.output_size(h, w);
        let mut out = FeatureMap::zeros(self.out_c, oh, ow);
        for oc in 0..self.out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[oc];
                    for ic in 0..self.in_c {
                        for ky in 0..self.k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc +=
                                    self.w_at(oc, ic, ky, kx) * x.get(ic, iy as usize, ix as usize);
                            }
                        }
                    }
                    out.set(oc, oy, ox, acc);
                }
            }
        }
        out
    }

    /// Backward pass: given the layer input `x` and the loss gradient with
    /// respect to the output `gout`, accumulates weight/bias gradients into
    /// `gw`/`gb` and returns the gradient with respect to the input.
    #[allow(clippy::needless_range_loop)] // oc indexes gout, gb and the kernel together
    pub fn backward(
        &self,
        x: &FeatureMap,
        gout: &FeatureMap,
        gw: &mut [f64],
        gb: &mut [f64],
    ) -> FeatureMap {
        assert_eq!(gw.len(), self.n_weights(), "gw length mismatch");
        assert_eq!(gb.len(), self.out_c, "gb length mismatch");
        assert_eq!(x.channels(), self.in_c, "input channel mismatch");
        let (h, w) = (x.height(), x.width());
        let (oh, ow) = self.output_size(h, w);
        assert_eq!(gout.shape(), (self.out_c, oh, ow), "gout shape mismatch");

        let mut gin = FeatureMap::zeros(self.in_c, h, w);
        for oc in 0..self.out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gout.get(oc, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    gb[oc] += g;
                    for ic in 0..self.in_c {
                        for ky in 0..self.k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let widx = ((oc * self.in_c + ic) * self.k + ky) * self.k + kx;
                                gw[widx] += g * x.get(ic, iy as usize, ix as usize);
                                gin.add_at(ic, iy as usize, ix as usize, g * self.weights[widx]);
                            }
                        }
                    }
                }
            }
        }
        gin
    }

    /// Applies an SGD step: `w -= lr * gw`, `b -= lr * gb`.
    pub fn apply_gradients(&mut self, gw: &[f64], gb: &[f64], lr: f64) {
        assert_eq!(gw.len(), self.weights.len(), "gw length mismatch");
        assert_eq!(gb.len(), self.bias.len(), "gb length mismatch");
        for (w, g) in self.weights.iter_mut().zip(gw) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(gb) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity_kernel_conv() -> Conv2d {
        // 1→1 channel 3×3 kernel that copies the centre pixel.
        let mut weights = vec![0.0; 9];
        weights[4] = 1.0;
        Conv2d { in_c: 1, out_c: 1, k: 3, stride: 1, pad: 1, weights, bias: vec![0.0] }
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let conv = identity_kernel_conv();
        let x = FeatureMap::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn output_size_formula() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(1, 4, 3, 2, 1, &mut rng);
        assert_eq!(conv.output_size(8, 8), (4, 4));
        assert_eq!(conv.output_size(7, 9), (4, 5));
        let valid = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        assert_eq!(valid.output_size(5, 5), (3, 3));
    }

    #[test]
    fn bias_shifts_output() {
        let mut conv = identity_kernel_conv();
        conv.bias[0] = 10.0;
        let x = FeatureMap::from_vec(1, 1, 2, vec![1.0, 2.0]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), &[11.0, 12.0]);
    }

    #[test]
    fn sum_kernel_counts_neighbours() {
        // All-ones 3×3 kernel on all-ones input: interior pixels see 9,
        // corners see 4 (with zero padding).
        let conv = Conv2d {
            in_c: 1,
            out_c: 1,
            k: 3,
            stride: 1,
            pad: 1,
            weights: vec![1.0; 9],
            bias: vec![0.0],
        };
        let x = FeatureMap::from_vec(1, 3, 3, vec![1.0; 9]);
        let y = conv.forward(&x);
        assert_eq!(y.get(0, 1, 1), 9.0);
        assert_eq!(y.get(0, 0, 0), 4.0);
        assert_eq!(y.get(0, 0, 1), 6.0);
    }

    #[test]
    fn stride_two_downsamples() {
        let conv = identity_kernel_conv();
        let strided = Conv2d { stride: 2, ..conv };
        let x = FeatureMap::from_vec(1, 4, 4, (0..16).map(|i| i as f64).collect());
        let y = strided.forward(&x);
        assert_eq!(y.shape(), (1, 2, 2));
        // Centre taps at (0,0), (0,2), (2,0), (2,2).
        assert_eq!(y.data(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn forward_macs_counts() {
        let mut rng = StdRng::seed_from_u64(2);
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        // 8 out channels × 10×10 outputs × 3·3·3 taps.
        assert_eq!(conv.forward_macs(10, 10), 8 * 100 * 27);
        assert_eq!(conv.n_weights(), 8 * 3 * 9);
    }

    /// Finite-difference gradient check on a small random layer.
    #[test]
    #[allow(clippy::needless_range_loop)] // indices perturb the layer and index grads
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 3, 3, 2, 1, &mut rng);
        let x = {
            let data: Vec<f64> = (0..2 * 5 * 5).map(|_| rng.gen_range(-1.0..1.0)).collect();
            FeatureMap::from_vec(2, 5, 5, data)
        };
        // Loss = sum of outputs weighted by fixed random coefficients.
        let (oh, ow) = conv.output_size(5, 5);
        let coeffs: Vec<f64> = (0..3 * oh * ow).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let loss = |conv: &Conv2d, x: &FeatureMap| -> f64 {
            conv.forward(x).data().iter().zip(&coeffs).map(|(y, c)| y * c).sum()
        };

        let gout = FeatureMap::from_vec(3, oh, ow, coeffs.clone());
        let mut gw = vec![0.0; conv.n_weights()];
        let mut gb = vec![0.0; conv.out_c];
        let gin = conv.backward(&x, &gout, &mut gw, &mut gb);

        let eps = 1e-5;
        // Check a sample of weight gradients.
        for widx in [0usize, 7, 23, conv.n_weights() - 1] {
            let orig = conv.weights[widx];
            conv.weights[widx] = orig + eps;
            let up = loss(&conv, &x);
            conv.weights[widx] = orig - eps;
            let down = loss(&conv, &x);
            conv.weights[widx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - gw[widx]).abs() < 1e-6 * (1.0 + numeric.abs()),
                "weight {widx}: numeric {numeric}, analytic {}",
                gw[widx]
            );
        }
        // Bias gradients.
        for bidx in 0..conv.out_c {
            let orig = conv.bias[bidx];
            conv.bias[bidx] = orig + eps;
            let up = loss(&conv, &x);
            conv.bias[bidx] = orig - eps;
            let down = loss(&conv, &x);
            conv.bias[bidx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - gb[bidx]).abs() < 1e-6 * (1.0 + numeric.abs()));
        }
        // Input gradients.
        let mut x_mut = x.clone();
        for idx in [0usize, 13, 31, 49] {
            let orig = x_mut.data()[idx];
            x_mut.data_mut()[idx] = orig + eps;
            let up = loss(&conv, &x_mut);
            x_mut.data_mut()[idx] = orig - eps;
            let down = loss(&conv, &x_mut);
            x_mut.data_mut()[idx] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - gin.data()[idx]).abs() < 1e-6 * (1.0 + numeric.abs()),
                "input {idx}: numeric {numeric}, analytic {}",
                gin.data()[idx]
            );
        }
    }

    #[test]
    fn apply_gradients_moves_weights() {
        let mut conv = identity_kernel_conv();
        let gw = vec![1.0; 9];
        let gb = vec![2.0];
        conv.apply_gradients(&gw, &gb, 0.1);
        assert!((conv.weights[4] - 0.9).abs() < 1e-12);
        assert!((conv.weights[0] + 0.1).abs() < 1e-12);
        assert!((conv.bias[0] + 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn wrong_input_channels_panic() {
        let conv = identity_kernel_conv();
        let x = FeatureMap::zeros(2, 4, 4);
        conv.forward(&x);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_small_input_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(1, 1, 5, 1, 0, &mut rng);
        conv.output_size(3, 3);
    }
}
