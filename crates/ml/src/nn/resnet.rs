//! A residual CNN ("ResNet-lite").
//!
//! The paper classifies spectrogram images with ResNet18. ResNet18's
//! defining structure — a convolutional stem, stages of residual blocks
//! with stride-2 downsampling and channel doubling, global average pooling
//! and a linear head — is reproduced here with the depth and width scaled
//! to the synthetic task, so that accuracy-vs-input-size (Figure 5) and
//! FLOP-derived energy keep the same shape without hours of training.

use super::conv::{Conv2d, ConvScratch};
use super::layers::{
    global_avg_pool, global_avg_pool_backward, relu, relu_backward, softmax_cross_entropy, Dense,
};
use crate::tensor::FeatureMap;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One stage of the network: a residual block with the given output
/// channel count and input stride.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSpec {
    /// Output channels of the stage.
    pub channels: usize,
    /// Stride of the first convolution (2 halves the resolution).
    pub stride: usize,
}

/// Network architecture description.
#[derive(Clone, Debug)]
pub struct ResNetConfig {
    /// Input image channels (1 for spectrograms).
    pub input_channels: usize,
    /// Stem output channels.
    pub base_width: usize,
    /// Residual stages after the stem.
    pub stages: Vec<StageSpec>,
    /// Number of output classes.
    pub n_classes: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for ResNetConfig {
    /// The configuration used for the Figure 5 reproduction: stem of 8
    /// channels, three residual stages (8, 16↓, 32↓), two classes.
    fn default() -> Self {
        ResNetConfig {
            input_channels: 1,
            base_width: 8,
            stages: vec![
                StageSpec { channels: 8, stride: 1 },
                StageSpec { channels: 16, stride: 2 },
                StageSpec { channels: 32, stride: 2 },
            ],
            n_classes: 2,
            seed: 0xCAFE,
        }
    }
}

/// A residual block: conv–ReLU–conv plus a skip connection, with a 1×1
/// projection on the skip when shape changes.
#[derive(Clone, Debug)]
pub struct ResBlock {
    pub(crate) conv1: Conv2d,
    pub(crate) conv2: Conv2d,
    pub(crate) projection: Option<Conv2d>,
}

/// Per-block forward cache for backpropagation.
#[derive(Clone, Debug)]
pub struct BlockCache {
    input: FeatureMap,
    r1: FeatureMap,
    output: FeatureMap,
}

/// Gradient buffers for one convolution.
#[derive(Clone, Debug)]
pub struct ConvGrads {
    /// Weight gradients.
    pub w: Vec<f64>,
    /// Bias gradients.
    pub b: Vec<f64>,
}

impl ConvGrads {
    fn zeros_for(conv: &Conv2d) -> Self {
        ConvGrads { w: vec![0.0; conv.n_weights()], b: vec![0.0; conv.out_c] }
    }

    fn add_assign(&mut self, other: &ConvGrads) {
        for (a, b) in self.w.iter_mut().zip(&other.w) {
            *a += b;
        }
        for (a, b) in self.b.iter_mut().zip(&other.b) {
            *a += b;
        }
    }

    fn scale(&mut self, k: f64) {
        for v in &mut self.w {
            *v *= k;
        }
        for v in &mut self.b {
            *v *= k;
        }
    }
}

/// Gradient buffers for one residual block.
#[derive(Clone, Debug)]
pub struct BlockGrads {
    conv1: ConvGrads,
    conv2: ConvGrads,
    projection: Option<ConvGrads>,
}

/// Gradient buffers for the whole network; layout mirrors [`ResNetLite`].
#[derive(Clone, Debug)]
pub struct ResNetGrads {
    stem: ConvGrads,
    blocks: Vec<BlockGrads>,
    fc_w: Vec<f64>,
    fc_b: Vec<f64>,
}

impl ResNetGrads {
    /// Zero gradients shaped for `model`.
    pub fn zeros_for(model: &ResNetLite) -> Self {
        ResNetGrads {
            stem: ConvGrads::zeros_for(&model.stem),
            blocks: model
                .blocks
                .iter()
                .map(|b| BlockGrads {
                    conv1: ConvGrads::zeros_for(&b.conv1),
                    conv2: ConvGrads::zeros_for(&b.conv2),
                    projection: b.projection.as_ref().map(ConvGrads::zeros_for),
                })
                .collect(),
            fc_w: vec![0.0; model.fc.weights.len()],
            fc_b: vec![0.0; model.fc.bias.len()],
        }
    }

    /// Element-wise accumulate.
    pub fn add_assign(&mut self, other: &ResNetGrads) {
        self.stem.add_assign(&other.stem);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            a.conv1.add_assign(&b.conv1);
            a.conv2.add_assign(&b.conv2);
            if let (Some(pa), Some(pb)) = (a.projection.as_mut(), b.projection.as_ref()) {
                pa.add_assign(pb);
            }
        }
        for (a, b) in self.fc_w.iter_mut().zip(&other.fc_w) {
            *a += b;
        }
        for (a, b) in self.fc_b.iter_mut().zip(&other.fc_b) {
            *a += b;
        }
    }

    /// Multiplies every gradient by `k` (e.g. 1/batch).
    pub fn scale(&mut self, k: f64) {
        self.stem.scale(k);
        for b in &mut self.blocks {
            b.conv1.scale(k);
            b.conv2.scale(k);
            if let Some(p) = &mut b.projection {
                p.scale(k);
            }
        }
        for v in &mut self.fc_w {
            *v *= k;
        }
        for v in &mut self.fc_b {
            *v *= k;
        }
    }
}

/// Full forward cache for one sample.
#[derive(Clone, Debug)]
pub struct ForwardCache {
    stem_in: FeatureMap,
    stem_out: FeatureMap,
    blocks: Vec<BlockCache>,
    gap_in_shape: (usize, usize, usize),
    fc_in: Vec<f64>,
}

/// The residual classifier.
#[derive(Clone, Debug)]
pub struct ResNetLite {
    config: ResNetConfig,
    pub(crate) stem: Conv2d,
    pub(crate) blocks: Vec<ResBlock>,
    pub(crate) fc: Dense,
    telemetry: pb_telemetry::Telemetry,
}

impl ResBlock {
    fn new(in_c: usize, out_c: usize, stride: usize, rng: &mut StdRng) -> Self {
        let conv1 = Conv2d::new(in_c, out_c, 3, stride, 1, rng);
        let conv2 = Conv2d::new(out_c, out_c, 3, 1, 1, rng);
        let projection = if in_c != out_c || stride != 1 {
            Some(Conv2d::new(in_c, out_c, 1, stride, 0, rng))
        } else {
            None
        };
        ResBlock { conv1, conv2, projection }
    }

    fn forward(&self, x: &FeatureMap, scratch: &mut ConvScratch) -> FeatureMap {
        let r1 = relu(&self.conv1.forward_with_scratch(x, scratch));
        let a2 = self.conv2.forward_with_scratch(&r1, scratch);
        let skip = match &self.projection {
            Some(p) => p.forward_with_scratch(x, scratch),
            None => x.clone(),
        };
        relu(&a2.add(&skip))
    }

    fn forward_cached(&self, x: &FeatureMap) -> (FeatureMap, BlockCache) {
        let r1 = relu(&self.conv1.forward(x));
        let a2 = self.conv2.forward(&r1);
        let skip = match &self.projection {
            Some(p) => p.forward(x),
            None => x.clone(),
        };
        let output = relu(&a2.add(&skip));
        (output.clone(), BlockCache { input: x.clone(), r1, output })
    }

    /// Backward through the block. Returns the gradient w.r.t. the input.
    fn backward(
        &self,
        cache: &BlockCache,
        gout: &FeatureMap,
        grads: &mut BlockGrads,
    ) -> FeatureMap {
        // Through the final ReLU.
        let g_sum = relu_backward(&cache.output, gout);
        // Main path.
        let g_r1 = self.conv2.backward(&cache.r1, &g_sum, &mut grads.conv2.w, &mut grads.conv2.b);
        let g_a1 = relu_backward(&cache.r1, &g_r1);
        let mut g_in =
            self.conv1.backward(&cache.input, &g_a1, &mut grads.conv1.w, &mut grads.conv1.b);
        // Skip path.
        match (&self.projection, grads.projection.as_mut()) {
            (Some(p), Some(pg)) => {
                let g_skip = p.backward(&cache.input, &g_sum, &mut pg.w, &mut pg.b);
                g_in.add_assign(&g_skip);
            }
            (None, None) => g_in.add_assign(&g_sum),
            _ => unreachable!("projection/gradient structure mismatch"),
        }
        g_in
    }

    fn forward_macs(&self, h: usize, w: usize) -> (u64, usize, usize) {
        let mut macs = self.conv1.forward_macs(h, w);
        let (oh, ow) = self.conv1.output_size(h, w);
        macs += self.conv2.forward_macs(oh, ow);
        if let Some(p) = &self.projection {
            macs += p.forward_macs(h, w);
        }
        (macs, oh, ow)
    }
}

impl ResNetLite {
    /// Builds the network described by `config` with seeded initialization.
    pub fn new(config: ResNetConfig) -> Self {
        assert!(!config.stages.is_empty(), "network needs at least one stage");
        assert!(config.n_classes >= 2, "need at least two classes");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let stem = Conv2d::new(config.input_channels, config.base_width, 3, 1, 1, &mut rng);
        let mut blocks = Vec::with_capacity(config.stages.len());
        let mut in_c = config.base_width;
        for s in &config.stages {
            blocks.push(ResBlock::new(in_c, s.channels, s.stride, &mut rng));
            in_c = s.channels;
        }
        let fc = Dense::new(in_c, config.n_classes, &mut rng);
        ResNetLite { config, stem, blocks, fc, telemetry: pb_telemetry::Telemetry::disabled() }
    }

    /// Times every inference into `telemetry` as the `cnn.forward`
    /// wall-time histogram. Logits are unchanged — the weights and the
    /// forward math never see the telemetry handle.
    pub fn with_telemetry(mut self, telemetry: pb_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The architecture description.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// Total trainable parameter count.
    pub fn n_parameters(&self) -> usize {
        let conv_params = |c: &Conv2d| c.n_weights() + c.out_c;
        conv_params(&self.stem)
            + self
                .blocks
                .iter()
                .map(|b| {
                    conv_params(&b.conv1)
                        + conv_params(&b.conv2)
                        + b.projection.as_ref().map_or(0, conv_params)
                })
                .sum::<usize>()
            + self.fc.weights.len()
            + self.fc.bias.len()
    }

    /// Inference forward pass producing class logits.
    pub fn forward(&self, x: &FeatureMap) -> Vec<f64> {
        self.forward_with_scratch(x, &mut ConvScratch::default())
    }

    /// Forward pass threading a caller-held [`ConvScratch`] through every
    /// convolution, so a warm loop over many clips reuses one im2col
    /// buffer instead of reallocating `cols` per layer. Logits are
    /// bit-identical to [`ResNetLite::forward`].
    pub fn forward_with_scratch(&self, x: &FeatureMap, scratch: &mut ConvScratch) -> Vec<f64> {
        let _span = self.telemetry.span("cnn.forward");
        let mut cur = relu(&self.stem.forward_with_scratch(x, scratch));
        for b in &self.blocks {
            cur = b.forward(&cur, scratch);
        }
        self.fc.forward(&global_avg_pool(&cur))
    }

    /// Forward pass retaining activations for [`ResNetLite::backward`].
    pub fn forward_cached(&self, x: &FeatureMap) -> (Vec<f64>, ForwardCache) {
        let stem_out = relu(&self.stem.forward(x));
        let mut caches = Vec::with_capacity(self.blocks.len());
        let mut cur = stem_out.clone();
        for b in &self.blocks {
            let (out, cache) = b.forward_cached(&cur);
            caches.push(cache);
            cur = out;
        }
        let gap_in_shape = cur.shape();
        let fc_in = global_avg_pool(&cur);
        let logits = self.fc.forward(&fc_in);
        (logits, ForwardCache { stem_in: x.clone(), stem_out, blocks: caches, gap_in_shape, fc_in })
    }

    /// Backpropagates `grad_logits` through the cached forward pass,
    /// accumulating into `grads`.
    pub fn backward(&self, cache: &ForwardCache, grad_logits: &[f64], grads: &mut ResNetGrads) {
        let g_fc_in = self.fc.backward(&cache.fc_in, grad_logits, &mut grads.fc_w, &mut grads.fc_b);
        let mut g = global_avg_pool_backward(cache.gap_in_shape, &g_fc_in);
        for (b, (bc, bg)) in
            self.blocks.iter().zip(cache.blocks.iter().zip(&mut grads.blocks)).rev()
        {
            g = b.backward(bc, &g, bg);
        }
        // Stem: ReLU then conv.
        let g_stem = relu_backward(&cache.stem_out, &g);
        self.stem.backward(&cache.stem_in, &g_stem, &mut grads.stem.w, &mut grads.stem.b);
    }

    /// Computes loss and gradients for one `(input, label)` example.
    pub fn loss_and_gradients(&self, x: &FeatureMap, label: usize, grads: &mut ResNetGrads) -> f64 {
        let (logits, cache) = self.forward_cached(x);
        let (loss, grad_logits) = softmax_cross_entropy(&logits, label);
        self.backward(&cache, &grad_logits, grads);
        loss
    }

    /// SGD step with pre-scaled gradients.
    pub fn apply_gradients(&mut self, grads: &ResNetGrads, lr: f64) {
        self.stem.apply_gradients(&grads.stem.w, &grads.stem.b, lr);
        for (b, g) in self.blocks.iter_mut().zip(&grads.blocks) {
            b.conv1.apply_gradients(&g.conv1.w, &g.conv1.b, lr);
            b.conv2.apply_gradients(&g.conv2.w, &g.conv2.b, lr);
            if let (Some(p), Some(pg)) = (b.projection.as_mut(), g.projection.as_ref()) {
                p.apply_gradients(&pg.w, &pg.b, lr);
            }
        }
        self.fc.apply_gradients(&grads.fc_w, &grads.fc_b, lr);
    }

    /// Predicted class of an input.
    pub fn predict(&self, x: &FeatureMap) -> usize {
        let logits = self.forward(x);
        logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Mutable views of every weight tensor in network order (stem, block
    /// convolutions and projections, dense head) — the hook the
    /// quantization pass uses. Biases are excluded.
    pub fn weight_tensors_mut(&mut self) -> Vec<&mut [f64]> {
        let mut v: Vec<&mut [f64]> = vec![self.stem.weights.as_mut_slice()];
        for b in &mut self.blocks {
            v.push(b.conv1.weights.as_mut_slice());
            v.push(b.conv2.weights.as_mut_slice());
            if let Some(p) = b.projection.as_mut() {
                v.push(p.weights.as_mut_slice());
            }
        }
        v.push(self.fc.weights.as_mut_slice());
        v
    }

    /// Multiply-accumulate count of one forward pass on an `h × w` input —
    /// the quantity the device layer converts to joules.
    pub fn forward_macs(&self, h: usize, w: usize) -> u64 {
        let mut macs = self.stem.forward_macs(h, w);
        let (mut ch, mut cw) = self.stem.output_size(h, w);
        for b in &self.blocks {
            let (m, oh, ow) = b.forward_macs(ch, cw);
            macs += m;
            ch = oh;
            cw = ow;
        }
        macs + self.fc.forward_macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn tiny_config() -> ResNetConfig {
        ResNetConfig {
            input_channels: 1,
            base_width: 2,
            stages: vec![
                StageSpec { channels: 2, stride: 1 },
                StageSpec { channels: 4, stride: 2 },
            ],
            n_classes: 2,
            seed: 1,
        }
    }

    #[test]
    fn telemetry_times_forward_without_changing_logits() {
        let tel = pb_telemetry::Telemetry::metrics_only();
        let plain = ResNetLite::new(tiny_config());
        let traced = ResNetLite::new(tiny_config()).with_telemetry(tel.clone());
        let x = random_input(12, 3);
        assert_eq!(plain.forward(&x), traced.forward(&x));
        let _ = traced.forward(&x);
        let h = tel.snapshot().histogram("cnn.forward").cloned().expect("span recorded");
        assert_eq!(h.count, 2);
        assert!(h.total >= 0.0);
    }

    fn random_input(side: usize, seed: u64) -> FeatureMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..side * side).map(|_| rng.gen_range(-1.0..1.0)).collect();
        FeatureMap::from_vec(1, side, side, data)
    }

    #[test]
    fn forward_produces_logits() {
        let net = ResNetLite::new(tiny_config());
        let logits = net.forward(&random_input(8, 2));
        assert_eq!(logits.len(), 2);
        assert!(logits.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn scratch_forward_matches_plain_forward() {
        let net = ResNetLite::new(tiny_config());
        let mut scratch = ConvScratch::default();
        for seed in 0..5u64 {
            let x = random_input(10, 40 + seed);
            assert_eq!(net.forward(&x), net.forward_with_scratch(&x, &mut scratch));
        }
    }

    #[test]
    fn cached_forward_matches_plain_forward() {
        let net = ResNetLite::new(tiny_config());
        let x = random_input(8, 3);
        let plain = net.forward(&x);
        let (cached, _) = net.forward_cached(&x);
        for (a, b) in plain.iter().zip(&cached) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn parameter_count_is_positive_and_stable() {
        let net = ResNetLite::new(tiny_config());
        let n = net.n_parameters();
        // stem: 1·2·9+2=20; block1 (2→2, identity skip): 2·2·9+2 + 2·2·9+2 = 76;
        // block2 (2→4, stride 2, projection): (2·4·9+4) + (4·4·9+4) + (2·4·1+4) = 76+148+12=236;
        // fc: 4·2+2 = 10. Total 342.
        assert_eq!(n, 342);
    }

    #[test]
    fn macs_scale_roughly_quadratically_with_side() {
        let net = ResNetLite::new(tiny_config());
        let m20 = net.forward_macs(20, 20) as f64;
        let m40 = net.forward_macs(40, 40) as f64;
        let ratio = m40 / m20;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deterministic_initialization() {
        let a = ResNetLite::new(tiny_config());
        let b = ResNetLite::new(tiny_config());
        let x = random_input(8, 4);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    /// End-to-end finite-difference gradient check through stem, residual
    /// blocks (with and without projection), GAP and the dense head.
    #[test]
    fn full_network_gradient_check() {
        let mut net = ResNetLite::new(tiny_config());
        let x = random_input(6, 5);
        let label = 1;

        let mut grads = ResNetGrads::zeros_for(&net);
        let loss0 = net.loss_and_gradients(&x, label, &mut grads);
        assert!(loss0.is_finite());

        let eps = 1e-5;
        let loss_of = |net: &ResNetLite| {
            let (logits, _) = net.forward_cached(&x);
            softmax_cross_entropy(&logits, label).0
        };

        // Sample parameters from every part of the network.
        let checks: Vec<(&str, f64)> = {
            let mut v = Vec::new();
            // stem weight 0
            let orig = net.stem.weights[0];
            net.stem.weights[0] = orig + eps;
            let up = loss_of(&net);
            net.stem.weights[0] = orig - eps;
            let down = loss_of(&net);
            net.stem.weights[0] = orig;
            v.push(("stem.w[0]", (up - down) / (2.0 * eps) - grads.stem.w[0]));
            // block0 conv1 weight
            let orig = net.blocks[0].conv1.weights[3];
            net.blocks[0].conv1.weights[3] = orig + eps;
            let up = loss_of(&net);
            net.blocks[0].conv1.weights[3] = orig - eps;
            let down = loss_of(&net);
            net.blocks[0].conv1.weights[3] = orig;
            v.push(("b0.conv1.w[3]", (up - down) / (2.0 * eps) - grads.blocks[0].conv1.w[3]));
            // block1 conv2 bias
            let orig = net.blocks[1].conv2.bias[1];
            net.blocks[1].conv2.bias[1] = orig + eps;
            let up = loss_of(&net);
            net.blocks[1].conv2.bias[1] = orig - eps;
            let down = loss_of(&net);
            net.blocks[1].conv2.bias[1] = orig;
            v.push(("b1.conv2.b[1]", (up - down) / (2.0 * eps) - grads.blocks[1].conv2.b[1]));
            // block1 projection weight
            let orig = net.blocks[1].projection.as_ref().unwrap().weights[2];
            net.blocks[1].projection.as_mut().unwrap().weights[2] = orig + eps;
            let up = loss_of(&net);
            net.blocks[1].projection.as_mut().unwrap().weights[2] = orig - eps;
            let down = loss_of(&net);
            net.blocks[1].projection.as_mut().unwrap().weights[2] = orig;
            let analytic = grads.blocks[1].projection.as_ref().unwrap().w[2];
            v.push(("b1.proj.w[2]", (up - down) / (2.0 * eps) - analytic));
            // fc weight and bias
            let orig = net.fc.weights[5];
            net.fc.weights[5] = orig + eps;
            let up = loss_of(&net);
            net.fc.weights[5] = orig - eps;
            let down = loss_of(&net);
            net.fc.weights[5] = orig;
            v.push(("fc.w[5]", (up - down) / (2.0 * eps) - grads.fc_w[5]));
            let orig = net.fc.bias[0];
            net.fc.bias[0] = orig + eps;
            let up = loss_of(&net);
            net.fc.bias[0] = orig - eps;
            let down = loss_of(&net);
            net.fc.bias[0] = orig;
            v.push(("fc.b[0]", (up - down) / (2.0 * eps) - grads.fc_b[0]));
            v
        };
        for (name, diff) in checks {
            assert!(diff.abs() < 1e-5, "gradient mismatch at {name}: {diff}");
        }
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let net = ResNetLite::new(tiny_config());
        let x = random_input(6, 6);
        let mut g1 = ResNetGrads::zeros_for(&net);
        net.loss_and_gradients(&x, 0, &mut g1);
        let mut g2 = g1.clone();
        g2.add_assign(&g1);
        g2.scale(0.5);
        for (a, b) in g1.fc_w.iter().zip(&g2.fc_w) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in g1.stem.w.iter().zip(&g2.stem.w) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sgd_step_reduces_loss_on_one_example() {
        let mut net = ResNetLite::new(tiny_config());
        let x = random_input(8, 7);
        let label = 0;
        let mut losses = Vec::new();
        for _ in 0..8 {
            let mut grads = ResNetGrads::zeros_for(&net);
            let loss = net.loss_and_gradients(&x, label, &mut grads);
            losses.push(loss);
            net.apply_gradients(&grads, 0.05);
        }
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "loss did not decrease: {losses:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stage_list_panics() {
        let _ = ResNetLite::new(ResNetConfig { stages: vec![], ..tiny_config() });
    }
}
