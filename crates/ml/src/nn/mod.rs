//! Convolutional neural network layers and the residual classifier.
//!
//! Everything is implemented from scratch: convolutions with explicit
//! backward passes, pooling, dense layers, softmax cross-entropy, a
//! residual architecture mirroring ResNet18's block structure, and an SGD
//! training loop parallelized over the batch with rayon.

pub mod conv;
pub mod layers;
pub mod resnet;
pub mod train;

pub use conv::{Conv2d, ConvScratch};
pub use layers::{
    global_avg_pool, global_avg_pool_backward, relu, relu_backward, softmax_cross_entropy, Dense,
    MaxPool2,
};
