//! SGD training loop for the residual classifier.
//!
//! Gradients are computed per sample and summed across the batch in
//! parallel on the shim's persistent thread pool — batches are issued
//! every few milliseconds, so reusing warm workers (instead of spawning
//! a thread wave per batch) is what keeps the scheduler off the
//! critical path. The shim's fixed chunk plan folds partial gradients
//! in chunk order, so results are bit-identical at any thread count.

use super::resnet::{ResNetGrads, ResNetLite};
use crate::tensor::FeatureMap;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the data (the paper trained for 4 epochs).
    pub epochs: usize,
    /// Learning rate (the paper used 0.001 with a pretrained ResNet18; a
    /// from-scratch small network wants a larger step).
    pub lr: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 4, lr: 0.05, batch_size: 16, seed: 0x7EA1 }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Accuracy on the training set after the final epoch.
    pub final_train_accuracy: f64,
}

/// Trains `model` on `(input, label)` pairs.
pub fn train(
    model: &mut ResNetLite,
    data: &[(FeatureMap, usize)],
    config: &TrainConfig,
) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(config.batch_size > 0, "batch size must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size) {
            // min_len 2: a per-sample gradient costs a full forward +
            // backward pass, but one-sample chunks would still schedule
            // more tasks than workers on small batches for no benefit.
            let (batch_loss, mut grads) = batch
                .par_iter()
                .with_min_len(2)
                .map(|&i| {
                    let (x, label) = &data[i];
                    let mut g = ResNetGrads::zeros_for(model);
                    let loss = model.loss_and_gradients(x, *label, &mut g);
                    (loss, g)
                })
                .reduce(
                    || (0.0, ResNetGrads::zeros_for(model)),
                    |(la, mut ga), (lb, gb)| {
                        ga.add_assign(&gb);
                        (la + lb, ga)
                    },
                );
            grads.scale(1.0 / batch.len() as f64);
            model.apply_gradients(&grads, config.lr);
            epoch_loss += batch_loss;
        }
        epoch_losses.push(epoch_loss / data.len() as f64);
    }

    TrainReport { epoch_losses, final_train_accuracy: evaluate(model, data) }
}

/// Accuracy of `model` on `(input, label)` pairs (parallel).
pub fn evaluate(model: &ResNetLite, data: &[(FeatureMap, usize)]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let hits: usize = data.par_iter().filter(|(x, label)| model.predict(x) == *label).count();
    hits as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::resnet::{ResNetConfig, StageSpec};
    use rand::Rng;

    /// Trivially separable image task: class 1 images are bright in the
    /// left half, class 0 in the right half.
    fn toy_images(n: usize, side: usize, seed: u64) -> Vec<(FeatureMap, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let mut data = vec![0.0; side * side];
                for y in 0..side {
                    for x in 0..side {
                        let bright = if label == 1 { x < side / 2 } else { x >= side / 2 };
                        let base = if bright { 0.9 } else { 0.1 };
                        data[y * side + x] = base + rng.gen_range(-0.05..0.05);
                    }
                }
                (FeatureMap::from_vec(1, side, side, data), label)
            })
            .collect()
    }

    fn tiny_net() -> ResNetLite {
        ResNetLite::new(ResNetConfig {
            input_channels: 1,
            base_width: 4,
            stages: vec![
                StageSpec { channels: 4, stride: 1 },
                StageSpec { channels: 8, stride: 2 },
            ],
            n_classes: 2,
            seed: 3,
        })
    }

    #[test]
    fn learns_separable_task() {
        let data = toy_images(40, 10, 1);
        let mut net = tiny_net();
        let report =
            train(&mut net, &data, &TrainConfig { epochs: 12, lr: 0.1, batch_size: 8, seed: 2 });
        assert!(report.final_train_accuracy >= 0.95, "accuracy {}", report.final_train_accuracy);
        // Loss must trend downward.
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
    }

    #[test]
    fn generalizes_to_fresh_samples() {
        let train_data = toy_images(40, 10, 1);
        let test_data = toy_images(20, 10, 99);
        let mut net = tiny_net();
        train(&mut net, &train_data, &TrainConfig { epochs: 12, lr: 0.1, batch_size: 8, seed: 2 });
        let acc = evaluate(&net, &test_data);
        assert!(acc >= 0.9, "test accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy_images(16, 8, 5);
        let cfg = TrainConfig { epochs: 2, lr: 0.05, batch_size: 4, seed: 11 };
        let mut a = tiny_net();
        let ra = train(&mut a, &data, &cfg);
        let mut b = tiny_net();
        let rb = train(&mut b, &data, &cfg);
        for (x, y) in ra.epoch_losses.iter().zip(&rb.epoch_losses) {
            assert!((x - y).abs() < 1e-9, "loss diverged: {x} vs {y}");
        }
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let net = tiny_net();
        assert_eq!(evaluate(&net, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        let mut net = tiny_net();
        train(&mut net, &[], &TrainConfig::default());
    }
}
