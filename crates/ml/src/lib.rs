#![warn(missing_docs)]

//! From-scratch ML substrate for the precision-beekeeping reproduction.
//!
//! The paper's queen-detection service compares a **classical ML** model
//! (RBF-kernel SVM, C = 20, γ = 10⁻⁵) against a **deep** model (ResNet18 on
//! spectrogram images). This crate implements both families without
//! external ML dependencies:
//!
//! * [`tensor`] — dense feature maps and the small linear algebra the
//!   networks need,
//! * [`dataset`] — labelled datasets, seeded splits, standardization,
//! * [`metrics`] — accuracy, confusion matrices, precision/recall,
//! * [`svm`] — binary RBF-SVM trained with SMO,
//! * [`nn`] — convolutional layers with full backpropagation and a
//!   residual CNN ("ResNet-lite": the same block structure as ResNet18
//!   with depth/width scaled to the synthetic task),
//! * [`flops`] — multiply-accumulate counting used by the device layer to
//!   convert model executions into joules.

pub mod augment;
pub mod dataset;
pub mod flops;
pub mod init;
pub mod metrics;
pub mod model_selection;
pub mod nn;
pub mod quant;
pub mod roc;
pub mod svm;
pub mod tensor;

pub use augment::Augment;
pub use dataset::{Dataset, Split};
pub use flops::FlopCount;
pub use metrics::{accuracy, confusion_matrix, ConfusionMatrix};
pub use model_selection::{cross_validate_svm, grid_search_svm, kfold_indices, GridPoint};
pub use nn::resnet::{ResNetConfig, ResNetLite};
pub use nn::train::{TrainConfig, TrainReport};
pub use quant::{
    quantize_resnet, quantize_tensor, ModelQuantReport, QuantParams, QuantScratch, QuantizedConv2d,
    QuantizedDense, QuantizedResNetLite,
};
pub use roc::{auc, auc_from_scores, best_threshold, roc_curve, RocPoint};
pub use svm::{RbfSvm, SvmConfig};
pub use tensor::FeatureMap;
