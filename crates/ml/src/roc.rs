//! ROC analysis for score-producing classifiers.
//!
//! A queen-detection deployment cares about operating points: a missed
//! queenless colony (false negative) costs a colony; a false alarm costs a
//! beekeeper visit. ROC curves over the SVM's decision values expose that
//! trade-off; AUC summarizes separability independent of the threshold.

/// One ROC operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RocPoint {
    /// Decision threshold (predict positive when score ≥ threshold).
    pub threshold: f64,
    /// True-positive rate at this threshold.
    pub tpr: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
}

/// Computes the ROC curve from `(score, is_positive)` pairs. Points are
/// ordered from the strictest threshold (0, 0) to the laxest (1, 1).
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<RocPoint> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let p = labels.iter().filter(|&&l| l).count();
    let n = labels.len() - p;
    assert!(p > 0 && n > 0, "ROC needs both classes present");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut points = vec![RocPoint { threshold: f64::INFINITY, tpr: 0.0, fpr: 0.0 }];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        // Advance over ties so equal scores form one point.
        let score = scores[order[i]];
        while i < order.len() && scores[order[i]] == score {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        points.push(RocPoint {
            threshold: score,
            tpr: tp as f64 / p as f64,
            fpr: fp as f64 / n as f64,
        });
    }
    points
}

/// Area under the ROC curve by trapezoidal integration.
pub fn auc(points: &[RocPoint]) -> f64 {
    points.windows(2).map(|w| (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) * 0.5).sum()
}

/// Convenience: AUC directly from scores and labels.
pub fn auc_from_scores(scores: &[f64], labels: &[bool]) -> f64 {
    auc(&roc_curve(scores, labels))
}

/// The threshold maximizing Youden's J = TPR − FPR.
pub fn best_threshold(points: &[RocPoint]) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.threshold.is_finite())
        .max_by(|a, b| (a.tpr - a.fpr).total_cmp(&(b.tpr - b.fpr)))
        .map(|p| p.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let points = roc_curve(&scores, &labels);
        assert!((auc(&points) - 1.0).abs() < 1e-12);
        // Best threshold separates the classes.
        let t = best_threshold(&points).unwrap();
        assert!((0.2..=0.8).contains(&t), "threshold {t}");
    }

    #[test]
    fn inverted_scores_have_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(auc_from_scores(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn interleaved_scores_have_combinatorial_auc() {
        // Alternating labels down the ranking: AUC equals the
        // Mann–Whitney pair count. Positives at ranks 1,3,5,7 win
        // 4+3+2+1 = 10 of the 16 (pos, neg) pairs → 0.625; the mirrored
        // arrangement wins 6 → 0.375. Their mean is the chance level.
        let scores = [8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let labels = [true, false, true, false, true, false, true, false];
        let a = auc_from_scores(&scores, &labels);
        assert!((a - 0.625).abs() < 1e-12, "auc {a}");
        let flipped: Vec<bool> = labels.iter().map(|l| !l).collect();
        let b = auc_from_scores(&scores, &flipped);
        assert!((b - 0.375).abs() < 1e-12, "auc {b}");
        assert!(((a + b) / 2.0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_starts_at_origin_ends_at_one_one() {
        let scores = [0.3, 0.6, 0.1, 0.9];
        let labels = [false, true, false, true];
        let points = roc_curve(&scores, &labels);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert_eq!((first.tpr, first.fpr), (0.0, 0.0));
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
        // Monotone non-decreasing in both axes.
        for w in points.windows(2) {
            assert!(w[1].tpr >= w[0].tpr && w[1].fpr >= w[0].fpr);
        }
    }

    #[test]
    fn ties_collapse_to_one_point() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        let points = roc_curve(&scores, &labels);
        // Origin plus one diagonal jump.
        assert_eq!(points.len(), 2);
        assert!((auc(&points) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let _ = roc_curve(&[0.1, 0.2], &[true, true]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = roc_curve(&[0.1], &[true, false]);
    }

    #[test]
    fn svm_decision_values_yield_high_auc() {
        use crate::dataset::Dataset;
        use crate::svm::{RbfSvm, SvmConfig};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dataset::new();
        for i in 0..60 {
            let label = i % 2;
            let centre = if label == 1 { 3.0 } else { 0.0 };
            d.push(
                vec![centre + rng.gen_range(-1.0..1.0), centre + rng.gen_range(-1.0..1.0)],
                label,
            );
        }
        let svm = RbfSvm::train(&d, SvmConfig { gamma: 0.5, ..SvmConfig::default() });
        let scores: Vec<f64> = d.features().iter().map(|f| svm.decision(f)).collect();
        let labels: Vec<bool> = d.labels().iter().map(|&l| l == 1).collect();
        let a = auc_from_scores(&scores, &labels);
        assert!(a > 0.97, "AUC {a}");
    }
}
