//! Cascade placement: a third option the paper doesn't evaluate.
//!
//! The paper compares running the detector entirely at the edge against
//! entirely in the cloud. A cascade does both: the hive runs the
//! near-free Goertzel baseline on every clip and uploads **only the
//! uncertain ones** for the cloud CNN to settle. The edge then pays the
//! full upload cost only on a fraction of cycles, and the server needs
//! slots only for that fraction — so the cascade can undercut *both* pure
//! placements while keeping CNN-grade accuracy on the hard clips.

use crate::baseline::PipingDetector;
use pb_device::constants as k;
use pb_units::{Joules, Seconds, Watts};

/// A two-stage cascade policy.
#[derive(Clone, Copy, Debug)]
pub struct CascadePlacement {
    /// Half-width of the uncertainty band around the detector threshold:
    /// clips with |feature − threshold| below this are uploaded.
    pub uncertainty_band: f64,
    /// Fraction of cycles expected to fall in the band (measured on a
    /// validation set or supplied analytically).
    pub upload_fraction: f64,
    /// Energy of the stage-1 detector on the hive (near-zero: a handful
    /// of Goertzel probes).
    pub stage1_energy: Joules,
    /// Duration of the stage-1 detector on the hive.
    pub stage1_time: Seconds,
}

impl CascadePlacement {
    /// A cascade calibrated from a trained [`PipingDetector`] and its
    /// feature distribution on validation clips.
    pub fn from_detector(
        detector: &PipingDetector,
        validation: &[(Vec<f64>, pb_signal::audio::ColonyState)],
        uncertainty_band: f64,
    ) -> Self {
        assert!(uncertainty_band >= 0.0, "band must be non-negative");
        assert!(!validation.is_empty(), "need validation clips");
        let uncertain = validation
            .iter()
            .filter(|(s, _)| {
                (PipingDetector::feature(s, detector.sample_rate) - detector.threshold).abs()
                    < uncertainty_band
            })
            .count();
        let n_samples = validation[0].0.len();
        // The Pi executes ~22 MMAC/s on this workload (calibrated from the
        // CNN anchor); stage 1 is ~2 MMAC for a 10 s clip.
        let macs = PipingDetector::prediction_macs(n_samples) as f64;
        let pi_macs_per_s = 30_160_064.0 / 35.6; // CNN anchor minus overhead
        let stage1_time = Seconds(macs / pi_macs_per_s);
        let stage1_power = Watts(94.8 / 37.6); // active CNN-power class
        CascadePlacement {
            uncertainty_band,
            upload_fraction: uncertain as f64 / validation.len() as f64,
            stage1_energy: stage1_power * stage1_time,
            stage1_time,
        }
    }

    /// Expected edge energy per cycle under the cascade (collect, stage-1
    /// detect, conditional upload, result send, shutdown, sleep).
    pub fn edge_cycle_energy(&self) -> Joules {
        let active_time = k::EDGE_COLLECT_TIME
            + self.stage1_time
            + k::EDGE_SEND_AUDIO_TIME * self.upload_fraction
            + k::EDGE_SEND_RESULTS_TIME
            + k::EDGE_SHUTDOWN_TIME;
        let active_energy = k::EDGE_COLLECT_ENERGY
            + self.stage1_energy
            + k::EDGE_SEND_AUDIO_ENERGY * self.upload_fraction
            + k::EDGE_SEND_RESULTS_ENERGY
            + k::EDGE_SHUTDOWN_ENERGY;
        active_energy + k::PI3B_SLEEP_POWER * (k::CYCLE_PERIOD - active_time)
    }

    /// Expected per-client server energy at population `n` with slot
    /// capacity `cap`: only `upload_fraction` of the population needs
    /// slots each cycle, amortized over everyone.
    pub fn server_energy_per_client(&self, n: usize, cap: usize) -> Joules {
        assert!(n > 0, "need at least one client");
        let uploads = ((n as f64 * self.upload_fraction).ceil()) as usize;
        let server =
            pb_orchestra::scenario::presets::cloud_server(pb_orchestra::ServiceKind::Cnn, cap);
        let allocation = pb_orchestra::allocator::allocate(
            uploads,
            &server,
            pb_orchestra::allocator::FillPolicy::PackSlots,
            None,
        );
        let energy = pb_orchestra::simulation::servers_cycle_energy(
            &server,
            &allocation,
            &pb_orchestra::loss::LossModel::NONE,
        );
        energy / n as f64
    }

    /// Total expected energy per hive per cycle.
    pub fn total_per_client(&self, n: usize, cap: usize) -> Joules {
        self.edge_cycle_energy() + self.server_energy_per_client(n, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_signal::corpus::{Corpus, CorpusConfig};

    fn validation(n: usize, seed: u64) -> Vec<(Vec<f64>, pb_signal::audio::ColonyState)> {
        Corpus::generate(&CorpusConfig::small(n, 3.0, seed))
            .clips()
            .iter()
            .map(|c| (c.samples.clone(), c.state))
            .collect()
    }

    fn calibrated(band: f64) -> (PipingDetector, CascadePlacement) {
        let train = validation(40, 5);
        let det = PipingDetector::train(&train, 22_050.0);
        let val = validation(40, 99);
        (det, CascadePlacement::from_detector(&det, &val, band))
    }

    #[test]
    fn stage1_is_nearly_free() {
        // ≈2 J at the (very conservative) CNN-derived MAC throughput —
        // fifty times below the 94.8 J on-device CNN.
        let (_, cascade) = calibrated(1.0);
        assert!(cascade.stage1_energy < Joules(3.0), "stage-1 {}", cascade.stage1_energy);
        assert!(cascade.stage1_energy.value() * 30.0 < 94.8);
        assert!(cascade.stage1_time < Seconds(1.5));
    }

    #[test]
    fn upload_fraction_grows_with_the_band() {
        let (_, narrow) = calibrated(0.3);
        let (_, wide) = calibrated(3.0);
        assert!(narrow.upload_fraction <= wide.upload_fraction);
        assert!(narrow.upload_fraction < 1.0);
        // Zero band never uploads.
        let (_, zero) = calibrated(0.0);
        assert_eq!(zero.upload_fraction, 0.0);
    }

    #[test]
    fn cascade_edge_cost_sits_between_detector_only_and_full_upload() {
        let (_, cascade) = calibrated(1.0);
        let edge_cost = cascade.edge_cycle_energy();
        // Strictly below the always-upload Table II edge cost…
        assert!(
            edge_cost < k::EDGE_CLOUD_EDGE_TOTAL,
            "cascade edge {edge_cost} vs always-upload 322"
        );
        // …and, because the paper's CNN-on-device path pays 94.8 J for
        // what stage 1 does in <1 J, far below the edge scenario too.
        assert!(edge_cost < k::EDGE_CNN_CYCLE_TOTAL - Joules(50.0));
    }

    #[test]
    fn cascade_beats_both_pure_placements_at_scale() {
        // At 630 hives / cap 35 the pure placements cost 367.5 J (edge)
        // and ≈355.5 J (edge+cloud). A cascade uploading a fraction of
        // clips undercuts both.
        let (_, cascade) = calibrated(1.0);
        assert!(cascade.upload_fraction < 0.9, "fraction {}", cascade.upload_fraction);
        let total = cascade.total_per_client(630, 35);
        assert!(total < Joules(355.5), "cascade total {total}");
        assert!(total < Joules(367.5));
    }

    #[test]
    fn server_cost_scales_with_upload_fraction() {
        let (det, mut cascade) = calibrated(1.0);
        let _ = det;
        cascade.upload_fraction = 0.1;
        let low = cascade.server_energy_per_client(630, 35);
        cascade.upload_fraction = 0.9;
        let high = cascade.server_energy_per_client(630, 35);
        assert!(low < high);
        // Zero uploads → no server at all.
        cascade.upload_fraction = 0.0;
        assert_eq!(cascade.server_energy_per_client(630, 35), Joules::ZERO);
    }

    #[test]
    #[should_panic(expected = "validation clips")]
    fn empty_validation_panics() {
        let det = PipingDetector { threshold: 0.0, sample_rate: 22_050.0 };
        let _ = CascadePlacement::from_detector(&det, &[], 1.0);
    }
}
