//! Regionally correlated client loss.
//!
//! The paper's Loss C draws lost clients independently each cycle from
//! 𝒩(10 %·n, σ = 2). Real apiaries share weather: a cloudy morning drains
//! *every* hive's battery at once, so losses arrive in correlated bursts.
//! This module models a regional cloudiness process (AR(1)) that modulates
//! every hive's per-cycle outage probability, and quantifies how badly the
//! independent model underestimates the variability a shared server
//! actually sees.

use pb_device::gaussian;
use rand::Rng;

/// A mean-reverting AR(1) cloudiness process clamped to `[0, 1]`.
#[derive(Clone, Copy, Debug)]
pub struct RegionalWeather {
    /// Long-run mean cloudiness.
    pub mean_cloudiness: f64,
    /// Persistence φ in [0, 1): higher = longer weather spells.
    pub persistence: f64,
    /// Innovation standard deviation.
    pub volatility: f64,
}

impl Default for RegionalWeather {
    /// Temperate-summer defaults: mean 0.3, multi-cycle spells. The
    /// volatility keeps the stationary spread (σ ≈ volatility/√(1−φ²) ≈
    /// 0.11) clear of the [0, 1] clamp so the long-run mean stays at the
    /// configured value.
    fn default() -> Self {
        RegionalWeather { mean_cloudiness: 0.3, persistence: 0.9, volatility: 0.05 }
    }
}

impl RegionalWeather {
    /// Simulates `n_cycles` of cloudiness, starting at the mean.
    pub fn simulate<R: Rng + ?Sized>(&self, n_cycles: usize, rng: &mut R) -> Vec<f64> {
        assert!((0.0..1.0).contains(&self.persistence), "persistence must be in [0, 1)");
        let mut c = self.mean_cloudiness;
        (0..n_cycles)
            .map(|_| {
                c = (self.persistence * c
                    + (1.0 - self.persistence) * self.mean_cloudiness
                    + self.volatility * gaussian(rng))
                .clamp(0.0, 1.0);
                c
            })
            .collect()
    }
}

/// Weather-modulated hive outage model.
#[derive(Clone, Copy, Debug)]
pub struct CorrelatedLoss {
    /// The shared weather process.
    pub weather: RegionalWeather,
    /// Per-cycle outage probability in perfectly clear weather.
    pub base_loss: f64,
    /// Additional outage probability per unit cloudiness.
    pub weather_sensitivity: f64,
}

impl CorrelatedLoss {
    /// A model calibrated so the *mean* loss matches the paper's 10 %,
    /// with the variability carried by the weather.
    pub fn paper_mean() -> Self {
        // E[p] = base + sensitivity × mean_cloudiness = 0.01 + 0.3·0.3 = 0.10.
        CorrelatedLoss {
            weather: RegionalWeather::default(),
            base_loss: 0.01,
            weather_sensitivity: 0.30,
        }
    }

    /// Simulates lost-hive counts per cycle for `n_hives` over
    /// `n_cycles`: each cycle draws a shared cloudiness, then each hive
    /// fails independently with the cloudiness-modulated probability.
    pub fn losses<R: Rng + ?Sized>(
        &self,
        n_hives: usize,
        n_cycles: usize,
        rng: &mut R,
    ) -> Vec<usize> {
        let cloud = self.weather.simulate(n_cycles, rng);
        cloud
            .into_iter()
            .map(|c| {
                let p = (self.base_loss + self.weather_sensitivity * c).clamp(0.0, 1.0);
                (0..n_hives).filter(|_| rng.gen::<f64>() < p).count()
            })
            .collect()
    }
}

/// Summary statistics of a per-cycle loss series.
#[derive(Clone, Copy, Debug)]
pub struct LossStats {
    /// Mean lost fraction of the population.
    pub mean_fraction: f64,
    /// Standard deviation of the lost count (hives).
    pub std_hives: f64,
    /// Worst cycle's lost count.
    pub max_hives: usize,
}

/// Computes [`LossStats`] over a loss series for `n_hives`.
pub fn loss_statistics(losses: &[usize], n_hives: usize) -> LossStats {
    assert!(!losses.is_empty() && n_hives > 0, "need data and hives");
    let n = losses.len() as f64;
    let mean = losses.iter().sum::<usize>() as f64 / n;
    let var = losses.iter().map(|&l| (l as f64 - mean).powi(2)).sum::<f64>() / n;
    LossStats {
        mean_fraction: mean / n_hives as f64,
        std_hives: var.sqrt(),
        max_hives: losses.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_orchestra::loss::ClientLoss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weather_stays_in_unit_interval_and_reverts() {
        let w = RegionalWeather::default();
        let mut rng = StdRng::seed_from_u64(1);
        let series = w.simulate(5000, &mut rng);
        assert!(series.iter().all(|&c| (0.0..=1.0).contains(&c)));
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        assert!((mean - 0.3).abs() < 0.05, "mean cloudiness {mean}");
    }

    #[test]
    fn weather_is_persistent() {
        // Lag-1 autocorrelation near the configured persistence.
        let w = RegionalWeather::default();
        let mut rng = StdRng::seed_from_u64(2);
        let s = w.simulate(20_000, &mut rng);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let var = s.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / s.len() as f64;
        let cov =
            s.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>() / (s.len() - 1) as f64;
        let rho = cov / var;
        assert!(rho > 0.85, "autocorrelation {rho}");
    }

    #[test]
    fn mean_loss_matches_the_paper() {
        let model = CorrelatedLoss::paper_mean();
        let mut rng = StdRng::seed_from_u64(3);
        let losses = model.losses(200, 3000, &mut rng);
        let stats = loss_statistics(&losses, 200);
        assert!((stats.mean_fraction - 0.10).abs() < 0.015, "mean {}", stats.mean_fraction);
    }

    #[test]
    fn correlation_inflates_variability_far_beyond_the_papers_sigma() {
        // The headline claim: same mean loss, wildly different spread.
        let n_hives = 200;
        let cycles = 3000;
        let model = CorrelatedLoss::paper_mean();
        let mut rng = StdRng::seed_from_u64(4);
        let correlated = loss_statistics(&model.losses(n_hives, cycles, &mut rng), n_hives);

        let paper = ClientLoss::default();
        let mut rng = StdRng::seed_from_u64(4);
        let independent: Vec<usize> = (0..cycles).map(|_| paper.draw(n_hives, &mut rng)).collect();
        let indep = loss_statistics(&independent, n_hives);

        assert!(
            correlated.std_hives > 3.0 * indep.std_hives,
            "correlated σ {} vs independent σ {}",
            correlated.std_hives,
            indep.std_hives
        );
        // Worst cycles lose several times the mean.
        assert!(correlated.max_hives as f64 > 2.0 * n_hives as f64 * correlated.mean_fraction);
    }

    #[test]
    fn no_weather_sensitivity_recovers_binomial() {
        let model = CorrelatedLoss {
            weather: RegionalWeather::default(),
            base_loss: 0.1,
            weather_sensitivity: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let losses = model.losses(200, 2000, &mut rng);
        let stats = loss_statistics(&losses, 200);
        // Binomial σ = √(n p (1−p)) = √18 ≈ 4.24.
        assert!((stats.std_hives - 4.24).abs() < 0.6, "σ {}", stats.std_hives);
    }

    #[test]
    #[should_panic(expected = "need data")]
    fn empty_stats_panic() {
        let _ = loss_statistics(&[], 10);
    }
}
