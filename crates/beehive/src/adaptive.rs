//! Closed-loop adaptive duty cycling.
//!
//! Figure 2a shows what a fixed schedule does on a constrained battery:
//! the node runs flat out until the battery dies each night and silently
//! loses every routine until sunrise. An energy-aware node can do better —
//! the paper's conclusion calls for "connected beehives' intelligence to
//! tune its parameters". [`AdaptivePolicy`] implements the simplest such
//! controller: it stretches the wake-up period as the state of charge
//! drops, trading data freshness for continuous operation, and the
//! comparison harness quantifies the trade against a fixed schedule.

use crate::hive::SmartBeehive;
use pb_orchestra::engine::SimContext;
use pb_units::{Joules, Seconds, TimeOfDay, Watts};

/// A state-of-charge-driven wake-period controller.
#[derive(Clone, Debug)]
pub struct AdaptivePolicy {
    /// Wake period while the battery is comfortable.
    pub normal_period: Seconds,
    /// Wake period once SoC falls below `low_threshold`.
    pub low_power_period: Seconds,
    /// SoC fraction below which the node slows down.
    pub low_threshold: f64,
    /// SoC fraction below which the node skips routines entirely (only
    /// the always-on logger keeps running).
    pub critical_threshold: f64,
}

impl Default for AdaptivePolicy {
    /// Slow from 10-minute to 60-minute cycles below 40 % SoC; hold all
    /// routines below 15 %.
    fn default() -> Self {
        AdaptivePolicy {
            normal_period: Seconds::from_minutes(10.0),
            low_power_period: Seconds::from_minutes(60.0),
            low_threshold: 0.40,
            critical_threshold: 0.15,
        }
    }
}

/// What the controller decides at a wake-up opportunity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Run the routine and wake again after the normal period.
    Run,
    /// Run, but schedule the next wake-up after the long period.
    RunSlow,
    /// Skip the routine; re-evaluate after the long period.
    Skip,
}

impl AdaptivePolicy {
    /// Creates a policy, validating the thresholds.
    pub fn new(
        normal_period: Seconds,
        low_power_period: Seconds,
        low_threshold: f64,
        critical_threshold: f64,
    ) -> Self {
        assert!(
            normal_period.value() > 0.0 && low_power_period >= normal_period,
            "low-power period must not be shorter than the normal one"
        );
        assert!((0.0..=1.0).contains(&low_threshold) && (0.0..=1.0).contains(&critical_threshold));
        assert!(critical_threshold <= low_threshold, "critical must be below low threshold");
        AdaptivePolicy { normal_period, low_power_period, low_threshold, critical_threshold }
    }

    /// The controller's decision at state-of-charge `soc` (fraction).
    pub fn decide(&self, soc: f64) -> Decision {
        if soc < self.critical_threshold {
            Decision::Skip
        } else if soc < self.low_threshold {
            Decision::RunSlow
        } else {
            Decision::Run
        }
    }

    /// Period until the next wake-up opportunity after a decision.
    pub fn next_period(&self, decision: Decision) -> Seconds {
        match decision {
            Decision::Run => self.normal_period,
            Decision::RunSlow | Decision::Skip => self.low_power_period,
        }
    }
}

/// Result of an adaptive (or fixed) duty-cycle run.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveRunSummary {
    /// Routines executed to completion.
    pub routines_completed: usize,
    /// Routines attempted but starved by a brown-out.
    pub routines_failed: usize,
    /// Wake-up opportunities skipped by the controller.
    pub routines_skipped: usize,
    /// Total energy delivered to the node.
    pub delivered: Joules,
    /// Cumulative brown-out time.
    pub brown_out_time: Seconds,
}

impl AdaptiveRunSummary {
    /// Fraction of *executed* attempts that completed.
    pub fn reliability(&self) -> f64 {
        let attempts = self.routines_completed + self.routines_failed;
        if attempts == 0 {
            0.0
        } else {
            self.routines_completed as f64 / attempts as f64
        }
    }
}

/// Runs `hive` for `duration` under the adaptive policy (or a fixed
/// schedule when `policy` is `None`, using the hive's own scheduler
/// period), at `step` resolution.
pub fn run_adaptive(
    hive: &SmartBeehive,
    policy: Option<&AdaptivePolicy>,
    duration: Seconds,
    step: Seconds,
    seed: u64,
) -> AdaptiveRunSummary {
    assert!(step.value() > 0.0, "step must be positive");
    let mut hive = hive.clone();
    // Point 0 of the context is the master seed itself, so this preserves
    // the streams of the former direct StdRng::seed_from_u64(seed).
    let mut rng = SimContext::new(seed).point_rng(0);
    let routine = hive.routine_duration();
    let routine_power = hive.pi3b.base_routine_energy() / routine;
    let base_load = hive.pi_zero.sleep_power;
    let sleep_load = base_load + hive.pi3b.sleep_power;

    let n = (duration.value() / step.value()).round() as usize;
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut skipped = 0usize;

    // Next wake-up opportunity and the end of any routine in progress.
    let mut next_wake = Seconds::ZERO;
    let mut routine_until = Seconds::ZERO;
    let mut routine_ok = true;
    let mut routine_open = false;

    for i in 0..n {
        let now = step * i as f64;
        if now >= next_wake {
            let soc = hive.power.battery().soc().fraction();
            let decision = match policy {
                Some(p) => p.decide(soc),
                None => Decision::Run,
            };
            let period = match policy {
                Some(p) => p.next_period(decision),
                None => hive.scheduler.period,
            };
            next_wake = now + period;
            if decision == Decision::Skip {
                skipped += 1;
            } else {
                routine_until = now + routine;
                routine_ok = true;
                routine_open = true;
            }
        }

        let in_routine = now < routine_until;
        let load = if in_routine { base_load + routine_power } else { sleep_load };
        let result = hive.power.step(load, step, &mut rng);
        if in_routine && result.brown_out {
            routine_ok = false;
        }
        if routine_open && !in_routine {
            if routine_ok {
                completed += 1;
            } else {
                failed += 1;
            }
            routine_open = false;
        }
    }
    if routine_open {
        if routine_ok {
            completed += 1;
        } else {
            failed += 1;
        }
    }

    AdaptiveRunSummary {
        routines_completed: completed,
        routines_failed: failed,
        routines_skipped: skipped,
        delivered: hive.power.total_delivered(),
        brown_out_time: hive.power.brown_out_time(),
    }
}

/// Convenience: true while the sun is down in the default irradiance model
/// (used by reporting).
pub fn is_night(t: TimeOfDay) -> bool {
    !pb_energy::solar::Irradiance::default().is_daylight(t)
}

/// The headroom a policy keeps: mean load under the slow period.
pub fn slow_mode_load(hive: &SmartBeehive, policy: &AdaptivePolicy) -> Watts {
    let mut slow = hive.clone();
    slow.scheduler = pb_device::wake::WakeScheduler::new(policy.low_power_period, Seconds::ZERO);
    slow.mean_load()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_energy::battery::Battery;
    use pb_energy::harvest::PowerSystemConfig;
    use pb_units::WattHours;

    fn constrained_hive() -> SmartBeehive {
        SmartBeehive::deployed("adaptive", Seconds::from_minutes(10.0)).with_power_system(
            PowerSystemConfig {
                battery: Battery::new(WattHours(8.0), 0.6),
                ..PowerSystemConfig::default()
            },
        )
    }

    #[test]
    fn decisions_follow_thresholds() {
        let p = AdaptivePolicy::default();
        assert_eq!(p.decide(0.9), Decision::Run);
        assert_eq!(p.decide(0.39), Decision::RunSlow);
        assert_eq!(p.decide(0.10), Decision::Skip);
        assert_eq!(p.next_period(Decision::Run), Seconds::from_minutes(10.0));
        assert_eq!(p.next_period(Decision::Skip), Seconds::from_minutes(60.0));
    }

    #[test]
    #[should_panic(expected = "must not be shorter")]
    fn inverted_periods_panic() {
        let _ =
            AdaptivePolicy::new(Seconds::from_minutes(60.0), Seconds::from_minutes(10.0), 0.4, 0.1);
    }

    #[test]
    #[should_panic(expected = "critical must be below")]
    fn inverted_thresholds_panic() {
        let _ =
            AdaptivePolicy::new(Seconds::from_minutes(10.0), Seconds::from_minutes(60.0), 0.2, 0.5);
    }

    #[test]
    fn adaptive_eliminates_failed_routines() {
        let hive = constrained_hive();
        let week = Seconds::from_days(7.0);
        let step = Seconds(60.0);
        let fixed = run_adaptive(&hive, None, week, step, 9);
        let adaptive = run_adaptive(&hive, Some(&AdaptivePolicy::default()), week, step, 9);
        // The fixed schedule loses routines to the nightly brown-outs…
        assert!(fixed.routines_failed > 20, "fixed failed {}", fixed.routines_failed);
        // …the controller converts failures into deliberate skips.
        assert!(
            adaptive.routines_failed * 4 < fixed.routines_failed,
            "adaptive failed {} vs fixed {}",
            adaptive.routines_failed,
            fixed.routines_failed
        );
        assert!(adaptive.routines_skipped > 0);
        assert!(adaptive.reliability() > fixed.reliability());
        // And it starves less.
        assert!(adaptive.brown_out_time < fixed.brown_out_time);
    }

    #[test]
    fn big_battery_makes_policies_equivalent() {
        let hive = SmartBeehive::deployed("big", Seconds::from_minutes(10.0));
        let day = Seconds::from_days(1.0);
        let fixed = run_adaptive(&hive, None, day, Seconds(60.0), 3);
        let adaptive = run_adaptive(&hive, Some(&AdaptivePolicy::default()), day, Seconds(60.0), 3);
        assert_eq!(fixed.routines_failed, 0);
        assert_eq!(adaptive.routines_failed, 0);
        assert_eq!(adaptive.routines_skipped, 0);
        assert_eq!(fixed.routines_completed, adaptive.routines_completed);
    }

    #[test]
    fn reliability_edge_cases() {
        let s = AdaptiveRunSummary {
            routines_completed: 0,
            routines_failed: 0,
            routines_skipped: 5,
            delivered: Joules::ZERO,
            brown_out_time: Seconds::ZERO,
        };
        assert_eq!(s.reliability(), 0.0);
    }

    #[test]
    fn slow_mode_load_is_lower() {
        let hive = constrained_hive();
        let p = AdaptivePolicy::default();
        assert!(slow_mode_load(&hive, &p) < hive.mean_load());
    }

    #[test]
    fn night_helper() {
        assert!(is_night(TimeOfDay::MIDNIGHT));
        assert!(!is_night(TimeOfDay::NOON));
    }
}
