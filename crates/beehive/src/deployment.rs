//! Week-long deployment simulation — the Figure 2 reproduction.
//!
//! Steps a [`SmartBeehive`] through several simulated days: the solar
//! power system serves the two Raspberry Pis, routines fire at every GPIO
//! wake-up, and the record stream carries the same channels Figure 2
//! plots — node power, in-hive temperature/humidity, ambient weather and
//! the night brown-outs.

use crate::climate::AmbientWeather;
use crate::hive::SmartBeehive;
use pb_units::{Celsius, Joules, Percent, Seconds, TimeOfDay, Watts};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deployment simulation parameters.
#[derive(Clone, Debug)]
pub struct DeploymentConfig {
    /// Simulated duration.
    pub duration: Seconds,
    /// Simulation step (Figure 2 is plotted at minutes-scale resolution).
    pub step: Seconds,
    /// Ambient weather model.
    pub weather: AmbientWeather,
    /// RNG seed for irradiance, weather noise and network jitter.
    pub seed: u64,
}

impl Default for DeploymentConfig {
    /// One week at 1-minute resolution — the Figure 2a setting.
    fn default() -> Self {
        DeploymentConfig {
            duration: Seconds::from_days(7.0),
            step: Seconds(60.0),
            weather: AmbientWeather::default(),
            seed: 0xF162,
        }
    }
}

/// One sample of the deployment record — one x-position of Figure 2.
#[derive(Clone, Copy, Debug)]
pub struct DeploymentRecord {
    /// Simulation timestamp.
    pub at: Seconds,
    /// Time of day.
    pub time: TimeOfDay,
    /// Node electrical load requested at this time.
    pub load: Watts,
    /// Power actually delivered by the energy node.
    pub delivered_power: Watts,
    /// Battery state of charge (fraction).
    pub soc: f64,
    /// True when the node browned out in this step.
    pub brown_out: bool,
    /// In-hive temperature.
    pub hive_temp: Celsius,
    /// In-hive relative humidity.
    pub hive_humidity: Percent,
    /// Ambient temperature.
    pub ambient_temp: Celsius,
    /// Ambient relative humidity.
    pub ambient_humidity: Percent,
}

/// Aggregates of a deployment run.
#[derive(Clone, Copy, Debug)]
pub struct DeploymentSummary {
    /// Total solar energy harvested (after conversion).
    pub harvested: Joules,
    /// Total energy delivered to the node.
    pub delivered: Joules,
    /// Cumulative brown-out time.
    pub brown_out_time: Seconds,
    /// Wake-ups whose routine window was fully powered.
    pub routines_completed: usize,
    /// Wake-ups that fell (partly) into a brown-out.
    pub routines_missed: usize,
}

/// Runs the deployment simulation.
pub fn simulate(
    hive: &SmartBeehive,
    config: &DeploymentConfig,
) -> (Vec<DeploymentRecord>, DeploymentSummary) {
    assert!(config.step.value() > 0.0, "step must be positive");
    let mut hive = hive.clone();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = (config.duration.value() / config.step.value()).round() as usize;
    let mut records = Vec::with_capacity(n);

    // Track routine outcomes per wake-up.
    let mut routines_completed = 0usize;
    let mut routines_missed = 0usize;
    let mut current_wake: Option<(Seconds, bool)> = None; // (wake time, browned)

    for i in 0..n {
        let at = config.step * i as f64;
        let time = TimeOfDay::at(at);
        let load = hive.load_at(at);
        let step_result = hive.power.step(load, config.step, &mut rng);

        // Routine accounting: a wake-up is missed if any step of its
        // routine window browned out.
        let routine = hive.routine_duration();
        let wake = hive.scheduler.next_after(at + Seconds(1e-9) - hive.scheduler.period);
        let in_routine = at.value() - wake.value() < routine.value() && at >= wake;
        if in_routine {
            match &mut current_wake {
                Some((w, browned)) if *w == wake => *browned |= step_result.brown_out,
                _ => {
                    if let Some((_, browned)) = current_wake.take() {
                        if browned {
                            routines_missed += 1;
                        } else {
                            routines_completed += 1;
                        }
                    }
                    current_wake = Some((wake, step_result.brown_out));
                }
            }
        }

        let ambient_temp = config.weather.temperature(time, &mut rng);
        let ambient_humidity = config.weather.humidity(time, &mut rng);
        records.push(DeploymentRecord {
            at,
            time,
            load,
            delivered_power: step_result.delivered / config.step,
            soc: step_result.soc,
            brown_out: step_result.brown_out,
            hive_temp: hive.climate.temperature(ambient_temp),
            hive_humidity: hive.climate.humidity(ambient_humidity),
            ambient_temp,
            ambient_humidity,
        });
    }
    if let Some((_, browned)) = current_wake {
        if browned {
            routines_missed += 1;
        } else {
            routines_completed += 1;
        }
    }

    let summary = DeploymentSummary {
        harvested: hive.power.total_harvested(),
        delivered: hive.power.total_delivered(),
        brown_out_time: hive.power.brown_out_time(),
        routines_completed,
        routines_missed,
    };
    (records, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_energy::battery::Battery;
    use pb_energy::harvest::PowerSystemConfig;
    use pb_units::WattHours;

    fn week_config(seed: u64) -> DeploymentConfig {
        DeploymentConfig { seed, ..DeploymentConfig::default() }
    }

    fn small_battery_hive() -> SmartBeehive {
        // A battery too small to last the night — the Figure 2a regime.
        SmartBeehive::deployed("fig2", Seconds::from_minutes(10.0)).with_power_system(
            PowerSystemConfig {
                battery: Battery::new(WattHours(8.0), 0.5),
                ..PowerSystemConfig::default()
            },
        )
    }

    #[test]
    fn record_stream_has_expected_length_and_channels() {
        let (records, _) = simulate(&small_battery_hive(), &week_config(1));
        assert_eq!(records.len(), 7 * 24 * 60);
        let r = &records[300];
        assert!(r.load > Watts::ZERO);
        assert!((0.0..=1.0).contains(&r.soc));
        assert!(r.hive_humidity <= Percent(100.0));
    }

    #[test]
    fn night_brown_outs_appear_and_days_recover() {
        // Figure 2a "shows moments when the system is not running due to
        // the lack of light at night".
        let (records, summary) = simulate(&small_battery_hive(), &week_config(2));
        let night_outs = records
            .iter()
            .filter(|r| r.brown_out)
            .filter(|r| r.time.hours() < 7.0 || r.time.hours() > 20.0)
            .count();
        let day_outs = records
            .iter()
            .filter(|r| r.brown_out)
            .filter(|r| r.time.hours() > 10.0 && r.time.hours() < 17.0)
            .count();
        assert!(night_outs > 100, "expected night outages, got {night_outs}");
        assert_eq!(day_outs, 0, "no outages in full daylight");
        assert!(summary.brown_out_time > Seconds(3600.0));
        assert!(summary.routines_missed > 0);
        assert!(summary.routines_completed > summary.routines_missed);
    }

    #[test]
    fn colonized_hive_is_warm_at_night() {
        let (records, _) = simulate(&small_battery_hive(), &week_config(3));
        let midnight: Vec<&DeploymentRecord> =
            records.iter().filter(|r| r.time.hours() < 1.0).collect();
        assert!(!midnight.is_empty());
        for r in midnight {
            assert!(r.hive_temp.value() > 30.0, "brood nest at {}", r.hive_temp);
            assert!(r.hive_temp > r.ambient_temp);
        }
    }

    #[test]
    fn empty_hive_tracks_ambient_temperature() {
        // The Figure 2a footnote: no colony → "abnormally low inside
        // temperature".
        let hive = small_battery_hive().without_colony();
        let (records, _) = simulate(&hive, &week_config(4));
        for r in records.iter().step_by(100) {
            assert!((r.hive_temp.value() - r.ambient_temp.value()).abs() < 1.5);
        }
    }

    #[test]
    fn big_battery_eliminates_outages() {
        let hive = SmartBeehive::deployed("big", Seconds::from_minutes(10.0));
        let (_, summary) = simulate(&hive, &week_config(5));
        assert_eq!(summary.routines_missed, 0);
        assert_eq!(summary.brown_out_time, Seconds::ZERO);
        // ~1008 ten-minute wake-ups in a week.
        assert!(
            (990..=1010).contains(&summary.routines_completed),
            "completed {}",
            summary.routines_completed
        );
    }

    #[test]
    fn energy_conservation() {
        let hive = small_battery_hive();
        let initial = hive.power.battery().stored();
        let (_, summary) = simulate(&hive, &week_config(6));
        assert!(summary.delivered <= summary.harvested + initial + Joules(1.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&small_battery_hive(), &week_config(7)).1;
        let b = simulate(&small_battery_hive(), &week_config(7)).1;
        assert_eq!(a.routines_completed, b.routines_completed);
        assert!((a.delivered - b.delivered).abs() < Joules(1e-9));
    }
}
