//! In-hive and ambient climate models — the context curves of Figure 2.
//!
//! Figure 2 plots the in-hive temperature and humidity next to the energy
//! trace, and notes "the colony of bees was yet to be introduced inside the
//! beehive, hence the abnormally low inside temperature": an empty hive
//! tracks ambient, while a colonized hive thermoregulates its brood nest to
//! ≈ 35 °C.

use pb_device::gaussian;
use pb_units::{Celsius, Percent, TimeOfDay};
use rand::Rng;

/// Diurnal ambient weather.
#[derive(Clone, Copy, Debug)]
pub struct AmbientWeather {
    /// Daily mean temperature.
    pub mean_temp: Celsius,
    /// Half of the day/night temperature swing.
    pub temp_amplitude: Celsius,
    /// Daily mean relative humidity.
    pub mean_humidity: Percent,
    /// Half of the humidity swing (inverse phase with temperature).
    pub humidity_amplitude: Percent,
    /// Standard deviation of short-term noise on both signals.
    pub noise: f64,
}

impl Default for AmbientWeather {
    /// A temperate summer in Lyon/Cachan.
    fn default() -> Self {
        AmbientWeather {
            mean_temp: Celsius(20.0),
            temp_amplitude: Celsius(6.0),
            mean_humidity: Percent(60.0),
            humidity_amplitude: Percent(15.0),
            noise: 0.5,
        }
    }
}

impl AmbientWeather {
    /// Ambient temperature at a time of day (coolest ≈ 05:00, warmest ≈
    /// 17:00), with measurement noise.
    pub fn temperature<R: Rng + ?Sized>(&self, t: TimeOfDay, rng: &mut R) -> Celsius {
        let phase = (t.hours() - 5.0) / 24.0 * std::f64::consts::TAU;
        Celsius(
            self.mean_temp.value() - self.temp_amplitude.value() * phase.cos()
                + self.noise * gaussian(rng),
        )
    }

    /// Ambient relative humidity (inverse phase: most humid at dawn).
    pub fn humidity<R: Rng + ?Sized>(&self, t: TimeOfDay, rng: &mut R) -> Percent {
        let phase = (t.hours() - 5.0) / 24.0 * std::f64::consts::TAU;
        Percent(
            (self.mean_humidity.value()
                + self.humidity_amplitude.value() * phase.cos()
                + 2.0 * self.noise * gaussian(rng))
            .clamp(0.0, 100.0),
        )
    }
}

/// The hive's internal climate.
#[derive(Clone, Copy, Debug)]
pub struct HiveClimate {
    /// True once a colony lives in the hive.
    pub colonized: bool,
    /// Brood-nest setpoint a healthy colony regulates to.
    pub brood_setpoint: Celsius,
    /// How strongly the colony pulls the interior toward the setpoint
    /// (0 = tracks ambient, 1 = perfect regulation).
    pub regulation: f64,
}

impl Default for HiveClimate {
    fn default() -> Self {
        HiveClimate { colonized: true, brood_setpoint: Celsius(35.0), regulation: 0.85 }
    }
}

impl HiveClimate {
    /// An empty hive (the state of the Figure 2a recording).
    pub fn empty() -> Self {
        HiveClimate { colonized: false, ..HiveClimate::default() }
    }

    /// In-hive temperature given the ambient temperature.
    pub fn temperature(&self, ambient: Celsius) -> Celsius {
        if self.colonized {
            Celsius(
                ambient.value() + self.regulation * (self.brood_setpoint.value() - ambient.value()),
            )
        } else {
            // Empty hive: mild thermal inertia only.
            Celsius(ambient.value() + 1.0)
        }
    }

    /// In-hive relative humidity given ambient humidity: a colony keeps the
    /// brood nest in the 50–60 % band.
    pub fn humidity(&self, ambient: Percent) -> Percent {
        if self.colonized {
            Percent(ambient.value() + 0.7 * (55.0 - ambient.value()))
        } else {
            ambient
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ambient_day_night_swing() {
        let w = AmbientWeather { noise: 0.0, ..AmbientWeather::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let dawn = w.temperature(TimeOfDay::from_hm(5, 0), &mut rng);
        let afternoon = w.temperature(TimeOfDay::from_hm(17, 0), &mut rng);
        assert!((dawn.value() - 14.0).abs() < 1e-9);
        assert!((afternoon.value() - 26.0).abs() < 1e-9);
    }

    #[test]
    fn humidity_is_inverse_phase_and_clamped() {
        let w = AmbientWeather { noise: 0.0, ..AmbientWeather::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let dawn = w.humidity(TimeOfDay::from_hm(5, 0), &mut rng);
        let afternoon = w.humidity(TimeOfDay::from_hm(17, 0), &mut rng);
        assert!(dawn > afternoon);
        let extreme = AmbientWeather {
            mean_humidity: Percent(95.0),
            humidity_amplitude: Percent(20.0),
            noise: 0.0,
            ..AmbientWeather::default()
        };
        assert!(extreme.humidity(TimeOfDay::from_hm(5, 0), &mut rng) <= Percent(100.0));
    }

    #[test]
    fn colonized_hive_regulates_toward_35() {
        let hive = HiveClimate::default();
        let cold = hive.temperature(Celsius(10.0));
        assert!(cold.value() > 30.0, "brood nest at {cold}");
        let hot = hive.temperature(Celsius(40.0));
        assert!(hot.value() < 37.0, "brood nest at {hot}");
    }

    #[test]
    fn empty_hive_tracks_ambient() {
        // The "abnormally low inside temperature" of Figure 2a.
        let hive = HiveClimate::empty();
        let t = hive.temperature(Celsius(12.0));
        assert!((t.value() - 13.0).abs() < 1e-9);
        assert_eq!(hive.humidity(Percent(70.0)), Percent(70.0));
    }

    #[test]
    fn colonized_humidity_in_brood_band() {
        let hive = HiveClimate::default();
        let h = hive.humidity(Percent(90.0));
        assert!(h.value() > 55.0 && h.value() < 70.0, "humidity {h}");
    }
}
