//! The end-to-end queen-detection pipeline and the Figure 5 sweep.
//!
//! Pipeline (identical to the paper's): 10 s of hive audio at 22 050 Hz →
//! log-mel spectrogram (n_fft 2048, hop 512, 128 mels) → either a flat
//! feature vector for the RBF-SVM or a resized S×S image for the CNN. The
//! Figure 5 sweep trains/evaluates the CNN at several input sides S and
//! pairs each accuracy with the FLOP-derived Raspberry-Pi inference energy.

use pb_device::compute::ComputeModel;
use pb_ml::dataset::Dataset;
use pb_ml::metrics::accuracy;
use pb_ml::nn::resnet::{ResNetConfig, ResNetLite};
use pb_ml::nn::train::{evaluate, train, TrainConfig};
use pb_ml::svm::{RbfSvm, SvmConfig};
use pb_ml::tensor::FeatureMap;
use pb_signal::corpus::{Corpus, CorpusConfig};
use pb_signal::pipeline::MelPipeline;
use pb_signal::stft::SpectrogramParams;
use pb_units::Joules;

/// Configuration of the training/evaluation pipeline.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Corpus to synthesize (the paper used 1647 clips of 10 s; smaller
    /// settings keep tests and examples fast).
    pub corpus: CorpusConfig,
    /// STFT parameters (defaults to the paper's).
    pub stft: SpectrogramParams,
    /// Number of mel bands.
    pub n_mels: usize,
    /// Held-out test fraction.
    pub test_fraction: f64,
    /// CNN training hyperparameters.
    pub train: TrainConfig,
    /// Split/shuffle seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            corpus: CorpusConfig::default(),
            stft: SpectrogramParams::default(),
            n_mels: pb_signal::N_MELS,
            test_fraction: 0.25,
            train: TrainConfig::default(),
            seed: 0xB0B,
        }
    }
}

impl PipelineConfig {
    /// A small configuration for tests and quick examples: `n` clips of
    /// `secs` seconds, 32 mel bands, light CNN training.
    pub fn small(n: usize, secs: f64, seed: u64) -> Self {
        PipelineConfig {
            corpus: CorpusConfig::small(n, secs, seed),
            stft: SpectrogramParams { n_fft: 1024, hop: 512, ..SpectrogramParams::default() },
            n_mels: 32,
            test_fraction: 0.25,
            train: TrainConfig { epochs: 14, lr: 0.04, batch_size: 16, seed },
            seed,
        }
    }
}

/// One point of the Figure 5 resolution sweep.
#[derive(Clone, Copy, Debug)]
pub struct ResolutionPoint {
    /// CNN input side length (images are side × side).
    pub side: usize,
    /// Held-out classification accuracy at this resolution.
    pub accuracy: f64,
    /// Multiply-accumulate count of one inference.
    pub macs: u64,
    /// FLOP-derived Raspberry-Pi inference energy at this resolution.
    pub edge_energy: Joules,
}

/// The end-to-end pipeline: corpus, features and both models.
pub struct QueenDetectionPipeline {
    config: PipelineConfig,
    corpus: Corpus,
    features: MelPipeline,
}

impl QueenDetectionPipeline {
    /// Synthesizes the corpus and plans the feature pipeline (STFT plan +
    /// filterbank built once, reused for every clip).
    pub fn new(config: PipelineConfig) -> Self {
        let corpus = Corpus::generate(&config.corpus);
        let features =
            MelPipeline::new(config.stft, config.n_mels, config.corpus.synth.sample_rate);
        QueenDetectionPipeline { config, corpus, features }
    }

    /// The synthesized corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Per-band-mean mel features and labels for the SVM path.
    ///
    /// The paper passes mel "vector features … as it is" to the SVM; we
    /// use the per-band temporal means, which keep the SVM's input
    /// dimension at `n_mels` and the classes separable by construction of
    /// the synthesizer.
    pub fn svm_dataset(&self) -> Dataset {
        let feats = self.corpus.mel_features(&self.features);
        let (features, labels) =
            feats.into_iter().map(|(mel, state)| (mel.band_means(), state.label())).unzip();
        Dataset::from_pairs(features, labels)
    }

    /// Trains the SVM with the paper's hyperparameters (C = 20, γ = 10⁻⁵ on
    /// dB-scale features) and returns `(model, held-out accuracy)`.
    pub fn train_svm(&self) -> (RbfSvm, f64) {
        let split = self.svm_dataset().split(self.config.test_fraction, self.config.seed);
        let svm = RbfSvm::train(&split.train, SvmConfig::default());
        let acc = accuracy(&svm.predict_all(&split.test), split.test.labels());
        (svm, acc)
    }

    /// Spectrogram images at `side × side` with labels, for the CNN path.
    pub fn image_dataset(&self, side: usize) -> Vec<(FeatureMap, usize)> {
        self.corpus
            .spectrogram_images(&self.features, side)
            .into_iter()
            .map(|(img, state)| {
                (FeatureMap::from_image(img.width(), img.height(), img.pixels()), state.label())
            })
            .collect()
    }

    /// Trains the CNN at input side `side` and returns `(model, held-out
    /// accuracy)`.
    pub fn train_cnn(&self, side: usize) -> (ResNetLite, f64) {
        let data = self.image_dataset(side);
        let n_test = (data.len() as f64 * self.config.test_fraction).round() as usize;
        // Deterministic split: the corpus alternates labels, so holding
        // out whole *pairs* at a stride keeps both splits balanced.
        let stride = (1.0 / self.config.test_fraction).round().max(1.0) as usize;
        let (test, train_data): (Vec<_>, Vec<_>) = {
            let mut test = Vec::new();
            let mut tr = Vec::new();
            for (i, ex) in data.into_iter().enumerate() {
                if (i / 2) % stride == 0 && test.len() < n_test {
                    test.push(ex);
                } else {
                    tr.push(ex);
                }
            }
            (test, tr)
        };
        // From-scratch training of a small CNN occasionally collapses to a
        // one-class predictor for an unlucky initialization; retry with a
        // fresh seed and a longer schedule, keeping the best attempt.
        let mut best: Option<(ResNetLite, f64)> = None;
        for attempt in 0..3u64 {
            let mut net = ResNetLite::new(ResNetConfig {
                seed: self.config.seed.wrapping_add(attempt.wrapping_mul(0x9E37)),
                ..ResNetConfig::default()
            });
            let cfg = TrainConfig {
                epochs: self.config.train.epochs + 6 * attempt as usize,
                seed: self.config.train.seed + attempt,
                ..self.config.train
            };
            let report = train(&mut net, &train_data, &cfg);
            let train_acc = report.final_train_accuracy;
            if best.as_ref().is_none_or(|(_, b)| train_acc > *b) {
                best = Some((net, train_acc));
            }
            if train_acc >= 0.9 {
                break;
            }
        }
        let (net, _) = best.expect("at least one training attempt runs");
        let acc = evaluate(&net, &test);
        (net, acc)
    }

    /// Runs the Figure 5 sweep: trains and evaluates the CNN at each input
    /// side, pairing accuracy with the calibrated Raspberry-Pi inference
    /// energy (anchored so a 100×100 inference costs the paper's 94.8 J).
    pub fn resolution_sweep(&self, sides: &[usize]) -> Vec<ResolutionPoint> {
        let reference = ResNetLite::new(ResNetConfig::default());
        let anchor_macs = reference.forward_macs(100, 100);
        let edge = ComputeModel::pi3b_cnn(anchor_macs);
        sides
            .iter()
            .map(|&side| {
                let (net, acc) = self.train_cnn(side);
                let macs = net.forward_macs(side, side);
                ResolutionPoint {
                    side,
                    accuracy: acc,
                    macs,
                    edge_energy: edge.execute(macs).energy,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pipeline() -> QueenDetectionPipeline {
        QueenDetectionPipeline::new(PipelineConfig::small(48, 1.0, 11))
    }

    #[test]
    fn svm_dataset_is_balanced_and_sized() {
        let p = small_pipeline();
        let d = p.svm_dataset();
        assert_eq!(d.len(), 48);
        assert_eq!(d.dim(), 32);
        let positives = d.labels().iter().filter(|&&l| l == 1).count();
        assert_eq!(positives, 24);
    }

    #[test]
    fn svm_learns_queen_detection() {
        let p = small_pipeline();
        let (_, acc) = p.train_svm();
        assert!(acc >= 0.9, "SVM held-out accuracy {acc}");
    }

    #[test]
    fn cnn_learns_queen_detection_at_high_resolution() {
        let p = small_pipeline();
        let (_, acc) = p.train_cnn(32);
        assert!(acc >= 0.85, "CNN held-out accuracy {acc}");
    }

    #[test]
    fn image_dataset_shapes() {
        let p = small_pipeline();
        let data = p.image_dataset(24);
        assert_eq!(data.len(), 48);
        for (img, label) in &data {
            assert_eq!(img.shape(), (1, 24, 24));
            assert!(*label <= 1);
        }
    }

    #[test]
    fn resolution_sweep_energy_is_monotone_and_anchored() {
        let p = small_pipeline();
        let points = p.resolution_sweep(&[16, 32]);
        assert_eq!(points.len(), 2);
        assert!(points[0].edge_energy < points[1].edge_energy);
        assert!(points[0].macs < points[1].macs);
        // The anchor: a 100×100 inference must cost the paper's 94.8 J.
        let reference = ResNetLite::new(ResNetConfig::default());
        let edge = ComputeModel::pi3b_cnn(reference.forward_macs(100, 100));
        let e100 = edge.execute(reference.forward_macs(100, 100)).energy;
        assert!((e100 - Joules(94.8)).abs() < Joules(1e-6));
    }
}
