//! Queen-loss alerting.
//!
//! The end of the pipeline the paper motivates ("sending alerts to
//! beekeepers"): per-cycle queen detections are noisy, so raising an alarm
//! on a single negative reading at 99 % accuracy would page the beekeeper
//! every ~100 cycles per healthy hive. [`AlertPolicy`] debounces by
//! requiring `k` consecutive negative detections, and provides the
//! closed-form false-alarm and detection-delay trade-off so `k` can be
//! chosen, which a seeded simulation cross-checks.

use pb_units::Seconds;
use rand::Rng;

/// A consecutive-detection alerting policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlertPolicy {
    /// Consecutive queenless detections required to raise the alarm.
    pub consecutive_required: usize,
}

impl AlertPolicy {
    /// Creates a policy (k ≥ 1).
    pub fn new(consecutive_required: usize) -> Self {
        assert!(consecutive_required >= 1, "need at least one detection");
        AlertPolicy { consecutive_required }
    }

    /// Probability a *healthy* hive triggers a false alarm within `n`
    /// cycles, given per-cycle false-negative... i.e. false-queenless
    /// probability `p` (= 1 − specificity). Computed exactly by dynamic
    /// programming over run lengths.
    pub fn false_alarm_probability(&self, p: f64, n_cycles: usize) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let k = self.consecutive_required;
        // state = current run of consecutive false positives (0..k);
        // absorbing state k = alarm fired.
        let mut dist = vec![0.0f64; k + 1];
        dist[0] = 1.0;
        for _ in 0..n_cycles {
            let mut next = vec![0.0f64; k + 1];
            next[k] = dist[k];
            for (run, &mass) in dist.iter().take(k).enumerate() {
                next[run + 1] += mass * p;
                next[0] += mass * (1.0 - p);
            }
            dist = next;
        }
        dist[k]
    }

    /// Expected alarm delay (in cycles) once the queen is actually lost,
    /// given per-cycle detection probability `q` (sensitivity). This is
    /// the expected waiting time for `k` consecutive successes:
    /// E = (1 − qᵏ) / (qᵏ (1 − q)) for q < 1, else exactly `k`.
    pub fn expected_detection_delay(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "sensitivity must be in (0, 1]");
        let k = self.consecutive_required as f64;
        if (q - 1.0).abs() < 1e-15 {
            return k;
        }
        let qk = q.powf(k);
        (1.0 - qk) / (qk * (1.0 - q))
    }

    /// Expected alarm latency in wall-clock time at a given cycle period.
    pub fn expected_detection_latency(&self, q: f64, period: Seconds) -> Seconds {
        period * self.expected_detection_delay(q)
    }

    /// Simulates `n_cycles` of per-cycle detections with queenless
    /// probability `p_queenless_reading` and returns the cycle index at
    /// which the alarm fires, if it does.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        p_queenless_reading: f64,
        n_cycles: usize,
        rng: &mut R,
    ) -> Option<usize> {
        let mut run = 0usize;
        for i in 0..n_cycles {
            if rng.gen::<f64>() < p_queenless_reading {
                run += 1;
                if run >= self.consecutive_required {
                    return Some(i);
                }
            } else {
                run = 0;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn k1_false_alarm_is_complement_power() {
        // With k = 1 the no-alarm probability over n cycles is (1−p)ⁿ.
        let policy = AlertPolicy::new(1);
        let p: f64 = 0.01;
        let n = 288; // one day of 5-minute cycles
        let exact = 1.0 - (1.0 - p).powi(n as i32);
        assert!((policy.false_alarm_probability(p, n) - exact).abs() < 1e-12);
    }

    #[test]
    fn debouncing_slashes_false_alarms() {
        let p = 0.01; // the paper's 99% accuracy
        let day = 288;
        let k1 = AlertPolicy::new(1).false_alarm_probability(p, day);
        let k3 = AlertPolicy::new(3).false_alarm_probability(p, day);
        assert!(k1 > 0.9, "single-reading alarms fire almost daily: {k1}");
        assert!(k3 < 3e-4, "k=3 false alarms are rare: {k3}");
    }

    #[test]
    fn monotone_in_k_and_n() {
        let p = 0.05;
        let a = AlertPolicy::new(2).false_alarm_probability(p, 100);
        let b = AlertPolicy::new(4).false_alarm_probability(p, 100);
        assert!(b < a);
        let c = AlertPolicy::new(2).false_alarm_probability(p, 500);
        assert!(c > a);
    }

    #[test]
    fn zero_probability_never_alarms() {
        assert_eq!(AlertPolicy::new(2).false_alarm_probability(0.0, 1000), 0.0);
        assert_eq!(AlertPolicy::new(2).false_alarm_probability(1.0, 2), 1.0);
    }

    #[test]
    fn detection_delay_formula() {
        // Perfect detector: exactly k cycles.
        assert_eq!(AlertPolicy::new(3).expected_detection_delay(1.0), 3.0);
        // k = 1 at q: geometric mean 1/q.
        let d = AlertPolicy::new(1).expected_detection_delay(0.5);
        assert!((d - 2.0).abs() < 1e-12);
        // Known closed form for k = 2, q = 0.5: (1−0.25)/(0.25·0.5) = 6.
        let d = AlertPolicy::new(2).expected_detection_delay(0.5);
        assert!((d - 6.0).abs() < 1e-12);
    }

    #[test]
    fn latency_scales_with_period() {
        let policy = AlertPolicy::new(2);
        let l5 = policy.expected_detection_latency(0.99, Seconds::from_minutes(5.0));
        let l60 = policy.expected_detection_latency(0.99, Seconds::from_minutes(60.0));
        assert!((l60.value() / l5.value() - 12.0).abs() < 1e-9);
        // At the paper's accuracy and cycle, the k=2 alarm lands in ~10 min.
        assert!(l5 < Seconds::from_minutes(11.0), "latency {l5}");
    }

    #[test]
    fn simulation_matches_analysis() {
        let policy = AlertPolicy::new(3);
        let p = 0.04;
        let n = 288;
        let trials = 20_000;
        let mut rng = StdRng::seed_from_u64(13);
        let fired = (0..trials).filter(|_| policy.simulate(p, n, &mut rng).is_some()).count();
        let simulated = fired as f64 / trials as f64;
        let analytic = policy.false_alarm_probability(p, n);
        assert!(
            (simulated - analytic).abs() < 0.005,
            "simulated {simulated} vs analytic {analytic}"
        );
    }

    #[test]
    fn simulated_detection_delay_matches_expectation() {
        let policy = AlertPolicy::new(2);
        let q = 0.9;
        let mut rng = StdRng::seed_from_u64(14);
        let trials = 20_000;
        let total: usize = (0..trials)
            .map(|_| policy.simulate(q, 10_000, &mut rng).expect("fires eventually") + 1)
            .sum();
        let mean = total as f64 / trials as f64;
        // simulate() returns the 0-based firing cycle; +1 converts to the
        // number of cycles elapsed, which is the waiting time E[T].
        let expected = policy.expected_detection_delay(q);
        assert!((mean - expected).abs() < 0.1, "mean {mean} vs {expected}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_k_panics() {
        let _ = AlertPolicy::new(0);
    }
}
