//! Whole-apiary deployment under shared weather.
//!
//! The single-hive deployment simulation (`deployment`) draws each hive's
//! cloud cover independently. Real co-located hives share their sky: this
//! module drives N hives' solar harvests from one regional cloudiness
//! process, so their brown-outs correlate — producing the bursty
//! simultaneous-outage distribution that the correlated-loss analysis
//! (`region`) predicts, now derived mechanistically from energy balance
//! rather than assumed.

use crate::hive::SmartBeehive;
use crate::region::RegionalWeather;
use pb_orchestra::engine::SimContext;
use pb_units::{Joules, Seconds, TimeOfDay, Watts};
use rand::Rng;
use rayon::prelude::*;

/// Configuration of an apiary-wide run.
#[derive(Clone, Debug)]
pub struct ApiaryDeploymentConfig {
    /// Number of hives (identical hardware, independent batteries).
    pub n_hives: usize,
    /// Simulated duration.
    pub duration: Seconds,
    /// Simulation step.
    pub step: Seconds,
    /// The shared cloudiness process.
    pub weather: RegionalWeather,
    /// Master seed (per-hive noise derives from it; the weather stream is
    /// shared).
    pub seed: u64,
}

impl Default for ApiaryDeploymentConfig {
    /// 50 hives for one week at 5-minute resolution.
    fn default() -> Self {
        ApiaryDeploymentConfig {
            n_hives: 50,
            duration: Seconds::from_days(7.0),
            step: Seconds(300.0),
            weather: RegionalWeather::default(),
            seed: 0xA01A,
        }
    }
}

/// Fleet-level outcome of an apiary run.
#[derive(Clone, Debug)]
pub struct ApiaryDeploymentReport {
    /// Number of simulation steps.
    pub n_steps: usize,
    /// Simultaneously browned-out hives per step.
    pub outages_per_step: Vec<usize>,
    /// Total energy delivered across the apiary.
    pub delivered: Joules,
    /// Per-hive brown-out time.
    pub brown_out_time_per_hive: Vec<Seconds>,
}

impl ApiaryDeploymentReport {
    /// Mean simultaneous outages per step.
    pub fn mean_outages(&self) -> f64 {
        self.outages_per_step.iter().sum::<usize>() as f64 / self.n_steps.max(1) as f64
    }

    /// Worst-step simultaneous outages.
    pub fn peak_outages(&self) -> usize {
        self.outages_per_step.iter().copied().max().unwrap_or(0)
    }

    /// Standard deviation of simultaneous outages per step.
    pub fn std_outages(&self) -> f64 {
        let mean = self.mean_outages();
        let var = self.outages_per_step.iter().map(|&o| (o as f64 - mean).powi(2)).sum::<f64>()
            / self.n_steps.max(1) as f64;
        var.sqrt()
    }
}

/// Runs `config.n_hives` copies of `hive` under one shared cloudiness
/// stream. Per-hive load noise and battery trajectories stay independent;
/// only the sky is common.
pub fn simulate_apiary(
    hive: &SmartBeehive,
    config: &ApiaryDeploymentConfig,
) -> ApiaryDeploymentReport {
    assert!(config.n_hives > 0, "apiary needs at least one hive");
    assert!(config.step.value() > 0.0, "step must be positive");
    let n_steps = (config.duration.value() / config.step.value()).round() as usize;

    // Shared master-seed context: point 0 drives the common sky, point
    // h+1 the per-hive noise — the `seed ^ n·φ` convention from the
    // orchestration engine, stated once instead of hand-rolled here.
    let ctx = SimContext::new(config.seed);

    // One shared cloudiness sample per step (clearness multiplier).
    let mut weather_rng = ctx.point_rng(0);
    let cloudiness = config.weather.simulate(n_steps, &mut weather_rng);

    // Each hive holds its own power system; harvest = clear-sky output ×
    // shared clearness. We re-implement the harvest step here because the
    // per-hive `PowerSystem` samples its own irradiance internally.
    let per_hive: Vec<(Vec<bool>, Seconds, Joules)> = (0..config.n_hives)
        .into_par_iter()
        .map(|h| {
            let mut rng = ctx.point_rng(h as u64 + 1);
            let mut hive = hive.clone();
            let irradiance = pb_energy::solar::Irradiance {
                cloud_std: 0.0,
                clearness: 1.0,
                ..Default::default()
            };
            let panel = pb_energy::solar::SolarPanel::mono_30w();
            let converter = pb_energy::solar::DcDcConverter::default();
            let mut outages = Vec::with_capacity(n_steps);
            let mut brown_time = Seconds::ZERO;
            let mut delivered = Joules::ZERO;
            for (i, &cloud) in cloudiness.iter().enumerate() {
                let at = config.step * i as f64;
                let t = TimeOfDay::at(at);
                let clearness = (1.0 - cloud).clamp(0.0, 1.0);
                let harvested =
                    converter.convert(panel.output(irradiance.clear_sky(t) * clearness));
                // Small per-hive load jitter (sensor duty variation).
                let load = hive.load_at(at) * (1.0 + 0.02 * (rng.gen::<f64>() - 0.5));
                let requested = load * config.step;
                let direct = harvested.min(load) * config.step;
                let mut got = direct;
                if harvested > load {
                    hive.power_battery_charge(harvested - load, config.step);
                } else {
                    got += hive.power_battery_discharge(load - harvested, config.step);
                }
                let browned = got.value() + 1e-9 < requested.value();
                if browned {
                    brown_time += config.step;
                }
                delivered += got;
                outages.push(browned);
            }
            (outages, brown_time, delivered)
        })
        .collect();

    let outages_per_step: Vec<usize> =
        (0..n_steps).map(|i| per_hive.iter().filter(|(o, _, _)| o[i]).count()).collect();
    ApiaryDeploymentReport {
        n_steps,
        outages_per_step,
        delivered: per_hive.iter().map(|(_, _, d)| *d).sum(),
        brown_out_time_per_hive: per_hive.iter().map(|(_, b, _)| *b).collect(),
    }
}

impl SmartBeehive {
    /// Charges this hive's battery (helper for external harvest drivers).
    pub fn power_battery_charge(&mut self, power: Watts, dt: Seconds) -> Joules {
        self.power.battery_mut().charge(power, dt)
    }

    /// Discharges this hive's battery toward a load (helper for external
    /// harvest drivers); returns the energy delivered.
    pub fn power_battery_discharge(&mut self, power: Watts, dt: Seconds) -> Joules {
        self.power.battery_mut().discharge(power, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_energy::battery::Battery;
    use pb_energy::harvest::PowerSystemConfig;
    use pb_units::WattHours;

    fn small_battery_hive() -> SmartBeehive {
        SmartBeehive::deployed("apiary", Seconds::from_minutes(10.0)).with_power_system(
            PowerSystemConfig {
                battery: Battery::new(WattHours(8.0), 0.6),
                ..PowerSystemConfig::default()
            },
        )
    }

    fn week(n_hives: usize, seed: u64) -> ApiaryDeploymentConfig {
        ApiaryDeploymentConfig { n_hives, seed, ..ApiaryDeploymentConfig::default() }
    }

    #[test]
    fn report_shape() {
        let r = simulate_apiary(&small_battery_hive(), &week(10, 1));
        assert_eq!(r.n_steps, 7 * 288);
        assert_eq!(r.outages_per_step.len(), r.n_steps);
        assert_eq!(r.brown_out_time_per_hive.len(), 10);
        assert!(r.delivered > Joules(0.0));
    }

    #[test]
    fn outages_are_bounded_by_fleet_size() {
        let r = simulate_apiary(&small_battery_hive(), &week(10, 2));
        assert!(r.outages_per_step.iter().all(|&o| o <= 10));
        assert!(r.peak_outages() > 0, "an 8 Wh battery must brown out at night");
    }

    #[test]
    fn shared_sky_correlates_outages() {
        // The capstone claim: under one sky, outages cluster — the
        // distribution of simultaneous outages is strongly bimodal (all
        // or nothing at night), so its σ approaches the fleet size scale
        // rather than the √n of independent failures.
        let n = 30;
        let r = simulate_apiary(&small_battery_hive(), &week(n, 3));
        let mean = r.mean_outages();
        assert!(mean > 0.5, "mean outages {mean}");
        // σ far beyond the independent-binomial bound √(n·p·(1−p)) ≤ √n/2.
        let binomial_bound = (n as f64 / 4.0).sqrt();
        assert!(
            r.std_outages() > 2.0 * binomial_bound,
            "σ {} vs binomial bound {binomial_bound}",
            r.std_outages()
        );
        // Night steps lose most of the fleet at once.
        assert!(r.peak_outages() as f64 > 0.8 * n as f64, "peak {}", r.peak_outages());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = simulate_apiary(&small_battery_hive(), &week(8, 7));
        let b = simulate_apiary(&small_battery_hive(), &week(8, 7));
        assert_eq!(a.outages_per_step, b.outages_per_step);
        assert!((a.delivered - b.delivered).abs() < Joules(1e-6));
    }

    #[test]
    fn big_batteries_ride_through() {
        let hive = SmartBeehive::deployed("big", Seconds::from_minutes(10.0));
        let r = simulate_apiary(&hive, &week(10, 4));
        assert_eq!(r.peak_outages(), 0);
        assert!(r.brown_out_time_per_hive.iter().all(|&t| t == Seconds::ZERO));
    }

    #[test]
    #[should_panic(expected = "at least one hive")]
    fn empty_apiary_panics() {
        let _ = simulate_apiary(&small_battery_hive(), &week(0, 1));
    }
}
