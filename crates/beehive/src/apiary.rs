//! Apiaries and the scenario recommender.
//!
//! The paper closes with "build connected beehives' intelligence to tune
//! its parameters and choose between a set of scenarios" as future work;
//! [`Apiary::recommend`] is that feature: given an apiary size, a server
//! setting and a loss model, it simulates both placements and recommends
//! the more energy-efficient one.

use pb_orchestra::engine::{Backend, CycleEngine, ScenarioSpec, SimContext};
use pb_orchestra::loss::LossModel;
use pb_orchestra::scenario::Scenario;
use pb_orchestra::ServiceKind;
use pb_units::{Joules, Seconds};

/// A population of smart beehives managed together.
#[derive(Clone, Debug)]
pub struct Apiary {
    /// Apiary name.
    pub name: String,
    /// Number of hives.
    pub n_hives: usize,
    /// Shared wake-up period.
    pub wake_period: Seconds,
}

/// The recommender's verdict for one apiary.
#[derive(Clone, Debug)]
pub struct ScenarioRecommendation {
    /// The recommended placement.
    pub scenario: Scenario,
    /// Energy per hive per cycle under the edge placement.
    pub edge_per_hive: Joules,
    /// Energy per hive per cycle under the edge+cloud placement.
    pub cloud_per_hive: Joules,
    /// Cloud servers the edge+cloud placement would need.
    pub servers_needed: usize,
}

impl Apiary {
    /// Creates an apiary of `n_hives` on 5-minute cycles.
    pub fn new(name: impl Into<String>, n_hives: usize) -> Self {
        Apiary { name: name.into(), n_hives, wake_period: Seconds(300.0) }
    }

    /// Recommends the more energy-efficient placement for this apiary,
    /// running `service` with `max_parallel` clients per server slot under
    /// `loss`, using the default (closed-form) cycle backend.
    pub fn recommend(
        &self,
        service: ServiceKind,
        max_parallel: usize,
        loss: LossModel,
    ) -> ScenarioRecommendation {
        self.recommend_with(Backend::ClosedForm, service, max_parallel, loss)
    }

    /// [`Apiary::recommend`] through an explicit cycle backend — e.g.
    /// [`Backend::Des`] to price the cloud side without the paper's
    /// synchronized-slot assumption.
    pub fn recommend_with(
        &self,
        backend: Backend,
        service: ServiceKind,
        max_parallel: usize,
        loss: LossModel,
    ) -> ScenarioRecommendation {
        self.recommend_in(backend, service, max_parallel, loss, &SimContext::new(Self::SEED))
    }

    /// The recommender's fixed master seed: every recommendation prices
    /// the same loss draw, so verdicts are reproducible across calls,
    /// processes and serving contexts.
    pub const SEED: u64 = 0xAB1A;

    /// [`Apiary::recommend_with`] against a caller-supplied
    /// [`SimContext`], so a resident process can share one allocation
    /// cache and telemetry registry across recommendations. Pass a
    /// context seeded with [`Apiary::SEED`] to reproduce
    /// [`Apiary::recommend_with`] bit-for-bit.
    pub fn recommend_in(
        &self,
        backend: Backend,
        service: ServiceKind,
        max_parallel: usize,
        loss: LossModel,
        ctx: &SimContext,
    ) -> ScenarioRecommendation {
        let spec = ScenarioSpec::paper(service, max_parallel, loss);
        let point = backend.compare(&spec, self.n_hives, ctx);
        let scenario =
            if point.cloud_wins() { Scenario::EdgeCloud(service) } else { Scenario::Edge(service) };
        ScenarioRecommendation {
            scenario,
            edge_per_hive: point.edge.total_per_client,
            cloud_per_hive: point.cloud.total_per_client,
            servers_needed: point.cloud.n_servers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_apiary_stays_at_the_edge() {
        // Five hives (the actual deployment) should never justify a
        // 44.6 W-idle server.
        let rec = Apiary::new("deployed", 5).recommend(ServiceKind::Cnn, 10, LossModel::NONE);
        assert!(matches!(rec.scenario, Scenario::Edge(_)));
        assert!(rec.cloud_per_hive > rec.edge_per_hive);
        assert_eq!(rec.servers_needed, 1);
    }

    #[test]
    fn large_apiary_moves_to_the_cloud() {
        // 630 hives at cap 35 is the paper's sweet spot.
        let rec = Apiary::new("coop", 630).recommend(ServiceKind::Cnn, 35, LossModel::NONE);
        assert!(matches!(rec.scenario, Scenario::EdgeCloud(_)));
        assert!(rec.edge_per_hive > rec.cloud_per_hive);
        assert_eq!(rec.servers_needed, 1);
    }

    #[test]
    fn recommendation_reports_both_costs() {
        let rec = Apiary::new("x", 100).recommend(ServiceKind::Svm, 10, LossModel::NONE);
        assert!(rec.edge_per_hive > Joules(300.0));
        assert!(rec.cloud_per_hive > Joules(300.0));
    }

    #[test]
    fn backends_are_runtime_selectable() {
        // Five hives never justify a 44.6 W-idle server under any backend
        // — including the asynchronous ablation, whose per-upload receive
        // billing makes the server side even pricier.
        for backend in Backend::ALL {
            let rec =
                Apiary::new("b", 5).recommend_with(backend, ServiceKind::Cnn, 10, LossModel::NONE);
            assert!(matches!(rec.scenario, Scenario::Edge(_)), "{backend:?}");
            assert!(rec.cloud_per_hive > rec.edge_per_hive, "{backend:?}");
        }
    }

    #[test]
    fn apiary_defaults() {
        let a = Apiary::new("n", 7);
        assert_eq!(a.n_hives, 7);
        assert_eq!(a.wake_period, Seconds(300.0));
    }
}
