//! A smart beehive: the full deployed node.
//!
//! Combines the two Raspberry Pis, the sensor suite, the solar power
//! system, the wake-up scheduler and the hive climate into one steppable
//! unit. The Pi Zero is always on; the Pi 3b+ sleeps between wake-ups and
//! runs the ≈ 89 s data-collection routine when woken.

use crate::climate::HiveClimate;
use pb_device::profile::EdgeDeviceProfile;
use pb_device::sensors::SensorSuite;
use pb_device::wake::WakeScheduler;
use pb_energy::harvest::{PowerSystem, PowerSystemConfig};
use pb_units::{Seconds, Watts};

/// One deployed smart beehive.
#[derive(Clone, Debug)]
pub struct SmartBeehive {
    /// Hive identifier (e.g. "lyon-1").
    pub id: String,
    /// The duty-cycled sensor node.
    pub pi3b: EdgeDeviceProfile,
    /// The always-on energy logger.
    pub pi_zero: EdgeDeviceProfile,
    /// The sensor suite.
    pub sensors: SensorSuite,
    /// GPIO wake-up source.
    pub scheduler: WakeScheduler,
    /// Solar + battery power system.
    pub power: PowerSystem,
    /// In-hive climate.
    pub climate: HiveClimate,
}

impl SmartBeehive {
    /// A hive in the deployed configuration with the given id and wake-up
    /// period.
    pub fn deployed(id: impl Into<String>, wake_period: Seconds) -> Self {
        SmartBeehive {
            id: id.into(),
            pi3b: EdgeDeviceProfile::raspberry_pi_3b_plus(),
            pi_zero: EdgeDeviceProfile::raspberry_pi_zero_wh(),
            sensors: SensorSuite::deployed(),
            scheduler: WakeScheduler::new(wake_period, Seconds::ZERO),
            power: PowerSystem::new(PowerSystemConfig::default()),
            climate: HiveClimate::default(),
        }
    }

    /// Marks the hive as not yet colonized (the Figure 2a condition).
    pub fn without_colony(mut self) -> Self {
        self.climate = HiveClimate::empty();
        self
    }

    /// Replaces the power system configuration.
    pub fn with_power_system(mut self, config: PowerSystemConfig) -> Self {
        self.power = PowerSystem::new(config);
        self
    }

    /// Duration of one data-collection routine on this hive.
    pub fn routine_duration(&self) -> Seconds {
        self.pi3b.base_routine_duration()
    }

    /// Electrical load at simulation time `t`: Pi Zero always, plus the
    /// Pi 3b+ at routine power inside a routine window and at sleep power
    /// otherwise.
    pub fn load_at(&self, t: Seconds) -> Watts {
        let base = self.pi_zero.sleep_power;
        let routine = self.routine_duration();
        // Find the most recent wake-up at or before t.
        let since_wake = {
            let period = self.scheduler.period.value();
            let offset = self.scheduler.offset.value();
            let rel = t.value() - offset;
            if rel < 0.0 {
                f64::INFINITY
            } else {
                rel % period
            }
        };
        if since_wake < routine.value() {
            let routine_power = self.pi3b.base_routine_energy() / routine;
            base + routine_power
        } else {
            base + self.pi3b.sleep_power
        }
    }

    /// Mean load over one full wake-up cycle.
    pub fn mean_load(&self) -> Watts {
        let period = self.scheduler.period;
        let routine = self.routine_duration();
        let active = self.pi3b.base_routine_energy();
        let sleeping = self.pi3b.sleep_power * (period - routine);
        self.pi_zero.sleep_power + (active + sleeping) / period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployed_hive_components() {
        let hive = SmartBeehive::deployed("lyon-1", Seconds::from_minutes(10.0));
        assert_eq!(hive.id, "lyon-1");
        assert!((hive.routine_duration() - Seconds(89.0)).abs() < Seconds(0.1));
        assert!(hive.climate.colonized);
        assert!(!hive.clone().without_colony().climate.colonized);
    }

    #[test]
    fn load_during_and_after_routine() {
        let hive = SmartBeehive::deployed("h", Seconds::from_minutes(10.0));
        // Just after a wake-up: Zero (0.4) + routine (≈2.14).
        let active = hive.load_at(Seconds(10.0));
        assert!((active - Watts(0.4 + 190.1 / 88.9)).abs() < Watts(0.01), "active {active}");
        // Mid-cycle: Zero + sleep.
        let asleep = hive.load_at(Seconds(300.0));
        assert!((asleep - Watts(0.4 + 0.625)).abs() < Watts(0.01), "asleep {asleep}");
    }

    #[test]
    fn load_is_periodic() {
        let hive = SmartBeehive::deployed("h", Seconds::from_minutes(10.0));
        for probe in [5.0, 100.0, 400.0] {
            let a = hive.load_at(Seconds(probe));
            let b = hive.load_at(Seconds(probe + 600.0));
            assert!((a - b).abs() < Watts(1e-9));
        }
    }

    #[test]
    fn mean_load_between_extremes() {
        let hive = SmartBeehive::deployed("h", Seconds::from_minutes(10.0));
        let mean = hive.mean_load();
        assert!(mean > Watts(0.4 + 0.625));
        assert!(mean < Watts(0.4 + 2.14));
        // 10-minute cycles: (190.1 + 0.625·511.1)/600 + 0.4 ≈ 1.25 W.
        assert!((mean - Watts(1.25)).abs() < Watts(0.02), "mean {mean}");
    }

    #[test]
    fn faster_wakeups_raise_mean_load() {
        let fast = SmartBeehive::deployed("h", Seconds::from_minutes(5.0));
        let slow = SmartBeehive::deployed("h", Seconds::from_minutes(60.0));
        assert!(fast.mean_load() > slow.mean_load());
    }
}
