//! The cheapest possible queen detector: a piping-band energy threshold.
//!
//! Figure 5 prices the CNN at 94.8 J per inference on the Pi; the SVM at
//! 98.9 J. This baseline extends the accuracy-vs-energy curve to its
//! bottom end: a single Goertzel band-power ratio (queen piping band vs
//! colony hum band) costs ~10⁴ MACs per clip — about four orders of
//! magnitude below the CNN — and still separates the synthetic classes
//! well. It quantifies the diminishing returns of deep models under a
//! joule budget.

use pb_signal::audio::ColonyState;
use pb_signal::goertzel::{band_power_framed, goertzel_macs};

/// The queen-piping band probed by the detector (Hz).
pub const PIPING_BAND: (f64, f64) = (380.0, 420.0);
/// The colony-hum reference band (Hz).
pub const HUM_BAND: (f64, f64) = (200.0, 320.0);
/// Goertzel probes per band.
pub const PROBES_PER_BAND: usize = 6;
/// Goertzel frame length: frames of this size give each probe an
/// effective bandwidth of ≈ 21 Hz at 22 050 Hz, wide enough that the
/// probe grid covers both bands without gaps (a whole-clip pass has
/// sub-hertz bandwidth and misses drifting tones between probes).
pub const GOERTZEL_FRAME: usize = 1024;

/// A trained threshold detector on the piping/hum band-power ratio.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipingDetector {
    /// Decision threshold on the log band ratio (≥ threshold → queenright).
    pub threshold: f64,
    /// Audio sample rate the detector was trained at.
    pub sample_rate: f64,
}

impl PipingDetector {
    /// The detector's scalar feature: log ratio of piping-band power to
    /// hum-band power.
    pub fn feature(samples: &[f64], sample_rate: f64) -> f64 {
        let piping = band_power_framed(
            samples,
            PIPING_BAND.0,
            PIPING_BAND.1,
            PROBES_PER_BAND,
            GOERTZEL_FRAME,
            sample_rate,
        );
        let hum = band_power_framed(
            samples,
            HUM_BAND.0,
            HUM_BAND.1,
            PROBES_PER_BAND,
            GOERTZEL_FRAME,
            sample_rate,
        );
        ((piping + 1e-30) / (hum + 1e-30)).ln()
    }

    /// Trains by scanning every candidate threshold (midpoints of sorted
    /// features) for maximum training accuracy.
    #[allow(clippy::needless_range_loop)] // the scan index both bounds and probes `scored`
    pub fn train(clips: &[(Vec<f64>, ColonyState)], sample_rate: f64) -> Self {
        assert!(!clips.is_empty(), "cannot train on an empty set");
        let mut scored: Vec<(f64, bool)> = clips
            .iter()
            .map(|(s, state)| (Self::feature(s, sample_rate), *state == ColonyState::Queenright))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));

        let n = scored.len();
        let total_pos = scored.iter().filter(|(_, p)| *p).count();
        // Threshold between i-1 and i: predicts positive for indices ≥ i.
        // accuracy(i) = (negatives below i) + (positives at or above i).
        let mut best = (f64::NEG_INFINITY, 0usize);
        let mut neg_below = 0usize;
        let mut pos_below = 0usize;
        for i in 0..=n {
            let correct = neg_below + (total_pos - pos_below);
            if correct as f64 > best.0 {
                best = (correct as f64, i);
            }
            if i < n {
                if scored[i].1 {
                    pos_below += 1;
                } else {
                    neg_below += 1;
                }
            }
        }
        let i = best.1;
        let threshold = if i == 0 {
            scored[0].0 - 1.0
        } else if i == n {
            scored[n - 1].0 + 1.0
        } else {
            0.5 * (scored[i - 1].0 + scored[i].0)
        };
        PipingDetector { threshold, sample_rate }
    }

    /// Predicts the colony state of a clip.
    pub fn predict(&self, samples: &[f64]) -> ColonyState {
        if Self::feature(samples, self.sample_rate) >= self.threshold {
            ColonyState::Queenright
        } else {
            ColonyState::Queenless
        }
    }

    /// Accuracy over labelled clips.
    pub fn accuracy(&self, clips: &[(Vec<f64>, ColonyState)]) -> f64 {
        if clips.is_empty() {
            return 0.0;
        }
        let hits = clips.iter().filter(|(s, state)| self.predict(s) == *state).count();
        hits as f64 / clips.len() as f64
    }

    /// MAC count of one prediction over a clip of `n` samples: two bands
    /// of [`PROBES_PER_BAND`] Goertzel probes.
    pub fn prediction_macs(n: usize) -> u64 {
        2 * PROBES_PER_BAND as u64 * goertzel_macs(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_signal::corpus::{Corpus, CorpusConfig};

    fn labelled_clips(n: usize, secs: f64, seed: u64) -> Vec<(Vec<f64>, ColonyState)> {
        Corpus::generate(&CorpusConfig::small(n, secs, seed))
            .clips()
            .iter()
            .map(|c| (c.samples.clone(), c.state))
            .collect()
    }

    #[test]
    fn feature_separates_the_classes() {
        let clips = labelled_clips(20, 1.0, 3);
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (s, state) in &clips {
            let f = PipingDetector::feature(s, 22_050.0);
            if *state == ColonyState::Queenright {
                pos.push(f);
            } else {
                neg.push(f);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&pos) > mean(&neg) + 1.0,
            "piping ratio must be higher for queenright: {} vs {}",
            mean(&pos),
            mean(&neg)
        );
    }

    #[test]
    fn trains_to_high_accuracy() {
        // Clips must be long enough to contain at least one piping burst
        // (the synthesizer pipes every 1.5–3 s), else queenright clips can
        // be legitimately silent in the piping band.
        let train = labelled_clips(40, 3.0, 5);
        let det = PipingDetector::train(&train, 22_050.0);
        assert!(det.accuracy(&train) >= 0.9, "train accuracy {}", det.accuracy(&train));
        // Held-out clips from a different seed: cheaper than the CNN by
        // four orders of magnitude, and accordingly less accurate — but
        // far above chance.
        let test = labelled_clips(30, 3.0, 77);
        assert!(det.accuracy(&test) >= 0.8, "test accuracy {}", det.accuracy(&test));
    }

    #[test]
    fn threshold_scan_handles_degenerate_sets() {
        // All one class: the optimal threshold classifies everything as it.
        let clips: Vec<(Vec<f64>, ColonyState)> = labelled_clips(8, 0.5, 9)
            .into_iter()
            .filter(|(_, s)| *s == ColonyState::Queenless)
            .collect();
        let det = PipingDetector::train(&clips, 22_050.0);
        assert_eq!(det.accuracy(&clips), 1.0);
    }

    #[test]
    fn macs_are_four_orders_below_the_cnn() {
        // A 10 s clip at 22 050 Hz; the CNN at 100×100 needs ≈30 M MACs.
        let clip_macs = PipingDetector::prediction_macs(220_500);
        assert!(clip_macs < 3_000_000, "detector MACs {clip_macs}");
        assert!(clip_macs * 10 < 30_160_064, "must be ≥10× below the CNN");
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_training_panics() {
        let _ = PipingDetector::train(&[], 22_050.0);
    }
}
