#![warn(missing_docs)]

//! Application layer: smart beehives, apiaries and queen-detection
//! services.
//!
//! This crate ties the substrates together into the system the paper
//! deploys:
//!
//! * [`service`] — the end-to-end queen-detection pipeline: synthetic hive
//!   audio → log-mel spectrogram → (SVM features | CNN image) → prediction,
//!   with energy accounting on the edge and cloud compute models. The
//!   resolution sweep behind Figure 5 lives here.
//! * [`climate`] — in-hive temperature/humidity and ambient weather models
//!   (the context curves of Figure 2).
//! * [`hive`] — a [`hive::SmartBeehive`]: device profiles + power system +
//!   wake scheduler + sensor suite, steppable over days.
//! * [`deployment`] — the week-long deployment simulation reproducing
//!   Figure 2's activity/brown-out dynamics.
//! * [`apiary`] — populations of hives and the scenario recommender (the
//!   paper's future-work item: "build connected beehives' intelligence to
//!   … choose between a set of scenarios").

pub mod adaptive;
pub mod alert;
pub mod apiary;
pub mod apiary_deployment;
pub mod baseline;
pub mod cascade;
pub mod climate;
pub mod deployment;
pub mod hive;
pub mod region;
pub mod service;
pub mod tuner;

pub use adaptive::{run_adaptive, AdaptivePolicy, AdaptiveRunSummary, Decision};
pub use alert::AlertPolicy;
pub use apiary::{Apiary, ScenarioRecommendation};
pub use apiary_deployment::{simulate_apiary, ApiaryDeploymentConfig, ApiaryDeploymentReport};
pub use baseline::PipingDetector;
pub use cascade::CascadePlacement;
pub use climate::{AmbientWeather, HiveClimate};
pub use deployment::{DeploymentConfig, DeploymentRecord, DeploymentSummary};
pub use hive::SmartBeehive;
pub use region::{loss_statistics, CorrelatedLoss, LossStats, RegionalWeather};
pub use service::{PipelineConfig, QueenDetectionPipeline, ResolutionPoint};
pub use tuner::{FrequencyTuner, PeriodAssessment, ServiceRequirement, Verdict};
