//! Wake-up frequency auto-tuning.
//!
//! The paper calibrates the wake-up frequency by hand (Section IV: "for a
//! service tracking the temperature of the beehive, collecting data every
//! 60 or 120 minutes suffices. … in a period of collection of large
//! datasets, collecting data every 5 minutes becomes reasonable") and
//! names automatic tuning as future work ("build connected beehives'
//! intelligence to tune its parameters"). [`FrequencyTuner`] implements
//! it: given the hive's power system and a service's data-freshness
//! requirement, it picks the fastest wake-up period the energy budget can
//! sustain — checking both the *daily* balance (harvest ≥ demand with a
//! reserve) and the *overnight* balance (the battery must bridge the dark
//! hours).

use crate::hive::SmartBeehive;
use pb_energy::solar::daily_clear_sky_energy;
use pb_units::{Joules, Seconds};

/// A service's data-freshness requirement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceRequirement {
    /// The service is useless if samples are further apart than this.
    pub max_period: Seconds,
}

impl ServiceRequirement {
    /// Temperature/humidity tracking: hourly-to-two-hourly suffices.
    pub fn temperature_tracking() -> Self {
        ServiceRequirement { max_period: Seconds::from_minutes(120.0) }
    }

    /// Queen detection: the paper runs it on 5-minute cycles.
    pub fn queen_detection() -> Self {
        ServiceRequirement { max_period: Seconds::from_minutes(5.0) }
    }

    /// Bulk dataset collection: as fast as the budget allows, 5-minute
    /// floor.
    pub fn dataset_collection() -> Self {
        ServiceRequirement { max_period: Seconds::from_minutes(5.0) }
    }
}

/// Why the tuner rejected a period.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The period satisfies both energy constraints.
    Sustainable,
    /// The daily demand exceeds the reserved daily harvest.
    DailyDeficit,
    /// The battery cannot carry the load through the dark hours.
    NightDeficit,
}

/// The tuner's full report for one candidate period.
#[derive(Clone, Copy, Debug)]
pub struct PeriodAssessment {
    /// The candidate wake-up period.
    pub period: Seconds,
    /// Expected daily energy demand of the whole node.
    pub daily_demand: Joules,
    /// Expected daily harvest (after the reserve margin).
    pub daily_budget: Joules,
    /// Energy needed to bridge the dark hours.
    pub night_demand: Joules,
    /// Energy the battery can deliver from full.
    pub night_budget: Joules,
    /// The verdict.
    pub verdict: Verdict,
}

/// Picks sustainable wake-up periods for a hive.
#[derive(Clone, Debug)]
pub struct FrequencyTuner {
    /// Fraction of the expected harvest held back for bad-weather days.
    pub reserve_fraction: f64,
    /// Candidate periods, fastest first (defaults to the paper's six).
    pub candidates: Vec<Seconds>,
}

impl Default for FrequencyTuner {
    fn default() -> Self {
        FrequencyTuner {
            reserve_fraction: 0.3,
            candidates: pb_device::constants::FIG3_FREQUENCIES_MIN
                .iter()
                .map(|&m| Seconds::from_minutes(m))
                .collect(),
        }
    }
}

impl FrequencyTuner {
    /// Assesses one candidate period on `hive`.
    pub fn assess(&self, hive: &SmartBeehive, period: Seconds) -> PeriodAssessment {
        let mut candidate = hive.clone();
        candidate.scheduler = pb_device::wake::WakeScheduler::new(period, Seconds::ZERO);
        let mean_load = candidate.mean_load();
        let day = Seconds::from_days(1.0);
        let daily_demand = mean_load * day;

        // Expected daily harvest: clear-sky integral × mean clearness.
        let config = pb_energy::harvest::PowerSystemConfig::default();
        let clear = daily_clear_sky_energy(
            &config.irradiance,
            &config.panel,
            &config.converter,
            Seconds(60.0),
        );
        let daily_budget = clear * config.irradiance.clearness * (1.0 - self.reserve_fraction);

        // Night bridging: the dark window of the site's irradiance model.
        let dark_hours = 24.0
            - (config.irradiance.sunset.seconds() - config.irradiance.sunrise.seconds()) / 3600.0;
        let night_demand = mean_load * Seconds::from_hours(dark_hours);
        let night_budget = hive.power.battery().deliverable();

        let verdict = if daily_demand > daily_budget {
            Verdict::DailyDeficit
        } else if night_demand > night_budget {
            Verdict::NightDeficit
        } else {
            Verdict::Sustainable
        };
        PeriodAssessment { period, daily_demand, daily_budget, night_demand, night_budget, verdict }
    }

    /// The fastest sustainable period, or `None` when even the slowest
    /// candidate is not sustainable.
    pub fn fastest_sustainable(&self, hive: &SmartBeehive) -> Option<PeriodAssessment> {
        self.candidates
            .iter()
            .map(|&p| self.assess(hive, p))
            .find(|a| a.verdict == Verdict::Sustainable)
    }

    /// The recommended period for a service: the fastest sustainable one,
    /// which must also satisfy the service's freshness requirement.
    pub fn recommend(
        &self,
        hive: &SmartBeehive,
        requirement: ServiceRequirement,
    ) -> Option<PeriodAssessment> {
        self.fastest_sustainable(hive)
            .filter(|a| a.period.value() <= requirement.max_period.value() + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_energy::battery::Battery;
    use pb_energy::harvest::PowerSystemConfig;
    use pb_units::WattHours;

    fn hive_with_battery(wh: f64) -> SmartBeehive {
        SmartBeehive::deployed("tuner", Seconds::from_minutes(10.0)).with_power_system(
            PowerSystemConfig {
                battery: Battery::new(WattHours(wh), 1.0),
                ..PowerSystemConfig::default()
            },
        )
    }

    #[test]
    fn deployed_hive_sustains_five_minute_cycles() {
        // 100 Wh bank + 30 W panel: even the fastest paper frequency fits.
        let tuner = FrequencyTuner::default();
        let best = tuner.fastest_sustainable(&hive_with_battery(100.0)).unwrap();
        assert_eq!(best.period, Seconds::from_minutes(5.0));
        assert_eq!(best.verdict, Verdict::Sustainable);
        assert!(best.daily_demand < best.daily_budget);
    }

    #[test]
    fn tiny_battery_fails_the_night_check() {
        let tuner = FrequencyTuner::default();
        let a = tuner.assess(&hive_with_battery(3.0), Seconds::from_minutes(5.0));
        assert_eq!(a.verdict, Verdict::NightDeficit);
        // A slower period reduces the load, but the 9-hour night at ≈1 W
        // still needs more than 3 Wh.
        assert!(tuner.fastest_sustainable(&hive_with_battery(3.0)).is_none());
    }

    #[test]
    fn night_demand_shrinks_with_period() {
        let tuner = FrequencyTuner::default();
        let hive = hive_with_battery(100.0);
        let fast = tuner.assess(&hive, Seconds::from_minutes(5.0));
        let slow = tuner.assess(&hive, Seconds::from_minutes(120.0));
        assert!(fast.night_demand > slow.night_demand);
        assert!(fast.daily_demand > slow.daily_demand);
    }

    #[test]
    fn recommendation_respects_freshness() {
        let tuner = FrequencyTuner::default();
        let hive = hive_with_battery(100.0);
        // Queen detection wants ≤ 5 min and the hive can deliver it.
        let rec = tuner.recommend(&hive, ServiceRequirement::queen_detection()).unwrap();
        assert_eq!(rec.period, Seconds::from_minutes(5.0));
        // Temperature tracking is satisfied by the same (fastest) period.
        assert!(tuner.recommend(&hive, ServiceRequirement::temperature_tracking()).is_some());
    }

    #[test]
    fn starved_hive_cannot_serve_queen_detection() {
        // A tuner with a brutal reserve: only slow periods survive the
        // daily check, so the 5-minute queen-detection requirement fails.
        let mut tuner = FrequencyTuner { reserve_fraction: 0.987, ..FrequencyTuner::default() };
        tuner.candidates = pb_device::constants::FIG3_FREQUENCIES_MIN
            .iter()
            .map(|&m| Seconds::from_minutes(m))
            .collect();
        let hive = hive_with_battery(100.0);
        let fastest = tuner.fastest_sustainable(&hive);
        if let Some(a) = fastest {
            assert!(a.period > Seconds::from_minutes(5.0), "period {}", a.period);
            assert!(tuner.recommend(&hive, ServiceRequirement::queen_detection()).is_none());
        }
    }

    #[test]
    fn requirement_presets() {
        assert_eq!(
            ServiceRequirement::temperature_tracking().max_period,
            Seconds::from_minutes(120.0)
        );
        assert_eq!(ServiceRequirement::queen_detection().max_period, Seconds::from_minutes(5.0));
        assert_eq!(ServiceRequirement::dataset_collection().max_period, Seconds::from_minutes(5.0));
    }
}
