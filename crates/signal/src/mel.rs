//! Mel filterbank and log-mel spectrogram features.
//!
//! The paper's features are "mel-scaled spectrogram features computed from
//! 10-second audio recordings of bees sampled at 22 050 hertz", with
//! n_fft = 2048, hop = 512 and 128 mel bands. This module implements the
//! HTK mel scale and triangular filterbank, applied to the power
//! spectrograms from [`crate::stft`].
//!
//! Each triangular filter is stored **sparsely** — `(first_bin, weights)`
//! over its nonzero support only. A dense 128 × 1025 weight matrix is ~92%
//! zeros at the paper's parameters; touching only the support cuts the
//! mul-adds per frame by ~8×. [`MelFilterbank::dense_weights`] materializes
//! the dense rows for parity testing.

use crate::stft::{SpectrogramParams, Stft};

/// Converts frequency in hertz to mels (HTK formula).
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mels to frequency in hertz (HTK formula).
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// One triangular filter, stored over its nonzero FFT-bin support.
#[derive(Clone, Debug)]
struct SparseFilter {
    /// First FFT bin with nonzero weight.
    first: usize,
    /// Weights for bins `first..first + weights.len()`.
    weights: Vec<f64>,
}

/// A bank of triangular mel filters over FFT bins, stored sparsely.
#[derive(Clone, Debug)]
pub struct MelFilterbank {
    filters: Vec<SparseFilter>,
    n_fft: usize,
}

impl MelFilterbank {
    /// Builds a filterbank of `n_mels` bands for spectra of `n_fft/2 + 1`
    /// bins at `sample_rate`, spanning `f_min..f_max` Hz.
    pub fn new(n_mels: usize, n_fft: usize, sample_rate: f64, f_min: f64, f_max: f64) -> Self {
        assert!(n_mels > 0, "need at least one mel band");
        assert!(f_min >= 0.0 && f_max > f_min, "need 0 <= f_min < f_max");
        assert!(f_max <= sample_rate / 2.0 + 1e-9, "f_max must not exceed Nyquist");
        let n_bins = n_fft / 2 + 1;

        // n_mels + 2 equally spaced points on the mel axis.
        let mel_lo = hz_to_mel(f_min);
        let mel_hi = hz_to_mel(f_max);
        let mel_points: Vec<f64> = (0..n_mels + 2)
            .map(|i| mel_lo + (mel_hi - mel_lo) * i as f64 / (n_mels + 1) as f64)
            .collect();
        let hz_points: Vec<f64> = mel_points.iter().map(|&m| mel_to_hz(m)).collect();

        let bin_hz = sample_rate / n_fft as f64;
        let filters = (0..n_mels)
            .map(|m| {
                let (lo, mid, hi) = (hz_points[m], hz_points[m + 1], hz_points[m + 2]);
                // Nonzero support: bins strictly inside (lo, hi).
                let first = (lo / bin_hz).floor().max(0.0) as usize + 1;
                let first = first.min(n_bins);
                let mut weights = Vec::new();
                for k in first..n_bins {
                    let f = k as f64 * bin_hz;
                    if f >= hi {
                        break;
                    }
                    let w = if f <= mid { (f - lo) / (mid - lo) } else { (hi - f) / (hi - mid) };
                    weights.push(w);
                }
                SparseFilter { first, weights }
            })
            .collect();
        MelFilterbank { filters, n_fft }
    }

    /// The paper's filterbank: 128 mels, n_fft 2048, 22 050 Hz, full band.
    pub fn paper_default() -> Self {
        MelFilterbank::new(
            crate::N_MELS,
            crate::N_FFT,
            crate::SAMPLE_RATE_HZ,
            0.0,
            crate::SAMPLE_RATE_HZ / 2.0,
        )
    }

    /// Number of mel bands.
    pub fn n_mels(&self) -> usize {
        self.filters.len()
    }

    /// FFT size the bank was built for.
    pub fn n_fft(&self) -> usize {
        self.n_fft
    }

    /// Total number of stored (nonzero) weights across all bands.
    pub fn nnz(&self) -> usize {
        self.filters.iter().map(|f| f.weights.len()).sum()
    }

    /// Materializes the dense `n_mels × (n_fft/2 + 1)` weight matrix — the
    /// representation the sparse layout replaced; used by parity tests.
    pub fn dense_weights(&self) -> Vec<Vec<f64>> {
        let n_bins = self.n_fft / 2 + 1;
        self.filters
            .iter()
            .map(|filt| {
                let mut row = vec![0.0; n_bins];
                row[filt.first..filt.first + filt.weights.len()].copy_from_slice(&filt.weights);
                row
            })
            .collect()
    }

    /// Applies the bank to one power-spectrum frame.
    pub fn apply(&self, power_frame: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.filters.len()];
        self.apply_into(power_frame, &mut out);
        out
    }

    /// Allocation-free [`MelFilterbank::apply`]: writes one value per mel
    /// band into `out`, touching only each filter's nonzero support.
    pub fn apply_into(&self, power_frame: &[f64], out: &mut [f64]) {
        assert_eq!(
            power_frame.len(),
            self.n_fft / 2 + 1,
            "frame length must match filterbank bins"
        );
        assert_eq!(out.len(), self.filters.len(), "output length must match mel band count");
        for (o, filt) in out.iter_mut().zip(&self.filters) {
            let support = &power_frame[filt.first..filt.first + filt.weights.len()];
            *o = filt.weights.iter().zip(support).map(|(w, p)| w * p).sum();
        }
    }
}

/// A log-mel spectrogram in decibels relative to the clip maximum (librosa
/// `power_to_db` convention with `ref=max`), stored as one flat row-major
/// buffer: `data[frame * n_mels + band]`.
#[derive(Clone, Debug, PartialEq)]
pub struct MelSpectrogram {
    data: Vec<f64>,
    n_frames: usize,
    n_mels: usize,
}

impl MelSpectrogram {
    /// Dynamic range floor applied after referencing to the maximum.
    pub const TOP_DB: f64 = 80.0;

    /// Computes the log-mel spectrogram of `signal` with the paper's
    /// parameters.
    pub fn paper_default(signal: &[f64]) -> Self {
        Self::compute(
            signal,
            &Stft::new(SpectrogramParams::default()),
            &MelFilterbank::paper_default(),
        )
    }

    /// Computes a log-mel spectrogram with explicit STFT and filterbank.
    pub fn compute(signal: &[f64], stft: &Stft, bank: &MelFilterbank) -> Self {
        let power = stft.power_spectrogram(signal);
        let n_frames = power.n_frames();
        let n_mels = bank.n_mels();
        let mut data = vec![0.0; n_frames * n_mels];
        for (row, frame) in data.chunks_exact_mut(n_mels).zip(power.frames()) {
            bank.apply_into(frame, row);
        }

        // power → dB referenced to the clip maximum, floored at −TOP_DB.
        let max = data.iter().fold(f64::MIN_POSITIVE, |a, &b| a.max(b));
        for p in &mut data {
            let db = 10.0 * (p.max(1e-30) / max).log10();
            *p = db.max(-Self::TOP_DB);
        }
        MelSpectrogram { data, n_frames, n_mels }
    }

    /// Builds from one `Vec` per frame (all frames must agree in length).
    pub fn from_frames(frames: Vec<Vec<f64>>) -> Self {
        let n_frames = frames.len();
        let n_mels = frames.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_frames * n_mels);
        for f in &frames {
            assert_eq!(f.len(), n_mels, "all frames must have the same band count");
            data.extend_from_slice(f);
        }
        MelSpectrogram { data, n_frames, n_mels }
    }

    /// Number of time frames.
    pub fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// Number of mel bands (zero when empty).
    pub fn n_mels(&self) -> usize {
        self.n_mels
    }

    /// The flat row-major dB buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// One frame as a band slice.
    pub fn frame(&self, i: usize) -> &[f64] {
        assert!(i < self.n_frames, "frame {i} out of bounds ({} frames)", self.n_frames);
        &self.data[i * self.n_mels..(i + 1) * self.n_mels]
    }

    /// Iterator over frames (each an `n_mels`-long slice).
    pub fn frames(&self) -> std::slice::ChunksExact<'_, f64> {
        self.data.chunks_exact(self.n_mels.max(1))
    }

    /// Flattens to a single feature vector (frame-major), as fed to the SVM.
    pub fn to_feature_vector(&self) -> Vec<f64> {
        self.data.clone()
    }

    /// Per-band mean over time — a compact summary feature used by tests
    /// and the corpus separability checks.
    pub fn band_means(&self) -> Vec<f64> {
        if self.n_frames == 0 {
            return Vec::new();
        }
        let mut acc = vec![0.0; self.n_mels];
        for f in self.frames() {
            for (a, v) in acc.iter_mut().zip(f) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= self.n_frames as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowKind;

    #[test]
    fn mel_scale_round_trip() {
        for hz in [0.0, 100.0, 440.0, 1000.0, 8000.0, 11_025.0] {
            assert!((mel_to_hz(hz_to_mel(hz)) - hz).abs() < 1e-6);
        }
    }

    #[test]
    fn mel_scale_reference_point() {
        // 1000 Hz ≈ 1000 mel by construction of the HTK formula.
        assert!((hz_to_mel(1000.0) - 999.985).abs() < 0.01);
    }

    #[test]
    fn mel_scale_is_monotonic() {
        let mut prev = -1.0;
        for i in 0..200 {
            let m = hz_to_mel(i as f64 * 50.0);
            assert!(m > prev);
            prev = m;
        }
    }

    #[test]
    fn filterbank_shape() {
        let bank = MelFilterbank::paper_default();
        assert_eq!(bank.n_mels(), 128);
        assert_eq!(bank.n_fft(), 2048);
        // The sparse layout stores only the triangular supports — a small
        // fraction of the dense 128 × 1025 matrix.
        assert!(bank.nnz() * 4 < 128 * 1025, "nnz {} is not sparse", bank.nnz());
    }

    #[test]
    fn filters_are_nonnegative_and_bounded() {
        let bank = MelFilterbank::new(32, 512, 22_050.0, 0.0, 11_025.0);
        for band in &bank.dense_weights() {
            for &w in band {
                assert!((0.0..=1.0).contains(&w));
            }
        }
    }

    #[test]
    fn every_filter_has_support() {
        let bank = MelFilterbank::new(32, 1024, 22_050.0, 0.0, 11_025.0);
        for (m, filt) in bank.filters.iter().enumerate() {
            assert!(filt.weights.iter().any(|&w| w > 0.0), "band {m} is empty");
        }
    }

    #[test]
    fn sparse_apply_matches_dense_matrix() {
        // Parity: the sparse application must agree with an explicit dense
        // matrix-vector product on a random frame, for several geometries.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for (n_mels, n_fft, f_min, f_max) in [
            (128usize, 2048usize, 0.0, 11_025.0),
            (32, 1024, 0.0, 11_025.0),
            (64, 512, 300.0, 8_000.0),
            (8, 256, 0.0, 4_000.0),
        ] {
            let bank = MelFilterbank::new(n_mels, n_fft, 22_050.0, f_min, f_max);
            let dense = bank.dense_weights();
            let frame: Vec<f64> = (0..n_fft / 2 + 1).map(|_| rng.gen_range(0.0..10.0)).collect();
            let sparse_out = bank.apply(&frame);
            for (m, row) in dense.iter().enumerate() {
                let dense_val: f64 = row.iter().zip(&frame).map(|(w, p)| w * p).sum();
                assert!(
                    (dense_val - sparse_out[m]).abs() <= 1e-9 * (1.0 + dense_val.abs()),
                    "band {m}: dense {dense_val} vs sparse {}",
                    sparse_out[m]
                );
            }
        }
    }

    #[test]
    fn tone_energy_lands_in_matching_band() {
        let sr = 22_050.0;
        let n_fft = 2048;
        let bank = MelFilterbank::new(64, n_fft, sr, 0.0, sr / 2.0);
        // Put all power in the bin nearest 500 Hz.
        let mut frame = vec![0.0; n_fft / 2 + 1];
        let bin = (500.0 / sr * n_fft as f64).round() as usize;
        frame[bin] = 1.0;
        let mel = bank.apply(&frame);
        let peak_band =
            mel.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        // The band whose centre is nearest 500 Hz must win.
        let centre = |m: usize| {
            let lo = hz_to_mel(0.0);
            let hi = hz_to_mel(sr / 2.0);
            mel_to_hz(lo + (hi - lo) * (m + 1) as f64 / 65.0)
        };
        let dist = (centre(peak_band) - 500.0).abs();
        assert!(dist < 120.0, "peak band centre {} Hz", centre(peak_band));
    }

    #[test]
    fn apply_rejects_wrong_length() {
        let bank = MelFilterbank::new(8, 256, 22_050.0, 0.0, 11_025.0);
        let result = std::panic::catch_unwind(|| bank.apply(&[0.0; 10]));
        assert!(result.is_err());
    }

    #[test]
    fn log_mel_of_tone_has_expected_shape() {
        let sr = 22_050.0;
        let signal: Vec<f64> =
            (0..8192).map(|i| (2.0 * std::f64::consts::PI * 300.0 * i as f64 / sr).sin()).collect();
        let stft = Stft::new(SpectrogramParams { n_fft: 1024, hop: 512, window: WindowKind::Hann });
        let bank = MelFilterbank::new(64, 1024, sr, 0.0, sr / 2.0);
        let mel = MelSpectrogram::compute(&signal, &stft, &bank);
        assert_eq!(mel.n_mels(), 64);
        assert!(mel.n_frames() > 10);
        // dB values referenced to max: all ≤ 0, floored at −80.
        for f in mel.frames() {
            for &v in f {
                assert!((-MelSpectrogram::TOP_DB - 1e-9..=1e-9).contains(&v));
            }
        }
        // The 300 Hz band must be the loudest on average.
        let means = mel.band_means();
        let peak = means.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(peak < 16, "300 Hz should fall in a low mel band, got {peak}");
    }

    #[test]
    fn feature_vector_flattens_frame_major() {
        let mel = MelSpectrogram::from_frames(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(mel.to_feature_vector(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mel.band_means(), vec![2.0, 3.0]);
        assert_eq!(mel.frame(0), &[1.0, 2.0]);
        assert_eq!(mel.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn band_means_of_empty() {
        let mel = MelSpectrogram::from_frames(vec![]);
        assert!(mel.band_means().is_empty());
        assert_eq!(mel.n_mels(), 0);
        assert_eq!(mel.frames().count(), 0);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn f_max_beyond_nyquist_panics() {
        let _ = MelFilterbank::new(8, 256, 22_050.0, 0.0, 20_000.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(32))]

            /// Sparse application agrees with the dense matrix-vector
            /// product for arbitrary frames and filterbank geometries.
            #[test]
            fn sparse_apply_matches_dense(
                n_mels in 1usize..48,
                n_fft_bits in 7u32..11, // n_fft 128..1024
                frame in proptest::collection::vec(0.0f64..10.0, 513),
                f_lo in 0.0f64..500.0,
            ) {
                let n_fft = 1usize << n_fft_bits;
                let bank = MelFilterbank::new(n_mels, n_fft, 22_050.0, f_lo, 11_025.0);
                let frame = &frame[..n_fft / 2 + 1];
                let sparse = bank.apply(frame);
                for (m, row) in bank.dense_weights().iter().enumerate() {
                    let dense: f64 = row.iter().zip(frame).map(|(w, p)| w * p).sum();
                    prop_assert!(
                        (dense - sparse[m]).abs() <= 1e-9 * (1.0 + dense.abs()),
                        "band {}: dense {} vs sparse {}", m, dense, sparse[m]
                    );
                }
            }
        }
    }
}
