//! Goertzel single-bin spectral detection.
//!
//! An edge device that only needs the power near one frequency (the
//! ≈400 Hz queen-piping band) doesn't need a full FFT: the Goertzel
//! algorithm computes one DFT bin in 1 MAC per sample — two orders of
//! magnitude cheaper than the 2048-point FFT pipeline, which matters on a
//! joule budget. Used by the threshold-detector baseline.

use std::f64::consts::TAU;

/// Power of the DFT bin nearest `freq` over `signal` at `sample_rate`,
/// normalized by the block length so block size doesn't change the scale.
pub fn goertzel_power(signal: &[f64], freq: f64, sample_rate: f64) -> f64 {
    assert!(freq >= 0.0 && freq <= sample_rate / 2.0, "frequency must be in [0, Nyquist]");
    assert!(!signal.is_empty(), "signal must be non-empty");
    let n = signal.len();
    let k = (freq * n as f64 / sample_rate).round();
    let w = TAU * k / n as f64;
    let coeff = 2.0 * w.cos();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    let power = s1 * s1 + s2 * s2 - coeff * s1 * s2;
    power / (n as f64 * n as f64 / 4.0)
}

/// Mean band power: averages [`goertzel_power`] over `n_probes` equally
/// spaced probe frequencies in `[f_lo, f_hi]`.
pub fn band_power(signal: &[f64], f_lo: f64, f_hi: f64, n_probes: usize, sample_rate: f64) -> f64 {
    assert!(f_lo < f_hi, "need f_lo < f_hi");
    assert!(n_probes >= 1, "need at least one probe");
    (0..n_probes)
        .map(|i| {
            let f = f_lo + (f_hi - f_lo) * i as f64 / (n_probes.max(2) - 1).max(1) as f64;
            goertzel_power(signal, f, sample_rate)
        })
        .sum::<f64>()
        / n_probes as f64
}

/// Mean band power over consecutive frames of `frame_len` samples.
///
/// A single Goertzel pass over a long clip has an effective bandwidth of
/// `sample_rate / n` — a fraction of a hertz for multi-second clips — so
/// a sparse probe grid can sit *between* a narrow drifting tone and its
/// nearest probe and report almost nothing. Framing widens each probe's
/// effective bandwidth to `sample_rate / frame_len` (≈ 21 Hz at 1024
/// samples and 22 050 Hz), letting a handful of probes cover a band
/// densely. The MAC cost is unchanged: still 1 MAC per sample per probe,
/// with one constant epilogue per frame instead of per clip. The trailing
/// partial frame, if any, is ignored.
pub fn band_power_framed(
    signal: &[f64],
    f_lo: f64,
    f_hi: f64,
    n_probes: usize,
    frame_len: usize,
    sample_rate: f64,
) -> f64 {
    assert!(frame_len > 0, "frame_len must be positive");
    let mut frames = signal.chunks_exact(frame_len);
    let mut total = 0.0;
    let mut count = 0usize;
    for frame in &mut frames {
        total += band_power(frame, f_lo, f_hi, n_probes, sample_rate);
        count += 1;
    }
    if count == 0 {
        // Clip shorter than one frame: fall back to a whole-clip pass.
        return band_power(signal, f_lo, f_hi, n_probes, sample_rate);
    }
    total / count as f64
}

/// MAC count of one Goertzel evaluation over `n` samples (1 MAC/sample
/// plus the constant epilogue).
pub fn goertzel_macs(n: usize) -> u64 {
    n as u64 + 4
}

#[cfg(test)]
mod tests {
    use super::*;

    const SR: f64 = 22_050.0;

    fn tone(freq: f64, amp: f64, len: usize) -> Vec<f64> {
        (0..len).map(|i| amp * (TAU * freq * i as f64 / SR).sin()).collect()
    }

    #[test]
    fn detects_matching_tone() {
        let x = tone(440.0, 1.0, 2048);
        let on = goertzel_power(&x, 440.0, SR);
        let off = goertzel_power(&x, 1000.0, SR);
        assert!(on > 100.0 * off, "on {on}, off {off}");
        // A unit-amplitude tone has bin power ≈ 1 under this normalization.
        assert!((on - 1.0).abs() < 0.1, "normalized power {on}");
    }

    #[test]
    fn power_scales_with_amplitude_squared() {
        let a1 = goertzel_power(&tone(500.0, 1.0, 4096), 500.0, SR);
        let a3 = goertzel_power(&tone(500.0, 3.0, 4096), 500.0, SR);
        assert!((a3 / a1 - 9.0).abs() < 0.01);
    }

    #[test]
    fn matches_fft_bin() {
        use crate::complex::Complex;
        use crate::fft::fft;
        let x = tone(430.0, 0.8, 2048);
        let g = goertzel_power(&x, 430.0, SR);
        let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::from_real(v)).collect();
        fft(&mut buf);
        let bin = (430.0 * 2048.0 / SR).round() as usize;
        let f = buf[bin].norm_sqr() / (2048.0f64 * 2048.0 / 4.0);
        assert!((g - f).abs() < 1e-9 * (1.0 + f), "goertzel {g} vs fft {f}");
    }

    #[test]
    fn band_power_covers_the_band() {
        let x = tone(400.0, 1.0, 4096);
        let in_band = band_power(&x, 380.0, 420.0, 5, SR);
        let out_band = band_power(&x, 800.0, 900.0, 5, SR);
        assert!(in_band > 20.0 * out_band);
    }

    #[test]
    fn silence_is_zero() {
        let x = vec![0.0; 1024];
        assert!(goertzel_power(&x, 440.0, SR) < 1e-20);
    }

    #[test]
    fn mac_count_is_linear() {
        assert_eq!(goertzel_macs(2048), 2052);
        // vs the full FFT pipeline: n/2·log2(n) complex butterflies ≈
        // 4 MACs each — two orders of magnitude more.
        let fft_macs = (2048 / 2) * 11 * 4;
        assert!(goertzel_macs(2048) * 20 < fft_macs as u64);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn beyond_nyquist_panics() {
        let _ = goertzel_power(&[1.0, 2.0], 20_000.0, SR);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_signal_panics() {
        let _ = goertzel_power(&[], 440.0, SR);
    }
}
