//! Labelled synthetic corpus generation.
//!
//! Stands in for the paper's 1647 labelled recordings. Clips are generated
//! in parallel with rayon; determinism is preserved by deriving one RNG per
//! clip from the corpus seed and the clip index, so the corpus is identical
//! regardless of thread scheduling.

use crate::audio::{BeeAudioSynth, ColonyState};
use crate::image::Image;
use crate::mel::MelSpectrogram;
use crate::pipeline::MelPipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// One labelled audio clip.
#[derive(Clone, Debug)]
pub struct LabeledClip {
    /// Raw audio samples.
    pub samples: Vec<f64>,
    /// Ground-truth colony state.
    pub state: ColonyState,
}

/// Corpus generation parameters.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of clips (the paper used 1647).
    pub n_clips: usize,
    /// Clip duration in seconds (the paper used 10 s).
    pub duration_s: f64,
    /// Master seed; clip `i` uses seed `master ⊕ i`-derived RNG.
    pub seed: u64,
    /// Synthesizer parameters.
    pub synth: BeeAudioSynth,
}

impl Default for CorpusConfig {
    /// A paper-sized corpus: 1647 clips of 10 s.
    fn default() -> Self {
        CorpusConfig {
            n_clips: 1647,
            duration_s: 10.0,
            seed: 0xBEE5,
            synth: BeeAudioSynth::default(),
        }
    }
}

impl CorpusConfig {
    /// A small corpus for tests and quick examples.
    pub fn small(n_clips: usize, duration_s: f64, seed: u64) -> Self {
        CorpusConfig { n_clips, duration_s, seed, synth: BeeAudioSynth::default() }
    }
}

/// A labelled corpus of synthetic hive audio.
#[derive(Clone, Debug)]
pub struct Corpus {
    clips: Vec<LabeledClip>,
}

impl Corpus {
    /// Generates the corpus described by `config`, alternating labels so the
    /// classes are balanced (odd clip counts give queenless one extra).
    pub fn generate(config: &CorpusConfig) -> Self {
        assert!(config.n_clips > 0, "corpus must contain at least one clip");
        let clips = (0..config.n_clips)
            .into_par_iter()
            .map(|i| {
                let state =
                    if i % 2 == 1 { ColonyState::Queenright } else { ColonyState::Queenless };
                // splitmix-style index mixing keeps per-clip streams independent.
                let seed = config.seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut rng = StdRng::seed_from_u64(seed);
                let samples = config.synth.generate(state, config.duration_s, &mut rng);
                LabeledClip { samples, state }
            })
            .collect();
        Corpus { clips }
    }

    /// All clips in index order.
    pub fn clips(&self) -> &[LabeledClip] {
        &self.clips
    }

    /// Number of clips.
    pub fn len(&self) -> usize {
        self.clips.len()
    }

    /// True when the corpus holds no clips.
    pub fn is_empty(&self) -> bool {
        self.clips.is_empty()
    }

    /// Number of queenright clips.
    pub fn n_positive(&self) -> usize {
        self.clips.iter().filter(|c| c.state == ColonyState::Queenright).count()
    }

    /// Computes log-mel features for every clip (parallel) with a planned
    /// pipeline, so STFT plan and filterbank are built once, not per clip.
    pub fn mel_features(&self, pipeline: &MelPipeline) -> Vec<(MelSpectrogram, ColonyState)> {
        self.clips.par_iter().map(|c| (pipeline.mel(&c.samples), c.state)).collect()
    }

    /// Renders every clip to a normalized `side × side` spectrogram image
    /// (the CNN input of the Figure 5 sweep). Returns `(image, label)`.
    pub fn spectrogram_images(
        &self,
        pipeline: &MelPipeline,
        side: usize,
    ) -> Vec<(Image, ColonyState)> {
        self.clips.par_iter().map(|c| (pipeline.image(&c.samples, side), c.state)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_labels() {
        let corpus = Corpus::generate(&CorpusConfig::small(10, 0.1, 1));
        assert_eq!(corpus.len(), 10);
        assert_eq!(corpus.n_positive(), 5);
        assert!(!corpus.is_empty());
    }

    #[test]
    fn odd_count_gives_extra_negative() {
        let corpus = Corpus::generate(&CorpusConfig::small(7, 0.1, 1));
        assert_eq!(corpus.n_positive(), 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&CorpusConfig::small(4, 0.1, 99));
        let b = Corpus::generate(&CorpusConfig::small(4, 0.1, 99));
        for (ca, cb) in a.clips().iter().zip(b.clips()) {
            assert_eq!(ca.samples, cb.samples);
            assert_eq!(ca.state, cb.state);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(&CorpusConfig::small(2, 0.1, 1));
        let b = Corpus::generate(&CorpusConfig::small(2, 0.1, 2));
        assert_ne!(a.clips()[0].samples, b.clips()[0].samples);
    }

    #[test]
    fn mel_features_cover_corpus() {
        let corpus = Corpus::generate(&CorpusConfig::small(4, 0.2, 5));
        let feats = corpus.mel_features(&MelPipeline::compact());
        assert_eq!(feats.len(), 4);
        for (mel, _) in &feats {
            assert_eq!(mel.n_mels(), 32);
            assert!(mel.n_frames() > 0);
        }
    }

    #[test]
    fn spectrogram_images_have_requested_side() {
        let corpus = Corpus::generate(&CorpusConfig::small(2, 0.2, 5));
        let imgs = corpus.spectrogram_images(&MelPipeline::compact(), 24);
        assert_eq!(imgs.len(), 2);
        for (img, _) in &imgs {
            assert_eq!(img.width(), 24);
            assert_eq!(img.height(), 24);
            // Normalized to [0, 1].
            assert!(img.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one clip")]
    fn empty_corpus_panics() {
        let _ = Corpus::generate(&CorpusConfig::small(0, 0.1, 1));
    }
}
