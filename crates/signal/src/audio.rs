//! Synthetic bee-audio generator.
//!
//! The paper trains on 1647 private recordings labelled with queen
//! presence. This module substitutes a parametric synthesizer grounded in
//! the bioacoustics the queen-detection literature reports: a queenright
//! colony hums as a harmonic stack around a low fundamental with occasional
//! queen "piping" tones, while a queenless colony "roars" — its fundamental
//! drifts upward, harmonics flatten and broadband noise rises. The classes
//! therefore differ in *fine spectral structure*, which is exactly what the
//! Figure 5 resolution sweep needs: coarse CNN inputs blur the structure
//! and lose accuracy, high-resolution inputs keep it.

use crate::SAMPLE_RATE_HZ;
use rand::Rng;
use std::f64::consts::TAU;

/// Ground-truth colony condition of a clip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColonyState {
    /// Queen present (the positive class).
    Queenright,
    /// Queen absent.
    Queenless,
}

impl ColonyState {
    /// Class index used by the ML layer (queenright = 1).
    pub fn label(self) -> usize {
        match self {
            ColonyState::Queenright => 1,
            ColonyState::Queenless => 0,
        }
    }

    /// Inverse of [`ColonyState::label`].
    pub fn from_label(label: usize) -> Self {
        if label == 1 {
            ColonyState::Queenright
        } else {
            ColonyState::Queenless
        }
    }
}

/// Parametric synthesizer for hive audio.
#[derive(Clone, Debug)]
pub struct BeeAudioSynth {
    /// Output sample rate in hertz.
    pub sample_rate: f64,
    /// Mean colony fundamental for a queenright hive (Hz).
    pub queenright_f0: f64,
    /// Mean colony fundamental for a queenless hive (Hz).
    pub queenless_f0: f64,
    /// Per-clip fundamental jitter (uniform ±, Hz).
    pub f0_jitter: f64,
    /// Broadband noise amplitude for a queenright hive.
    pub queenright_noise: f64,
    /// Broadband noise amplitude for a queenless hive.
    pub queenless_noise: f64,
    /// Number of harmonics in the hum stack.
    pub harmonics: usize,
}

impl Default for BeeAudioSynth {
    /// Equal noise floors for both classes: the separating cues are the
    /// *fine* spectral ones (fundamental position, harmonic decay profile,
    /// the queen-piping band), so classification accuracy degrades when
    /// the spectrogram image is downsampled — the Figure 5 effect.
    fn default() -> Self {
        BeeAudioSynth {
            sample_rate: SAMPLE_RATE_HZ,
            queenright_f0: 230.0,
            queenless_f0: 280.0,
            f0_jitter: 20.0,
            queenright_noise: 0.10,
            queenless_noise: 0.10,
            harmonics: 5,
        }
    }
}

impl BeeAudioSynth {
    /// Synthesizes `duration_s` seconds of hive audio for a colony in
    /// `state`, using `rng` for all stochastic components.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        state: ColonyState,
        duration_s: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        assert!(duration_s > 0.0, "duration must be positive");
        let n = (duration_s * self.sample_rate).round() as usize;
        let (f0_mean, noise_amp) = match state {
            ColonyState::Queenright => (self.queenright_f0, self.queenright_noise),
            ColonyState::Queenless => (self.queenless_f0, self.queenless_noise),
        };
        let f0 = f0_mean + rng.gen_range(-self.f0_jitter..=self.f0_jitter);

        // Harmonic amplitude profile: queenright hums have a dominant
        // fundamental with steeply decaying harmonics; queenless roars
        // spread energy flatter across the stack.
        let decay: f64 = match state {
            ColonyState::Queenright => 0.45,
            ColonyState::Queenless => 0.8,
        };
        // Normalize the stack to unit power so total hum loudness carries
        // no class information — only the *profile* across harmonics does.
        let amps: Vec<f64> = {
            let raw: Vec<f64> = (0..self.harmonics).map(|h| decay.powi(h as i32)).collect();
            let norm = raw.iter().map(|a| a * a).sum::<f64>().sqrt();
            raw.into_iter().map(|a| a / norm).collect()
        };

        // Slow random frequency drift (colony activity level changes).
        let drift_rate = rng.gen_range(0.05..0.2); // Hz of LFO
        let drift_depth = rng.gen_range(1.0..4.0); // Hz of deviation
        let drift_phase = rng.gen_range(0.0..TAU);

        // Queen piping: short 400 Hz tone bursts, queenright only.
        let piping = matches!(state, ColonyState::Queenright);
        let pipe_freq = rng.gen_range(380.0..420.0);
        let pipe_period = rng.gen_range(1.5..3.0); // seconds between pipes
        let pipe_len = 0.35; // seconds

        let mut phase = vec![0.0f64; self.harmonics];
        let dt = 1.0 / self.sample_rate;
        let mut out = Vec::with_capacity(n);
        let mut pipe_phase = 0.0f64;
        for i in 0..n {
            let t = i as f64 * dt;
            let inst_f0 = f0 + drift_depth * (TAU * drift_rate * t + drift_phase).sin();
            let mut sample = 0.0;
            for (h, (ph, amp)) in phase.iter_mut().zip(&amps).enumerate() {
                *ph += TAU * inst_f0 * (h + 1) as f64 * dt;
                sample += amp * ph.sin();
            }
            // Broadband colony noise.
            sample += noise_amp * (rng.gen::<f64>() * 2.0 - 1.0);
            // Piping bursts.
            if piping {
                let cycle_t = t % pipe_period;
                if cycle_t < pipe_len {
                    pipe_phase += TAU * pipe_freq * dt;
                    let env = (std::f64::consts::PI * cycle_t / pipe_len).sin();
                    sample += 0.4 * env * pipe_phase.sin();
                }
            }
            out.push(sample * 0.25);
        }
        out
    }

    /// Synthesizes the paper's standard clip: 10 seconds at 22 050 Hz.
    pub fn generate_standard<R: Rng + ?Sized>(&self, state: ColonyState, rng: &mut R) -> Vec<f64> {
        self.generate(state, 10.0, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mel::{MelFilterbank, MelSpectrogram};
    use crate::stft::{SpectrogramParams, Stft};
    use crate::window::WindowKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn label_round_trip() {
        assert_eq!(ColonyState::Queenright.label(), 1);
        assert_eq!(ColonyState::Queenless.label(), 0);
        assert_eq!(ColonyState::from_label(1), ColonyState::Queenright);
        assert_eq!(ColonyState::from_label(0), ColonyState::Queenless);
    }

    #[test]
    fn clip_length_matches_duration() {
        let synth = BeeAudioSynth::default();
        let mut rng = StdRng::seed_from_u64(1);
        let clip = synth.generate(ColonyState::Queenright, 0.5, &mut rng);
        assert_eq!(clip.len(), (0.5 * SAMPLE_RATE_HZ) as usize);
    }

    #[test]
    fn samples_are_bounded() {
        let synth = BeeAudioSynth::default();
        let mut rng = StdRng::seed_from_u64(2);
        for state in [ColonyState::Queenright, ColonyState::Queenless] {
            let clip = synth.generate(state, 1.0, &mut rng);
            assert!(clip.iter().all(|s| s.abs() < 2.0));
            // Non-silent.
            let rms = (clip.iter().map(|s| s * s).sum::<f64>() / clip.len() as f64).sqrt();
            assert!(rms > 0.05, "rms {rms}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let synth = BeeAudioSynth::default();
        let a = synth.generate(ColonyState::Queenless, 0.2, &mut StdRng::seed_from_u64(7));
        let b = synth.generate(ColonyState::Queenless, 0.2, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn spectral_peak_near_fundamental() {
        let synth = BeeAudioSynth { f0_jitter: 0.0, ..BeeAudioSynth::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let clip = synth.generate(ColonyState::Queenright, 1.0, &mut rng);
        let stft =
            Stft::new(SpectrogramParams { n_fft: 4096, hop: 2048, window: WindowKind::Hann });
        let spec = stft.power_spectrogram(&clip);
        // Average over frames, find the peak bin.
        let bins = spec.n_bins();
        let mut avg = vec![0.0; bins];
        for f in spec.frames() {
            for (a, &p) in avg.iter_mut().zip(f) {
                *a += p;
            }
        }
        let peak = avg.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let peak_hz = peak as f64 * SAMPLE_RATE_HZ / 4096.0;
        assert!((peak_hz - 230.0).abs() < 20.0, "peak at {peak_hz} Hz");
    }

    #[test]
    fn classes_separate_in_mel_space() {
        // Mean mel profiles of the two classes must differ substantially —
        // the property the whole ML evaluation rests on.
        let synth = BeeAudioSynth::default();
        let stft =
            Stft::new(SpectrogramParams { n_fft: 2048, hop: 1024, window: WindowKind::Hann });
        let bank = MelFilterbank::new(64, 2048, SAMPLE_RATE_HZ, 0.0, SAMPLE_RATE_HZ / 2.0);
        let profile = |state, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let clip = synth.generate(state, 1.0, &mut rng);
            MelSpectrogram::compute(&clip, &stft, &bank).band_means()
        };
        let mut dist_within = 0.0;
        let mut dist_between = 0.0;
        let n = 4;
        for s in 0..n {
            let qr_a = profile(ColonyState::Queenright, s);
            let qr_b = profile(ColonyState::Queenright, s + 100);
            let ql = profile(ColonyState::Queenless, s + 200);
            let d = |a: &[f64], b: &[f64]| -> f64 {
                a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt()
            };
            dist_within += d(&qr_a, &qr_b);
            dist_between += d(&qr_a, &ql);
        }
        assert!(
            dist_between > 1.5 * dist_within,
            "between-class {dist_between:.2} vs within-class {dist_within:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_panics() {
        let synth = BeeAudioSynth::default();
        let mut rng = StdRng::seed_from_u64(1);
        synth.generate(ColonyState::Queenright, 0.0, &mut rng);
    }
}
