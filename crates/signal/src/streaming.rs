//! Streaming STFT for constant-memory edge processing.
//!
//! A 10-second clip at 22 050 Hz is 1.7 MB of f64 — fine on a laptop,
//! noticeable on a 512 MB Pi Zero that also buffers images. The streaming
//! transform accepts audio in arbitrary chunks and emits frames as soon as
//! they are complete, holding only `n_fft` samples of state. Its output is
//! bit-identical to the batch [`crate::stft::Stft`].

use crate::complex::Complex;
use crate::fft::Fft;
use crate::stft::SpectrogramParams;

/// An incremental STFT that processes audio chunk by chunk.
#[derive(Clone, Debug)]
pub struct StreamingStft {
    params: SpectrogramParams,
    plan: Fft,
    window: Vec<f64>,
    /// Ring of the last `n_fft` samples awaiting frame completion.
    buffer: Vec<f64>,
    /// Samples currently in the buffer.
    filled: usize,
    /// Reusable windowed-frame scratch (no per-frame allocation).
    windowed: Vec<f64>,
    /// Reusable half-spectrum scratch for the real-input FFT.
    spec: Vec<Complex>,
}

impl StreamingStft {
    /// Creates a streaming transform with the given parameters.
    pub fn new(params: SpectrogramParams) -> Self {
        assert!(params.hop > 0 && params.hop <= params.n_fft, "hop must be in 1..=n_fft");
        StreamingStft {
            plan: Fft::new(params.n_fft),
            window: params.window.coefficients(params.n_fft),
            buffer: vec![0.0; params.n_fft],
            filled: 0,
            windowed: vec![0.0; params.n_fft],
            spec: vec![Complex::ZERO; params.n_fft / 2 + 1],
            params,
        }
    }

    /// Number of frames that would be emitted for a signal of `len`
    /// samples (matches the batch transform).
    pub fn frames_for(&self, len: usize) -> usize {
        self.params.frames_for(len)
    }

    /// Feeds a chunk; returns the power frames completed by it.
    pub fn feed(&mut self, chunk: &[f64]) -> Vec<Vec<f64>> {
        let mut frames = Vec::new();
        for &sample in chunk {
            if self.filled < self.params.n_fft {
                self.buffer[self.filled] = sample;
                self.filled += 1;
            } else {
                // Slide by one: drop the oldest sample. Amortized O(1)
                // via rotation only at hop boundaries would complicate the
                // invariant; the simple shift keeps the window exact and
                // is dominated by the FFT cost at hop ≥ n_fft/4.
                self.buffer.copy_within(1.., 0);
                self.buffer[self.params.n_fft - 1] = sample;
                self.filled += 1;
            }
            // A frame completes when (filled − n_fft) is a non-negative
            // multiple of hop.
            if self.filled >= self.params.n_fft
                && (self.filled - self.params.n_fft).is_multiple_of(self.params.hop)
            {
                frames.push(self.emit());
            }
        }
        frames
    }

    fn emit(&mut self) -> Vec<f64> {
        for (w, (&x, &coeff)) in self.windowed.iter_mut().zip(self.buffer.iter().zip(&self.window))
        {
            *w = x * coeff;
        }
        self.plan.forward_real_into(&self.windowed, &mut self.spec);
        self.spec.iter().map(|z| z.norm_sqr()).collect()
    }

    /// Total samples consumed so far.
    pub fn samples_consumed(&self) -> usize {
        self.filled
    }

    /// Resets the transform to its initial state.
    pub fn reset(&mut self) {
        self.buffer.fill(0.0);
        self.filled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stft::Stft;
    use crate::window::WindowKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params() -> SpectrogramParams {
        SpectrogramParams { n_fft: 256, hop: 128, window: WindowKind::Hann }
    }

    fn random_signal(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn matches_batch_transform_exactly() {
        let signal = random_signal(2000, 1);
        let batch = Stft::new(params()).power_spectrogram(&signal);
        let mut stream = StreamingStft::new(params());
        let mut frames = Vec::new();
        // Feed in awkward chunk sizes.
        for chunk in signal.chunks(77) {
            frames.extend(stream.feed(chunk));
        }
        assert_eq!(frames.len(), batch.n_frames());
        for (a, b) in frames.iter().zip(batch.frames()) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn chunk_size_is_irrelevant() {
        let signal = random_signal(1500, 2);
        let collect = |chunk_size: usize| {
            let mut s = StreamingStft::new(params());
            let mut out = Vec::new();
            for c in signal.chunks(chunk_size) {
                out.extend(s.feed(c));
            }
            out
        };
        let a = collect(1);
        let b = collect(512);
        let c = collect(1500);
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), c.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert_eq!(x, y);
            assert_eq!(y, z);
        }
    }

    #[test]
    fn frame_count_matches_formula() {
        let mut s = StreamingStft::new(params());
        let signal = random_signal(1000, 3);
        let frames = s.feed(&signal);
        assert_eq!(frames.len(), s.frames_for(1000));
        assert_eq!(s.samples_consumed(), 1000);
    }

    #[test]
    fn short_input_emits_nothing() {
        let mut s = StreamingStft::new(params());
        assert!(s.feed(&random_signal(255, 4)).is_empty());
        // One more sample completes the first frame.
        assert_eq!(s.feed(&[0.5]).len(), 1);
    }

    #[test]
    fn reset_restarts_cleanly() {
        let mut s = StreamingStft::new(params());
        let signal = random_signal(600, 5);
        let first = s.feed(&signal);
        s.reset();
        let second = s.feed(&signal);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "hop must be")]
    fn oversized_hop_panics() {
        let _ = StreamingStft::new(SpectrogramParams {
            n_fft: 256,
            hop: 512,
            window: WindowKind::Hann,
        });
    }
}
