//! Analysis windows for the STFT.

/// Supported analysis window shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowKind {
    /// All-ones window (no tapering).
    Rectangular,
    /// Hann window — the librosa default the paper's pipeline uses.
    Hann,
    /// Hamming window.
    Hamming,
}

impl WindowKind {
    /// Generates the window coefficients for a frame of `n` samples
    /// (periodic form, as used for spectral analysis).
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        assert!(n > 0, "window length must be positive");
        match self {
            WindowKind::Rectangular => vec![1.0; n],
            WindowKind::Hann => raised_cosine(n, 0.5, 0.5),
            WindowKind::Hamming => raised_cosine(n, 0.54, 0.46),
        }
    }

    /// Sum of squared coefficients (used for power normalization).
    pub fn power(self, n: usize) -> f64 {
        self.coefficients(n).iter().map(|w| w * w).sum()
    }
}

fn raised_cosine(n: usize, a: f64, b: f64) -> Vec<f64> {
    (0..n).map(|i| a - b * (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(WindowKind::Rectangular.coefficients(16).iter().all(|&w| w == 1.0));
        assert_eq!(WindowKind::Rectangular.power(16), 16.0);
    }

    #[test]
    fn hann_starts_at_zero_and_peaks_mid() {
        let w = WindowKind::Hann.coefficients(64);
        assert!(w[0].abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn hamming_has_nonzero_endpoints() {
        let w = WindowKind::Hamming.coefficients(64);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_is_symmetric_in_periodic_sense() {
        let w = WindowKind::Hann.coefficients(128);
        for i in 1..128 {
            assert!((w[i] - w[128 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn hann_power_is_three_eighths_n() {
        // Σ hann² = 3n/8 for periodic Hann.
        let n = 2048;
        assert!((WindowKind::Hann.power(n) - 3.0 * n as f64 / 8.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_panics() {
        let _ = WindowKind::Hann.coefficients(0);
    }
}
