//! Planned feature-extraction pipelines.
//!
//! An STFT plan (FFT twiddles, bit-reversal table, window coefficients) and
//! a mel filterbank are pure functions of their parameters, yet several call
//! sites used to rebuild them per clip — and the 32-band/1024-point "MFCC
//! configuration" was hand-rolled in five places. [`MelPipeline`] plans both
//! once and is reused across clips (`&self` methods only), so the per-clip
//! cost is just the transform itself.

use crate::image::Image;
use crate::mel::{MelFilterbank, MelSpectrogram};
use crate::mfcc::Mfcc;
use crate::stft::{SpectrogramParams, Stft};
use crate::window::WindowKind;
use pb_telemetry::Telemetry;

/// A planned clip→features pipeline: one STFT plan plus one mel filterbank,
/// built once and reused for every clip.
#[derive(Clone, Debug)]
pub struct MelPipeline {
    stft: Stft,
    bank: MelFilterbank,
    telemetry: Telemetry,
}

impl MelPipeline {
    /// Plans a pipeline: STFT with `params`, full-band filterbank with
    /// `n_mels` bands at `sample_rate`.
    pub fn new(params: SpectrogramParams, n_mels: usize, sample_rate: f64) -> Self {
        let bank = MelFilterbank::new(n_mels, params.n_fft, sample_rate, 0.0, sample_rate / 2.0);
        MelPipeline { stft: Stft::new(params), bank, telemetry: Telemetry::disabled() }
    }

    /// Assembles a pipeline from existing parts (FFT sizes must agree).
    pub fn from_parts(stft: Stft, bank: MelFilterbank) -> Self {
        assert_eq!(stft.params().n_fft, bank.n_fft(), "STFT and filterbank must agree on n_fft");
        MelPipeline { stft, bank, telemetry: Telemetry::disabled() }
    }

    /// Times every stage into `telemetry`: per-clip wall-time histograms
    /// `dsp.mel`, `dsp.mfcc` and `dsp.image` (nested — an `image` call
    /// also records its inner `mel`). Outputs are unchanged.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The paper's configuration: n_fft 2048, hop 512, Hann window,
    /// 128 mel bands at 22 050 Hz.
    pub fn paper_default() -> Self {
        MelPipeline::new(SpectrogramParams::default(), crate::N_MELS, crate::SAMPLE_RATE_HZ)
    }

    /// The compact MFCC configuration used by the SVM path and tests:
    /// n_fft 1024, hop 512, Hann window, 32 mel bands at 22 050 Hz.
    pub fn compact() -> Self {
        MelPipeline::new(
            SpectrogramParams { n_fft: 1024, hop: 512, window: WindowKind::Hann },
            32,
            crate::SAMPLE_RATE_HZ,
        )
    }

    /// The planned STFT.
    pub fn stft(&self) -> &Stft {
        &self.stft
    }

    /// The planned filterbank.
    pub fn bank(&self) -> &MelFilterbank {
        &self.bank
    }

    /// Log-mel spectrogram of `signal`.
    pub fn mel(&self, signal: &[f64]) -> MelSpectrogram {
        let _span = self.telemetry.span("dsp.mel");
        MelSpectrogram::compute(signal, &self.stft, &self.bank)
    }

    /// MFCCs of `signal` (`n_coeffs` per frame).
    pub fn mfcc(&self, signal: &[f64], n_coeffs: usize) -> Mfcc {
        let _span = self.telemetry.span("dsp.mfcc");
        Mfcc::from_mel(&self.mel(signal), n_coeffs)
    }

    /// Normalized `side × side` spectrogram image of `signal` — the CNN
    /// input of the Figure 5 sweep.
    pub fn image(&self, signal: &[f64], side: usize) -> Image {
        let _span = self.telemetry.span("dsp.image");
        Image::from_mel(&self.mel(signal)).resize_bilinear(side, side).normalize()
    }

    /// Batch variant of [`MelPipeline::image`]: one normalized `side × side`
    /// spectrogram image per clip, sharing this pipeline's plans across the
    /// whole batch. Records one `dsp.image` span per clip plus a
    /// `dsp.batch.size` gauge, so batched callers show up in telemetry with
    /// the same per-clip histograms as the loop they replace.
    pub fn images<S: AsRef<[f64]>>(&self, clips: &[S], side: usize) -> Vec<Image> {
        self.telemetry.set_gauge("dsp.batch.size", clips.len() as f64);
        clips.iter().map(|c| self.image(c.as_ref(), side)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_free_function() {
        let clip: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
        let via_pipeline = MelPipeline::paper_default().mel(&clip);
        let via_free = MelSpectrogram::paper_default(&clip);
        assert_eq!(via_pipeline, via_free);
    }

    #[test]
    fn compact_configuration_shape() {
        let p = MelPipeline::compact();
        assert_eq!(p.stft().params().n_fft, 1024);
        assert_eq!(p.stft().params().hop, 512);
        assert_eq!(p.bank().n_mels(), 32);
        let clip: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.02).sin()).collect();
        let mel = p.mel(&clip);
        assert_eq!(mel.n_mels(), 32);
        assert_eq!(mel.n_frames(), p.stft().params().frames_for(clip.len()));
        let mfcc = p.mfcc(&clip, 13);
        assert_eq!(mfcc.n_coeffs(), 13);
        assert_eq!(mfcc.n_frames(), mel.n_frames());
    }

    #[test]
    fn image_has_requested_side() {
        let clip: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.05).sin()).collect();
        let img = MelPipeline::compact().image(&clip, 24);
        assert_eq!((img.width(), img.height()), (24, 24));
    }

    #[test]
    fn telemetry_times_each_stage_without_changing_outputs() {
        let clip: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.01).sin()).collect();
        let tel = Telemetry::metrics_only();
        let plain = MelPipeline::compact();
        let traced = MelPipeline::compact().with_telemetry(tel.clone());
        assert_eq!(plain.mel(&clip), traced.mel(&clip));
        assert_eq!(plain.mfcc(&clip, 13), traced.mfcc(&clip, 13));
        assert_eq!(plain.image(&clip, 16), traced.image(&clip, 16));
        let snap = tel.snapshot();
        // mel is called directly once, plus once inside mfcc and image.
        assert_eq!(snap.histogram("dsp.mel").unwrap().count, 3);
        assert_eq!(snap.histogram("dsp.mfcc").unwrap().count, 1);
        assert_eq!(snap.histogram("dsp.image").unwrap().count, 1);
        // Outer stages cover their inner mel.
        let mel = snap.histogram("dsp.mel").unwrap();
        let mfcc = snap.histogram("dsp.mfcc").unwrap();
        assert!(mfcc.max >= mel.min);
    }

    #[test]
    fn batched_images_match_the_per_clip_loop() {
        let clips: Vec<Vec<f64>> = (0..3)
            .map(|k| (0..4096).map(|i| (i as f64 * 0.01 * (k + 1) as f64).sin()).collect())
            .collect();
        let tel = Telemetry::metrics_only();
        let p = MelPipeline::compact().with_telemetry(tel.clone());
        let batched = p.images(&clips, 16);
        assert_eq!(batched.len(), 3);
        for (clip, img) in clips.iter().zip(&batched) {
            assert_eq!(img, &p.image(clip, 16));
        }
        let snap = tel.snapshot();
        assert_eq!(snap.gauge("dsp.batch.size"), Some(3.0));
        // 3 from the batch + 3 from the comparison loop.
        assert_eq!(snap.histogram("dsp.image").unwrap().count, 6);
    }

    #[test]
    #[should_panic(expected = "agree on n_fft")]
    fn mismatched_parts_panic() {
        let stft = Stft::new(SpectrogramParams { n_fft: 512, hop: 256, window: WindowKind::Hann });
        let bank = MelFilterbank::new(8, 1024, 22_050.0, 0.0, 11_025.0);
        let _ = MelPipeline::from_parts(stft, bank);
    }
}
