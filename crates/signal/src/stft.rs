//! Short-time Fourier transform and power spectrograms.
//!
//! Frames the signal with a hop, windows each frame, transforms it and keeps
//! the non-redundant half-spectrum. With the paper's parameters
//! (n_fft = 2048, hop = 512) a 10 s clip at 22 050 Hz yields ≈427 frames of
//! 1025 bins each.
//!
//! This is the hottest loop of the feature pipeline, so it streams frames
//! through the packed real-input FFT with reusable window/transform scratch
//! buffers — no per-frame allocation — and stores the result as one flat
//! row-major buffer rather than a `Vec` per frame.

use crate::complex::Complex;
use crate::fft::Fft;
use crate::window::WindowKind;

/// STFT parameters.
#[derive(Clone, Copy, Debug)]
pub struct SpectrogramParams {
    /// FFT window length in samples (power of two).
    pub n_fft: usize,
    /// Samples between adjacent frames.
    pub hop: usize,
    /// Analysis window shape.
    pub window: WindowKind,
}

impl Default for SpectrogramParams {
    /// The paper's configuration: n_fft 2048, hop 512, Hann window.
    fn default() -> Self {
        SpectrogramParams { n_fft: crate::N_FFT, hop: crate::HOP_LENGTH, window: WindowKind::Hann }
    }
}

impl SpectrogramParams {
    /// Number of frames produced for a signal of `len` samples
    /// (no centering/padding; zero if the signal is shorter than one frame).
    pub fn frames_for(&self, len: usize) -> usize {
        if len < self.n_fft {
            0
        } else {
            1 + (len - self.n_fft) / self.hop
        }
    }

    /// Number of non-redundant frequency bins per frame.
    pub fn bins(&self) -> usize {
        self.n_fft / 2 + 1
    }
}

/// A planned STFT: reusable FFT plan plus window coefficients.
#[derive(Clone, Debug)]
pub struct Stft {
    params: SpectrogramParams,
    plan: Fft,
    window: Vec<f64>,
}

/// A power spectrogram stored as one flat row-major buffer:
/// `data[frame * n_bins + bin]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Spectrogram {
    data: Vec<f64>,
    n_frames: usize,
    n_bins: usize,
}

impl Spectrogram {
    /// Wraps a flat row-major buffer (`data.len() == n_frames * n_bins`).
    pub fn from_flat(n_frames: usize, n_bins: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n_frames * n_bins, "data length must equal n_frames * n_bins");
        Spectrogram { data, n_frames, n_bins }
    }

    /// The empty spectrogram (no frames, no bins).
    pub fn empty() -> Self {
        Spectrogram { data: Vec::new(), n_frames: 0, n_bins: 0 }
    }

    /// Builds from one `Vec` per frame (all frames must agree in length).
    pub fn from_frames(frames: Vec<Vec<f64>>) -> Self {
        let n_frames = frames.len();
        let n_bins = frames.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_frames * n_bins);
        for f in &frames {
            assert_eq!(f.len(), n_bins, "all frames must have the same bin count");
            data.extend_from_slice(f);
        }
        Spectrogram { data, n_frames, n_bins }
    }

    /// Number of time frames.
    pub fn n_frames(&self) -> usize {
        self.n_frames
    }

    /// Number of frequency bins (zero when there are no frames).
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// The flat row-major power buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// One frame as a bin slice.
    pub fn frame(&self, i: usize) -> &[f64] {
        assert!(i < self.n_frames, "frame {i} out of bounds ({} frames)", self.n_frames);
        &self.data[i * self.n_bins..(i + 1) * self.n_bins]
    }

    /// Iterator over frames (each a `n_bins`-long slice).
    pub fn frames(&self) -> std::slice::ChunksExact<'_, f64> {
        // max(1) keeps the degenerate empty spectrogram iterable.
        self.data.chunks_exact(self.n_bins.max(1))
    }

    /// Total spectral power summed over all frames and bins.
    pub fn total_power(&self) -> f64 {
        self.data.iter().sum()
    }
}

impl Stft {
    /// Plans an STFT with the given parameters.
    pub fn new(params: SpectrogramParams) -> Self {
        assert!(params.hop > 0, "hop must be positive");
        let plan = Fft::new(params.n_fft);
        let window = params.window.coefficients(params.n_fft);
        Stft { params, plan, window }
    }

    /// Planning parameters.
    pub fn params(&self) -> &SpectrogramParams {
        &self.params
    }

    /// The underlying FFT plan.
    pub fn plan(&self) -> &Fft {
        &self.plan
    }

    /// Windows frame `f` of `signal` into `windowed` (len `n_fft`).
    #[inline]
    fn window_frame(&self, signal: &[f64], f: usize, windowed: &mut [f64]) {
        let start = f * self.params.hop;
        for (w, (&s, &coeff)) in windowed
            .iter_mut()
            .zip(signal[start..start + self.params.n_fft].iter().zip(&self.window))
        {
            *w = s * coeff;
        }
    }

    /// Complex STFT of `signal`: one `Vec<Complex>` of `n_fft/2 + 1` bins
    /// per frame.
    pub fn transform(&self, signal: &[f64]) -> Vec<Vec<Complex>> {
        let n_frames = self.params.frames_for(signal.len());
        let mut out = Vec::with_capacity(n_frames);
        let mut windowed = vec![0.0; self.params.n_fft];
        for f in 0..n_frames {
            self.window_frame(signal, f, &mut windowed);
            let mut spec = vec![Complex::ZERO; self.params.bins()];
            self.plan.forward_real_into(&windowed, &mut spec);
            out.push(spec);
        }
        out
    }

    /// Power spectrogram: |STFT|² per bin, streamed through two reused
    /// scratch buffers (windowed frame + half-spectrum) into a flat buffer.
    pub fn power_spectrogram(&self, signal: &[f64]) -> Spectrogram {
        let n_frames = self.params.frames_for(signal.len());
        if n_frames == 0 {
            return Spectrogram::empty();
        }
        let n_bins = self.params.bins();
        let mut data = vec![0.0; n_frames * n_bins];
        let mut windowed = vec![0.0; self.params.n_fft];
        let mut spec = vec![Complex::ZERO; n_bins];
        for (f, row) in data.chunks_exact_mut(n_bins).enumerate() {
            self.window_frame(signal, f, &mut windowed);
            self.plan.forward_real_into(&windowed, &mut spec);
            for (r, z) in row.iter_mut().zip(&spec) {
                *r = z.norm_sqr();
            }
        }
        Spectrogram { data, n_frames, n_bins }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, sr: f64, len: usize) -> Vec<f64> {
        (0..len).map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / sr).sin()).collect()
    }

    #[test]
    fn frame_count_matches_formula() {
        let p = SpectrogramParams::default();
        // 10 s at 22 050 Hz = 220 500 samples.
        assert_eq!(p.frames_for(220_500), 1 + (220_500 - 2048) / 512);
        assert_eq!(p.frames_for(2048), 1);
        assert_eq!(p.frames_for(2047), 0);
        assert_eq!(p.bins(), 1025);
    }

    #[test]
    fn tone_peaks_at_expected_bin() {
        let sr = 22_050.0;
        let freq = 440.0;
        let p = SpectrogramParams { n_fft: 2048, hop: 512, window: WindowKind::Hann };
        let stft = Stft::new(p);
        let spec = stft.power_spectrogram(&tone(freq, sr, 8192));
        assert!(spec.n_frames() > 0);
        let expected_bin = (freq / sr * 2048.0).round() as usize;
        for frame in spec.frames() {
            let peak = frame
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            assert!(
                (peak as i64 - expected_bin as i64).abs() <= 1,
                "peak bin {peak}, expected ≈{expected_bin}"
            );
        }
    }

    #[test]
    fn silence_has_zero_power() {
        let stft = Stft::new(SpectrogramParams { n_fft: 256, hop: 128, window: WindowKind::Hann });
        let spec = stft.power_spectrogram(&vec![0.0; 1024]);
        assert!(spec.total_power() < 1e-20);
        assert_eq!(spec.n_bins(), 129);
    }

    #[test]
    fn short_signal_yields_no_frames() {
        let stft = Stft::new(SpectrogramParams { n_fft: 256, hop: 128, window: WindowKind::Hann });
        let spec = stft.power_spectrogram(&vec![1.0; 100]);
        assert_eq!(spec.n_frames(), 0);
        assert_eq!(spec.n_bins(), 0);
        assert_eq!(spec.frames().count(), 0);
    }

    #[test]
    fn louder_signal_has_more_power() {
        let stft = Stft::new(SpectrogramParams { n_fft: 256, hop: 128, window: WindowKind::Hann });
        let quiet = stft.power_spectrogram(&tone(500.0, 22_050.0, 1024));
        let loud_signal: Vec<f64> = tone(500.0, 22_050.0, 1024).iter().map(|x| x * 3.0).collect();
        let loud = stft.power_spectrogram(&loud_signal);
        // Power scales with amplitude²: 9×.
        let ratio = loud.total_power() / quiet.total_power();
        assert!((ratio - 9.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn transform_and_power_agree() {
        let stft =
            Stft::new(SpectrogramParams { n_fft: 256, hop: 256, window: WindowKind::Hamming });
        let signal = tone(1000.0, 22_050.0, 512);
        let complex = stft.transform(&signal);
        let power = stft.power_spectrogram(&signal);
        assert_eq!(complex.len(), power.n_frames());
        for (cf, pf) in complex.iter().zip(power.frames()) {
            for (c, &p) in cf.iter().zip(pf) {
                assert!((c.norm_sqr() - p).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn flat_layout_round_trips_through_frames() {
        let spec = Spectrogram::from_frames(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(spec.n_frames(), 2);
        assert_eq!(spec.n_bins(), 2);
        assert_eq!(spec.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(spec.frame(1), &[3.0, 4.0]);
        let rows: Vec<&[f64]> = spec.frames().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        assert_eq!(spec, Spectrogram::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn frame_out_of_bounds_panics() {
        Spectrogram::empty().frame(0);
    }

    #[test]
    #[should_panic(expected = "hop must be positive")]
    fn zero_hop_panics() {
        let _ = Stft::new(SpectrogramParams { n_fft: 256, hop: 0, window: WindowKind::Hann });
    }
}
