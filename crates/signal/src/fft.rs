//! Iterative radix-2 FFT.
//!
//! The feature pipeline runs hundreds of 2048-point transforms per clip, so
//! the kernel is the classic in-place iterative Cooley–Tukey with a
//! precomputed twiddle table. Power-of-two lengths only — the paper's
//! n_fft = 2048 qualifies.

use crate::complex::Complex;

/// A planned FFT of a fixed power-of-two size.
///
/// Planning precomputes the bit-reversal permutation and twiddle factors so
/// repeated transforms (one per STFT frame) do no trigonometry.
#[derive(Clone, Debug)]
pub struct Fft {
    n: usize,
    rev: Vec<u32>,
    /// Twiddles for the forward transform: w[k] = e^{-2πik/n}, k < n/2.
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation for the n/2-point sub-transform used by the
    /// packed real-input path (empty for n < 2).
    half_rev: Vec<u32>,
}

fn bit_reversal_table(n: usize) -> Vec<u32> {
    if n <= 1 {
        return vec![0; n];
    }
    let bits = n.trailing_zeros();
    (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits)).collect()
}

impl Fft {
    /// Plans an FFT of size `n` (must be a power of two ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT size must be a power of two, got {n}");
        let rev = bit_reversal_table(n);
        let half_rev = bit_reversal_table(n / 2);
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Fft { n, rev, twiddles, half_rev }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate size-1 plan, whose transform is the
    /// identity. (The constructor asserts the size is a power of two ≥ 1,
    /// so a size-0 plan cannot exist.)
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place forward DFT: `X[k] = Σ x[j]·e^{-2πijk/n}`.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must equal FFT size");
        self.permute(data);
        self.butterflies(data, false);
    }

    /// In-place inverse DFT (normalized by 1/n).
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must equal FFT size");
        self.permute(data);
        self.butterflies(data, true);
        let k = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(k);
        }
    }

    /// Forward DFT of a real signal; returns the `n/2 + 1` non-redundant
    /// bins (DC through Nyquist).
    ///
    /// Computed by packing the even/odd samples into an n/2-point complex
    /// transform and unzipping via Hermitian symmetry — half the butterfly
    /// work of a full complex FFT on zero-imaginary input.
    pub fn forward_real(&self, signal: &[f64]) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; self.n / 2 + 1];
        self.forward_real_into(signal, &mut out);
        out
    }

    /// Allocation-free [`Fft::forward_real`]: writes the `n/2 + 1`
    /// non-redundant bins into `out`, which doubles as the working buffer.
    pub fn forward_real_into(&self, signal: &[f64], out: &mut [Complex]) {
        assert_eq!(signal.len(), self.n, "signal length must equal FFT size");
        assert_eq!(out.len(), self.n / 2 + 1, "output length must be n/2 + 1");
        if self.n == 1 {
            out[0] = Complex::from_real(signal[0]);
            return;
        }
        let m = self.n / 2;
        // Pack z[j] = x[2j] + i·x[2j+1] and transform at size m in place.
        for (z, pair) in out[..m].iter_mut().zip(signal.chunks_exact(2)) {
            *z = Complex::new(pair[0], pair[1]);
        }
        for i in 0..m {
            let j = self.half_rev[i] as usize;
            if i < j {
                out.swap(i, j);
            }
        }
        // Butterflies at size m reuse the size-n twiddle table: the stage
        // twiddle w_m^{k·(m/len)} equals w_n^{k·(n/len)}.
        self.butterflies_sized(&mut out[..m]);
        // Unzip: with E_k/O_k the transforms of the even/odd samples,
        // Z_k = E_k + i·O_k and Hermitian symmetry gives
        // E_k = (Z_k + conj(Z_{m−k}))/2, O_k = (Z_k − conj(Z_{m−k}))/(2i),
        // X_k = E_k + w_n^k·O_k, X_{m−k} = conj(E_k) + w_n^{m−k}·conj(O_k).
        let z0 = out[0];
        out[0] = Complex::from_real(z0.re + z0.im);
        out[m] = Complex::from_real(z0.re - z0.im);
        let neg_half_i = Complex::new(0.0, -0.5);
        for k in 1..=m / 2 {
            let j = m - k;
            let zk = out[k];
            let zj = out[j];
            let e = (zk + zj.conj()).scale(0.5);
            let o = (zk - zj.conj()) * neg_half_i;
            out[k] = e + self.twiddles[k] * o;
            if j != k {
                out[j] = e.conj() + self.twiddles[j] * o.conj();
            }
        }
    }

    fn permute(&self, data: &mut [Complex]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    /// Forward butterflies over a bit-reversed buffer whose length divides
    /// `self.n`; twiddles are read at the appropriately widened stride.
    fn butterflies_sized(&self, data: &mut [Complex]) {
        let m = data.len();
        let mut len = 2;
        while len <= m {
            let half = len / 2;
            let stride = self.n / len;
            for start in (0..m).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }

    fn butterflies(&self, data: &mut [Complex], inverse: bool) {
        if !inverse {
            self.butterflies_sized(data);
            return;
        }
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * stride].conj();
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

/// Convenience one-shot forward FFT (plans internally).
pub fn fft(data: &mut [Complex]) {
    Fft::new(data.len()).forward(data);
}

/// Convenience one-shot inverse FFT (plans internally).
pub fn ifft(data: &mut [Complex]) {
    Fft::new(data.len()).inverse(data);
}

/// Naive O(n²) DFT used as a test oracle.
#[cfg(test)]
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                acc += x * Complex::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn close(a: Complex, b: Complex, eps: f64) -> bool {
        (a.re - b.re).abs() < eps && (a.im - b.im).abs() < eps
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft(&mut data);
        for z in &data {
            assert!(close(*z, Complex::ONE, 1e-12));
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let bin = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * (bin * j) as f64 / n as f64))
            .collect();
        fft(&mut data);
        for (k, z) in data.iter().enumerate() {
            if k == bin {
                assert!((z.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 4, 16, 128] {
            let input: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let expect = dft_naive(&input);
            let mut got = input.clone();
            fft(&mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!(close(*g, *e, 1e-8), "n={n}");
            }
        }
    }

    #[test]
    fn round_trip_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 256;
        let original: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut data = original.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!(close(*a, *b, 1e-10));
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 512;
        let input: Vec<Complex> =
            (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut data = input;
        fft(&mut data);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn forward_real_matches_full_fft() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let plan = Fft::new(n);
        let half = plan.forward_real(&signal);
        assert_eq!(half.len(), n / 2 + 1);
        let mut full: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        plan.forward(&mut full);
        for (k, z) in half.iter().enumerate() {
            assert!(close(*z, full[k], 1e-10));
        }
        // Hermitian symmetry of the real transform.
        for k in 1..n / 2 {
            assert!(close(full[n - k], full[k].conj(), 1e-9));
        }
    }

    #[test]
    fn size_one_is_identity() {
        let plan = Fft::new(1);
        let mut data = vec![Complex::new(3.0, 4.0)];
        plan.forward(&mut data);
        assert_eq!(data[0], Complex::new(3.0, 4.0));
        plan.inverse(&mut data);
        assert_eq!(data[0], Complex::new(3.0, 4.0));
    }

    #[test]
    fn is_empty_only_for_degenerate_plan() {
        assert!(Fft::new(1).is_empty());
        assert!(!Fft::new(2).is_empty());
        assert!(!Fft::new(2048).is_empty());
        assert_eq!(Fft::new(2048).len(), 2048);
    }

    #[test]
    fn forward_real_tiny_sizes() {
        // n = 1: identity. n = 2: [x0+x1, x0−x1]. n = 4 checked by hand.
        assert_eq!(Fft::new(1).forward_real(&[5.0]), vec![Complex::from_real(5.0)]);
        let two = Fft::new(2).forward_real(&[3.0, 1.0]);
        assert!(close(two[0], Complex::from_real(4.0), 1e-12));
        assert!(close(two[1], Complex::from_real(2.0), 1e-12));
        let four = Fft::new(4).forward_real(&[1.0, 2.0, 3.0, 4.0]);
        assert!(close(four[0], Complex::from_real(10.0), 1e-12));
        assert!(close(four[1], Complex::new(-2.0, 2.0), 1e-12));
        assert!(close(four[2], Complex::from_real(-2.0), 1e-12));
    }

    #[test]
    fn forward_real_into_reuses_buffer() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 64;
        let plan = Fft::new(n);
        let mut out = vec![Complex::new(9.9, 9.9); n / 2 + 1];
        for _ in 0..3 {
            let signal: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            plan.forward_real_into(&signal, &mut out);
            let fresh = plan.forward_real(&signal);
            for (a, b) in out.iter().zip(&fresh) {
                assert!(close(*a, *b, 1e-15));
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = Fft::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_panics() {
        let plan = Fft::new(8);
        let mut data = vec![Complex::ZERO; 4];
        plan.forward(&mut data);
    }

    #[test]
    fn linearity() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 64;
        let a: Vec<Complex> = (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        let plan = Fft::new(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let mut sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        plan.forward(&mut sum);
        for k in 0..n {
            assert!(close(sum[k], fa[k] + fb[k], 1e-9));
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(32))]
            #[test]
            fn round_trip_any_signal(values in proptest::collection::vec(-1.0f64..1.0, 64)) {
                let original: Vec<Complex> = values.iter().map(|&x| Complex::from_real(x)).collect();
                let mut data = original.clone();
                fft(&mut data);
                ifft(&mut data);
                for (a, b) in data.iter().zip(&original) {
                    prop_assert!((a.re - b.re).abs() < 1e-9);
                    prop_assert!(a.im.abs() < 1e-9);
                }
            }

            /// The packed real-input transform agrees with the full complex
            /// FFT on random signals at every power-of-two size in range.
            #[test]
            fn real_fft_matches_complex_fft(
                values in proptest::collection::vec(-1.0f64..1.0, 256),
                bits in 0u32..9,
            ) {
                let n = 1usize << bits;
                let signal = &values[..n];
                let plan = Fft::new(n);
                let half = plan.forward_real(signal);
                let mut full: Vec<Complex> =
                    signal.iter().map(|&x| Complex::from_real(x)).collect();
                plan.forward(&mut full);
                prop_assert_eq!(half.len(), n / 2 + 1);
                for (k, z) in half.iter().enumerate() {
                    prop_assert!(
                        (z.re - full[k].re).abs() < 1e-9 && (z.im - full[k].im).abs() < 1e-9,
                        "bin {} of n={}: packed {:?} vs full {:?}", k, n, z, full[k]
                    );
                }
            }
        }
    }
}
