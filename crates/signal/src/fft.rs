//! Iterative radix-2 FFT.
//!
//! The feature pipeline runs hundreds of 2048-point transforms per clip, so
//! the kernel is the classic in-place iterative Cooley–Tukey with a
//! precomputed twiddle table. Power-of-two lengths only — the paper's
//! n_fft = 2048 qualifies.

use crate::complex::Complex;

/// A planned FFT of a fixed power-of-two size.
///
/// Planning precomputes the bit-reversal permutation and twiddle factors so
/// repeated transforms (one per STFT frame) do no trigonometry.
#[derive(Clone, Debug)]
pub struct Fft {
    n: usize,
    rev: Vec<u32>,
    /// Twiddles for the forward transform: w[k] = e^{-2πik/n}, k < n/2.
    twiddles: Vec<Complex>,
}

impl Fft {
    /// Plans an FFT of size `n` (must be a power of two ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT size must be a power of two, got {n}");
        let bits = n.trailing_zeros();
        let rev = (0..n as u32).map(|i| i.reverse_bits() >> (32 - bits.max(1))).collect::<Vec<_>>();
        let rev = if n == 1 { vec![0] } else { rev };
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Fft { n, rev, twiddles }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate size-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT: `X[k] = Σ x[j]·e^{-2πijk/n}`.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must equal FFT size");
        self.permute(data);
        self.butterflies(data, false);
    }

    /// In-place inverse DFT (normalized by 1/n).
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length must equal FFT size");
        self.permute(data);
        self.butterflies(data, true);
        let k = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(k);
        }
    }

    /// Forward DFT of a real signal; returns the `n/2 + 1` non-redundant
    /// bins (DC through Nyquist).
    pub fn forward_real(&self, signal: &[f64]) -> Vec<Complex> {
        assert_eq!(signal.len(), self.n, "signal length must equal FFT size");
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        self.forward(&mut buf);
        buf.truncate(self.n / 2 + 1);
        buf
    }

    fn permute(&self, data: &mut [Complex]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let w = if inverse {
                        self.twiddles[k * stride].conj()
                    } else {
                        self.twiddles[k * stride]
                    };
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

/// Convenience one-shot forward FFT (plans internally).
pub fn fft(data: &mut [Complex]) {
    Fft::new(data.len()).forward(data);
}

/// Convenience one-shot inverse FFT (plans internally).
pub fn ifft(data: &mut [Complex]) {
    Fft::new(data.len()).inverse(data);
}

/// Naive O(n²) DFT used as a test oracle.
#[cfg(test)]
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                acc += x * Complex::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn close(a: Complex, b: Complex, eps: f64) -> bool {
        (a.re - b.re).abs() < eps && (a.im - b.im).abs() < eps
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft(&mut data);
        for z in &data {
            assert!(close(*z, Complex::ONE, 1e-12));
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let bin = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * (bin * j) as f64 / n as f64))
            .collect();
        fft(&mut data);
        for (k, z) in data.iter().enumerate() {
            if k == bin {
                assert!((z.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 4, 16, 128] {
            let input: Vec<Complex> = (0..n)
                .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let expect = dft_naive(&input);
            let mut got = input.clone();
            fft(&mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!(close(*g, *e, 1e-8), "n={n}");
            }
        }
    }

    #[test]
    fn round_trip_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 256;
        let original: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut data = original.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!(close(*a, *b, 1e-10));
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 512;
        let input: Vec<Complex> =
            (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut data = input;
        fft(&mut data);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn forward_real_matches_full_fft() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let plan = Fft::new(n);
        let half = plan.forward_real(&signal);
        assert_eq!(half.len(), n / 2 + 1);
        let mut full: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        plan.forward(&mut full);
        for (k, z) in half.iter().enumerate() {
            assert!(close(*z, full[k], 1e-10));
        }
        // Hermitian symmetry of the real transform.
        for k in 1..n / 2 {
            assert!(close(full[n - k], full[k].conj(), 1e-9));
        }
    }

    #[test]
    fn size_one_is_identity() {
        let plan = Fft::new(1);
        let mut data = vec![Complex::new(3.0, 4.0)];
        plan.forward(&mut data);
        assert_eq!(data[0], Complex::new(3.0, 4.0));
        plan.inverse(&mut data);
        assert_eq!(data[0], Complex::new(3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = Fft::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_panics() {
        let plan = Fft::new(8);
        let mut data = vec![Complex::ZERO; 4];
        plan.forward(&mut data);
    }

    #[test]
    fn linearity() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 64;
        let a: Vec<Complex> = (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        let plan = Fft::new(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let mut sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        plan.forward(&mut sum);
        for k in 0..n {
            assert!(close(sum[k], fa[k] + fb[k], 1e-9));
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(32))]
            #[test]
            fn round_trip_any_signal(values in proptest::collection::vec(-1.0f64..1.0, 64)) {
                let original: Vec<Complex> = values.iter().map(|&x| Complex::from_real(x)).collect();
                let mut data = original.clone();
                fft(&mut data);
                ifft(&mut data);
                for (a, b) in data.iter().zip(&original) {
                    prop_assert!((a.re - b.re).abs() < 1e-9);
                    prop_assert!(a.im.abs() < 1e-9);
                }
            }
        }
    }
}
