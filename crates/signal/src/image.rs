//! Grayscale images and bilinear resizing.
//!
//! The paper converts mel spectrograms to images and sweeps the CNN input
//! side length (Figure 5); [`Image`] carries the spectrogram in image form
//! and [`Image::resize_bilinear`] produces the S×S inputs of the sweep.

/// A row-major grayscale image of `f64` pixels.
#[derive(Clone, Debug, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

impl Image {
    /// Creates an image filled with `value`.
    pub fn filled(width: usize, height: usize, value: f64) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image { width, height, pixels: vec![value; width * height] }
    }

    /// Wraps existing row-major pixel data.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<f64>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel count must equal width*height");
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image { width, height, pixels }
    }

    /// Builds an image from a mel spectrogram: `x` = time frame,
    /// `y` = mel band (band 0 at the top row).
    pub fn from_mel(mel: &crate::mel::MelSpectrogram) -> Self {
        let width = mel.n_frames();
        let height = mel.n_mels();
        assert!(width > 0 && height > 0, "cannot image an empty spectrogram");
        let mut pixels = vec![0.0; width * height];
        for (x, frame) in mel.frames().enumerate() {
            for (y, &v) in frame.iter().enumerate() {
                pixels[y * width + x] = v;
            }
        }
        Image { width, height, pixels }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Borrowed row-major pixels.
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Pixel at `(x, y)`; panics when out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`; panics when out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[y * self.width + x] = v;
    }

    /// Bilinear resample to `new_width × new_height`.
    pub fn resize_bilinear(&self, new_width: usize, new_height: usize) -> Image {
        assert!(new_width > 0 && new_height > 0, "target dimensions must be positive");
        let mut out = vec![0.0; new_width * new_height];
        let sx = self.width as f64 / new_width as f64;
        let sy = self.height as f64 / new_height as f64;
        for ny in 0..new_height {
            // Sample at pixel centres to stay inside the source grid.
            let fy = ((ny as f64 + 0.5) * sy - 0.5).clamp(0.0, self.height as f64 - 1.0);
            let y0 = fy.floor() as usize;
            let y1 = (y0 + 1).min(self.height - 1);
            let wy = fy - y0 as f64;
            for nx in 0..new_width {
                let fx = ((nx as f64 + 0.5) * sx - 0.5).clamp(0.0, self.width as f64 - 1.0);
                let x0 = fx.floor() as usize;
                let x1 = (x0 + 1).min(self.width - 1);
                let wx = fx - x0 as f64;
                let top = self.get(x0, y0) * (1.0 - wx) + self.get(x1, y0) * wx;
                let bot = self.get(x0, y1) * (1.0 - wx) + self.get(x1, y1) * wx;
                out[ny * new_width + nx] = top * (1.0 - wy) + bot * wy;
            }
        }
        Image { width: new_width, height: new_height, pixels: out }
    }

    /// Rescales pixel values linearly onto `[0, 1]`. A constant image maps
    /// to all zeros.
    pub fn normalize(&self) -> Image {
        let (lo, hi) = self
            .pixels
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        let span = hi - lo;
        let pixels = if span > 0.0 {
            self.pixels.iter().map(|&p| (p - lo) / span).collect()
        } else {
            vec![0.0; self.pixels.len()]
        };
        Image { width: self.width, height: self.height, pixels }
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.pixels.iter().sum::<f64>() / self.pixels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::filled(4, 3, 0.5);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.get(3, 2), 0.5);
        img.set(1, 1, 2.0);
        assert_eq!(img.get(1, 1), 2.0);
        assert_eq!(img.pixels().len(), 12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let img = Image::filled(2, 2, 0.0);
        img.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "width*height")]
    fn bad_pixel_count_panics() {
        let _ = Image::from_pixels(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn resize_identity() {
        let img = Image::from_pixels(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let same = img.resize_bilinear(2, 2);
        assert_eq!(same, img);
    }

    #[test]
    fn resize_constant_stays_constant() {
        let img = Image::filled(10, 7, 0.42);
        let out = img.resize_bilinear(33, 15);
        assert!(out.pixels().iter().all(|&p| (p - 0.42).abs() < 1e-12));
    }

    #[test]
    fn resize_preserves_mean_approximately() {
        let pixels: Vec<f64> = (0..64 * 64).map(|i| ((i * 31) % 97) as f64 / 97.0).collect();
        let img = Image::from_pixels(64, 64, pixels);
        let out = img.resize_bilinear(100, 100);
        assert!((out.mean() - img.mean()).abs() < 0.02);
    }

    #[test]
    fn downscale_averages_gradient() {
        // Horizontal ramp 0..1; downscaled image must stay a ramp.
        let mut img = Image::filled(100, 10, 0.0);
        for x in 0..100 {
            for y in 0..10 {
                img.set(x, y, x as f64 / 99.0);
            }
        }
        let out = img.resize_bilinear(10, 10);
        for x in 1..10 {
            assert!(out.get(x, 5) > out.get(x - 1, 5));
        }
    }

    #[test]
    fn normalize_maps_to_unit_interval() {
        let img = Image::from_pixels(2, 2, vec![-80.0, -40.0, -20.0, 0.0]);
        let n = img.normalize();
        assert_eq!(n.get(0, 0), 0.0);
        assert_eq!(n.get(1, 1), 1.0);
        assert!((n.get(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_constant_image_is_zero() {
        let img = Image::filled(3, 3, 5.0);
        assert!(img.normalize().pixels().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn from_mel_orientation() {
        use crate::mel::MelSpectrogram;
        // 3 frames × 2 mel bands.
        let mel = MelSpectrogram::from_frames(vec![vec![1.0, 4.0], vec![2.0, 5.0], vec![3.0, 6.0]]);
        let img = Image::from_mel(&mel);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        // Band 0 across time is the top row.
        assert_eq!(img.get(0, 0), 1.0);
        assert_eq!(img.get(2, 0), 3.0);
        assert_eq!(img.get(0, 1), 4.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(32))]
            #[test]
            fn resize_output_within_input_range(
                pixels in proptest::collection::vec(0.0f64..1.0, 36),
                w in 1usize..20,
                h in 1usize..20,
            ) {
                let img = Image::from_pixels(6, 6, pixels.clone());
                let out = img.resize_bilinear(w, h);
                let lo = pixels.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = pixels.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for &p in out.pixels() {
                    prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
                }
            }
        }
    }
}
