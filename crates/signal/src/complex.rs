//! Minimal complex arithmetic for the FFT.
//!
//! A local 16-byte `Copy` type keeps the FFT kernel allocation-free and
//! avoids pulling in `num-complex` for the handful of operations we need.

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Builds a complex number from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// e^{iθ} = cos θ + i sin θ.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude |z|².
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude |z|.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex { re: self.re * k, im: self.im * k }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::ONE;
        z += Complex::I;
        assert_eq!(z, Complex::new(1.0, 1.0));
        z -= Complex::ONE;
        assert_eq!(z, Complex::I);
        z *= Complex::I;
        assert_eq!(z, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn cis_unit_circle() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!((z.re).abs() < EPS);
        assert!((z.im - 1.0).abs() < EPS);
        assert!((Complex::cis(1.234).abs() - 1.0).abs() < EPS);
    }

    #[test]
    fn conj_and_norms() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        assert!((z.abs() - 5.0).abs() < EPS);
        // z · z̄ = |z|²
        let prod = z * z.conj();
        assert!((prod.re - 25.0).abs() < EPS && prod.im.abs() < EPS);
    }

    #[test]
    fn scale() {
        assert_eq!(Complex::new(2.0, -4.0).scale(0.5), Complex::new(1.0, -2.0));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb() -> impl Strategy<Value = Complex> {
            (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex::new(re, im))
        }

        proptest! {
            #[test]
            fn multiplication_commutes(a in arb(), b in arb()) {
                let ab = a * b;
                let ba = b * a;
                prop_assert!((ab.re - ba.re).abs() < 1e-6);
                prop_assert!((ab.im - ba.im).abs() < 1e-6);
            }

            #[test]
            fn abs_is_multiplicative(a in arb(), b in arb()) {
                let lhs = (a * b).abs();
                let rhs = a.abs() * b.abs();
                prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs));
            }
        }
    }
}
