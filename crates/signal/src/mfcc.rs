//! Mel-frequency cepstral coefficients.
//!
//! The queen-detection literature the paper builds on frequently uses
//! MFCCs as the classical feature set alongside raw mel spectrograms.
//! This module derives MFCCs from [`crate::mel::MelSpectrogram`] via a
//! type-II DCT, giving the SVM path a compact alternative feature space
//! (and the repo an extra ablation axis).

use crate::mel::MelSpectrogram;

/// Type-II DCT with orthonormal scaling of one frame.
pub fn dct_ii(input: &[f64]) -> Vec<f64> {
    dct_ii_prefix(input, input.len())
}

/// First `n_coeffs` coefficients of [`dct_ii`] — identical values, but the
/// discarded tail is never computed (the MFCC path keeps 13 of 32).
pub fn dct_ii_prefix(input: &[f64], n_coeffs: usize) -> Vec<f64> {
    let n = input.len();
    assert!(n > 0, "DCT input must be non-empty");
    assert!(n_coeffs <= n, "cannot take {n_coeffs} coefficients from {n} inputs");
    let nf = n as f64;
    (0..n_coeffs)
        .map(|k| {
            let sum: f64 = input
                .iter()
                .enumerate()
                .map(|(i, &x)| x * (std::f64::consts::PI * (i as f64 + 0.5) * k as f64 / nf).cos())
                .sum();
            let scale = if k == 0 { (1.0 / nf).sqrt() } else { (2.0 / nf).sqrt() };
            scale * sum
        })
        .collect()
}

/// MFCC features: `frames × n_coeffs` (the first coefficient — overall
/// log-energy — is retained at index 0).
#[derive(Clone, Debug, PartialEq)]
pub struct Mfcc {
    /// Coefficients per frame.
    pub frames: Vec<Vec<f64>>,
}

impl Mfcc {
    /// Computes `n_coeffs` MFCCs per frame from a log-mel spectrogram.
    pub fn from_mel(mel: &MelSpectrogram, n_coeffs: usize) -> Self {
        assert!(n_coeffs > 0, "need at least one coefficient");
        let frames = mel
            .frames()
            .map(|f| {
                assert!(
                    n_coeffs <= f.len(),
                    "cannot take {n_coeffs} coefficients from {} mel bands",
                    f.len()
                );
                dct_ii_prefix(f, n_coeffs)
            })
            .collect();
        Mfcc { frames }
    }

    /// Number of frames.
    pub fn n_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of coefficients per frame (zero when empty).
    pub fn n_coeffs(&self) -> usize {
        self.frames.first().map_or(0, Vec::len)
    }

    /// Per-coefficient temporal means — a compact clip-level feature
    /// vector for the SVM path.
    pub fn coeff_means(&self) -> Vec<f64> {
        if self.frames.is_empty() {
            return Vec::new();
        }
        let n = self.n_coeffs();
        let mut acc = vec![0.0; n];
        for f in &self.frames {
            for (a, v) in acc.iter_mut().zip(f) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= self.frames.len() as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audio::{BeeAudioSynth, ColonyState};
    use crate::pipeline::MelPipeline;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dct_of_constant_is_dc_only() {
        let c = dct_ii(&[1.0; 8]);
        // DC = √(1/8)·8 = √8; all other coefficients vanish.
        assert!((c[0] - (8.0f64).sqrt()).abs() < 1e-12);
        for &v in &c[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn dct_is_orthonormal() {
        // Parseval: ‖DCT(x)‖² = ‖x‖² for the orthonormal type-II DCT.
        let x = [0.3, -1.2, 2.0, 0.7, -0.5, 1.1];
        let c = dct_ii(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-10);
    }

    #[test]
    fn dct_resolves_cosine_modes() {
        // x_i = cos(π(i+0.5)k/N) concentrates in coefficient k.
        let n = 16;
        let k = 3;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::PI * (i as f64 + 0.5) * k as f64 / n as f64).cos())
            .collect();
        let c = dct_ii(&x);
        let peak = c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k);
    }

    fn small_mel(state: ColonyState, seed: u64) -> MelSpectrogram {
        let synth = BeeAudioSynth::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let clip = synth.generate(state, 0.5, &mut rng);
        MelPipeline::compact().mel(&clip)
    }

    #[test]
    fn mfcc_shape() {
        let mel = small_mel(ColonyState::Queenright, 1);
        let mfcc = Mfcc::from_mel(&mel, 13);
        assert_eq!(mfcc.n_frames(), mel.n_frames());
        assert_eq!(mfcc.n_coeffs(), 13);
        assert_eq!(mfcc.coeff_means().len(), 13);
    }

    #[test]
    fn mfcc_separates_the_classes() {
        let d = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt()
        };
        let qr1 = Mfcc::from_mel(&small_mel(ColonyState::Queenright, 1), 13).coeff_means();
        let qr2 = Mfcc::from_mel(&small_mel(ColonyState::Queenright, 2), 13).coeff_means();
        let ql = Mfcc::from_mel(&small_mel(ColonyState::Queenless, 3), 13).coeff_means();
        assert!(d(&qr1, &ql) > d(&qr1, &qr2), "MFCC space must separate the classes");
    }

    #[test]
    fn empty_mel_gives_empty_mfcc() {
        let mel = MelSpectrogram::from_frames(vec![]);
        let mfcc = Mfcc::from_mel(&mel, 13);
        assert_eq!(mfcc.n_frames(), 0);
        assert!(mfcc.coeff_means().is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn too_many_coeffs_panics() {
        let mel = MelSpectrogram::from_frames(vec![vec![0.0; 8]]);
        let _ = Mfcc::from_mel(&mel, 16);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dct_panics() {
        let _ = dct_ii(&[]);
    }
}
