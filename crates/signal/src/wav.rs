//! Minimal WAV (RIFF/PCM-16) reading and writing.
//!
//! The deployed system stores and uploads its microphone captures as audio
//! files; this module provides a dependency-free encoder/decoder so the
//! synthetic corpus can be exported for listening or external tooling and
//! re-imported bit-exactly. Only what the pipeline needs is supported:
//! mono or multi-channel 16-bit PCM.

use std::io::{self, Read, Write};

/// A decoded PCM-16 WAV file.
#[derive(Clone, Debug, PartialEq)]
pub struct WavFile {
    /// Sample rate in hertz.
    pub sample_rate: u32,
    /// Number of interleaved channels.
    pub channels: u16,
    /// Interleaved samples normalized to `[-1, 1]`.
    pub samples: Vec<f64>,
}

impl WavFile {
    /// Wraps mono samples at `sample_rate`.
    pub fn mono(sample_rate: u32, samples: Vec<f64>) -> Self {
        WavFile { sample_rate, channels: 1, samples }
    }

    /// Number of frames (samples per channel).
    pub fn frames(&self) -> usize {
        self.samples.len() / self.channels.max(1) as usize
    }

    /// Duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.frames() as f64 / self.sample_rate as f64
    }

    /// Encodes to a RIFF/PCM-16 byte stream. Samples are clamped to
    /// `[-1, 1]` before quantization.
    pub fn encode<W: Write>(&self, mut out: W) -> io::Result<()> {
        let n = self.samples.len() as u32;
        let byte_rate = self.sample_rate * u32::from(self.channels) * 2;
        let block_align = self.channels * 2;
        let data_len = n * 2;

        out.write_all(b"RIFF")?;
        out.write_all(&(36 + data_len).to_le_bytes())?;
        out.write_all(b"WAVE")?;
        out.write_all(b"fmt ")?;
        out.write_all(&16u32.to_le_bytes())?;
        out.write_all(&1u16.to_le_bytes())?; // PCM
        out.write_all(&self.channels.to_le_bytes())?;
        out.write_all(&self.sample_rate.to_le_bytes())?;
        out.write_all(&byte_rate.to_le_bytes())?;
        out.write_all(&block_align.to_le_bytes())?;
        out.write_all(&16u16.to_le_bytes())?; // bits per sample
        out.write_all(b"data")?;
        out.write_all(&data_len.to_le_bytes())?;
        for &s in &self.samples {
            let q = (s.clamp(-1.0, 1.0) * 32767.0).round() as i16;
            out.write_all(&q.to_le_bytes())?;
        }
        Ok(())
    }

    /// Encodes to an in-memory byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(44 + self.samples.len() * 2);
        self.encode(&mut buf).expect("writing to a Vec cannot fail");
        buf
    }

    /// Decodes a RIFF/PCM-16 byte stream.
    pub fn decode<R: Read>(mut input: R) -> io::Result<Self> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Decodes from an in-memory byte slice.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        if bytes.len() < 44 || &bytes[0..4] != b"RIFF" || &bytes[8..12] != b"WAVE" {
            return Err(err("not a RIFF/WAVE stream"));
        }
        // Walk chunks to find fmt and data (robust to extra chunks).
        let mut pos = 12;
        let mut fmt: Option<(u16, u16, u32, u16)> = None;
        let mut data: Option<&[u8]> = None;
        while pos + 8 <= bytes.len() {
            let id = &bytes[pos..pos + 4];
            let len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
            let body_end = (pos + 8 + len).min(bytes.len());
            let body = &bytes[pos + 8..body_end];
            match id {
                b"fmt " => {
                    if body.len() < 16 {
                        return Err(err("fmt chunk too short"));
                    }
                    let format = u16::from_le_bytes(body[0..2].try_into().unwrap());
                    let channels = u16::from_le_bytes(body[2..4].try_into().unwrap());
                    let rate = u32::from_le_bytes(body[4..8].try_into().unwrap());
                    let bits = u16::from_le_bytes(body[14..16].try_into().unwrap());
                    fmt = Some((format, channels, rate, bits));
                }
                b"data" => data = Some(body),
                _ => {}
            }
            pos = body_end + (len & 1); // chunks are word-aligned
        }
        let (format, channels, sample_rate, bits) = fmt.ok_or_else(|| err("missing fmt chunk"))?;
        if format != 1 || bits != 16 {
            return Err(err("only PCM-16 is supported"));
        }
        if channels == 0 {
            return Err(err("zero channels"));
        }
        let data = data.ok_or_else(|| err("missing data chunk"))?;
        let samples = data
            .chunks_exact(2)
            .map(|c| f64::from(i16::from_le_bytes([c[0], c[1]])) / 32767.0)
            .collect();
        Ok(WavFile { sample_rate, channels, samples })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audio::{BeeAudioSynth, ColonyState};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_samples_within_quantization() {
        let synth = BeeAudioSynth::default();
        let mut rng = StdRng::seed_from_u64(1);
        let clip = synth.generate(ColonyState::Queenright, 0.1, &mut rng);
        let wav = WavFile::mono(22_050, clip.clone());
        let decoded = WavFile::from_bytes(&wav.to_bytes()).unwrap();
        assert_eq!(decoded.sample_rate, 22_050);
        assert_eq!(decoded.channels, 1);
        assert_eq!(decoded.samples.len(), clip.len());
        for (a, b) in decoded.samples.iter().zip(&clip) {
            assert!((a - b).abs() < 1.5 / 32767.0, "quantization error too large");
        }
    }

    #[test]
    fn double_round_trip_is_bit_exact() {
        // Once quantized, further round trips are lossless.
        let wav = WavFile::mono(8000, vec![0.0, 0.5, -0.5, 1.0, -1.0]);
        let once = WavFile::from_bytes(&wav.to_bytes()).unwrap();
        let twice = WavFile::from_bytes(&once.to_bytes()).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn header_fields() {
        let wav = WavFile::mono(22_050, vec![0.0; 2205]);
        assert_eq!(wav.frames(), 2205);
        assert!((wav.duration_s() - 0.1).abs() < 1e-12);
        let bytes = wav.to_bytes();
        assert_eq!(&bytes[0..4], b"RIFF");
        assert_eq!(&bytes[8..12], b"WAVE");
        assert_eq!(bytes.len(), 44 + 2205 * 2);
    }

    #[test]
    fn stereo_frames() {
        let wav = WavFile { sample_rate: 44_100, channels: 2, samples: vec![0.0; 8] };
        assert_eq!(wav.frames(), 4);
        let decoded = WavFile::from_bytes(&wav.to_bytes()).unwrap();
        assert_eq!(decoded.channels, 2);
        assert_eq!(decoded.frames(), 4);
    }

    #[test]
    fn clamps_out_of_range_samples() {
        let wav = WavFile::mono(8000, vec![3.0, -3.0]);
        let decoded = WavFile::from_bytes(&wav.to_bytes()).unwrap();
        assert!((decoded.samples[0] - 1.0).abs() < 1e-4);
        assert!((decoded.samples[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(WavFile::from_bytes(b"not a wav").is_err());
        assert!(WavFile::from_bytes(&[0u8; 100]).is_err());
    }

    #[test]
    fn rejects_unsupported_formats() {
        let mut bytes = WavFile::mono(8000, vec![0.0; 4]).to_bytes();
        bytes[20] = 3; // IEEE float format tag
        assert!(WavFile::from_bytes(&bytes).is_err());
    }

    #[test]
    fn tolerates_extra_chunks() {
        // Insert a LIST chunk between fmt and data.
        let wav = WavFile::mono(8000, vec![0.25; 4]);
        let bytes = wav.to_bytes();
        let mut patched = Vec::new();
        patched.extend_from_slice(&bytes[..36]); // RIFF header + fmt
        patched.extend_from_slice(b"LIST");
        patched.extend_from_slice(&4u32.to_le_bytes());
        patched.extend_from_slice(b"INFO");
        patched.extend_from_slice(&bytes[36..]); // data chunk
                                                 // Fix the RIFF size.
        let riff_len = (patched.len() - 8) as u32;
        patched[4..8].copy_from_slice(&riff_len.to_le_bytes());
        let decoded = WavFile::from_bytes(&patched).unwrap();
        assert_eq!(decoded.samples.len(), 4);
    }

    #[test]
    fn decode_via_reader() {
        let wav = WavFile::mono(8000, vec![0.1, 0.2]);
        let bytes = wav.to_bytes();
        let decoded = WavFile::decode(&bytes[..]).unwrap();
        assert_eq!(decoded.frames(), 2);
    }
}
