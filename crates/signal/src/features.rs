//! Scalar spectral features.
//!
//! Classical bioacoustic descriptors computed per power-spectrum frame:
//! centroid, rolloff, bandwidth, flatness and flux. They complement the
//! mel/MFCC features as a third, very cheap feature family for the SVM —
//! relevant to an edge device where every multiply costs joules.

use crate::stft::Spectrogram;

/// Spectral centroid of one power frame, in Hz.
pub fn spectral_centroid(frame: &[f64], sample_rate: f64, n_fft: usize) -> f64 {
    let total: f64 = frame.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let bin_hz = sample_rate / n_fft as f64;
    frame.iter().enumerate().map(|(k, &p)| k as f64 * bin_hz * p).sum::<f64>() / total
}

/// Frequency below which `fraction` of the frame's power lies, in Hz.
pub fn spectral_rolloff(frame: &[f64], sample_rate: f64, n_fft: usize, fraction: f64) -> f64 {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    let total: f64 = frame.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let target = total * fraction;
    let bin_hz = sample_rate / n_fft as f64;
    let mut acc = 0.0;
    for (k, &p) in frame.iter().enumerate() {
        acc += p;
        if acc >= target {
            return k as f64 * bin_hz;
        }
    }
    (frame.len() - 1) as f64 * bin_hz
}

/// Power-weighted standard deviation around the centroid, in Hz.
pub fn spectral_bandwidth(frame: &[f64], sample_rate: f64, n_fft: usize) -> f64 {
    let total: f64 = frame.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let centroid = spectral_centroid(frame, sample_rate, n_fft);
    let bin_hz = sample_rate / n_fft as f64;
    let var = frame
        .iter()
        .enumerate()
        .map(|(k, &p)| (k as f64 * bin_hz - centroid).powi(2) * p)
        .sum::<f64>()
        / total;
    var.sqrt()
}

/// Spectral flatness: geometric mean / arithmetic mean of the power frame,
/// in `[0, 1]` (1 = white noise, → 0 = pure tone).
pub fn spectral_flatness(frame: &[f64]) -> f64 {
    if frame.is_empty() {
        return 0.0;
    }
    let n = frame.len() as f64;
    let arith = frame.iter().sum::<f64>() / n;
    if arith <= 0.0 {
        return 0.0;
    }
    let log_geo = frame.iter().map(|&p| p.max(1e-30).ln()).sum::<f64>() / n;
    (log_geo.exp() / arith).min(1.0)
}

/// Spectral flux between consecutive frames: L2 norm of the positive
/// power differences, one value per frame transition.
pub fn spectral_flux(spec: &Spectrogram) -> Vec<f64> {
    (1..spec.n_frames())
        .map(|i| {
            let (prev, cur) = (spec.frame(i - 1), spec.frame(i));
            cur.iter().zip(prev).map(|(&b, &a)| (b - a).max(0.0).powi(2)).sum::<f64>().sqrt()
        })
        .collect()
}

/// Clip-level summary: mean centroid, rolloff(0.85), bandwidth, flatness
/// and flux over all frames — a 5-dimensional feature vector.
pub fn clip_summary(spec: &Spectrogram, sample_rate: f64, n_fft: usize) -> [f64; 5] {
    if spec.n_frames() == 0 {
        return [0.0; 5];
    }
    let n = spec.n_frames() as f64;
    let mut centroid = 0.0;
    let mut rolloff = 0.0;
    let mut bandwidth = 0.0;
    let mut flatness = 0.0;
    for f in spec.frames() {
        centroid += spectral_centroid(f, sample_rate, n_fft);
        rolloff += spectral_rolloff(f, sample_rate, n_fft, 0.85);
        bandwidth += spectral_bandwidth(f, sample_rate, n_fft);
        flatness += spectral_flatness(f);
    }
    let flux = spectral_flux(spec);
    let mean_flux =
        if flux.is_empty() { 0.0 } else { flux.iter().sum::<f64>() / flux.len() as f64 };
    [centroid / n, rolloff / n, bandwidth / n, flatness / n, mean_flux]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stft::{SpectrogramParams, Stft};
    use crate::window::WindowKind;

    const SR: f64 = 22_050.0;
    const NFFT: usize = 2048;

    fn tone_frame(bin: usize) -> Vec<f64> {
        let mut f = vec![0.0; NFFT / 2 + 1];
        f[bin] = 1.0;
        f
    }

    #[test]
    fn centroid_of_pure_tone_is_its_frequency() {
        let bin = 100;
        let c = spectral_centroid(&tone_frame(bin), SR, NFFT);
        assert!((c - bin as f64 * SR / NFFT as f64).abs() < 1e-9);
        assert_eq!(spectral_centroid(&[0.0; 10], SR, NFFT), 0.0);
    }

    #[test]
    fn rolloff_of_pure_tone() {
        let bin = 100;
        let r = spectral_rolloff(&tone_frame(bin), SR, NFFT, 0.85);
        assert!((r - bin as f64 * SR / NFFT as f64).abs() < 1e-9);
    }

    #[test]
    fn rolloff_fraction_orders() {
        // Flat spectrum: rolloff grows with the fraction.
        let flat = vec![1.0; 1025];
        let r50 = spectral_rolloff(&flat, SR, NFFT, 0.5);
        let r95 = spectral_rolloff(&flat, SR, NFFT, 0.95);
        assert!(r95 > r50);
    }

    #[test]
    fn bandwidth_zero_for_tone_positive_for_noise() {
        assert!(spectral_bandwidth(&tone_frame(50), SR, NFFT) < 1e-9);
        let flat = vec![1.0; 1025];
        assert!(spectral_bandwidth(&flat, SR, NFFT) > 1000.0);
    }

    #[test]
    fn flatness_extremes() {
        // Pure tone → ≈0; white spectrum → 1.
        assert!(spectral_flatness(&tone_frame(10)) < 1e-6);
        assert!((spectral_flatness(&vec![0.7; 64]) - 1.0).abs() < 1e-12);
        assert_eq!(spectral_flatness(&[]), 0.0);
    }

    #[test]
    fn flux_detects_spectral_change() {
        let spec = Spectrogram::from_frames(vec![tone_frame(50), tone_frame(50), tone_frame(200)]);
        let flux = spectral_flux(&spec);
        assert_eq!(flux.len(), 2);
        assert!(flux[0] < 1e-12, "identical frames have zero flux");
        assert!(flux[1] > 0.9, "tone jump must register");
    }

    #[test]
    fn clip_summary_separates_hum_from_noise() {
        use crate::audio::{BeeAudioSynth, ColonyState};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let synth = BeeAudioSynth::default();
        let stft =
            Stft::new(SpectrogramParams { n_fft: 2048, hop: 1024, window: WindowKind::Hann });
        let clip = synth.generate(ColonyState::Queenright, 0.5, &mut StdRng::seed_from_u64(1));
        let spec = stft.power_spectrogram(&clip);
        let summary = clip_summary(&spec, SR, 2048);
        // A harmonic hum concentrates energy low: centroid well below 2 kHz,
        // flatness near zero.
        assert!(summary[0] < 2000.0, "centroid {}", summary[0]);
        assert!(summary[3] < 0.2, "flatness {}", summary[3]);
        // Empty clip gives zeros.
        assert_eq!(clip_summary(&Spectrogram::empty(), SR, 2048), [0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_rolloff_fraction_panics() {
        let _ = spectral_rolloff(&[1.0], SR, NFFT, 1.5);
    }
}
