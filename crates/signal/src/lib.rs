#![warn(missing_docs)]

//! DSP substrate for the precision-beekeeping reproduction.
//!
//! The paper's queen-detection service classifies **mel-scaled spectrograms
//! of 10-second hive audio sampled at 22 050 Hz** (FFT window 2048, hop 512,
//! 128 mel bands). Since the original 1647 labelled recordings are not
//! public, this crate provides both the feature pipeline and a synthetic
//! bee-audio corpus that is separable in the same feature space:
//!
//! * [`complex`] — minimal complex arithmetic,
//! * [`fft`] — iterative radix-2 FFT / inverse FFT,
//! * [`window`] — Hann / Hamming / rectangular analysis windows,
//! * [`stft`] — short-time Fourier transform and power spectrograms,
//! * [`mel`] — mel filterbank and log-mel features with the paper's exact
//!   parameters,
//! * [`image`] — spectrogram-to-image conversion and bilinear resizing (the
//!   paper sweeps CNN input sizes in Figure 5),
//! * [`audio`] — the synthetic queenright/queenless audio generator,
//! * [`corpus`] — labelled dataset generation (parallelized with rayon).

pub mod audio;
pub mod complex;
pub mod corpus;
pub mod features;
pub mod fft;
pub mod goertzel;
pub mod image;
pub mod mel;
pub mod mfcc;
pub mod pipeline;
pub mod resample;
pub mod stft;
pub mod streaming;
pub mod wav;
pub mod window;

pub use audio::{BeeAudioSynth, ColonyState};
pub use complex::Complex;
pub use corpus::{Corpus, CorpusConfig, LabeledClip};
pub use features::clip_summary;
pub use goertzel::{band_power, goertzel_power};
pub use image::Image;
pub use mel::{MelFilterbank, MelSpectrogram};
pub use mfcc::Mfcc;
pub use pipeline::MelPipeline;
pub use resample::resample_linear;
pub use stft::{SpectrogramParams, Stft};
pub use streaming::StreamingStft;
pub use wav::WavFile;
pub use window::WindowKind;

/// Sample rate used throughout the paper's audio pipeline.
pub const SAMPLE_RATE_HZ: f64 = 22_050.0;
/// FFT window length used by the paper.
pub const N_FFT: usize = 2048;
/// Hop length (samples between adjacent STFT columns) used by the paper.
pub const HOP_LENGTH: usize = 512;
/// Number of mel bands used by the paper.
pub const N_MELS: usize = 128;
