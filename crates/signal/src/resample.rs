//! Sample-rate conversion.
//!
//! The deployed hives mix hardware with different native rates (USB
//! microphones up to 16 kHz bandwidth, the feature pipeline at 22 050 Hz);
//! this linear-interpolation resampler converts between them. Linear
//! interpolation is adequate here because the features downstream are
//! 128-band mel energies — far coarser than the interpolation error.

/// Resamples `input` from `from_hz` to `to_hz` by linear interpolation.
///
/// The output length is `ceil(len · to/from)`; the final fractional
/// position clamps to the last input sample.
pub fn resample_linear(input: &[f64], from_hz: f64, to_hz: f64) -> Vec<f64> {
    assert!(from_hz > 0.0 && to_hz > 0.0, "sample rates must be positive");
    if input.is_empty() {
        return Vec::new();
    }
    let ratio = from_hz / to_hz;
    let out_len = (input.len() as f64 * to_hz / from_hz).ceil() as usize;
    (0..out_len)
        .map(|i| {
            let pos = i as f64 * ratio;
            let i0 = pos.floor() as usize;
            if i0 + 1 >= input.len() {
                input[input.len() - 1]
            } else {
                let frac = pos - i0 as f64;
                input[i0] * (1.0 - frac) + input[i0 + 1] * frac
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stft::{SpectrogramParams, Stft};
    use crate::window::WindowKind;

    fn tone(freq: f64, sr: f64, len: usize) -> Vec<f64> {
        (0..len).map(|i| (std::f64::consts::TAU * freq * i as f64 / sr).sin()).collect()
    }

    #[test]
    fn identity_rate_is_identity() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(resample_linear(&x, 8000.0, 8000.0), x);
    }

    #[test]
    fn output_length_scales_with_ratio() {
        let x = vec![0.0; 1000];
        assert_eq!(resample_linear(&x, 16_000.0, 22_050.0).len(), 1379); // ceil(1000·22050/16000)
        assert_eq!(resample_linear(&x, 22_050.0, 16_000.0).len(), 726);
        assert!(resample_linear(&[], 1.0, 2.0).is_empty());
    }

    #[test]
    fn upsampling_preserves_tone_frequency() {
        // A 440 Hz tone at 16 kHz upsampled to 22 050 Hz must still peak
        // at the 440 Hz bin.
        let sr_in = 16_000.0;
        let sr_out = 22_050.0;
        let x = tone(440.0, sr_in, 16_000);
        let y = resample_linear(&x, sr_in, sr_out);
        let stft =
            Stft::new(SpectrogramParams { n_fft: 4096, hop: 2048, window: WindowKind::Hann });
        let spec = stft.power_spectrogram(&y);
        let mut avg = vec![0.0; spec.n_bins()];
        for f in spec.frames() {
            for (a, &p) in avg.iter_mut().zip(f) {
                *a += p;
            }
        }
        let peak = avg.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let peak_hz = peak as f64 * sr_out / 4096.0;
        assert!((peak_hz - 440.0).abs() < 10.0, "peak at {peak_hz} Hz");
    }

    #[test]
    fn dc_survives_resampling() {
        let x = vec![0.7; 500];
        let y = resample_linear(&x, 8000.0, 12_345.0);
        assert!(y.iter().all(|&v| (v - 0.7).abs() < 1e-12));
    }

    #[test]
    fn interpolation_is_between_neighbours() {
        let x = vec![0.0, 1.0];
        let y = resample_linear(&x, 1000.0, 4000.0);
        for &v in &y {
            assert!((0.0..=1.0).contains(&v));
        }
        // Strictly increasing until the clamp region.
        assert!(y[1] > y[0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = resample_linear(&[1.0], 0.0, 100.0);
    }
}
