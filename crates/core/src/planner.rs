//! Slot-capacity planning.
//!
//! The paper hand-picks the "clients allowed in parallel" parameter (10 in
//! Figures 6 and 8, 35 in Figures 7b and 9) and observes that the
//! edge+cloud scenario improves as the parameter grows. This planner makes
//! the choice automatic: sweep the capacity, simulate the cycle, return
//! the energy-optimal setting. In the loss-free model bigger is always
//! better (a slot's receive window is one synchronized transfer regardless
//! of occupancy), but under the transfer-contention loss the window
//! stretches with occupancy and an *interior* optimum appears — a result
//! the paper's fixed-capacity sweeps cannot show.

use crate::allocator::FillPolicy;
use crate::client::ClientModel;
use crate::engine::{Backend, CycleEngine, ScenarioSpec, SimContext};
use crate::loss::LossModel;
use crate::server::ServerModel;
use pb_units::Joules;
use rayon::prelude::*;

/// One evaluated capacity setting.
#[derive(Clone, Copy, Debug)]
pub struct CapacityPoint {
    /// Clients allowed in parallel per slot.
    pub cap: usize,
    /// Total energy per client at this setting.
    pub per_client: Joules,
    /// Servers required.
    pub n_servers: usize,
    /// Clients one server can host per cycle at this setting.
    pub server_capacity: usize,
}

/// Planner output: the optimum and the whole evaluated curve.
#[derive(Clone, Debug)]
pub struct CapacityPlan {
    /// The energy-optimal setting (smallest capacity on ties).
    pub best: CapacityPoint,
    /// Every evaluated point in ascending capacity order.
    pub curve: Vec<CapacityPoint>,
}

/// Sweeps slot capacities `caps` for a population of `n_clients`,
/// simulating one cycle per setting, and returns the optimum.
///
/// `make_server` builds the server model for a given capacity (use
/// [`crate::scenario::presets::cloud_server`] partially applied). The
/// loss RNG derives from `seed` via [`SimContext::point_rng`] at the
/// fixed population, so every capacity sees the same draw.
pub fn plan_slot_capacity(
    n_clients: usize,
    caps: impl IntoIterator<Item = usize>,
    make_server: impl Fn(usize) -> ServerModel + Sync,
    client: &ClientModel,
    loss: &LossModel,
    policy: FillPolicy,
    seed: u64,
) -> CapacityPlan {
    // One context for the whole sweep: the population is fixed, so every
    // capacity shares the same per-point RNG stream (and the cache).
    let ctx = SimContext::new(seed);
    plan_slot_capacity_with(&ctx, n_clients, caps, make_server, client, loss, policy)
}

/// [`plan_slot_capacity`] against a caller-supplied [`SimContext`], so a
/// resident process (the serving daemon) can share one allocation cache
/// and one telemetry registry across many plans. The context supplies
/// the seed, the cache and the telemetry, exactly like
/// [`crate::sweep::SweepConfig::run_with_context`]; results are
/// bit-identical to [`plan_slot_capacity`] at the same seed.
pub fn plan_slot_capacity_with(
    ctx: &SimContext,
    n_clients: usize,
    caps: impl IntoIterator<Item = usize>,
    make_server: impl Fn(usize) -> ServerModel + Sync,
    client: &ClientModel,
    loss: &LossModel,
    policy: FillPolicy,
) -> CapacityPlan {
    let caps: Vec<usize> = caps.into_iter().collect();
    assert!(!caps.is_empty(), "capacity sweep must be non-empty");
    assert!(n_clients > 0, "need at least one client");
    let curve: Vec<CapacityPoint> = caps
        .par_iter()
        .map(|&cap| {
            let server = make_server(cap);
            let server_capacity = server.capacity(loss.transfer.as_ref());
            // The planner only prices the edge+cloud side; the edge client
            // slot of the spec is unused by `evaluate`.
            let spec = ScenarioSpec {
                edge_client: client.clone(),
                cloud_client: client.clone(),
                server,
                loss: *loss,
                policy,
            };
            let report = Backend::ClosedForm.evaluate(&spec, n_clients, ctx);
            CapacityPoint {
                cap,
                per_client: report.total_per_client,
                n_servers: report.n_servers,
                server_capacity,
            }
        })
        .collect();
    let best = *curve
        .iter()
        .min_by(|a, b| {
            a.per_client.value().total_cmp(&b.per_client.value()).then(a.cap.cmp(&b.cap))
        })
        .expect("non-empty sweep");
    let mut curve = curve;
    curve.sort_by_key(|p| p.cap);
    CapacityPlan { best, curve }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::presets;
    use crate::ServiceKind;

    fn plan(n: usize, loss: LossModel, policy: FillPolicy) -> CapacityPlan {
        plan_slot_capacity(
            n,
            1..=60,
            |cap| presets::cloud_server(ServiceKind::Cnn, cap),
            &presets::edge_cloud_client(),
            &loss,
            policy,
            1,
        )
    }

    #[test]
    fn loss_free_optimum_minimizes_used_windows() {
        // Without contention a slot's receive window is constant, so the
        // energy ranking reduces to the number of used windows,
        // ceil(n / cap). For n = 630 and caps ≤ 60 the minimum is 11
        // windows, first reached at cap 58 — which the tie-break selects.
        let n = 630;
        let p = plan(n, LossModel::NONE, FillPolicy::PackSlots);
        assert_eq!(p.curve.len(), 60);
        let windows = |cap: usize| n.div_ceil(cap);
        let min_windows = (1..=60).map(windows).min().unwrap();
        assert_eq!(windows(p.best.cap), min_windows, "best {:?}", p.best);
        assert_eq!(
            p.best.cap,
            (1..=60).find(|&c| windows(c) == min_windows).unwrap(),
            "tie-break must pick the smallest capacity reaching {min_windows} windows"
        );
        // More capacity monotonically helps on the coarse scale.
        let at_35 = p.curve.iter().find(|c| c.cap == 35).unwrap();
        let at_10 = p.curve.iter().find(|c| c.cap == 10).unwrap();
        assert!(at_35.per_client < at_10.per_client);
    }

    #[test]
    fn transfer_contention_creates_an_interior_optimum() {
        // With +1.5 s of receive window per extra client, tiny caps waste
        // windows and huge caps stretch them: the optimum is interior.
        let p = plan(630, LossModel::transfer_only(), FillPolicy::PackSlots);
        assert!(p.best.cap > 1 && p.best.cap < 60, "expected interior optimum, got {:?}", p.best);
        // And it beats both extremes by a real margin.
        let first = p.curve.first().unwrap().per_client;
        let last = p.curve.last().unwrap().per_client;
        assert!(p.best.per_client + Joules(5.0) < first.min(last));
    }

    #[test]
    fn best_is_tie_broken_toward_smaller_cap() {
        // Any population that fits one server at cap 35 also fits at 36
        // with identical used slots → identical energy; prefer smaller.
        let p = plan(18, LossModel::NONE, FillPolicy::PackSlots);
        // 18 clients → one slot of 18 at cap ≥ 18 costs the same; the
        // planner must report the smallest such capacity.
        let at_best = p.best;
        let same: Vec<&CapacityPoint> = p
            .curve
            .iter()
            .filter(|c| (c.per_client - at_best.per_client).abs() < Joules(1e-9))
            .collect();
        assert_eq!(at_best.cap, same.iter().map(|c| c.cap).min().unwrap());
    }

    #[test]
    fn reports_server_counts() {
        let p = plan(400, LossModel::NONE, FillPolicy::PackSlots);
        let at_10 = p.curve.iter().find(|c| c.cap == 10).unwrap();
        assert_eq!(at_10.n_servers, 3);
        assert_eq!(at_10.server_capacity, 180);
        let at_35 = p.curve.iter().find(|c| c.cap == 35).unwrap();
        assert_eq!(at_35.n_servers, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sweep_panics() {
        let _ = plan_slot_capacity(
            10,
            std::iter::empty(),
            |cap| presets::cloud_server(ServiceKind::Cnn, cap),
            &presets::edge_cloud_client(),
            &LossModel::NONE,
            FillPolicy::PackSlots,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let _ = plan(0, LossModel::NONE, FillPolicy::PackSlots);
    }
}
