//! The unified cycle-evaluation engine.
//!
//! The crate grew three ways to price one wake-up cycle: the closed
//! forms of [`crate::simulation`], the state-machine integration of
//! [`crate::timeline`], and the asynchronous discrete-event model of
//! [`crate::des`]. Each had its own entry point, its own seeding
//! convention, and its own call to the allocator. This module unifies
//! them behind one [`CycleEngine`] trait so the backend becomes a
//! runtime parameter ([`Backend`]), with two shared services:
//!
//! * [`SimContext`] — deterministic per-point seed derivation (the
//!   `seed ^ n·φ` splitting that [`crate::sweep::SweepConfig`]
//!   pioneered, generalized so every consumer derives independent
//!   streams the same way), plus
//! * [`AllocationCache`] — a thread-safe memo of [`Allocation`]s keyed
//!   by `(n_clients, n_slots, max_parallel, policy)`. Allocations are
//!   pure functions of that key, and sweeps re-request the same shapes
//!   thousands of times (every Monte-Carlo replicate, every fleet
//!   hyper-period cycle), so one shared cache turns the allocator from
//!   a per-point cost into a per-shape cost.
//!
//! The scenario itself — both client models, the server, the losses and
//! the fill policy — travels as one [`ScenarioSpec`] value instead of a
//! six-argument parameter list.
//!
//! # Example
//!
//! ```
//! use pb_orchestra::engine::{Backend, CycleEngine, ScenarioSpec, SimContext};
//! use pb_orchestra::loss::LossModel;
//! use pb_orchestra::ServiceKind;
//!
//! let spec = ScenarioSpec::paper(ServiceKind::Cnn, 10, LossModel::NONE);
//! let ctx = SimContext::new(1);
//! let report = Backend::ClosedForm.evaluate(&spec, 200, &ctx);
//! assert_eq!(report.n_servers, 2); // 200 clients need two 180-client servers
//! assert!((report.edge_energy_per_client.value() - 322.0).abs() < 1.0);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::allocator::{allocate, Allocation, FillPolicy};
use crate::client::ClientModel;
use crate::des::{simulate_async_cycle_memoized, DesTrace, ShapeMemo};
use crate::faults::{self, FaultPlan, FAULT_GAMMA};
use crate::loss::LossModel;
use crate::scenario::presets;
use crate::server::ServerModel;
use crate::simulation::{edge_cycle_energy, servers_cycle_energy, CycleReport};
use crate::sweep::ComparisonPoint;
use crate::timeline::{clients_energy_from_timelines, servers_energy_from_timelines};
use crate::ServiceKind;
use pb_telemetry::{Counter, Histogram, Telemetry};
use pb_units::Joules;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// The odd multiplier of the golden-ratio seed split: distinct inputs
/// map to well-separated seeds (Weyl sequence over 2⁶⁴).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A multiply-rotate hasher for the allocation cache's small integer
/// keys. Sweeps pay one cache lookup per point, and with the default
/// SipHash that lookup was the single largest per-point cost of a warm
/// closed-form sweep (~60 % of the evaluation). Hashing five integer
/// words through a rotate-xor-multiply fold is an order of magnitude
/// cheaper and changes nothing observable: the hasher only picks the
/// bucket, never the value.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.fold(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

/// Everything that defines the two scenarios being compared: both client
/// models, the server, the loss model and the fill policy.
///
/// [`CycleEngine::evaluate`] prices the edge+cloud scenario
/// (`cloud_client` + `server`); [`CycleEngine::evaluate_edge`] prices
/// the pure-edge scenario (`edge_client` alone).
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Client of the edge scenario (runs the service locally).
    pub edge_client: ClientModel,
    /// Client of the edge+cloud scenario (uploads to the server).
    pub cloud_client: ClientModel,
    /// The cloud server.
    pub server: ServerModel,
    /// Loss model applied to both scenarios.
    pub loss: LossModel,
    /// Allocation policy.
    pub policy: FillPolicy,
}

impl ScenarioSpec {
    /// The paper's calibrated setting: CNN or SVM service, 5-minute
    /// cycles, `max_parallel` clients per slot, pack-first allocation.
    pub fn paper(service: ServiceKind, max_parallel: usize, loss: LossModel) -> Self {
        ScenarioSpec {
            edge_client: presets::edge_client(service),
            cloud_client: presets::edge_cloud_client(),
            server: presets::cloud_server(service, max_parallel),
            loss,
            policy: FillPolicy::PackSlots,
        }
    }
}

/// Allocation shapes are pure functions of this key: the population, the
/// server's (penalty-adjusted) slot count, its slot capacity, the fill
/// policy, and the [`FaultPlan`] fingerprint (a slow-down changes the
/// slot count the allocator sees, so a shape cached for the fault-free
/// plan must never be served for a faulted run). Server *powers* don't
/// matter to the allocator.
pub type AllocationKey = (usize, usize, usize, FillPolicy, u64);

/// A thread-safe memo of allocator output.
///
/// [`allocate`] is deterministic, so two requests with equal
/// [`AllocationKey`]s return the same shape; the cache computes it once
/// and hands out shared [`Arc`]s. Hit/miss counters make cache behavior
/// observable in tests and benchmarks.
#[derive(Debug, Default)]
pub struct AllocationCache {
    map: RwLock<HashMap<AllocationKey, Arc<Allocation>, FxBuildHasher>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Mirrors the hit/miss counters into a telemetry registry and
    /// records per-slot occupancy when a fresh allocation is computed.
    telemetry: Option<CacheTelemetry>,
}

/// Pre-resolved telemetry handles for the cache hot path (one atomic add
/// per lookup instead of a registry lookup).
#[derive(Debug)]
struct CacheTelemetry {
    hits: Counter,
    misses: Counter,
    occupancy: Histogram,
}

impl AllocationCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that mirrors its counters into `telemetry` (as
    /// `allocation_cache.hits` / `allocation_cache.misses`) and records
    /// each freshly computed allocation's per-slot occupancy into the
    /// `allocator.slot_occupancy` histogram. With a disabled handle this
    /// is identical to [`AllocationCache::new`].
    pub fn with_telemetry(telemetry: &Telemetry) -> Self {
        let handles = telemetry.registry().map(|r| CacheTelemetry {
            hits: r.counter("allocation_cache.hits"),
            misses: r.counter("allocation_cache.misses"),
            occupancy: r.histogram("allocator.slot_occupancy"),
        });
        AllocationCache { telemetry: handles, ..Self::default() }
    }

    /// Returns the allocation of `n_clients` onto `server` under
    /// `policy`/`penalty` for the fault-free plan, computing and
    /// memoizing it on first request.
    pub fn get_or_allocate(
        &self,
        n_clients: usize,
        server: &ServerModel,
        policy: FillPolicy,
        penalty: Option<&crate::loss::TransferPenalty>,
    ) -> Arc<Allocation> {
        self.get_or_allocate_for(n_clients, server, policy, penalty, 0)
    }

    /// Like [`AllocationCache::get_or_allocate`], keyed additionally by a
    /// [`FaultPlan::fingerprint`] so shapes computed for different plans
    /// never alias (pass 0 for the fault-free plan). The caller passes
    /// the *degraded* server; the fingerprint guards against two plans
    /// that happen to degrade to the same slot count but differ
    /// elsewhere.
    pub fn get_or_allocate_for(
        &self,
        n_clients: usize,
        server: &ServerModel,
        policy: FillPolicy,
        penalty: Option<&crate::loss::TransferPenalty>,
        fault_fingerprint: u64,
    ) -> Arc<Allocation> {
        let key =
            (n_clients, server.n_slots(penalty), server.max_parallel, policy, fault_fingerprint);
        if let Some(hit) = self.map.read().expect("allocation cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(tel) = &self.telemetry {
                tel.hits.inc();
            }
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(allocate(n_clients, server, policy, penalty));
        if let Some(tel) = &self.telemetry {
            tel.misses.inc();
            for sa in fresh.servers() {
                for &k in &sa.slots {
                    tel.occupancy.observe(k as f64);
                }
            }
        }
        let mut map = self.map.write().expect("allocation cache poisoned");
        // Another thread may have won the race between the read and the
        // write lock; keep the first insertion so everyone shares one Arc.
        Arc::clone(map.entry(key).or_insert(fresh))
    }

    /// Lookups answered from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the allocator.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct allocation shapes memoized.
    pub fn len(&self) -> usize {
        self.map.read().expect("allocation cache poisoned").len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized shape and zeroes the counters.
    pub fn clear(&self) {
        self.map.write().expect("allocation cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// Deterministic simulation context: a master seed plus the shared
/// [`AllocationCache`].
///
/// Every consumer that needs "an independent stream for item `n`"
/// derives it through [`SimContext::point_rng`] instead of hand-rolling
/// `StdRng::seed_from_u64(seed ^ …)` — one convention, stated once.
/// Cloning is cheap and shares the cache, so a context can fan out
/// across rayon workers while all of them reuse each other's
/// allocations.
#[derive(Clone, Debug)]
pub struct SimContext {
    seed: u64,
    cache: Arc<AllocationCache>,
    telemetry: Telemetry,
    faults: FaultPlan,
}

impl SimContext {
    /// A fresh context with its own empty cache, disabled telemetry and
    /// no faults.
    pub fn new(seed: u64) -> Self {
        SimContext {
            seed,
            cache: Arc::new(AllocationCache::new()),
            telemetry: Telemetry::disabled(),
            faults: FaultPlan::NONE,
        }
    }

    /// A fresh context whose cache and backends report into `telemetry`.
    /// Telemetry never touches the RNG streams, so results are
    /// bit-identical to [`SimContext::new`] with the same seed.
    pub fn with_telemetry(seed: u64, telemetry: Telemetry) -> Self {
        SimContext {
            seed,
            cache: Arc::new(AllocationCache::with_telemetry(&telemetry)),
            telemetry,
            faults: FaultPlan::NONE,
        }
    }

    /// A context sharing an existing cache (e.g. across sweeps).
    pub fn with_cache(seed: u64, cache: Arc<AllocationCache>) -> Self {
        SimContext { seed, cache, telemetry: Telemetry::disabled(), faults: FaultPlan::NONE }
    }

    /// A context sharing an existing cache *and* reporting into
    /// `telemetry` — the serving daemon's shape: one process-wide
    /// allocation cache and one metrics registry across every request,
    /// while each request still gets its own seed. Note the cache's own
    /// hit/miss mirroring is bound when the cache is constructed
    /// ([`AllocationCache::with_telemetry`]), not here.
    pub fn with_cache_and_telemetry(
        seed: u64,
        cache: Arc<AllocationCache>,
        telemetry: Telemetry,
    ) -> Self {
        SimContext { seed, cache, telemetry, faults: FaultPlan::NONE }
    }

    /// This context with `plan` injected into every evaluation. The
    /// structural [`FaultPlan::NONE`] keeps the exact fault-free paths.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The active fault plan ([`FaultPlan::NONE`] by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// This context's telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Whether causal trace tagging is active: the telemetry handle
    /// carries the [`Telemetry::with_tracing`] flag *and* its sink
    /// records events. Backends consult this before emitting
    /// `trace.*` spans or tagging events with span ids.
    pub fn tracing_active(&self) -> bool {
        self.telemetry.tracing_active()
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared allocation cache.
    pub fn cache(&self) -> &AllocationCache {
        &self.cache
    }

    /// A handle to the cache for sharing with another context.
    pub fn shared_cache(&self) -> Arc<AllocationCache> {
        Arc::clone(&self.cache)
    }

    /// The derived seed of point `n`: `seed ^ n·φ` — the splitting
    /// convention [`crate::sweep::SweepConfig`] established. Point 0
    /// maps to the master seed itself.
    pub fn point_seed(&self, n: u64) -> u64 {
        self.seed ^ n.wrapping_mul(GOLDEN_GAMMA)
    }

    /// An independent deterministic RNG for point `n`.
    pub fn point_rng(&self, n: u64) -> StdRng {
        StdRng::seed_from_u64(self.point_seed(n))
    }

    /// The fault-stream seed of point `n`: the point seed XOR'd with its
    /// own odd constant, so fault draws never alias the loss draws.
    pub fn fault_seed(&self, n: u64) -> u64 {
        self.point_seed(n) ^ FAULT_GAMMA
    }

    /// An independent deterministic RNG for point `n`'s fault draws.
    pub fn fault_rng(&self, n: u64) -> StdRng {
        StdRng::seed_from_u64(self.fault_seed(n))
    }

    /// A derived context for Monte-Carlo replicate `r`, sharing this
    /// context's cache. Uses the additive split
    /// `seed + r·0x9E37_79B9` that [`crate::montecarlo`] established,
    /// so replicate streams stay disjoint from point streams.
    pub fn replicate(&self, r: u64) -> SimContext {
        SimContext {
            seed: self.seed.wrapping_add(r.wrapping_mul(0x9E37_79B9)),
            cache: Arc::clone(&self.cache),
            telemetry: self.telemetry.clone(),
            faults: self.faults,
        }
    }
}

/// A strategy for pricing one wake-up cycle of the two scenarios.
///
/// `evaluate` is the only required method; `evaluate_edge` and
/// [`compare`](CycleEngine::compare) are shared across backends because
/// the pure-edge scenario has no server to model and the comparison
/// semantics (equal loss draws on both sides) must not vary by backend.
pub trait CycleEngine: Send + Sync {
    /// Prices one cycle of the **edge+cloud** scenario at `n_clients`.
    fn evaluate(&self, spec: &ScenarioSpec, n_clients: usize, ctx: &SimContext) -> CycleReport;

    /// Prices one cycle of the **edge** scenario at `n_clients`: every
    /// client runs the service locally, no servers exist, and only
    /// Loss C applies.
    fn evaluate_edge(
        &self,
        spec: &ScenarioSpec,
        n_clients: usize,
        ctx: &SimContext,
    ) -> CycleReport {
        if !ctx.fault_plan().is_none() {
            return faults::edge_with_faults(spec, n_clients, ctx);
        }
        let _span = ctx.telemetry().span("engine.cycle.edge");
        let mut rng = ctx.point_rng(n_clients as u64);
        let active = draw_active(&spec.loss, n_clients, &mut rng);
        record_client_loss(ctx, n_clients, active);
        let edge_total = spec.edge_client.cycle_energy() * active as f64;
        CycleReport::from_parts(n_clients, active, 0, edge_total, Joules::ZERO)
    }

    /// Evaluates both scenarios at `n_clients` from the *same* derived
    /// RNG stream, so a random client loss strikes both equally and the
    /// comparison is apples-to-apples (the Figure 7 green/blue regions).
    fn compare(&self, spec: &ScenarioSpec, n_clients: usize, ctx: &SimContext) -> ComparisonPoint {
        ComparisonPoint {
            n_clients,
            edge: self.evaluate_edge(spec, n_clients, ctx),
            cloud: self.evaluate(spec, n_clients, ctx),
        }
    }
}

/// Loss C draw shared by every backend: how many clients participate.
pub(crate) fn draw_active<R: Rng + ?Sized>(
    loss: &LossModel,
    n_clients: usize,
    rng: &mut R,
) -> usize {
    let lost = loss.client_loss.map_or(0, |l| l.draw(n_clients, rng));
    n_clients - lost
}

/// Counts Loss-C casualties into `loss.clients_lost` (no-op when the
/// context's telemetry is disabled or nobody was lost).
pub(crate) fn record_client_loss(ctx: &SimContext, n_clients: usize, active: usize) {
    if n_clients > active {
        ctx.telemetry().add_to_counter("loss.clients_lost", (n_clients - active) as u64);
    }
}

/// The closed-form backend: the per-slot algebra of
/// [`crate::simulation`]. Fastest; exact for the paper's synchronized
/// slot model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClosedForm;

impl CycleEngine for ClosedForm {
    fn evaluate(&self, spec: &ScenarioSpec, n_clients: usize, ctx: &SimContext) -> CycleReport {
        if !ctx.fault_plan().is_none() {
            return faults::closed_form_with_faults(spec, n_clients, ctx);
        }
        let _span = ctx.telemetry().span("engine.cycle.closed_form");
        let mut rng = ctx.point_rng(n_clients as u64);
        let active = draw_active(&spec.loss, n_clients, &mut rng);
        record_client_loss(ctx, n_clients, active);
        let allocation = ctx.cache().get_or_allocate(
            active,
            &spec.server,
            spec.policy,
            spec.loss.transfer.as_ref(),
        );
        let server_total = servers_cycle_energy(&spec.server, &allocation, &spec.loss);
        let edge_total = edge_cycle_energy(&spec.cloud_client, &allocation, &spec.loss);
        CycleReport::from_parts(n_clients, active, allocation.n_servers(), edge_total, server_total)
    }
}

/// The event-timeline backend: builds explicit power/dwell state
/// machines ([`crate::timeline`]) for every server and client and
/// integrates them. Slower than [`ClosedForm`] but validates it — the
/// two must agree to numerical precision on the same allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventTimeline;

impl CycleEngine for EventTimeline {
    fn evaluate(&self, spec: &ScenarioSpec, n_clients: usize, ctx: &SimContext) -> CycleReport {
        if !ctx.fault_plan().is_none() {
            return faults::timeline_with_faults(spec, n_clients, ctx);
        }
        let _span = ctx.telemetry().span("engine.cycle.timeline");
        let mut rng = ctx.point_rng(n_clients as u64);
        let active = draw_active(&spec.loss, n_clients, &mut rng);
        record_client_loss(ctx, n_clients, active);
        let allocation = ctx.cache().get_or_allocate(
            active,
            &spec.server,
            spec.policy,
            spec.loss.transfer.as_ref(),
        );
        let server_total = servers_energy_from_timelines(&spec.server, &allocation, &spec.loss);
        let edge_total = clients_energy_from_timelines(&spec.cloud_client, &allocation, &spec.loss);
        CycleReport::from_parts(n_clients, active, allocation.n_servers(), edge_total, server_total)
    }
}

/// The discrete-event backend: drops the synchronized-slot assumption
/// and lets clients upload at random offsets within the cycle
/// ([`crate::des`]). Provisioning (server count) still follows the
/// slotted allocator so the scenarios stay comparable; per-server
/// arrival processes derive deterministically from the point seed.
///
/// This is an *ablation* of the paper's model, not an equivalent
/// formulation: saturation and transfer-contention losses have no slot
/// to act on (the transfer penalty still shrinks provisioning capacity),
/// and server energy reflects asynchronous overlap rather than shared
/// slot windows — every upload bills its own receive time, where a
/// synchronized slot amortizes one window over its whole occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Des;

impl CycleEngine for Des {
    fn evaluate(&self, spec: &ScenarioSpec, n_clients: usize, ctx: &SimContext) -> CycleReport {
        if !ctx.fault_plan().is_none() {
            return faults::des_with_faults(spec, n_clients, ctx);
        }
        let _span = ctx.telemetry().span("engine.cycle.des");
        let mut rng = ctx.point_rng(n_clients as u64);
        let active = draw_active(&spec.loss, n_clients, &mut rng);
        record_client_loss(ctx, n_clients, active);
        let allocation = ctx.cache().get_or_allocate(
            active,
            &spec.server,
            spec.policy,
            spec.loss.transfer.as_ref(),
        );
        let point_seed = ctx.point_seed(n_clients as u64);
        // Each server owns an independent salted RNG stream, so the
        // per-server simulations parallelize; folding the reports in
        // server order keeps the energy sum bit-identical to the serial
        // loop regardless of the worker count. Jobs carry the global
        // index of their first client so causal trace ids (derived from
        // the point seed and the global index) are thread-count-stable.
        let mut jobs: Vec<(usize, usize, usize)> = Vec::with_capacity(allocation.n_servers());
        let mut base = 0usize;
        for (s, sa) in allocation.servers().enumerate() {
            jobs.push((s, base, sa.n_clients()));
            base += sa.n_clients();
        }
        let telemetry = ctx.telemetry();
        let causal = telemetry.tracing_active();
        let deliver_cost = spec.cloud_client.cycle_energy();
        // Uniform populations leave at most two distinct server shapes
        // after the RLE allocation; fold each shape's repeated-addition
        // constants once and share them across the fan-out.
        let memo = ShapeMemo::for_server(&spec.server, jobs.iter().map(|&(_, _, k)| k));
        let reports: Vec<Joules> = jobs
            .par_iter()
            .map(|&(s, base, k)| {
                let mut server_rng =
                    StdRng::seed_from_u64(point_seed ^ (s as u64 + 1).wrapping_mul(GOLDEN_GAMMA));
                let tr = DesTrace {
                    point_seed,
                    base,
                    deliver_energy_j: deliver_cost.value(),
                    retry_energy_j: 0.0,
                    fallback_energy_j: 0.0,
                };
                simulate_async_cycle_memoized(
                    k,
                    &spec.server,
                    &mut server_rng,
                    telemetry,
                    causal.then_some(&tr),
                    Some(&memo),
                )
                .server_energy
            })
            .collect();
        let mut server_total = Joules::ZERO;
        for e in reports {
            server_total += e;
        }
        // Unsynchronized uploads see no slot contention: each client pays
        // its nominal cycle, penalty-free.
        let edge_total = spec.cloud_client.cycle_energy() * active as f64;
        CycleReport::from_parts(n_clients, active, allocation.n_servers(), edge_total, server_total)
    }
}

/// Runtime-selectable backend. Implements [`CycleEngine`] by
/// delegation, so call sites take a `Backend` (or `&dyn CycleEngine`)
/// and defer the choice to a flag or config value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Per-slot closed forms (the default; exact and fastest).
    #[default]
    ClosedForm,
    /// Explicit state-machine timelines (validating integration).
    EventTimeline,
    /// Asynchronous discrete-event simulation (ablation).
    Des,
}

impl Backend {
    /// Every backend, for exhaustive comparisons.
    pub const ALL: [Backend; 3] = [Backend::ClosedForm, Backend::EventTimeline, Backend::Des];

    /// The backend's canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::ClosedForm => "closed-form",
            Backend::EventTimeline => "timeline",
            Backend::Des => "des",
        }
    }
}

impl CycleEngine for Backend {
    fn evaluate(&self, spec: &ScenarioSpec, n_clients: usize, ctx: &SimContext) -> CycleReport {
        match self {
            Backend::ClosedForm => ClosedForm.evaluate(spec, n_clients, ctx),
            Backend::EventTimeline => EventTimeline.evaluate(spec, n_clients, ctx),
            Backend::Des => Des.evaluate(spec, n_clients, ctx),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "closed-form" | "closed" | "analytic" => Ok(Backend::ClosedForm),
            "timeline" | "event-timeline" => Ok(Backend::EventTimeline),
            "des" | "async" => Ok(Backend::Des),
            other => {
                Err(format!("unknown backend '{other}' (expected closed-form, timeline or des)"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(max_parallel: usize, loss: LossModel) -> ScenarioSpec {
        ScenarioSpec::paper(ServiceKind::Cnn, max_parallel, loss)
    }

    #[test]
    fn closed_form_matches_the_deprecated_free_functions() {
        // The engine is a refactor, not a remodel: on every loss model the
        // ClosedForm backend must reproduce simulate_edge_cloud exactly
        // (same RNG stream, same allocation, same algebra).
        #[allow(deprecated)]
        for loss in [
            LossModel::NONE,
            LossModel::saturation_only(),
            LossModel::transfer_only(),
            LossModel::client_loss_only(),
            LossModel::all(),
        ] {
            let spec = spec(10, loss);
            let ctx = SimContext::new(0xF1E1D);
            for n in [0usize, 1, 90, 180, 200, 630] {
                let got = ClosedForm.evaluate(&spec, n, &ctx);
                let mut rng = ctx.point_rng(n as u64);
                let want = crate::simulation::simulate_edge_cloud(
                    n,
                    &spec.cloud_client,
                    &spec.server,
                    &spec.loss,
                    spec.policy,
                    &mut rng,
                );
                assert_eq!(got, want, "n = {n}");

                let got_edge = ClosedForm.evaluate_edge(&spec, n, &ctx);
                let mut rng = ctx.point_rng(n as u64);
                let want_edge =
                    crate::simulation::simulate_edge(n, &spec.edge_client, &spec.loss, &mut rng);
                assert_eq!(got_edge, want_edge, "edge, n = {n}");
            }
        }
    }

    #[test]
    fn timeline_agrees_with_closed_form_to_microjoules() {
        for loss in [
            LossModel::NONE,
            LossModel::saturation_only(),
            LossModel::transfer_only(),
            LossModel::all(),
        ] {
            for policy in [FillPolicy::PackSlots, FillPolicy::BalanceSlots] {
                let spec = ScenarioSpec { policy, ..spec(10, loss) };
                let ctx = SimContext::new(7);
                for n in [1usize, 45, 180, 500] {
                    let a = ClosedForm.evaluate(&spec, n, &ctx);
                    let b = EventTimeline.evaluate(&spec, n, &ctx);
                    assert!(
                        (a.total_energy - b.total_energy).abs() < Joules(1e-6),
                        "{policy:?} n = {n}: {} vs {}",
                        a.total_energy,
                        b.total_energy
                    );
                    assert_eq!(a.n_active, b.n_active);
                    assert_eq!(a.n_servers, b.n_servers);
                }
            }
        }
    }

    #[test]
    fn des_backend_is_deterministic_and_provisions_like_the_allocator() {
        let spec = spec(10, LossModel::NONE);
        let ctx = SimContext::new(3);
        let a = Des.evaluate(&spec, 400, &ctx);
        let b = Des.evaluate(&spec, 400, &ctx);
        assert_eq!(a, b);
        assert_eq!(a.n_servers, 3); // 400 clients / 180 per server
        assert!(a.server_energy_total > Joules::ZERO);
        // The ablation genuinely differs from the synchronized model: each
        // async upload bills its own receive window, so the server side is
        // pricier than the slot-amortized closed form.
        let sync = ClosedForm.evaluate(&spec, 400, &ctx);
        assert!(
            a.server_energy_total > sync.server_energy_total,
            "des {} vs closed-form {}",
            a.server_energy_total,
            sync.server_energy_total
        );
    }

    #[test]
    fn cache_is_shared_hit_counted_and_transparent() {
        let spec = spec(10, LossModel::NONE);
        let ctx = SimContext::new(1);
        let cold = ClosedForm.evaluate(&spec, 180, &ctx);
        assert_eq!(ctx.cache().misses(), 1);
        assert_eq!(ctx.cache().hits(), 0);
        let warm = ClosedForm.evaluate(&spec, 180, &ctx);
        assert_eq!(ctx.cache().hits(), 1);
        assert_eq!(cold, warm, "memoized allocation must not change the report");
        // A fresh context (cold cache) still agrees.
        let fresh = ClosedForm.evaluate(&spec, 180, &SimContext::new(1));
        assert_eq!(cold, fresh);
        // Sharing a cache across differently-seeded contexts is sound: the
        // key has no seed component.
        let other = SimContext::with_cache(99, ctx.shared_cache());
        let _ = ClosedForm.evaluate(&spec, 180, &other);
        assert_eq!(ctx.cache().hits(), 2);
        ctx.cache().clear();
        assert!(ctx.cache().is_empty());
        assert_eq!(ctx.cache().hits(), 0);
    }

    #[test]
    fn telemetry_counts_cache_hits_without_changing_results() {
        // The engine_cache invariant, observed through pb-telemetry: a
        // cold sweep is all misses; re-running the same points against the
        // warm cache adds only hits — the miss count must not move.
        let spec = spec(35, LossModel::NONE);
        let ns: Vec<usize> = (100..=2000).step_by(100).collect();

        let tel = Telemetry::metrics_only();
        let ctx = SimContext::with_telemetry(0xF1E1D, tel.clone());
        for &n in &ns {
            let _ = ClosedForm.evaluate(&spec, n, &ctx);
        }
        let cold = tel.snapshot();
        let cold_misses = cold.counter("allocation_cache.misses").expect("misses counted");
        assert!(cold_misses > 0);
        assert_eq!(cold.counter("allocation_cache.hits"), Some(0), "cold run has no hits");

        for &n in &ns {
            let _ = ClosedForm.evaluate(&spec, n, &ctx);
        }
        let warm = tel.snapshot();
        let hits = warm.counter("allocation_cache.hits").unwrap_or(0);
        assert!(hits > 0, "warm run must hit the cache");
        assert_eq!(
            warm.counter("allocation_cache.misses"),
            Some(cold_misses),
            "warm run must add no misses"
        );
        // The mirror agrees with the cache's own counters.
        assert_eq!(hits, ctx.cache().hits());
        assert_eq!(cold_misses, ctx.cache().misses());
        // Every computed allocation contributed its slot occupancies.
        let occ = warm.histogram("allocator.slot_occupancy").expect("occupancy recorded");
        assert!(occ.count > 0);
        assert!(occ.max <= 35.0, "no slot can exceed the cap");
    }

    #[test]
    fn telemetry_does_not_perturb_any_backend() {
        // Acceptance criterion: disabling telemetry reproduces
        // bit-identical simulation results — and so does enabling it.
        let spec = spec(10, LossModel::all());
        for backend in Backend::ALL {
            for n in [1usize, 90, 180, 406] {
                let plain = backend.compare(&spec, n, &SimContext::new(0xBEE));
                let traced = backend.compare(
                    &spec,
                    n,
                    &SimContext::with_telemetry(0xBEE, Telemetry::enabled()),
                );
                assert_eq!(plain.cloud, traced.cloud, "{backend} n = {n}");
                assert_eq!(plain.edge, traced.edge, "{backend} n = {n}");
            }
        }
    }

    #[test]
    fn backend_spans_aggregate_per_backend() {
        let spec = spec(10, LossModel::NONE);
        let tel = Telemetry::metrics_only();
        let ctx = SimContext::with_telemetry(5, tel.clone());
        for backend in Backend::ALL {
            let _ = backend.evaluate(&spec, 180, &ctx);
            let _ = backend.evaluate_edge(&spec, 180, &ctx);
        }
        let snap = tel.snapshot();
        for name in ["engine.cycle.closed_form", "engine.cycle.timeline", "engine.cycle.des"] {
            assert_eq!(snap.histogram(name).expect(name).count, 1, "{name}");
        }
        assert_eq!(snap.histogram("engine.cycle.edge").unwrap().count, 3);
    }

    #[test]
    fn point_streams_are_independent_and_stable() {
        let ctx = SimContext::new(42);
        assert_eq!(ctx.point_seed(0), 42, "point 0 is the master seed");
        assert_ne!(ctx.point_seed(1), ctx.point_seed(2));
        use rand::RngCore;
        let (mut a, mut b) = (ctx.point_rng(5), ctx.point_rng(5));
        assert_eq!(a.next_u64(), b.next_u64());
        // Replicates share the cache but not the stream.
        let r = ctx.replicate(3);
        assert_ne!(r.seed(), ctx.seed());
        assert_eq!(r.seed(), 42u64.wrapping_add(3 * 0x9E37_79B9));
        assert!(Arc::ptr_eq(&ctx.shared_cache(), &r.shared_cache()));
    }

    #[test]
    fn compare_draws_the_same_loss_on_both_sides() {
        let spec = spec(10, LossModel::client_loss_only());
        let ctx = SimContext::new(11);
        for backend in Backend::ALL {
            for n in [100usize, 250, 400] {
                let p = backend.compare(&spec, n, &ctx);
                assert_eq!(p.edge.n_active, p.cloud.n_active, "{backend} n = {n}");
            }
        }
    }

    #[test]
    fn backend_round_trips_names() {
        for b in Backend::ALL {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
        }
        assert_eq!("ASYNC".parse::<Backend>().unwrap(), Backend::Des);
        assert_eq!("analytic".parse::<Backend>().unwrap(), Backend::ClosedForm);
        assert!("fpga".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::ClosedForm);
    }

    #[test]
    fn paper_headlines_reproduce_through_the_engine() {
        // 322 J edge side at the paper's cap-10 setting, via both
        // synchronized backends.
        let s10 = spec(10, LossModel::NONE);
        let ctx = SimContext::new(0xF1E1D);
        for backend in [Backend::ClosedForm, Backend::EventTimeline] {
            let r = backend.evaluate(&s10, 180, &ctx);
            assert!(
                (r.edge_energy_per_client - Joules(322.0)).abs() < Joules(0.5),
                "{backend}: {}",
                r.edge_energy_per_client
            );
            assert!((r.server_energy_per_client - Joules(117.0)).abs() < Joules(0.5));
        }
    }
}
