//! The allocator component of the simulation model.
//!
//! "Allocator: its main task is to allocate several clients to servers. It
//! takes a list of clients, creates servers based on their features …,
//! allocates every client to one server, and links them to a wake-up time
//! slot. Currently, it has one filling policy: filling a server with
//! clients by filling one slot up to its maximum after another."
//!
//! That fill-first policy is [`FillPolicy::PackSlots`]. As an ablation
//! (the paper defers alternative policies to future work) the crate adds
//! [`FillPolicy::BalanceSlots`], which spreads the clients of each server
//! evenly over its slots — identical in the loss-free model, but it defers
//! the Loss-A saturation penalty.

use crate::loss::TransferPenalty;
use crate::server::ServerModel;

/// How clients are distributed over a server's time slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FillPolicy {
    /// The paper's policy: fill each slot to its maximum before opening
    /// the next.
    PackSlots,
    /// Ablation: provision the same minimal number of servers, but spread
    /// the clients evenly across all of them and across each server's
    /// slots. Uses more receive windows than packing, but keeps occupancy
    /// low — which defers the Loss-A saturation penalty.
    BalanceSlots,
}

/// One server's allocation: clients per slot (used slots only are listed;
/// a slot may appear with zero occupancy under balancing of tiny loads).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerAllocation {
    /// Occupancy of each of the server's slots, in slot order.
    pub slots: Vec<usize>,
}

impl ServerAllocation {
    /// Number of clients on this server.
    pub fn n_clients(&self) -> usize {
        self.slots.iter().sum()
    }

    /// Number of slots with at least one client.
    pub fn used_slots(&self) -> usize {
        self.slots.iter().filter(|&&k| k > 0).count()
    }
}

/// A complete allocation of clients onto servers, stored run-length
/// encoded: a uniform population allocates at most **two** distinct
/// server shapes (full + partial under packing; two even shares under
/// balancing), so a million-client fleet is represented by a handful of
/// slot vectors instead of one `ServerAllocation` per server. Iteration
/// still yields one (shared) `ServerAllocation` per logical server, in
/// the exact order the historical dense representation listed them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// `(repeat count, shape)` runs, in server order.
    groups: Vec<(usize, ServerAllocation)>,
    /// Total server count (the sum of the group counts, cached).
    n_servers: usize,
    /// Slots available per server when the allocation was made.
    pub n_slots: usize,
    /// Slot capacity when the allocation was made.
    pub max_parallel: usize,
}

impl Allocation {
    /// Builds an allocation from `(count, shape)` runs.
    pub fn from_groups(
        groups: Vec<(usize, ServerAllocation)>,
        n_slots: usize,
        max_parallel: usize,
    ) -> Self {
        let n_servers = groups.iter().map(|(c, _)| c).sum();
        Allocation { groups, n_servers, n_slots, max_parallel }
    }

    /// Total clients allocated.
    pub fn n_clients(&self) -> usize {
        self.groups.iter().map(|(c, s)| c * s.n_clients()).sum()
    }

    /// Number of servers used.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// The run-length-encoded `(count, shape)` groups, in server order.
    /// Energy accounting iterates these to price each distinct shape
    /// once instead of once per server.
    pub fn groups(&self) -> &[(usize, ServerAllocation)] {
        &self.groups
    }

    /// Iterates the allocation server by server (group shapes are
    /// yielded by reference `count` times each), in server order.
    pub fn servers(&self) -> impl Iterator<Item = &ServerAllocation> + '_ {
        self.groups.iter().flat_map(|(c, s)| std::iter::repeat_n(s, *c))
    }

    /// The shape of server `index` (0-based, in server order).
    pub fn server(&self, index: usize) -> &ServerAllocation {
        let mut at = index;
        for (count, shape) in &self.groups {
            if at < *count {
                return shape;
            }
            at -= count;
        }
        panic!("server index {index} out of range ({} servers)", self.n_servers);
    }
}

/// Allocates `n_clients` onto as few servers as possible, distributing
/// within each server according to `policy`. The transfer penalty (when
/// active) shrinks each server's slot count exactly as in
/// [`ServerModel::n_slots`].
///
/// Purely arithmetic: the result is computed from division/remainder
/// alone — O(`n_slots`) time and space regardless of the client count,
/// with no per-client (or even per-server) vector materialized.
pub fn allocate(
    n_clients: usize,
    server: &ServerModel,
    policy: FillPolicy,
    penalty: Option<&TransferPenalty>,
) -> Allocation {
    let n_slots = server.n_slots(penalty);
    assert!(n_slots > 0, "server admits no time slots");
    let capacity = n_slots * server.max_parallel;
    let n_servers = n_clients.div_ceil(capacity);
    let mut groups: Vec<(usize, ServerAllocation)> = Vec::with_capacity(2);
    match policy {
        FillPolicy::PackSlots => {
            // All full servers share one shape (every slot at capacity);
            // the remainder fills a final server slot by slot.
            let n_full = n_clients / capacity;
            let rem = n_clients % capacity;
            if n_full > 0 {
                groups
                    .push((n_full, ServerAllocation { slots: vec![server.max_parallel; n_slots] }));
            }
            if rem > 0 {
                let mut slots = Vec::with_capacity(n_slots);
                let mut left = rem;
                for _ in 0..n_slots {
                    let k = left.min(server.max_parallel);
                    slots.push(k);
                    left -= k;
                }
                groups.push((1, ServerAllocation { slots }));
            }
        }
        FillPolicy::BalanceSlots => {
            // Even shares differ by at most one client: the first
            // `n_clients % n_servers` servers carry the extra.
            let spread = |share: usize| ServerAllocation {
                slots: (0..n_slots)
                    .map(|i| share / n_slots + usize::from(i < share % n_slots))
                    .collect(),
            };
            if let Some(share) = n_clients.checked_div(n_servers) {
                let extra = n_clients % n_servers;
                if extra > 0 {
                    groups.push((extra, spread(share + 1)));
                }
                if n_servers > extra {
                    groups.push((n_servers - extra, spread(share)));
                }
            }
        }
    }
    Allocation::from_groups(groups, n_slots, server.max_parallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{PenaltyMode, TransferPenalty};
    use pb_units::{Seconds, Watts};

    fn paper_server(max_parallel: usize) -> ServerModel {
        ServerModel::new(
            Watts(44.6),
            Watts(68.8),
            Seconds(15.0),
            Watts(108.0),
            Seconds(1.0),
            max_parallel,
            Seconds(300.0),
        )
    }

    #[test]
    fn pack_fills_slot_by_slot() {
        let a = allocate(25, &paper_server(10), FillPolicy::PackSlots, None);
        assert_eq!(a.n_servers(), 1);
        assert_eq!(a.server(0).slots[0], 10);
        assert_eq!(a.server(0).slots[1], 10);
        assert_eq!(a.server(0).slots[2], 5);
        assert!(a.server(0).slots[3..].iter().all(|&k| k == 0));
        assert_eq!(a.n_clients(), 25);
        assert_eq!(a.server(0).used_slots(), 3);
    }

    #[test]
    fn balance_spreads_evenly() {
        let a = allocate(25, &paper_server(10), FillPolicy::BalanceSlots, None);
        assert_eq!(a.n_servers(), 1);
        // 25 over 18 slots: seven slots of 2, eleven of 1.
        let twos = a.server(0).slots.iter().filter(|&&k| k == 2).count();
        let ones = a.server(0).slots.iter().filter(|&&k| k == 1).count();
        assert_eq!((twos, ones), (7, 11));
        assert_eq!(a.n_clients(), 25);
    }

    #[test]
    fn overflow_opens_new_servers() {
        // Capacity is 180 per server.
        let a = allocate(400, &paper_server(10), FillPolicy::PackSlots, None);
        assert_eq!(a.n_servers(), 3);
        assert_eq!(a.server(0).n_clients(), 180);
        assert_eq!(a.server(1).n_clients(), 180);
        assert_eq!(a.server(2).n_clients(), 40);
        // Run-length encoding: the two full servers share one shape.
        assert_eq!(a.groups().len(), 2);
        assert_eq!(a.groups()[0].0, 2);
        assert_eq!(a.groups()[1].0, 1);
    }

    #[test]
    fn exact_capacity_uses_exactly_full_servers() {
        let a = allocate(360, &paper_server(10), FillPolicy::PackSlots, None);
        assert_eq!(a.n_servers(), 2);
        assert!(a.servers().all(|s| s.n_clients() == 180));
        assert!(a.servers().all(|s| s.slots.iter().all(|&k| k == 10)));
        // Exactly one RLE group: every server is the full shape.
        assert_eq!(a.groups().len(), 1);
    }

    #[test]
    fn zero_clients_zero_servers() {
        let a = allocate(0, &paper_server(10), FillPolicy::PackSlots, None);
        assert_eq!(a.n_servers(), 0);
        assert_eq!(a.n_clients(), 0);
    }

    #[test]
    fn transfer_penalty_shrinks_capacity() {
        // Figure 8b: "for 350 clients: 4 servers when duration penalty is
        // applied versus 2 servers in the no-loss case".
        let server = paper_server(10);
        let no_loss = allocate(350, &server, FillPolicy::PackSlots, None);
        assert_eq!(no_loss.n_servers(), 2);
        let p =
            TransferPenalty { extra_per_client: Seconds(1.5), mode: PenaltyMode::PerExtraClient };
        let with_loss = allocate(350, &server, FillPolicy::PackSlots, Some(&p));
        assert_eq!(with_loss.n_servers(), 4);
    }

    #[test]
    fn policies_preserve_client_count() {
        for n in [1usize, 17, 180, 181, 399, 1000] {
            for policy in [FillPolicy::PackSlots, FillPolicy::BalanceSlots] {
                let a = allocate(n, &paper_server(10), policy, None);
                assert_eq!(a.n_clients(), n, "policy {policy:?}, n {n}");
                // No slot exceeds the maximum.
                for s in a.servers() {
                    assert!(s.slots.iter().all(|&k| k <= 10));
                    assert_eq!(s.slots.len(), a.n_slots);
                }
            }
        }
    }

    #[test]
    fn server_count_is_minimal() {
        for n in [1usize, 180, 181, 360, 361] {
            let a = allocate(n, &paper_server(10), FillPolicy::PackSlots, None);
            assert_eq!(a.n_servers(), n.div_ceil(180), "n {n}");
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn every_client_allocated_exactly_once(
                n in 0usize..2000,
                cap in 1usize..40,
                balance in proptest::bool::ANY,
            ) {
                let server = paper_server(cap);
                let policy = if balance { FillPolicy::BalanceSlots } else { FillPolicy::PackSlots };
                let a = allocate(n, &server, policy, None);
                prop_assert_eq!(a.n_clients(), n);
                // Minimal server count.
                let capacity = server.capacity(None);
                prop_assert_eq!(a.n_servers(), n.div_ceil(capacity));
                match policy {
                    // Packing leaves all but the last server full.
                    FillPolicy::PackSlots => {
                        for s in a.servers().take(a.n_servers().saturating_sub(1)) {
                            prop_assert_eq!(s.n_clients(), capacity);
                        }
                    }
                    // Balancing leaves server loads within one client.
                    FillPolicy::BalanceSlots => {
                        if let (Some(max), Some(min)) = (
                            a.servers().map(ServerAllocation::n_clients).max(),
                            a.servers().map(ServerAllocation::n_clients).min(),
                        ) {
                            prop_assert!(max - min <= 1);
                        }
                    }
                }
            }
        }
    }
}
