#![warn(missing_docs)]

//! Edge/cloud service-orchestration simulator — the paper's contribution.
//!
//! Section VI of the paper introduces a client/server energy-simulation
//! model with three components:
//!
//! * a **client** (one smart beehive): sleep power, a series of active
//!   actions with durations and powers, and a wake-up period;
//! * a **server** (one cloud machine): idle power, per-slot receive and
//!   process costs, and a maximum number of clients allowed in parallel per
//!   *time slot* — synchronized windows in which a group of clients
//!   transmits simultaneously;
//! * an **allocator** that assigns clients to servers and slots (the paper
//!   implements one fill-first policy; this crate adds a balanced policy as
//!   an ablation).
//!
//! On top of the model sit the **scenarios** (edge vs. edge+cloud), the
//! three **loss models** of Section VI-C, and the parameter **sweeps** that
//! regenerate Figures 6–9. The [`engine`] layer unifies the three cycle
//! backends (closed form, event timeline, discrete-event) behind one
//! [`CycleEngine`] trait with shared seed derivation and allocation
//! memoization.
//!
//! # Example
//!
//! ```
//! use pb_orchestra::prelude::*;
//!
//! // The paper's setting: CNN service, 5-minute cycles, 10 clients/slot.
//! let spec = ScenarioSpec::paper(ServiceKind::Cnn, 10, LossModel::NONE);
//! let report = Backend::ClosedForm.evaluate(&spec, 200, &SimContext::new(1));
//! assert_eq!(report.n_servers, 2); // 200 clients need two 180-client servers
//! assert!((report.edge_energy_per_client.value() - 322.0).abs() < 1.0);
//! ```

pub mod allocator;
pub mod calendar;
pub mod client;
pub mod columns;
pub mod des;
pub mod engine;
pub mod faults;
pub mod fleet;
pub mod loss;
pub mod montecarlo;
pub mod planner;
pub mod plot;
pub mod report;
pub mod scenario;
pub mod sensitivity;
pub mod server;
pub mod simulation;
pub mod sweep;
pub mod timeline;

pub use allocator::{Allocation, FillPolicy, ServerAllocation};
pub use calendar::{CalendarQueue, EventKey};
pub use client::{Action, ClientModel};
pub use columns::{ClassView, FleetColumns, TransferColumns};
pub use des::{
    simulate_async_cycle, simulate_async_cycle_causal, simulate_async_cycle_faulted,
    simulate_async_cycle_memoized, simulate_async_cycle_traced, AsyncCycleReport, DesTrace,
    FaultedAsyncReport, ShapeMemo,
};
pub use engine::{AllocationCache, Backend, CycleEngine, ScenarioSpec, SimContext};
pub use faults::{Brownout, ClientClass, FaultPlan, FaultStats, OutageWindow, RetryPolicy};
pub use fleet::{simulate_fleet, simulate_fleet_with, FleetGroup, FleetReport};
pub use loss::{ClientLoss, LossModel, PenaltyMode, SaturationPenalty, TransferPenalty};
pub use montecarlo::{
    replicate_point, replicate_point_with, replicate_range, replicate_range_with, CiPoint,
};
pub use planner::{plan_slot_capacity, CapacityPlan, CapacityPoint};
pub use plot::AsciiChart;
pub use scenario::{presets, Scenario};
pub use sensitivity::{sensitivity_sweep, Parameter, ScenarioParameters, SensitivityRow};
pub use server::ServerModel;
pub use simulation::CycleReport;
#[allow(deprecated)] // re-exported for one transition release
pub use simulation::{simulate_edge, simulate_edge_cloud};
pub use sweep::{
    validate_client_count, ComparisonPoint, CrossoverReport, SweepConfig, MAX_SWEEP_CLIENTS,
};

// Re-exported so downstream callers name one crate for scenario math.
pub use pb_device::routine::ServiceKind;

// Re-exported so consumers of the engine layer get the matching
// observability types without naming a second crate.
pub use pb_telemetry as telemetry;
pub use pb_telemetry::{Telemetry, TelemetrySnapshot};

/// Convenience prelude for examples and benches.
pub mod prelude {
    pub use crate::allocator::FillPolicy;
    pub use crate::client::{Action, ClientModel};
    pub use crate::engine::{AllocationCache, Backend, CycleEngine, ScenarioSpec, SimContext};
    pub use crate::faults::{FaultPlan, FaultStats, OutageWindow, RetryPolicy};
    pub use crate::loss::LossModel;
    pub use crate::scenario::{presets, Scenario};
    pub use crate::server::ServerModel;
    pub use crate::simulation::CycleReport;
    #[allow(deprecated)] // re-exported for one transition release
    pub use crate::simulation::{simulate_edge, simulate_edge_cloud};
    pub use crate::sweep::SweepConfig;
    pub use crate::ServiceKind;
    pub use pb_telemetry::{Telemetry, TelemetrySnapshot};

    /// A deterministic RNG for examples and tests.
    pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}
