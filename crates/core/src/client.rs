//! The client component of the simulation model.
//!
//! "Client: its tasks are to acquire and optionally process and transfer
//! data. It is initialized thanks to the power consumption in the sleep
//! state, a series of actions (active state) and their respective time and
//! power consumption, and the time between two consecutive wake-ups."

use pb_device::routine::CyclePlan;
use pb_units::{Joules, Seconds, Watts};

/// One active action of a client's wake-up routine.
#[derive(Clone, Debug, PartialEq)]
pub struct Action {
    /// Action name (used by reports and to locate the transfer step).
    pub name: String,
    /// Draw while the action runs.
    pub power: Watts,
    /// Action duration.
    pub duration: Seconds,
}

impl Action {
    /// Builds an action.
    pub fn new(name: impl Into<String>, power: Watts, duration: Seconds) -> Self {
        assert!(
            power.value() >= 0.0 && duration.value() >= 0.0,
            "action values must be non-negative"
        );
        Action { name: name.into(), power, duration }
    }

    /// Energy of one execution.
    pub fn energy(&self) -> Joules {
        self.power * self.duration
    }
}

/// A client: sleep power, action series and wake-up period.
#[derive(Clone, Debug)]
pub struct ClientModel {
    /// Draw in the sleep state.
    pub sleep_power: Watts,
    /// Active actions executed each wake-up, in order.
    pub actions: Vec<Action>,
    /// Time between two consecutive wake-ups.
    pub wake_period: Seconds,
    /// Index into `actions` of the data-transfer step, when the client
    /// uploads to a server (used by the transfer-time loss model).
    pub transfer_action: Option<usize>,
}

impl ClientModel {
    /// Builds a client, validating that the actions fit in the period.
    pub fn new(
        sleep_power: Watts,
        actions: Vec<Action>,
        wake_period: Seconds,
        transfer_action: Option<usize>,
    ) -> Self {
        let active: Seconds = actions.iter().map(|a| a.duration).sum();
        assert!(
            active.value() <= wake_period.value() + 1e-9,
            "actions ({active}) exceed the wake period ({wake_period})"
        );
        if let Some(i) = transfer_action {
            assert!(i < actions.len(), "transfer action index out of range");
        }
        ClientModel { sleep_power, actions, wake_period, transfer_action }
    }

    /// Builds a client from a device-layer cycle plan; the transfer action
    /// is located by name when `transfer_name` is given.
    pub fn from_cycle(plan: &CyclePlan, transfer_name: Option<&str>) -> Self {
        let actions: Vec<Action> =
            plan.tasks.iter().map(|t| Action::new(t.name.clone(), t.power(), t.duration)).collect();
        let transfer_action = transfer_name.and_then(|n| actions.iter().position(|a| a.name == n));
        ClientModel::new(plan.sleep_power, actions, plan.period, transfer_action)
    }

    /// Total active time per wake-up.
    pub fn active_duration(&self) -> Seconds {
        self.actions.iter().map(|a| a.duration).sum()
    }

    /// Total active energy per wake-up.
    pub fn active_energy(&self) -> Joules {
        self.actions.iter().map(Action::energy).sum()
    }

    /// Energy of one full cycle (active + sleep until the next wake-up).
    pub fn cycle_energy(&self) -> Joules {
        self.active_energy() + self.sleep_power * (self.wake_period - self.active_duration())
    }

    /// Energy of one cycle when the transfer step is stretched by `extra`
    /// (the Loss-B contention penalty). The stretched transfer displaces
    /// sleep time, so the net cost is `(tx_power − sleep_power) · extra`.
    pub fn cycle_energy_with_transfer_penalty(&self, extra: Seconds) -> Joules {
        assert!(extra.value() >= 0.0, "penalty must be non-negative");
        match self.transfer_action {
            Some(i) => {
                let tx = &self.actions[i];
                let stretched = self.active_duration() + extra;
                assert!(
                    stretched.value() <= self.wake_period.value() + 1e-9,
                    "stretched actions exceed the wake period"
                );
                self.cycle_energy() + (tx.power - self.sleep_power) * extra
            }
            None => self.cycle_energy(),
        }
    }

    /// Mean power over one cycle.
    pub fn mean_power(&self) -> Watts {
        self.cycle_energy() / self.wake_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_device::routine::RoutineBuilder;
    use pb_units::Seconds;

    fn paper_client() -> ClientModel {
        // Table II edge column, CNN scenario.
        ClientModel::new(
            Watts(0.625),
            vec![
                Action::new("collect", Watts(131.8 / 64.0), Seconds(64.0)),
                Action::new("send audio", Watts(37.3 / 15.0), Seconds(15.0)),
                Action::new("shutdown", Watts(21.0 / 9.9), Seconds(9.9)),
            ],
            Seconds(300.0),
            Some(1),
        )
    }

    #[test]
    fn cycle_energy_matches_table2() {
        let c = paper_client();
        assert!((c.cycle_energy() - Joules(322.0)).abs() < Joules(0.5));
        assert!((c.active_duration() - Seconds(88.9)).abs() < Seconds(1e-9));
        assert!((c.active_energy() - Joules(190.1)).abs() < Joules(1e-9));
    }

    #[test]
    fn from_cycle_plan_round_trips() {
        let plan = RoutineBuilder::deployed().edge_cloud_cycle(Seconds(300.0));
        let c = ClientModel::from_cycle(&plan, Some("Send audio"));
        assert_eq!(c.transfer_action, Some(1));
        assert!((c.cycle_energy() - plan.total_energy()).abs() < Joules(1e-6));
    }

    #[test]
    fn from_cycle_unknown_transfer_is_none() {
        let plan = RoutineBuilder::deployed().edge_cloud_cycle(Seconds(300.0));
        let c = ClientModel::from_cycle(&plan, Some("nope"));
        assert_eq!(c.transfer_action, None);
    }

    #[test]
    fn transfer_penalty_costs_tx_minus_sleep() {
        let c = paper_client();
        let base = c.cycle_energy();
        let with = c.cycle_energy_with_transfer_penalty(Seconds(10.0));
        let expected_delta = (Watts(37.3 / 15.0) - Watts(0.625)) * Seconds(10.0);
        assert!(((with - base) - expected_delta).abs() < Joules(1e-9));
    }

    #[test]
    fn no_transfer_action_ignores_penalty() {
        let mut c = paper_client();
        c.transfer_action = None;
        assert_eq!(c.cycle_energy_with_transfer_penalty(Seconds(10.0)), c.cycle_energy());
    }

    #[test]
    fn mean_power() {
        let c = paper_client();
        assert!((c.mean_power() - Watts(322.0 / 300.0)).abs() < Watts(0.01));
    }

    #[test]
    #[should_panic(expected = "exceed the wake period")]
    fn overfull_period_panics() {
        let _ = ClientModel::new(
            Watts(0.6),
            vec![Action::new("x", Watts(2.0), Seconds(400.0))],
            Seconds(300.0),
            None,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_transfer_index_panics() {
        let _ = ClientModel::new(Watts(0.6), vec![], Seconds(300.0), Some(0));
    }

    #[test]
    #[should_panic(expected = "stretched actions exceed")]
    fn excessive_penalty_panics() {
        let c = paper_client();
        let _ = c.cycle_energy_with_transfer_penalty(Seconds(250.0));
    }
}
