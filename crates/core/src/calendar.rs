//! Bucketed calendar queue for the discrete-event simulator.
//!
//! A binary heap costs O(log n) per scheduling operation, which dominates
//! the event loop once fleets reach 10⁵–10⁶ clients. A calendar queue
//! (R. Brown, CACM 1988) instead hashes events into "day" buckets by
//! their timestamp; when the bucket width tracks the mean inter-event
//! gap, insert and extract-min are O(1) amortized at any occupancy.
//!
//! This implementation preserves the simulator's determinism contract
//! exactly: events pop in ascending [`EventKey`] order — time via
//! `f64::total_cmp`, ties broken by the insertion sequence number — which
//! is the same total order the `BinaryHeap` it replaced produced. Golden
//! traces and fault-replay bit-identity therefore carry over unchanged
//! (pinned by the `calendar_parity` test suite).
//!
//! ## Invariants
//!
//! * Every pending event with timestamp `t` lives in bucket
//!   `vb(t) % n_buckets` where `vb(t) = ⌊t / width⌋` is its *virtual
//!   bucket* (its "day" on the calendar).
//! * `cur_day ≤ vb(t)` for every pending event, so a pop scans days
//!   forward from `cur_day` and the first day holding an event contains
//!   the global minimum (equal times always share a day, so the in-day
//!   min-scan resolves (t, seq) ties exactly).
//! * After a full rotation finds nothing (all events far in the
//!   future), a direct O(n) search locates the minimum and re-anchors
//!   `cur_day`, restoring O(1) behaviour for subsequent pops.
//! * The queue resizes — doubling buckets and halving the day width when
//!   occupancy exceeds twice the bucket count, and the reverse when it
//!   falls below an eighth — purely as a function of occupancy, never of
//!   thread count or wall-clock, so resize history is deterministic.

use std::cmp::Ordering;

/// Ordered event-queue key: simulation time, then an insertion sequence
/// number so simultaneous events pop in scheduling order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventKey {
    /// Event timestamp in simulation seconds (finite, non-negative).
    pub time: f64,
    /// Insertion sequence number; breaks ties between equal times.
    pub seq: u64,
}

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// Fewest buckets the queue will shrink to.
const MIN_BUCKETS: usize = 8;

/// A bucketed calendar priority queue over [`EventKey`]-ordered events.
///
/// Drop-in replacement for `BinaryHeap<Reverse<(EventKey, T)>>` in the
/// DES hot loop: [`push`](CalendarQueue::push) and
/// [`pop`](CalendarQueue::pop) preserve the exact (time, seq) total
/// order while running in O(1) amortized at high occupancy.
#[derive(Clone, Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<(EventKey, T)>>,
    /// Width of one calendar day in simulation seconds.
    width: f64,
    /// Day the forward scan starts from (≤ every pending event's day).
    cur_day: u64,
    len: usize,
    peak_len: usize,
    resizes: u64,
}

impl<T> CalendarQueue<T> {
    /// An empty queue with default calibration (1 s days).
    pub fn new() -> Self {
        CalendarQueue::with_hint(0, 0.0)
    }

    /// An empty queue calibrated for roughly `n_events` spread over
    /// `span` simulation seconds (the DES passes the entry count and the
    /// cycle duration). The hint only affects constants, never order.
    pub fn with_hint(n_events: usize, span: f64) -> Self {
        let n_buckets = n_events.clamp(MIN_BUCKETS, 1 << 20).next_power_of_two();
        let width = if span.is_finite() && span > 0.0 && n_events > 0 {
            (span / n_events as f64).max(f64::MIN_POSITIVE)
        } else {
            1.0
        };
        CalendarQueue {
            buckets: (0..n_buckets).map(|_| Vec::new()).collect(),
            width,
            cur_day: 0,
            len: 0,
            peak_len: 0,
            resizes: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Highest occupancy the queue has reached.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of bucket-array resizes performed so far.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Current bucket count (exposed for calibration tests).
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The day (virtual bucket index) of timestamp `time`. The cast
    /// saturates, which is monotone, so absurd times still order.
    fn day_of(&self, time: f64) -> u64 {
        (time / self.width) as u64
    }

    /// Inserts an event. O(1) amortized.
    pub fn push(&mut self, key: EventKey, value: T) {
        debug_assert!(
            key.time.is_finite() && key.time >= 0.0,
            "event times must be finite and non-negative, got {}",
            key.time
        );
        let day = self.day_of(key.time);
        // The DES never schedules into the past, but tolerate it (the
        // parity suite pushes arbitrary interleavings): rewinding the
        // scan start keeps the `cur_day ≤ vb(t)` invariant.
        if day < self.cur_day {
            self.cur_day = day;
        }
        let n = self.buckets.len();
        self.buckets[(day % n as u64) as usize].push((key, value));
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        if self.len > 2 * n {
            self.resize(n * 2, self.width / 2.0);
        }
    }

    /// Removes and returns the minimum event by (time, seq). O(1)
    /// amortized while the calendar is well calibrated.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        let mut found = None;
        for i in 0..n {
            let day = self.cur_day.saturating_add(i);
            let bucket = (day % n) as usize;
            if let Some(at) = self.min_in_day(bucket, day) {
                found = Some((bucket, at, day));
                break;
            }
        }
        let (bucket, at, day) = found.unwrap_or_else(|| self.global_min());
        self.cur_day = day;
        let (key, value) = self.buckets[bucket].swap_remove(at);
        self.len -= 1;
        if self.len * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            let n = self.buckets.len();
            self.resize(n / 2, self.width * 2.0);
        }
        Some((key, value))
    }

    /// Index of the minimum event in `bucket` whose timestamp falls on
    /// `day`, or `None` when the bucket holds only other days' events.
    fn min_in_day(&self, bucket: usize, day: u64) -> Option<usize> {
        let mut best: Option<(usize, EventKey)> = None;
        for (i, (k, _)) in self.buckets[bucket].iter().enumerate() {
            if self.day_of(k.time) == day && best.is_none_or(|(_, bk)| *k < bk) {
                best = Some((i, *k));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Direct search for the global minimum: `(bucket, index, day)`.
    /// Only reached when every pending event is beyond one full calendar
    /// rotation from `cur_day`.
    fn global_min(&self) -> (usize, usize, u64) {
        let mut best: Option<(usize, usize, EventKey)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, (k, _)) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, bk)| *k < bk) {
                    best = Some((b, i, *k));
                }
            }
        }
        let (b, i, k) = best.expect("global_min on a non-empty queue");
        (b, i, self.day_of(k.time))
    }

    /// Rebuilds the calendar with `new_n` buckets of `new_width` days,
    /// re-anchoring the scan cursor so no pending event is skipped.
    fn resize(&mut self, new_n: usize, new_width: f64) {
        if !(new_width.is_finite() && new_width > 0.0) {
            return;
        }
        self.resizes += 1;
        let old = std::mem::take(&mut self.buckets);
        self.buckets = (0..new_n).map(|_| Vec::new()).collect();
        // Start of the current day under the old calibration: every
        // pending event is at or after it, so its new day is a floor.
        let cur_time = self.cur_day as f64 * self.width;
        self.width = new_width;
        self.cur_day = (cur_time / new_width) as u64;
        for bucket in old {
            for (k, v) in bucket {
                let day = self.day_of(k.time);
                if day < self.cur_day {
                    self.cur_day = day;
                }
                self.buckets[(day % new_n as u64) as usize].push((k, v));
            }
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

/// Occupancy-only mirror of a [`CalendarQueue`]: tracks the length,
/// peak occupancy and resize history of a queue fed the same push/pop
/// sequence, without storing any events. The DES fast path replays a
/// cycle's scheduling decisions through this model so its
/// `des.queue.{occupancy,resizes}` telemetry stays bit-identical to the
/// real queue the exact event loop would have run — the grow/shrink
/// triggers and the resize-validity guard are copied verbatim from
/// [`CalendarQueue::push`]/[`CalendarQueue::pop`] (pinned by the
/// `bucket_model_mirrors_real_queue` test below).
#[derive(Clone, Debug)]
pub(crate) struct BucketModel {
    n_buckets: usize,
    /// Day width; only consulted by the resize-validity guard.
    width: f64,
    len: usize,
    peak_len: usize,
    resizes: u64,
}

impl BucketModel {
    /// Mirror of [`CalendarQueue::with_hint`]'s calibration constants.
    pub(crate) fn with_hint(n_events: usize, span: f64) -> Self {
        let n_buckets = n_events.clamp(MIN_BUCKETS, 1 << 20).next_power_of_two();
        let width = if span.is_finite() && span > 0.0 && n_events > 0 {
            (span / n_events as f64).max(f64::MIN_POSITIVE)
        } else {
            1.0
        };
        BucketModel { n_buckets, width, len: 0, peak_len: 0, resizes: 0 }
    }

    /// Mirror of the occupancy effects of [`CalendarQueue::push`].
    /// Reference implementation for the batch/sweep equivalence tests;
    /// the replay itself uses the folded forms.
    #[cfg(test)]
    pub(crate) fn push(&mut self) {
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        if self.len > 2 * self.n_buckets {
            self.resize(self.n_buckets * 2, self.width / 2.0);
        }
    }

    /// Occupancy effect of pushing `m` events into a fresh model in one
    /// batch, equivalent to `m` consecutive [`BucketModel::push`] calls:
    /// the counter climbs 1..=m, so the peak is `m` and grows fire at
    /// each crossing of `2 * n_buckets` on the way up (reachable only
    /// when `m` exceeds the `with_hint` bucket cap). A grow rejected by
    /// the width guard stays rejected for every later push — the width
    /// never changes again — so the walk stops at the first failure,
    /// exactly like the per-push sequence.
    pub(crate) fn seed_batch(&mut self, m: usize) {
        debug_assert_eq!(self.len, 0, "seed_batch on a used model");
        self.len = m;
        self.peak_len = self.peak_len.max(m);
        while self.len > 2 * self.n_buckets {
            let new_width = self.width / 2.0;
            if !(new_width.is_finite() && new_width > 0.0) {
                break;
            }
            self.resizes += 1;
            self.n_buckets *= 2;
            self.width = new_width;
        }
    }

    /// Mirror of the occupancy effects of [`CalendarQueue::pop`] on a
    /// non-empty queue. Reference implementation for the equivalence
    /// tests; the replay itself uses [`BucketModel::sweep_event`].
    #[cfg(test)]
    pub(crate) fn pop(&mut self) {
        debug_assert!(self.len > 0, "BucketModel::pop on an empty model");
        self.len -= 1;
        if self.len * 8 < self.n_buckets && self.n_buckets > MIN_BUCKETS {
            self.resize(self.n_buckets / 2, self.width * 2.0);
        }
    }

    /// One pop followed by `pushes` pushes, equivalent to
    /// [`BucketModel::pop`] then that many [`BucketModel::push`] calls,
    /// but branch-free on the push count in the common case: the grow
    /// trigger is monotone in `len`, so if the final occupancy clears
    /// the threshold no intermediate push crossed it either, and the
    /// per-push walk is only replayed when a grow actually fires.
    #[inline(always)]
    pub(crate) fn sweep_event(&mut self, pushes: u8) {
        debug_assert!(self.len > 0, "BucketModel::sweep_event on an empty model");
        self.len -= 1;
        if self.len * 8 < self.n_buckets && self.n_buckets > MIN_BUCKETS {
            self.resize(self.n_buckets / 2, self.width * 2.0);
        }
        self.len += pushes as usize;
        self.peak_len = self.peak_len.max(self.len);
        if self.len > 2 * self.n_buckets {
            // Rare: redo the pushes one at a time so intra-event grow
            // crossings count exactly like sequential push() calls.
            self.len -= pushes as usize;
            for _ in 0..pushes {
                self.len += 1;
                if self.len > 2 * self.n_buckets {
                    self.resize(self.n_buckets * 2, self.width / 2.0);
                }
            }
        }
    }

    /// How many pop-rooted events can run from the current state
    /// before a resize could possibly fire. Each event pops once and
    /// pushes at most twice, so across `e` events the occupancy stays
    /// within `[len - e, len + e]`; a shrink needs a post-pop occupancy
    /// below `n/8` and a grow a post-push occupancy above `2n`, so
    /// both are unreachable while `e` stays under the returned gap.
    /// Returns 0 when the model sits mid-cascade (occupancy already
    /// below the shrink line, waiting for the next pop to halve again).
    pub(crate) fn safe_event_budget(&self) -> usize {
        let shrink_gap = if self.n_buckets > MIN_BUCKETS {
            self.len.saturating_sub(self.n_buckets / 8)
        } else {
            usize::MAX
        };
        let grow_gap = (2 * self.n_buckets).saturating_sub(self.len);
        shrink_gap.min(grow_gap)
    }

    /// Applies a block of `popped` pops and `pushed` pushes whose
    /// interleaving the caller has proven resize-free (every event of
    /// the block fits within [`BucketModel::safe_event_budget`]): only
    /// the occupancy moves, exactly as the per-op sequence would have
    /// left it. The peak is untouched — a replayed sweep never exceeds
    /// the seeded batch peak.
    pub(crate) fn skip_events(&mut self, popped: usize, pushed: usize) {
        debug_assert!(popped <= self.len, "cannot pop more than the occupancy");
        debug_assert!(
            self.n_buckets == MIN_BUCKETS || (self.len - popped) * 8 >= self.n_buckets,
            "skip crossed the shrink threshold"
        );
        self.len = self.len - popped + pushed;
        debug_assert!(self.len <= 2 * self.n_buckets, "skip crossed the grow threshold");
        debug_assert!(self.len <= self.peak_len, "skip exceeded the seeded peak");
    }

    /// Highest occupancy the model has reached.
    pub(crate) fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Resizes the mirrored queue would have performed.
    pub(crate) fn resizes(&self) -> u64 {
        self.resizes
    }

    fn resize(&mut self, new_n: usize, new_width: f64) {
        // Same validity guard as CalendarQueue::resize: an underflowed
        // width rejects the resize without counting it.
        if !(new_width.is_finite() && new_width > 0.0) {
            return;
        }
        self.resizes += 1;
        self.n_buckets = new_n;
        self.width = new_width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn drain<T>(q: &mut CalendarQueue<T>) -> Vec<EventKey> {
        std::iter::from_fn(|| q.pop().map(|(k, _)| k)).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::with_hint(4, 100.0);
        for (seq, t) in [50.0, 3.0, 75.5, 3.0, 0.0].into_iter().enumerate() {
            q.push(EventKey { time: t, seq: seq as u64 }, ());
        }
        let keys = drain(&mut q);
        let times: Vec<f64> = keys.iter().map(|k| k.time).collect();
        assert_eq!(times, vec![0.0, 3.0, 3.0, 50.0, 75.5]);
        // The two t=3.0 events pop in insertion order.
        assert_eq!((keys[1].seq, keys[2].seq), (1, 3));
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_pop_in_seq_order_across_many_ties() {
        let mut q = CalendarQueue::with_hint(2, 1.0);
        for seq in 0..100u64 {
            q.push(EventKey { time: 42.0, seq }, seq);
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_future_events_pop_correctly() {
        // Events far beyond one calendar rotation exercise the direct
        // search and the cursor jump.
        let mut q = CalendarQueue::with_hint(4, 1.0);
        q.push(EventKey { time: 1e6, seq: 0 }, ());
        q.push(EventKey { time: 5.0, seq: 1 }, ());
        q.push(EventKey { time: 2e6, seq: 2 }, ());
        let times: Vec<f64> = drain(&mut q).iter().map(|k| k.time).collect();
        assert_eq!(times, vec![5.0, 1e6, 2e6]);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Deterministic pseudo-random interleaving against the reference
        // BinaryHeap (the structure the DES used before this module).
        let mut q = CalendarQueue::with_hint(8, 10.0);
        let mut heap: BinaryHeap<Reverse<EventKey>> = BinaryHeap::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut seq = 0u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if !state.is_multiple_of(3) || heap.is_empty() {
                let time = (state >> 16) as f64 % 977.0 / 3.0;
                let key = EventKey { time, seq };
                seq += 1;
                q.push(key, ());
                heap.push(Reverse(key));
            } else {
                let want = heap.pop().map(|Reverse(k)| k);
                let got = q.pop().map(|(k, _)| k);
                assert_eq!(got, want);
            }
        }
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(q.pop().map(|(k, _)| k), Some(want));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn resizes_grow_and_shrink_deterministically() {
        let mut q = CalendarQueue::with_hint(0, 0.0);
        assert_eq!(q.n_buckets(), MIN_BUCKETS);
        for seq in 0..1000u64 {
            q.push(EventKey { time: seq as f64 * 0.1, seq }, ());
        }
        assert!(q.n_buckets() >= 512, "grew to {}", q.n_buckets());
        let grow_resizes = q.resizes();
        assert!(grow_resizes >= 6);
        assert_eq!(q.peak_len(), 1000);
        let times: Vec<f64> = drain(&mut q).iter().map(|k| k.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(q.resizes() > grow_resizes, "shrinks on the way down");
        assert_eq!(q.n_buckets(), MIN_BUCKETS);

        // Same workload, same resize history.
        let mut q2 = CalendarQueue::with_hint(0, 0.0);
        for seq in 0..1000u64 {
            q2.push(EventKey { time: seq as f64 * 0.1, seq }, ());
        }
        assert_eq!(q2.resizes(), grow_resizes);
    }

    #[test]
    fn bucket_model_mirrors_real_queue() {
        // Feed the same deterministic push/pop interleaving to the real
        // queue and the occupancy model: peak and resize history must
        // agree at every step (the DES fast path depends on this).
        let mut q = CalendarQueue::with_hint(16, 40.0);
        let mut model = BucketModel::with_hint(16, 40.0);
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut seq = 0u64;
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state % 5 < 3 || q.is_empty() {
                let time = (state >> 16) as f64 % 997.0 / 7.0;
                q.push(EventKey { time, seq }, ());
                model.push();
                seq += 1;
            } else {
                q.pop();
                model.pop();
            }
            assert_eq!(model.peak_len(), q.peak_len());
            assert_eq!(model.resizes(), q.resizes());
        }
        while q.pop().is_some() {
            model.pop();
        }
        assert_eq!(model.peak_len(), q.peak_len());
        assert_eq!(model.resizes(), q.resizes());
    }

    #[test]
    fn seed_batch_equals_sequential_pushes() {
        // The batch seeding used by the DES fast path must leave the
        // model in exactly the state m consecutive pushes would,
        // including the grows that fire past the bucket-count cap.
        for (hint, m) in
            [(0usize, 0usize), (8, 8), (180, 180), (1000, 1000), (1 << 21, (1 << 21) + 3)]
        {
            let mut batch = BucketModel::with_hint(hint, 300.0);
            batch.seed_batch(m);
            let mut seq = BucketModel::with_hint(hint, 300.0);
            for _ in 0..m {
                seq.push();
            }
            assert_eq!(batch.peak_len(), seq.peak_len(), "peak for m={m}");
            assert_eq!(batch.resizes(), seq.resizes(), "resizes for m={m}");
            assert_eq!(batch.n_buckets, seq.n_buckets, "buckets for m={m}");
            assert_eq!(batch.len, seq.len, "len for m={m}");
            assert_eq!(batch.width.to_bits(), seq.width.to_bits(), "width for m={m}");
        }
    }

    #[test]
    fn sweep_event_equals_pop_then_pushes() {
        // Drive two models through a randomized schedule, one via
        // sweep_event and one via the primitive ops, across enough
        // occupancy swing to exercise both resize directions.
        let mut fused = BucketModel::with_hint(64, 300.0);
        let mut prim = BucketModel::with_hint(64, 300.0);
        fused.seed_batch(600);
        prim.seed_batch(600);
        let mut state = 0xDEAD_BEEF_u64;
        let mut live = 600usize;
        // Slight downward drift (avg 0.5 pushes per pop) walks the
        // occupancy from 600 to 0 through every shrink threshold.
        for _ in 0..50_000 {
            if live == 0 {
                break;
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pushes = ((state >> 33) % 2) as u8;
            fused.sweep_event(pushes);
            prim.pop();
            for _ in 0..pushes {
                prim.push();
            }
            live = live - 1 + pushes as usize;
            assert_eq!(fused.len, prim.len);
            assert_eq!(fused.n_buckets, prim.n_buckets);
            assert_eq!(fused.resizes(), prim.resizes());
            assert_eq!(fused.peak_len(), prim.peak_len());
            assert_eq!(fused.width.to_bits(), prim.width.to_bits());
        }
        assert_eq!(live, 0, "drift should drain the model");
        assert!(prim.resizes() > 0, "the walk should cross resize thresholds");
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: CalendarQueue<u8> = CalendarQueue::default();
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peak_len(), 0);
    }

    #[test]
    fn payloads_travel_with_their_keys() {
        let mut q = CalendarQueue::with_hint(3, 30.0);
        q.push(EventKey { time: 20.0, seq: 0 }, "late");
        q.push(EventKey { time: 10.0, seq: 1 }, "early");
        assert_eq!(q.pop(), Some((EventKey { time: 10.0, seq: 1 }, "early")));
        assert_eq!(q.pop(), Some((EventKey { time: 20.0, seq: 0 }, "late")));
    }
}
