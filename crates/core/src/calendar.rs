//! Bucketed calendar queue for the discrete-event simulator.
//!
//! A binary heap costs O(log n) per scheduling operation, which dominates
//! the event loop once fleets reach 10⁵–10⁶ clients. A calendar queue
//! (R. Brown, CACM 1988) instead hashes events into "day" buckets by
//! their timestamp; when the bucket width tracks the mean inter-event
//! gap, insert and extract-min are O(1) amortized at any occupancy.
//!
//! This implementation preserves the simulator's determinism contract
//! exactly: events pop in ascending [`EventKey`] order — time via
//! `f64::total_cmp`, ties broken by the insertion sequence number — which
//! is the same total order the `BinaryHeap` it replaced produced. Golden
//! traces and fault-replay bit-identity therefore carry over unchanged
//! (pinned by the `calendar_parity` test suite).
//!
//! ## Invariants
//!
//! * Every pending event with timestamp `t` lives in bucket
//!   `vb(t) % n_buckets` where `vb(t) = ⌊t / width⌋` is its *virtual
//!   bucket* (its "day" on the calendar).
//! * `cur_day ≤ vb(t)` for every pending event, so a pop scans days
//!   forward from `cur_day` and the first day holding an event contains
//!   the global minimum (equal times always share a day, so the in-day
//!   min-scan resolves (t, seq) ties exactly).
//! * After a full rotation finds nothing (all events far in the
//!   future), a direct O(n) search locates the minimum and re-anchors
//!   `cur_day`, restoring O(1) behaviour for subsequent pops.
//! * The queue resizes — doubling buckets and halving the day width when
//!   occupancy exceeds twice the bucket count, and the reverse when it
//!   falls below an eighth — purely as a function of occupancy, never of
//!   thread count or wall-clock, so resize history is deterministic.

use std::cmp::Ordering;

/// Ordered event-queue key: simulation time, then an insertion sequence
/// number so simultaneous events pop in scheduling order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventKey {
    /// Event timestamp in simulation seconds (finite, non-negative).
    pub time: f64,
    /// Insertion sequence number; breaks ties between equal times.
    pub seq: u64,
}

impl Eq for EventKey {}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.total_cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// Fewest buckets the queue will shrink to.
const MIN_BUCKETS: usize = 8;

/// A bucketed calendar priority queue over [`EventKey`]-ordered events.
///
/// Drop-in replacement for `BinaryHeap<Reverse<(EventKey, T)>>` in the
/// DES hot loop: [`push`](CalendarQueue::push) and
/// [`pop`](CalendarQueue::pop) preserve the exact (time, seq) total
/// order while running in O(1) amortized at high occupancy.
#[derive(Clone, Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<(EventKey, T)>>,
    /// Width of one calendar day in simulation seconds.
    width: f64,
    /// Day the forward scan starts from (≤ every pending event's day).
    cur_day: u64,
    len: usize,
    peak_len: usize,
    resizes: u64,
}

impl<T> CalendarQueue<T> {
    /// An empty queue with default calibration (1 s days).
    pub fn new() -> Self {
        CalendarQueue::with_hint(0, 0.0)
    }

    /// An empty queue calibrated for roughly `n_events` spread over
    /// `span` simulation seconds (the DES passes the entry count and the
    /// cycle duration). The hint only affects constants, never order.
    pub fn with_hint(n_events: usize, span: f64) -> Self {
        let n_buckets = n_events.clamp(MIN_BUCKETS, 1 << 20).next_power_of_two();
        let width = if span.is_finite() && span > 0.0 && n_events > 0 {
            (span / n_events as f64).max(f64::MIN_POSITIVE)
        } else {
            1.0
        };
        CalendarQueue {
            buckets: (0..n_buckets).map(|_| Vec::new()).collect(),
            width,
            cur_day: 0,
            len: 0,
            peak_len: 0,
            resizes: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Highest occupancy the queue has reached.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Number of bucket-array resizes performed so far.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Current bucket count (exposed for calibration tests).
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The day (virtual bucket index) of timestamp `time`. The cast
    /// saturates, which is monotone, so absurd times still order.
    fn day_of(&self, time: f64) -> u64 {
        (time / self.width) as u64
    }

    /// Inserts an event. O(1) amortized.
    pub fn push(&mut self, key: EventKey, value: T) {
        debug_assert!(
            key.time.is_finite() && key.time >= 0.0,
            "event times must be finite and non-negative, got {}",
            key.time
        );
        let day = self.day_of(key.time);
        // The DES never schedules into the past, but tolerate it (the
        // parity suite pushes arbitrary interleavings): rewinding the
        // scan start keeps the `cur_day ≤ vb(t)` invariant.
        if day < self.cur_day {
            self.cur_day = day;
        }
        let n = self.buckets.len();
        self.buckets[(day % n as u64) as usize].push((key, value));
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        if self.len > 2 * n {
            self.resize(n * 2, self.width / 2.0);
        }
    }

    /// Removes and returns the minimum event by (time, seq). O(1)
    /// amortized while the calendar is well calibrated.
    pub fn pop(&mut self) -> Option<(EventKey, T)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        let mut found = None;
        for i in 0..n {
            let day = self.cur_day.saturating_add(i);
            let bucket = (day % n) as usize;
            if let Some(at) = self.min_in_day(bucket, day) {
                found = Some((bucket, at, day));
                break;
            }
        }
        let (bucket, at, day) = found.unwrap_or_else(|| self.global_min());
        self.cur_day = day;
        let (key, value) = self.buckets[bucket].swap_remove(at);
        self.len -= 1;
        if self.len * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            let n = self.buckets.len();
            self.resize(n / 2, self.width * 2.0);
        }
        Some((key, value))
    }

    /// Index of the minimum event in `bucket` whose timestamp falls on
    /// `day`, or `None` when the bucket holds only other days' events.
    fn min_in_day(&self, bucket: usize, day: u64) -> Option<usize> {
        let mut best: Option<(usize, EventKey)> = None;
        for (i, (k, _)) in self.buckets[bucket].iter().enumerate() {
            if self.day_of(k.time) == day && best.is_none_or(|(_, bk)| *k < bk) {
                best = Some((i, *k));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Direct search for the global minimum: `(bucket, index, day)`.
    /// Only reached when every pending event is beyond one full calendar
    /// rotation from `cur_day`.
    fn global_min(&self) -> (usize, usize, u64) {
        let mut best: Option<(usize, usize, EventKey)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, (k, _)) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, bk)| *k < bk) {
                    best = Some((b, i, *k));
                }
            }
        }
        let (b, i, k) = best.expect("global_min on a non-empty queue");
        (b, i, self.day_of(k.time))
    }

    /// Rebuilds the calendar with `new_n` buckets of `new_width` days,
    /// re-anchoring the scan cursor so no pending event is skipped.
    fn resize(&mut self, new_n: usize, new_width: f64) {
        if !(new_width.is_finite() && new_width > 0.0) {
            return;
        }
        self.resizes += 1;
        let old = std::mem::take(&mut self.buckets);
        self.buckets = (0..new_n).map(|_| Vec::new()).collect();
        // Start of the current day under the old calibration: every
        // pending event is at or after it, so its new day is a floor.
        let cur_time = self.cur_day as f64 * self.width;
        self.width = new_width;
        self.cur_day = (cur_time / new_width) as u64;
        for bucket in old {
            for (k, v) in bucket {
                let day = self.day_of(k.time);
                if day < self.cur_day {
                    self.cur_day = day;
                }
                self.buckets[(day % new_n as u64) as usize].push((k, v));
            }
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn drain<T>(q: &mut CalendarQueue<T>) -> Vec<EventKey> {
        std::iter::from_fn(|| q.pop().map(|(k, _)| k)).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::with_hint(4, 100.0);
        for (seq, t) in [50.0, 3.0, 75.5, 3.0, 0.0].into_iter().enumerate() {
            q.push(EventKey { time: t, seq: seq as u64 }, ());
        }
        let keys = drain(&mut q);
        let times: Vec<f64> = keys.iter().map(|k| k.time).collect();
        assert_eq!(times, vec![0.0, 3.0, 3.0, 50.0, 75.5]);
        // The two t=3.0 events pop in insertion order.
        assert_eq!((keys[1].seq, keys[2].seq), (1, 3));
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_pop_in_seq_order_across_many_ties() {
        let mut q = CalendarQueue::with_hint(2, 1.0);
        for seq in 0..100u64 {
            q.push(EventKey { time: 42.0, seq }, seq);
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(seqs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_future_events_pop_correctly() {
        // Events far beyond one calendar rotation exercise the direct
        // search and the cursor jump.
        let mut q = CalendarQueue::with_hint(4, 1.0);
        q.push(EventKey { time: 1e6, seq: 0 }, ());
        q.push(EventKey { time: 5.0, seq: 1 }, ());
        q.push(EventKey { time: 2e6, seq: 2 }, ());
        let times: Vec<f64> = drain(&mut q).iter().map(|k| k.time).collect();
        assert_eq!(times, vec![5.0, 1e6, 2e6]);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Deterministic pseudo-random interleaving against the reference
        // BinaryHeap (the structure the DES used before this module).
        let mut q = CalendarQueue::with_hint(8, 10.0);
        let mut heap: BinaryHeap<Reverse<EventKey>> = BinaryHeap::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut seq = 0u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if !state.is_multiple_of(3) || heap.is_empty() {
                let time = (state >> 16) as f64 % 977.0 / 3.0;
                let key = EventKey { time, seq };
                seq += 1;
                q.push(key, ());
                heap.push(Reverse(key));
            } else {
                let want = heap.pop().map(|Reverse(k)| k);
                let got = q.pop().map(|(k, _)| k);
                assert_eq!(got, want);
            }
        }
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(q.pop().map(|(k, _)| k), Some(want));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn resizes_grow_and_shrink_deterministically() {
        let mut q = CalendarQueue::with_hint(0, 0.0);
        assert_eq!(q.n_buckets(), MIN_BUCKETS);
        for seq in 0..1000u64 {
            q.push(EventKey { time: seq as f64 * 0.1, seq }, ());
        }
        assert!(q.n_buckets() >= 512, "grew to {}", q.n_buckets());
        let grow_resizes = q.resizes();
        assert!(grow_resizes >= 6);
        assert_eq!(q.peak_len(), 1000);
        let times: Vec<f64> = drain(&mut q).iter().map(|k| k.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(q.resizes() > grow_resizes, "shrinks on the way down");
        assert_eq!(q.n_buckets(), MIN_BUCKETS);

        // Same workload, same resize history.
        let mut q2 = CalendarQueue::with_hint(0, 0.0);
        for seq in 0..1000u64 {
            q2.push(EventKey { time: seq as f64 * 0.1, seq }, ());
        }
        assert_eq!(q2.resizes(), grow_resizes);
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: CalendarQueue<u8> = CalendarQueue::default();
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peak_len(), 0);
    }

    #[test]
    fn payloads_travel_with_their_keys() {
        let mut q = CalendarQueue::with_hint(3, 30.0);
        q.push(EventKey { time: 20.0, seq: 0 }, "late");
        q.push(EventKey { time: 10.0, seq: 1 }, "early");
        assert_eq!(q.pop(), Some((EventKey { time: 10.0, seq: 1 }, "early")));
        assert_eq!(q.pop(), Some((EventKey { time: 20.0, seq: 0 }, "late")));
    }
}
