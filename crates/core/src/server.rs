//! The server component of the simulation model.
//!
//! "Server: its tasks are to receive data from clients and process them. …
//! It supports a maximum amount of clients allowed in parallel. Each server
//! allows their clients to start communication at specific times … all
//! synchronized in time … We will refer to these specific time windows as
//! time slots. … The shorter the time window for the server's tasks, the
//! greater the number of time slots."
//!
//! Calibration note: the clients of a slot transmit **simultaneously**, so
//! a slot's receive window is one transfer long regardless of occupancy,
//! and the service executes **once per slot** (the GPU batches the slot's
//! payloads). These two readings are forced by the paper's own numbers:
//! they reproduce the 18-slot / 630-client capacity behind Figure 7b and
//! the 116 J/client asymptote of Figure 6 exactly.

use crate::loss::TransferPenalty;
use pb_units::{Joules, Seconds, Watts};

/// A cloud server with synchronized time slots.
#[derive(Clone, Debug)]
pub struct ServerModel {
    /// Draw while idle between slots.
    pub idle_power: Watts,
    /// Draw while receiving a slot's payloads.
    pub receive_power: Watts,
    /// Base duration of a slot's receive window (one synchronized upload).
    pub receive_duration: Seconds,
    /// Draw while executing the service for a slot.
    pub process_power: Watts,
    /// Duration of the per-slot service execution.
    pub process_duration: Seconds,
    /// Maximum clients allowed in parallel in one time slot.
    pub max_parallel: usize,
    /// Cycle period shared with the clients.
    pub cycle: Seconds,
}

impl ServerModel {
    /// Validates the configuration.
    pub fn new(
        idle_power: Watts,
        receive_power: Watts,
        receive_duration: Seconds,
        process_power: Watts,
        process_duration: Seconds,
        max_parallel: usize,
        cycle: Seconds,
    ) -> Self {
        assert!(max_parallel > 0, "need at least one client per slot");
        assert!(receive_duration.value() > 0.0, "receive window must be positive");
        assert!(cycle > receive_duration + process_duration, "cycle must fit at least one slot");
        ServerModel {
            idle_power,
            receive_power,
            receive_duration,
            process_power,
            process_duration,
            max_parallel,
            cycle,
        }
    }

    /// Receive window of a slot holding `occupancy` clients under an
    /// optional transfer-time penalty.
    pub fn receive_window(&self, occupancy: usize, penalty: Option<&TransferPenalty>) -> Seconds {
        let extra = penalty.map_or(Seconds::ZERO, |p| p.extra_for(occupancy));
        self.receive_duration + extra
    }

    /// Full duration of a slot holding `occupancy` clients.
    pub fn slot_duration(&self, occupancy: usize, penalty: Option<&TransferPenalty>) -> Seconds {
        self.receive_window(occupancy, penalty) + self.process_duration
    }

    /// Number of time slots the cycle can hold. Slots are sized for the
    /// worst case (a full slot), so the count shrinks under a transfer
    /// penalty — the Figure 8b effect.
    pub fn n_slots(&self, penalty: Option<&TransferPenalty>) -> usize {
        let d = self.slot_duration(self.max_parallel, penalty);
        (self.cycle.value() / d.value()).floor() as usize
    }

    /// Maximum clients one server can host per cycle.
    pub fn capacity(&self, penalty: Option<&TransferPenalty>) -> usize {
        self.n_slots(penalty) * self.max_parallel
    }

    /// Energy of one *used* slot holding `occupancy` clients (receive +
    /// process), before any saturation penalty.
    pub fn slot_energy(&self, occupancy: usize, penalty: Option<&TransferPenalty>) -> Joules {
        assert!(occupancy > 0, "slot energy only defined for used slots");
        self.receive_power * self.receive_window(occupancy, penalty)
            + self.process_power * self.process_duration
    }

    /// Energy of a full cycle in which the server only idles.
    pub fn idle_cycle_energy(&self) -> Joules {
        self.idle_power * self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{PenaltyMode, TransferPenalty};

    /// The paper's server with the CNN service, 10 clients/slot.
    pub fn paper_server(max_parallel: usize) -> ServerModel {
        ServerModel::new(
            Watts(44.6),
            Watts(68.8),
            Seconds(15.0),
            Watts(108.0),
            Seconds(1.0),
            max_parallel,
            Seconds(300.0),
        )
    }

    #[test]
    fn eighteen_slots_per_cycle() {
        // 300 s / (15 + 1) s = 18.75 → 18 slots.
        let s = paper_server(10);
        assert_eq!(s.n_slots(None), 18);
        assert_eq!(s.capacity(None), 180);
        // The Figure 7b setting: 35 clients/slot → 630 clients/server.
        assert_eq!(paper_server(35).capacity(None), 630);
    }

    #[test]
    fn paper_example_five_slots() {
        // "given a data transfer and a model execution's duration of
        // 1 minute, a server can allow 5-time slots" in a 5-minute cycle.
        let s = ServerModel::new(
            Watts(44.6),
            Watts(68.8),
            Seconds(45.0),
            Watts(108.0),
            Seconds(15.0),
            10,
            Seconds(300.0),
        );
        assert_eq!(s.n_slots(None), 5);
    }

    #[test]
    fn slot_energy_matches_table2() {
        let s = paper_server(10);
        // Receive 15 s at 68.8 W = 1032 J plus CNN 108 J.
        assert!((s.slot_energy(10, None) - Joules(1140.0)).abs() < Joules(0.1));
    }

    #[test]
    fn full_server_cycle_energy_is_21kj() {
        // 18 slots busy 288 s, idle 12 s: the Figure 6 asymptote input.
        let s = paper_server(10);
        let busy: f64 = (0..18).map(|_| s.slot_energy(10, None).value()).sum();
        let idle = s.idle_power * (s.cycle - Seconds(18.0 * 16.0));
        let total = idle + Joules(busy);
        assert!((total - Joules(21_055.2)).abs() < Joules(1.0), "total {total}");
        // → 117 J per client at capacity.
        let per_client = total.value() / 180.0;
        assert!((per_client - 117.0).abs() < 0.3, "per-client {per_client}");
    }

    #[test]
    fn transfer_penalty_shrinks_slot_count() {
        let s = paper_server(10);
        let p =
            TransferPenalty { extra_per_client: Seconds(1.5), mode: PenaltyMode::PerExtraClient };
        // Full slot: 15 + 1.5·9 = 28.5 s receive + 1 s process = 29.5 s →
        // 10 slots → 100 clients (Figure 8b's ≈halved capacity).
        assert_eq!(s.n_slots(Some(&p)), 10);
        assert_eq!(s.capacity(Some(&p)), 100);
    }

    #[test]
    fn per_client_penalty_mode_is_stricter() {
        let s = paper_server(10);
        let p = TransferPenalty { extra_per_client: Seconds(1.5), mode: PenaltyMode::PerClient };
        // 15 + 1.5·10 = 30 s + 1 s = 31 s → 9 slots.
        assert_eq!(s.n_slots(Some(&p)), 9);
    }

    #[test]
    fn idle_cycle_energy() {
        let s = paper_server(10);
        assert!((s.idle_cycle_energy() - Joules(44.6 * 300.0)).abs() < Joules(1e-9));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_parallel_panics() {
        let _ = paper_server(0);
    }

    #[test]
    #[should_panic(expected = "used slots")]
    fn empty_slot_energy_panics() {
        let _ = paper_server(10).slot_energy(0, None);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn cycle_smaller_than_slot_panics() {
        let _ = ServerModel::new(
            Watts(44.6),
            Watts(68.8),
            Seconds(200.0),
            Watts(108.0),
            Seconds(150.0),
            10,
            Seconds(300.0),
        );
    }
}
