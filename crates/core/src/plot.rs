//! Terminal line charts for the figure regenerators.
//!
//! The regenerators print tables by default; with `--plot` they also
//! render the series as an ASCII chart so the crossover geometry of
//! Figures 6–9 is visible without leaving the terminal.

/// A multi-series ASCII line chart.
#[derive(Clone, Debug)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<(char, Vec<(f64, f64)>)>,
}

impl AsciiChart {
    /// Creates a chart canvas of `width × height` characters (axes
    /// excluded). Minimum 16 × 4.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 16 && height >= 4, "canvas too small");
        AsciiChart { width, height, series: Vec::new() }
    }

    /// Adds a series drawn with `marker`. Points need not be sorted.
    pub fn series(mut self, marker: char, points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "series must contain points");
        assert!(
            points.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
            "points must be finite"
        );
        self.series.push((marker, points));
        self
    }

    /// Data bounds across all series: `(x_min, x_max, y_min, y_max)`.
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut b = (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
        for (_, pts) in &self.series {
            for &(x, y) in pts {
                b.0 = b.0.min(x);
                b.1 = b.1.max(x);
                b.2 = b.2.min(y);
                b.3 = b.3.max(y);
            }
        }
        b
    }

    /// Renders the chart with a y-axis label column and an x-axis line.
    pub fn render(&self) -> String {
        assert!(!self.series.is_empty(), "chart has no series");
        let (x0, x1, y0, y1) = self.bounds();
        let x_span = (x1 - x0).max(f64::MIN_POSITIVE);
        let y_span = (y1 - y0).max(f64::MIN_POSITIVE);

        let mut canvas = vec![vec![' '; self.width]; self.height];
        for (marker, pts) in &self.series {
            for &(x, y) in pts {
                let cx = (((x - x0) / x_span) * (self.width - 1) as f64).round() as usize;
                let cy = (((y - y0) / y_span) * (self.height - 1) as f64).round() as usize;
                canvas[self.height - 1 - cy][cx] = *marker;
            }
        }

        let label_w = 10;
        let mut out = String::new();
        for (row, line) in canvas.iter().enumerate() {
            let frac = 1.0 - row as f64 / (self.height - 1) as f64;
            let y = y0 + frac * y_span;
            let label = if row == 0 || row == self.height - 1 || row == self.height / 2 {
                format!("{y:>9.1} ")
            } else {
                " ".repeat(label_w)
            };
            out.push_str(&label);
            out.push('|');
            out.extend(line.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(label_w));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{}{:<w$.0}{:>r$.0}\n",
            " ".repeat(label_w + 1),
            x0,
            x1,
            w = self.width / 2,
            r = self.width - self.width / 2
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(slope: f64, n: usize) -> Vec<(f64, f64)> {
        (0..n).map(|i| (i as f64, slope * i as f64)).collect()
    }

    #[test]
    fn renders_expected_dimensions() {
        let chart = AsciiChart::new(40, 10).series('*', line(1.0, 20));
        let text = chart.render();
        let lines: Vec<&str> = text.lines().collect();
        // 10 canvas rows + axis + x labels.
        assert_eq!(lines.len(), 12);
        assert!(lines[10].contains("+----"));
    }

    #[test]
    fn increasing_series_rises_left_to_right() {
        let chart = AsciiChart::new(40, 8).series('*', line(2.0, 40));
        let text = chart.render();
        let rows: Vec<&str> = text.lines().collect();
        // Topmost canvas row has its marker to the right of the bottom row's.
        let top_col = rows[0].find('*').unwrap();
        let bottom_col = rows[7].find('*').unwrap();
        assert!(top_col > bottom_col);
    }

    #[test]
    fn two_series_both_visible() {
        let chart = AsciiChart::new(30, 6)
            .series('e', line(1.0, 30))
            .series('c', (0..30).map(|i| (i as f64, 30.0 - i as f64)).collect());
        let text = chart.render();
        assert!(text.contains('e'));
        assert!(text.contains('c'));
    }

    #[test]
    fn bounds_cover_all_series() {
        let chart = AsciiChart::new(20, 5)
            .series('a', vec![(0.0, 5.0), (10.0, 8.0)])
            .series('b', vec![(-5.0, 1.0), (3.0, 20.0)]);
        assert_eq!(chart.bounds(), (-5.0, 10.0, 1.0, 20.0));
    }

    #[test]
    fn constant_series_renders() {
        // Zero spans must not divide by zero.
        let chart = AsciiChart::new(20, 5).series('*', vec![(1.0, 7.0), (1.0, 7.0)]);
        let text = chart.render();
        assert!(text.contains('*'));
    }

    #[test]
    fn axis_labels_show_extremes() {
        let chart = AsciiChart::new(40, 8).series('*', vec![(100.0, 322.0), (2000.0, 439.0)]);
        let text = chart.render();
        assert!(text.contains("439.0"));
        assert!(text.contains("322.0"));
        assert!(text.contains("100"));
        assert!(text.contains("2000"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_panics() {
        let _ = AsciiChart::new(5, 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_points_panic() {
        let _ = AsciiChart::new(20, 5).series('*', vec![(0.0, f64::NAN)]);
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn empty_chart_panics() {
        let _ = AsciiChart::new(20, 5).render();
    }
}
