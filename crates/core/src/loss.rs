//! The three loss models of Section VI-C.
//!
//! * **Loss A** — slot-saturation penalty: "A penalty when a server's time
//!   slot starts saturating with its number of clients. The limit at which
//!   the penalty starts is set at 5 clients below the maximum allowed per
//!   slot. Each additional client penalizes the whole energy slots by 10%."
//! * **Loss B** — transfer-time penalty: "A time penalty of 1.5 extra
//!   second per client for clients' data transfer time."
//! * **Loss C** — client loss: "A loss of clients at every wake-up time: we
//!   use a random Gaussian distribution (mean: 10% of the total number of
//!   clients; standard deviation: 2) to draw the number of lost clients."

use pb_device::gaussian;
use pb_units::Seconds;
use rand::Rng;

/// Loss A: multiplicative energy penalty on saturating slots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SaturationPenalty {
    /// Saturation starts this many clients below the slot maximum.
    pub margin: usize,
    /// Energy multiplier added per client above the saturation limit.
    pub factor_per_client: f64,
}

impl Default for SaturationPenalty {
    /// The paper's values: margin 5, 10 % per extra client.
    fn default() -> Self {
        SaturationPenalty { margin: 5, factor_per_client: 0.10 }
    }
}

impl SaturationPenalty {
    /// Energy multiplier for a slot of `occupancy` clients out of
    /// `max_parallel` allowed.
    pub fn multiplier(&self, occupancy: usize, max_parallel: usize) -> f64 {
        let limit = max_parallel.saturating_sub(self.margin);
        let over = occupancy.saturating_sub(limit);
        1.0 + self.factor_per_client * over as f64
    }
}

/// How the Loss-B per-client transfer penalty counts clients.
///
/// The paper's prose ("1.5 extra second per client for clients' data
/// transfer time") admits several readings, and its own figures disagree:
/// Figure 8b's numbers (≈212 J minimum server cost, 4 servers at 350
/// clients with cap 10) force [`PenaltyMode::PerExtraClient`], while
/// Figure 9's claim (3 servers suffice for 1600–1750 clients at cap 35)
/// forces the much milder [`PenaltyMode::PerSlot`]. Both are provided;
/// each figure regenerator uses the mode its source figure implies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PenaltyMode {
    /// Extra time per client **beyond the first** in the slot. This
    /// calibration reproduces the paper's reported ≈212 J minimum server
    /// cost and "4 servers at 350 clients" (Figure 8b).
    PerExtraClient,
    /// Extra time for **every** client in the slot (the literal reading).
    PerClient,
    /// One constant extra transfer time per slot: since a slot's clients
    /// transmit simultaneously, every client's transfer stretches by the
    /// same 1.5 s. Reproduces Figure 9's server counts.
    PerSlot,
}

/// Loss B: transfer-time contention penalty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferPenalty {
    /// Extra transfer time contributed per (extra) client.
    pub extra_per_client: Seconds,
    /// Counting mode.
    pub mode: PenaltyMode,
}

impl Default for TransferPenalty {
    /// The paper's value: 1.5 s, in the calibrated per-extra-client mode.
    fn default() -> Self {
        TransferPenalty { extra_per_client: Seconds(1.5), mode: PenaltyMode::PerExtraClient }
    }
}

impl TransferPenalty {
    /// Extra receive time for a slot of `occupancy` clients.
    pub fn extra_for(&self, occupancy: usize) -> Seconds {
        let n = match self.mode {
            PenaltyMode::PerExtraClient => occupancy.saturating_sub(1),
            PenaltyMode::PerClient => occupancy,
            PenaltyMode::PerSlot => usize::from(occupancy > 0),
        };
        self.extra_per_client * n as f64
    }
}

/// Loss C: random client loss per wake-up.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientLoss {
    /// Mean lost fraction of the initial client count.
    pub mean_fraction: f64,
    /// Standard deviation of the lost-client count (absolute clients).
    pub std_clients: f64,
}

impl Default for ClientLoss {
    /// The paper's values: mean 10 % of clients, σ = 2 clients.
    fn default() -> Self {
        ClientLoss { mean_fraction: 0.10, std_clients: 2.0 }
    }
}

impl ClientLoss {
    /// Draws the number of clients lost out of `n`, clamped to `[0, n]`.
    pub fn draw<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> usize {
        let raw = self.mean_fraction * n as f64 + self.std_clients * gaussian(rng);
        raw.round().clamp(0.0, n as f64) as usize
    }
}

/// Composition of the three loss models; any subset may be active.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LossModel {
    /// Loss A.
    pub saturation: Option<SaturationPenalty>,
    /// Loss B.
    pub transfer: Option<TransferPenalty>,
    /// Loss C.
    pub client_loss: Option<ClientLoss>,
}

impl LossModel {
    /// The ideal, loss-free model of Section VI-B.
    pub const NONE: LossModel = LossModel { saturation: None, transfer: None, client_loss: None };

    /// Loss A only (Figure 8a).
    pub fn saturation_only() -> Self {
        LossModel { saturation: Some(SaturationPenalty::default()), ..Self::NONE }
    }

    /// Loss B only (Figure 8b).
    pub fn transfer_only() -> Self {
        LossModel { transfer: Some(TransferPenalty::default()), ..Self::NONE }
    }

    /// Loss C only (Figure 8c).
    pub fn client_loss_only() -> Self {
        LossModel { client_loss: Some(ClientLoss::default()), ..Self::NONE }
    }

    /// All three losses with the Figure 8 calibration (cap-10 setting).
    pub fn all() -> Self {
        LossModel {
            saturation: Some(SaturationPenalty::default()),
            transfer: Some(TransferPenalty::default()),
            client_loss: Some(ClientLoss::default()),
        }
    }

    /// All three losses with the Figure 9 calibration: the transfer
    /// penalty in [`PenaltyMode::PerSlot`] mode (see [`PenaltyMode`] for
    /// why the two figures need different readings).
    pub fn fig9() -> Self {
        LossModel {
            transfer: Some(TransferPenalty {
                extra_per_client: Seconds(1.5),
                mode: PenaltyMode::PerSlot,
            }),
            ..Self::all()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn saturation_kicks_in_above_limit() {
        let p = SaturationPenalty::default();
        // Max 10: limit at 5. 5 clients → ×1.0, 6 → ×1.1, 10 → ×1.5.
        assert_eq!(p.multiplier(5, 10), 1.0);
        assert!((p.multiplier(6, 10) - 1.1).abs() < 1e-12);
        assert!((p.multiplier(10, 10) - 1.5).abs() < 1e-12);
        assert_eq!(p.multiplier(0, 10), 1.0);
    }

    #[test]
    fn saturation_with_tiny_slot_max() {
        let p = SaturationPenalty::default();
        // Max 3 < margin 5: every client is above the (zero) limit.
        assert!((p.multiplier(3, 3) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn transfer_penalty_modes() {
        let per_extra = TransferPenalty::default();
        assert_eq!(per_extra.extra_for(1), Seconds(0.0));
        assert_eq!(per_extra.extra_for(10), Seconds(13.5));
        let per_client = TransferPenalty { mode: PenaltyMode::PerClient, ..per_extra };
        assert_eq!(per_client.extra_for(10), Seconds(15.0));
        assert_eq!(per_extra.extra_for(0), Seconds(0.0));
        let per_slot = TransferPenalty { mode: PenaltyMode::PerSlot, ..per_extra };
        assert_eq!(per_slot.extra_for(10), Seconds(1.5));
        assert_eq!(per_slot.extra_for(1), Seconds(1.5));
        assert_eq!(per_slot.extra_for(0), Seconds(0.0));
    }

    #[test]
    fn client_loss_draw_is_clamped_and_centered() {
        let loss = ClientLoss::default();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200;
        let draws: Vec<usize> = (0..2000).map(|_| loss.draw(n, &mut rng)).collect();
        assert!(draws.iter().all(|&d| d <= n));
        let mean = draws.iter().sum::<usize>() as f64 / draws.len() as f64;
        // Mean should be near 10% of 200 = 20.
        assert!((mean - 20.0).abs() < 0.5, "mean {mean}");
        let std = (draws.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>()
            / draws.len() as f64)
            .sqrt();
        assert!((std - 2.0).abs() < 0.3, "std {std}");
    }

    #[test]
    fn client_loss_tiny_population() {
        let loss = ClientLoss { mean_fraction: 0.5, std_clients: 10.0 };
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let d = loss.draw(3, &mut rng);
            assert!(d <= 3);
        }
    }

    #[test]
    fn fig9_uses_per_slot_mode() {
        let m = LossModel::fig9();
        assert_eq!(m.transfer.unwrap().mode, PenaltyMode::PerSlot);
        assert!(m.saturation.is_some() && m.client_loss.is_some());
    }

    #[test]
    fn composition_constructors() {
        assert!(LossModel::NONE.saturation.is_none());
        assert!(LossModel::saturation_only().saturation.is_some());
        assert!(LossModel::saturation_only().transfer.is_none());
        assert!(LossModel::transfer_only().transfer.is_some());
        assert!(LossModel::client_loss_only().client_loss.is_some());
        let all = LossModel::all();
        assert!(all.saturation.is_some() && all.transfer.is_some() && all.client_loss.is_some());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn saturation_multiplier_is_monotone_in_severity(
                occupancy in 0usize..60,
                max_parallel in 1usize..60,
                margin in 0usize..10,
                factor in 0.0f64..0.5,
                bump in 0.0f64..0.5,
            ) {
                // More clients, a wider saturation margin (the penalty
                // starts `margin` clients *below* the slot maximum, so a
                // larger margin bites earlier) or a steeper factor never
                // *reduce* the penalty — and it never drops below the
                // loss-free multiplier.
                let p = SaturationPenalty { margin, factor_per_client: factor };
                let here = p.multiplier(occupancy, max_parallel);
                prop_assert!(here >= 1.0, "multiplier {here} below identity");
                prop_assert!(p.multiplier(occupancy + 1, max_parallel) >= here);
                let earlier = SaturationPenalty { margin: margin + 1, ..p };
                prop_assert!(earlier.multiplier(occupancy, max_parallel) >= here);
                let steeper = SaturationPenalty { factor_per_client: factor + bump, ..p };
                prop_assert!(steeper.multiplier(occupancy, max_parallel) >= here);
            }

            #[test]
            fn transfer_extra_is_monotone_and_ordered_across_modes(
                occupancy in 0usize..60,
                extra in 0.0f64..5.0,
            ) {
                // Per-slot ≤ per-extra-client ≤ per-client at every
                // occupancy, and each mode is monotone in occupancy.
                let mk = |mode| TransferPenalty { extra_per_client: Seconds(extra), mode };
                let slot = mk(PenaltyMode::PerSlot);
                let per_extra = mk(PenaltyMode::PerExtraClient);
                let per_client = mk(PenaltyMode::PerClient);
                prop_assert!(slot.extra_for(occupancy) <= per_extra.extra_for(occupancy + 1));
                prop_assert!(per_extra.extra_for(occupancy) <= per_client.extra_for(occupancy));
                for p in [slot, per_extra, per_client] {
                    prop_assert!(p.extra_for(occupancy) >= Seconds(0.0));
                    prop_assert!(p.extra_for(occupancy + 1) >= p.extra_for(occupancy));
                }
            }

            #[test]
            fn client_loss_casualties_never_exceed_the_population(
                n in 0usize..2000,
                mean_fraction in 0.0f64..1.5,
                std_clients in 0.0f64..50.0,
                seed in 0u64..500,
            ) {
                // Even with an out-of-range mean or a huge σ the draw is
                // clamped into [0, n].
                let loss = ClientLoss { mean_fraction, std_clients };
                let mut rng = StdRng::seed_from_u64(seed);
                let lost = loss.draw(n, &mut rng);
                prop_assert!(lost <= n, "lost {lost} of {n}");
            }

            #[test]
            fn zero_probability_draws_are_identity(
                n in 0usize..2000,
                seed in 0u64..500,
            ) {
                // A degenerate Loss C (mean 0, σ 0) never loses anyone —
                // the stochastic model collapses to the ideal one.
                let loss = ClientLoss { mean_fraction: 0.0, std_clients: 0.0 };
                let mut rng = StdRng::seed_from_u64(seed);
                prop_assert_eq!(loss.draw(n, &mut rng), 0);
                // And the degenerate penalties are exact identities.
                let sat = SaturationPenalty { margin: 0, factor_per_client: 0.0 };
                prop_assert_eq!(sat.multiplier(n, 1), 1.0);
                let tp = TransferPenalty {
                    extra_per_client: Seconds(0.0),
                    mode: PenaltyMode::PerClient,
                };
                prop_assert_eq!(tp.extra_for(n), Seconds(0.0));
            }
        }
    }
}
