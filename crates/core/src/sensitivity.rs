//! Sensitivity of the headline results to the calibrated constants.
//!
//! Every number in the placement analysis descends from a handful of
//! measured constants (sleep power, task energies, server powers). This
//! module perturbs them one at a time and recomputes the two headline
//! outputs — the tipping slot capacity (paper: 26) and the first
//! crossover population at cap 35 (paper: 406) — quantifying how fragile
//! the paper's conclusions are to measurement error.

use crate::allocator::FillPolicy;
use crate::client::{Action, ClientModel};
use crate::loss::LossModel;
use crate::server::ServerModel;
use crate::sweep::{analyze_crossover, tipping_slot_capacity, SweepConfig};
use pb_device::constants as k;
use pb_units::{Joules, Seconds, Watts};

/// The full parameter set of the two scenarios (defaults = the paper).
#[derive(Clone, Debug)]
pub struct ScenarioParameters {
    /// Edge sleep power.
    pub edge_sleep: Watts,
    /// Wake-up + data collection (energy, time).
    pub collect: (Joules, Seconds),
    /// Audio upload (energy, time).
    pub send_audio: (Joules, Seconds),
    /// Result upload (energy, time).
    pub send_results: (Joules, Seconds),
    /// Shutdown (energy, time).
    pub shutdown: (Joules, Seconds),
    /// On-device CNN execution (energy, time).
    pub edge_cnn: (Joules, Seconds),
    /// Cloud idle power.
    pub cloud_idle: Watts,
    /// Cloud receive power.
    pub cloud_receive: Watts,
    /// Cloud CNN execution (energy, time).
    pub cloud_cnn: (Joules, Seconds),
    /// Cycle period.
    pub cycle: Seconds,
}

impl Default for ScenarioParameters {
    fn default() -> Self {
        ScenarioParameters {
            edge_sleep: k::PI3B_SLEEP_POWER,
            collect: (k::EDGE_COLLECT_ENERGY, k::EDGE_COLLECT_TIME),
            send_audio: (k::EDGE_SEND_AUDIO_ENERGY, k::EDGE_SEND_AUDIO_TIME),
            send_results: (k::EDGE_SEND_RESULTS_ENERGY, k::EDGE_SEND_RESULTS_TIME),
            shutdown: (k::EDGE_SHUTDOWN_ENERGY, k::EDGE_SHUTDOWN_TIME),
            edge_cnn: (k::EDGE_CNN_ENERGY, k::EDGE_CNN_TIME),
            cloud_idle: k::CLOUD_IDLE_POWER,
            cloud_receive: k::CLOUD_RECEIVE_POWER,
            cloud_cnn: (k::CLOUD_CNN_ENERGY, k::CLOUD_CNN_TIME),
            cycle: k::CYCLE_PERIOD,
        }
    }
}

/// A perturbable constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parameter {
    /// Edge sleep power (W).
    EdgeSleepPower,
    /// Collection energy (J, duration unchanged).
    CollectEnergy,
    /// Audio-upload energy (J, duration unchanged).
    SendAudioEnergy,
    /// On-device CNN energy (J, duration unchanged).
    EdgeCnnEnergy,
    /// Cloud idle power (W).
    CloudIdlePower,
    /// Cloud receive power (W).
    CloudReceivePower,
    /// Cloud CNN energy (J, duration unchanged).
    CloudCnnEnergy,
}

impl Parameter {
    /// Every perturbable constant.
    pub const ALL: [Parameter; 7] = [
        Parameter::EdgeSleepPower,
        Parameter::CollectEnergy,
        Parameter::SendAudioEnergy,
        Parameter::EdgeCnnEnergy,
        Parameter::CloudIdlePower,
        Parameter::CloudReceivePower,
        Parameter::CloudCnnEnergy,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Parameter::EdgeSleepPower => "edge sleep power",
            Parameter::CollectEnergy => "collect energy",
            Parameter::SendAudioEnergy => "send-audio energy",
            Parameter::EdgeCnnEnergy => "edge CNN energy",
            Parameter::CloudIdlePower => "cloud idle power",
            Parameter::CloudReceivePower => "cloud receive power",
            Parameter::CloudCnnEnergy => "cloud CNN energy",
        }
    }
}

impl ScenarioParameters {
    /// Returns a copy with `parameter` multiplied by `factor`.
    pub fn perturbed(&self, parameter: Parameter, factor: f64) -> Self {
        assert!(factor > 0.0, "perturbation factor must be positive");
        let mut p = self.clone();
        match parameter {
            Parameter::EdgeSleepPower => p.edge_sleep *= factor,
            Parameter::CollectEnergy => p.collect.0 *= factor,
            Parameter::SendAudioEnergy => p.send_audio.0 *= factor,
            Parameter::EdgeCnnEnergy => p.edge_cnn.0 *= factor,
            Parameter::CloudIdlePower => p.cloud_idle *= factor,
            Parameter::CloudReceivePower => p.cloud_receive *= factor,
            Parameter::CloudCnnEnergy => p.cloud_cnn.0 *= factor,
        }
        p
    }

    /// Edge-scenario client (CNN service) under these parameters.
    pub fn edge_client(&self) -> ClientModel {
        let actions = vec![
            action("Wake up & Data collection", self.collect),
            action("Queen detection model (CNN)", self.edge_cnn),
            action("Send results", self.send_results),
            action("Shutdown", self.shutdown),
        ];
        ClientModel::new(self.edge_sleep, actions, self.cycle, None)
    }

    /// Edge+cloud client under these parameters.
    pub fn cloud_client(&self) -> ClientModel {
        let actions = vec![
            action("Wake up & Data collection", self.collect),
            action("Send audio", self.send_audio),
            action("Shutdown", self.shutdown),
        ];
        ClientModel::new(self.edge_sleep, actions, self.cycle, Some(1))
    }

    /// Cloud server under these parameters.
    pub fn server(&self, max_parallel: usize) -> ServerModel {
        let process_power = if self.cloud_cnn.1.value() > 0.0 {
            self.cloud_cnn.0 / self.cloud_cnn.1
        } else {
            self.cloud_idle
        };
        ServerModel::new(
            self.cloud_idle,
            self.cloud_receive,
            self.send_audio.1,
            process_power,
            self.cloud_cnn.1,
            max_parallel,
            self.cycle,
        )
    }

    /// The tipping slot capacity under these parameters.
    pub fn tipping(&self) -> Option<usize> {
        tipping_slot_capacity(&self.edge_client(), &self.cloud_client(), |cap| self.server(cap))
    }

    /// The first crossover population at `cap` clients per slot.
    pub fn crossover(&self, cap: usize) -> Option<usize> {
        let sweep = SweepConfig {
            edge_client: self.edge_client(),
            cloud_client: self.cloud_client(),
            server: self.server(cap),
            loss: LossModel::NONE,
            policy: FillPolicy::PackSlots,
            seed: 0,
        };
        analyze_crossover(&sweep.run_range(10, 2000, 1)).first_crossover
    }
}

fn action(name: &str, (e, t): (Joules, Seconds)) -> Action {
    let power = if t.value() > 0.0 { e / t } else { Watts::ZERO };
    Action::new(name, power, t)
}

/// One row of a sensitivity report.
#[derive(Clone, Copy, Debug)]
pub struct SensitivityRow {
    /// The perturbed constant.
    pub parameter: Parameter,
    /// The multiplicative perturbation applied.
    pub factor: f64,
    /// Tipping slot capacity under the perturbation.
    pub tipping: Option<usize>,
    /// First crossover at cap 35 under the perturbation.
    pub crossover_cap35: Option<usize>,
}

/// Runs the one-at-a-time sweep over all parameters and factors.
///
/// The whole (parameter × factor) grid is one parallel fan-out; each
/// cell's inner 10–2000 crossover sweep then runs inline on the worker
/// that claimed it (the pool never oversubscribes on nesting). Output
/// order is parameter-major, matching the former nested loops.
pub fn sensitivity_sweep(factors: &[f64]) -> Vec<SensitivityRow> {
    use rayon::prelude::*;

    let base = ScenarioParameters::default();
    let grid: Vec<(Parameter, f64)> = Parameter::ALL
        .iter()
        .flat_map(|&parameter| factors.iter().map(move |&factor| (parameter, factor)))
        .collect();
    grid.into_par_iter()
        .map(|(parameter, factor)| {
            let p = base.perturbed(parameter, factor);
            SensitivityRow {
                parameter,
                factor,
                tipping: p.tipping(),
                crossover_cap35: p.crossover(35),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_reproduces_headlines() {
        let base = ScenarioParameters::default();
        assert_eq!(base.tipping(), Some(26));
        let c = base.crossover(35).unwrap();
        assert!((405..=410).contains(&c), "crossover {c}");
        // Clients match the calibrated presets.
        assert!((base.edge_client().cycle_energy() - Joules(367.5)).abs() < Joules(0.2));
        assert!((base.cloud_client().cycle_energy() - Joules(322.0)).abs() < Joules(0.5));
        assert_eq!(base.server(10).n_slots(None), 18);
    }

    #[test]
    fn cheaper_cloud_idle_moves_crossover_earlier() {
        let base = ScenarioParameters::default();
        let cheap = base.perturbed(Parameter::CloudIdlePower, 0.8);
        let expensive = base.perturbed(Parameter::CloudIdlePower, 1.2);
        let c_base = base.crossover(35).unwrap();
        let c_cheap = cheap.crossover(35).unwrap();
        assert!(c_cheap < c_base, "cheap {c_cheap} vs base {c_base}");
        // +20% idle power pushes the crossover out (or, if the cloud
        // never wins, infinitely out).
        if let Some(c) = expensive.crossover(35) {
            assert!(c > c_base);
        }
        // Tipping capacity is nearly insensitive to idle power — a full
        // server barely idles (12 s of 300) — but responds strongly to the
        // receive power that dominates a full server's bill.
        assert_eq!(cheap.tipping(), Some(26));
        let cheap_rx = base.perturbed(Parameter::CloudReceivePower, 0.8);
        assert!(cheap_rx.tipping().unwrap() < 24, "tipping {:?}", cheap_rx.tipping());
    }

    #[test]
    fn pricier_edge_cnn_favors_the_cloud() {
        let base = ScenarioParameters::default();
        let pricier = base.perturbed(Parameter::EdgeCnnEnergy, 1.3);
        // A costlier on-device model makes offloading attractive sooner.
        assert!(pricier.tipping().unwrap() < base.tipping().unwrap());
        assert!(pricier.crossover(35).unwrap() < base.crossover(35).unwrap());
    }

    #[test]
    fn sweep_covers_grid_and_stays_finite() {
        let rows = sensitivity_sweep(&[0.9, 1.0, 1.1]);
        assert_eq!(rows.len(), Parameter::ALL.len() * 3);
        // Factor 1.0 rows agree with the baseline for every parameter.
        for r in rows.iter().filter(|r| r.factor == 1.0) {
            assert_eq!(r.tipping, Some(26), "{:?}", r.parameter);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            Parameter::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), Parameter::ALL.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let _ = ScenarioParameters::default().perturbed(Parameter::CloudIdlePower, 0.0);
    }
}
