//! Scenario definitions and calibrated presets.

use crate::client::ClientModel;
use crate::server::ServerModel;
use pb_device::constants as k;
use pb_device::profile::CloudServerProfile;
use pb_device::routine::{RoutineBuilder, ServiceKind};
use pb_units::Seconds;

/// The two placements compared throughout the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// The service runs on the smart beehive; no cloud server exists.
    Edge(ServiceKind),
    /// The beehive only collects and uploads; the service runs in the cloud.
    EdgeCloud(ServiceKind),
}

impl Scenario {
    /// Display name matching the paper.
    pub fn name(&self) -> String {
        match self {
            Scenario::Edge(s) => format!("Edge ({})", s.name()),
            Scenario::EdgeCloud(s) => format!("Edge+Cloud ({})", s.name()),
        }
    }

    /// The service this scenario runs.
    pub fn service(&self) -> ServiceKind {
        match self {
            Scenario::Edge(s) | Scenario::EdgeCloud(s) => *s,
        }
    }
}

/// Calibrated client/server constructors from the paper's measurements.
pub mod presets {
    use super::*;

    /// Client for the edge scenario: collect, run the model on device,
    /// send results, shut down (Table I).
    pub fn edge_client(service: ServiceKind) -> ClientModel {
        let plan = RoutineBuilder::deployed().edge_cycle(service, k::CYCLE_PERIOD);
        // "Send results" is the only upload, but it goes to the user's
        // phone, not to a slotted server — no transfer action.
        ClientModel::from_cycle(&plan, None)
    }

    /// Client for the edge+cloud scenario: collect, upload audio, shut
    /// down (Table II edge column). The "Send audio" step is the slotted
    /// transfer.
    pub fn edge_cloud_client() -> ClientModel {
        let plan = RoutineBuilder::deployed().edge_cloud_cycle(k::CYCLE_PERIOD);
        ClientModel::from_cycle(&plan, Some("Send audio"))
    }

    /// Cloud server for the edge+cloud scenario (Table II cloud column)
    /// with `max_parallel` clients allowed per time slot.
    pub fn cloud_server(service: ServiceKind, max_parallel: usize) -> ServerModel {
        let p = CloudServerProfile::i7_rtx2070();
        let exec = match service {
            ServiceKind::Svm => p.svm_exec,
            // Quantization targets the CPU-bound edge device; the GPU
            // server keeps running the f32 model at Table II cost.
            ServiceKind::Cnn | ServiceKind::CnnInt8 => p.cnn_exec,
        };
        ServerModel::new(
            p.idle_power,
            p.receive_power,
            k::EDGE_SEND_AUDIO_TIME,
            if exec.1.value() > 0.0 { exec.0 / exec.1 } else { p.idle_power },
            exec.1,
            max_parallel,
            k::CYCLE_PERIOD,
        )
    }

    /// Client with a custom wake-up period (for frequency studies beyond
    /// the paper's fixed 5-minute cycle).
    pub fn edge_cloud_client_with_period(period: Seconds) -> ClientModel {
        let plan = RoutineBuilder::deployed().edge_cloud_cycle(period);
        ClientModel::from_cycle(&plan, Some("Send audio"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_units::Joules;

    #[test]
    fn scenario_names() {
        assert_eq!(Scenario::Edge(ServiceKind::Svm).name(), "Edge (SVM)");
        assert_eq!(Scenario::EdgeCloud(ServiceKind::Cnn).name(), "Edge+Cloud (CNN)");
        assert_eq!(Scenario::Edge(ServiceKind::Cnn).service(), ServiceKind::Cnn);
    }

    #[test]
    fn edge_clients_match_table1() {
        let svm = presets::edge_client(ServiceKind::Svm);
        assert!((svm.cycle_energy() - Joules(366.3)).abs() < Joules(0.2));
        let cnn = presets::edge_client(ServiceKind::Cnn);
        assert!((cnn.cycle_energy() - Joules(367.5)).abs() < Joules(0.2));
        assert!(svm.transfer_action.is_none());
    }

    #[test]
    fn edge_cloud_client_matches_table2() {
        let c = presets::edge_cloud_client();
        assert!((c.cycle_energy() - Joules(322.0)).abs() < Joules(0.5));
        assert_eq!(c.transfer_action, Some(1));
    }

    #[test]
    fn cloud_server_slots() {
        // CNN: 16 s slots → 18 per cycle. SVM: 15.1 s slots → 19 per cycle.
        assert_eq!(presets::cloud_server(ServiceKind::Cnn, 10).n_slots(None), 18);
        assert_eq!(presets::cloud_server(ServiceKind::Svm, 10).n_slots(None), 19);
    }

    #[test]
    fn cloud_server_cnn_powers() {
        let s = presets::cloud_server(ServiceKind::Cnn, 10);
        assert!((s.process_power.value() - 108.0).abs() < 1e-9);
        assert!((s.idle_power.value() - 44.6).abs() < 0.01);
    }

    #[test]
    fn custom_period_client() {
        let c = presets::edge_cloud_client_with_period(Seconds::from_minutes(10.0));
        assert_eq!(c.wake_period, Seconds(600.0));
        // Longer sleep → more cycle energy than the 5-minute client.
        assert!(c.cycle_energy() > presets::edge_cloud_client().cycle_energy());
    }
}
