//! Monte-Carlo confidence intervals for the stochastic sweeps.
//!
//! Figures 8c/8d/9 plot *single draws* of the random client loss — the
//! paper itself notes "abnormal rises around 225 clients and 340 clients"
//! that are artifacts of one draw. This module reruns a sweep point under
//! many seeds and reports mean and a normal-approximation confidence
//! interval, separating the model's signal from the draw's noise.

use crate::engine::{Backend, CycleEngine, SimContext};
use crate::sweep::SweepConfig;
use pb_units::Joules;
use rayon::prelude::*;

/// Mean and confidence half-width of a per-client energy estimate.
#[derive(Clone, Copy, Debug)]
pub struct CiPoint {
    /// Population size.
    pub n_clients: usize,
    /// Mean edge+cloud total per client over the replications.
    pub cloud_mean: Joules,
    /// 95 % confidence half-width of the mean.
    pub cloud_ci95: Joules,
    /// Mean edge-scenario total per client.
    pub edge_mean: Joules,
    /// Replications whose draw made edge+cloud win.
    pub cloud_win_fraction: f64,
}

/// One replicate's draw: (cloud per-client J, edge per-client J, cloud won).
type Draw = (f64, f64, bool);

/// Folds one point's replicate draws (in replicate order) into a
/// [`CiPoint`]. Shared by [`replicate_point`] and [`replicate_range`] so
/// the flattened range fan-out is bit-identical to per-point calls.
fn summarize(n_clients: usize, results: &[Draw]) -> CiPoint {
    let n = results.len() as f64;
    let cloud_mean = results.iter().map(|r| r.0).sum::<f64>() / n;
    let edge_mean = results.iter().map(|r| r.1).sum::<f64>() / n;
    let var = results.iter().map(|r| (r.0 - cloud_mean).powi(2)).sum::<f64>() / (n - 1.0);
    let ci95 = 1.96 * (var / n).sqrt();
    let wins = results.iter().filter(|r| r.2).count() as f64 / n;
    CiPoint {
        n_clients,
        cloud_mean: Joules(cloud_mean),
        cloud_ci95: Joules(ci95),
        edge_mean: Joules(edge_mean),
        cloud_win_fraction: wins,
    }
}

/// Reruns `sweep` at `n_clients` under `replications` different seeds.
pub fn replicate_point(sweep: &SweepConfig, n_clients: usize, replications: usize) -> CiPoint {
    replicate_point_with(sweep, n_clients, replications, &sweep.context())
}

/// [`replicate_point`] through an explicit base context — the entry point
/// for replicating under a fault plan (build the context with
/// [`SweepConfig::context_with_faults`]) or with telemetry attached.
/// Each replicate derives its seed from the context exactly as before,
/// and carries the context's fault plan and cache.
pub fn replicate_point_with(
    sweep: &SweepConfig,
    n_clients: usize,
    replications: usize,
    ctx: &SimContext,
) -> CiPoint {
    assert!(replications >= 2, "need at least two replications");
    // One spec and one allocation cache for all replicates: only the
    // per-replicate seed varies, so most draws re-request the same
    // allocation shapes.
    let spec = sweep.spec();
    let results: Vec<Draw> = (0..replications as u64)
        .into_par_iter()
        .map(|r| {
            let p = Backend::ClosedForm.compare(&spec, n_clients, &ctx.replicate(r));
            (p.cloud.total_per_client.value(), p.edge.total_per_client.value(), p.cloud_wins())
        })
        .collect();
    summarize(n_clients, &results)
}

/// Replicates every point of a range sweep.
///
/// All (point, replicate) pairs go through **one** parallel fan-out —
/// not a serial loop over points with an inner parallel replicate — so
/// the pool sees `points × replications` items at once instead of
/// `replications` at a time. Seeding is per replicate index exactly as
/// in [`replicate_point`] (the replicate seed does not depend on the
/// point), and the point-major pair order plus the order-preserving
/// `collect` keep the output bit-identical to per-point calls.
pub fn replicate_range(
    sweep: &SweepConfig,
    from: usize,
    to: usize,
    step: usize,
    replications: usize,
) -> Vec<CiPoint> {
    replicate_range_with(sweep, from, to, step, replications, &sweep.context())
}

/// [`replicate_range`] through an explicit base context (fault plans,
/// telemetry, shared caches) — same flattened fan-out, same seeding.
pub fn replicate_range_with(
    sweep: &SweepConfig,
    from: usize,
    to: usize,
    step: usize,
    replications: usize,
    ctx: &SimContext,
) -> Vec<CiPoint> {
    assert!(step > 0, "step must be positive");
    assert!(replications >= 2, "need at least two replications");
    let points: Vec<usize> = (from..=to).step_by(step).collect();
    let spec = sweep.spec();
    let pairs: Vec<(usize, u64)> =
        points.iter().flat_map(|&n| (0..replications as u64).map(move |r| (n, r))).collect();
    let draws: Vec<Draw> = pairs
        .into_par_iter()
        .map(|(n, r)| {
            let p = Backend::ClosedForm.compare(&spec, n, &ctx.replicate(r));
            (p.cloud.total_per_client.value(), p.edge.total_per_client.value(), p.cloud_wins())
        })
        .collect();
    points
        .iter()
        .zip(draws.chunks(replications))
        .map(|(&n, results)| summarize(n, results))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::FillPolicy;
    use crate::loss::LossModel;
    use crate::scenario::presets;
    use crate::ServiceKind;

    fn sweep(loss: LossModel) -> SweepConfig {
        SweepConfig {
            edge_client: presets::edge_client(ServiceKind::Cnn),
            cloud_client: presets::edge_cloud_client(),
            server: presets::cloud_server(ServiceKind::Cnn, 10),
            loss,
            policy: FillPolicy::PackSlots,
            seed: 11,
        }
    }

    #[test]
    fn deterministic_sweep_has_zero_interval() {
        let ci = replicate_point(&sweep(LossModel::NONE), 180, 16);
        assert!(ci.cloud_ci95 < Joules(1e-9), "CI {}", ci.cloud_ci95);
        assert!((ci.cloud_mean - Joules(439.0)).abs() < Joules(1.5));
        assert_eq!(ci.cloud_win_fraction, 0.0);
    }

    #[test]
    fn random_loss_produces_a_real_interval() {
        // n = 150: active ≈ 135 ± 2, safely inside one server.
        let ci = replicate_point(&sweep(LossModel::client_loss_only()), 150, 64);
        assert!(ci.cloud_ci95 > Joules(0.01), "CI {}", ci.cloud_ci95);
        assert!(ci.cloud_ci95 < Joules(5.0), "CI {}", ci.cloud_ci95);
    }

    #[test]
    fn provisioning_boundaries_amplify_draw_noise() {
        // n = 200: the 10 %-loss draw leaves ≈180 active — exactly the
        // one-server capacity — so the server count flips draw to draw
        // and the per-client energy swings by tens of joules. This is the
        // mechanism behind the paper's "abnormal rises" in Figure 8d.
        let boundary = replicate_point(&sweep(LossModel::client_loss_only()), 200, 64);
        let interior = replicate_point(&sweep(LossModel::client_loss_only()), 150, 64);
        assert!(
            boundary.cloud_ci95 > 4.0 * interior.cloud_ci95,
            "boundary CI {} vs interior CI {}",
            boundary.cloud_ci95,
            interior.cloud_ci95
        );
    }

    #[test]
    fn more_replications_tighten_the_interval() {
        let wide = replicate_point(&sweep(LossModel::client_loss_only()), 200, 8);
        let tight = replicate_point(&sweep(LossModel::client_loss_only()), 200, 128);
        assert!(tight.cloud_ci95 < wide.cloud_ci95);
    }

    #[test]
    fn range_covers_requested_points() {
        let points = replicate_range(&sweep(LossModel::NONE), 100, 300, 100, 4);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].n_clients, 100);
        assert_eq!(points[2].n_clients, 300);
    }

    #[test]
    fn flattened_range_matches_per_point_calls_bit_identically() {
        let cfg = sweep(LossModel::client_loss_only());
        let flat = replicate_range(&cfg, 100, 400, 150, 16);
        for point in &flat {
            let solo = replicate_point(&cfg, point.n_clients, 16);
            assert_eq!(point.cloud_mean.value().to_bits(), solo.cloud_mean.value().to_bits());
            assert_eq!(point.cloud_ci95.value().to_bits(), solo.cloud_ci95.value().to_bits());
            assert_eq!(point.edge_mean.value().to_bits(), solo.edge_mean.value().to_bits());
            assert_eq!(point.cloud_win_fraction, solo.cloud_win_fraction);
        }
    }

    #[test]
    fn win_fraction_reflects_the_draw_sensitivity() {
        // Near the cap-35 crossover the winner flips draw to draw under
        // client loss; away from it the verdict is stable.
        let near = SweepConfig {
            server: presets::cloud_server(ServiceKind::Cnn, 35),
            ..sweep(LossModel::client_loss_only())
        };
        let at_200 = replicate_point(&near, 200, 32);
        assert_eq!(at_200.cloud_win_fraction, 0.0, "far below the crossover");
        let at_700 = replicate_point(&near, 700, 32);
        assert!(at_700.cloud_win_fraction > 0.5, "win fraction {}", at_700.cloud_win_fraction);
    }

    #[test]
    #[should_panic(expected = "two replications")]
    fn single_replication_panics() {
        let _ = replicate_point(&sweep(LossModel::NONE), 10, 1);
    }
}
