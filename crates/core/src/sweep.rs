//! Parameter sweeps and crossover analysis for Figures 6–9.
//!
//! A sweep compares the edge and edge+cloud scenarios over a range of
//! population sizes with a fixed server setting and loss model, exactly as
//! the paper's Figures 6, 7, 8 and 9 do, and locates the crossovers the
//! paper reports (406 clients for cap 35; always-better from 803).

use crate::allocator::FillPolicy;
use crate::client::ClientModel;
use crate::engine::{Backend, CycleEngine, ScenarioSpec, SimContext};
use crate::loss::LossModel;
use crate::server::ServerModel;
use crate::simulation::CycleReport;
use pb_units::Joules;
use rayon::prelude::*;

/// Largest population size a sweep point may evaluate.
///
/// Per-point randomness derives from the master seed as
/// `seed ^ n·GOLDEN_GAMMA` over 64-bit wrapping arithmetic, and
/// Monte-Carlo replicates offset the master seed with a 32-bit gamma.
/// Populations beyond `u32::MAX` push those derivations into the region
/// where two distinct points can silently alias the same stream, so
/// sweeps reject them up front instead of wrapping.
pub const MAX_SWEEP_CLIENTS: usize = u32::MAX as usize;

/// Checks that a population size is within the seed-derivation range
/// ([`MAX_SWEEP_CLIENTS`]); `Err` carries a human-readable message.
pub fn validate_client_count(n: usize) -> Result<(), String> {
    if n > MAX_SWEEP_CLIENTS {
        return Err(format!(
            "population {n} exceeds the seed-derivation limit of {MAX_SWEEP_CLIENTS} \
             clients per point (derived streams would alias)"
        ));
    }
    Ok(())
}

/// Everything needed to sweep the two scenarios over population sizes.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Client of the edge scenario (runs the service locally).
    pub edge_client: ClientModel,
    /// Client of the edge+cloud scenario (uploads to the server).
    pub cloud_client: ClientModel,
    /// The cloud server.
    pub server: ServerModel,
    /// Loss model applied to both scenarios.
    pub loss: LossModel,
    /// Allocation policy.
    pub policy: FillPolicy,
    /// Master seed; each population size gets an independent derived RNG,
    /// shared between the two scenarios so Loss C strikes both equally.
    pub seed: u64,
}

/// The two scenarios evaluated at one population size.
#[derive(Clone, Debug)]
pub struct ComparisonPoint {
    /// Initial number of clients.
    pub n_clients: usize,
    /// Edge-scenario report.
    pub edge: CycleReport,
    /// Edge+cloud-scenario report.
    pub cloud: CycleReport,
}

impl ComparisonPoint {
    /// Energy advantage of edge+cloud per client (positive → edge+cloud is
    /// more efficient; the paper's green region).
    pub fn advantage(&self) -> Joules {
        self.edge.total_per_client - self.cloud.total_per_client
    }

    /// True when edge+cloud wins at this point.
    pub fn cloud_wins(&self) -> bool {
        self.advantage() > Joules::ZERO
    }
}

/// Crossover structure of a sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct CrossoverReport {
    /// Smallest population at which edge+cloud first wins.
    pub first_crossover: Option<usize>,
    /// Smallest population from which edge+cloud wins at every larger
    /// sampled population.
    pub always_after: Option<usize>,
    /// Population and value of the maximum edge+cloud advantage.
    pub max_advantage: Option<(usize, Joules)>,
}

impl SweepConfig {
    /// The scenario specification this sweep evaluates.
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            edge_client: self.edge_client.clone(),
            cloud_client: self.cloud_client.clone(),
            server: self.server.clone(),
            loss: self.loss,
            policy: self.policy,
        }
    }

    /// A fresh simulation context seeded with this sweep's master seed.
    pub fn context(&self) -> SimContext {
        SimContext::new(self.seed)
    }

    /// A fresh context carrying a [`FaultPlan`](crate::faults::FaultPlan):
    /// every point evaluated through it injects the plan's outages, packet
    /// losses, slow-downs, brown-outs and sensor dropouts.
    pub fn context_with_faults(&self, plan: crate::faults::FaultPlan) -> SimContext {
        self.context().with_fault_plan(plan)
    }

    /// Evaluates both scenarios at one population size.
    pub fn compare_at(&self, n_clients: usize) -> ComparisonPoint {
        Backend::ClosedForm.compare(&self.spec(), n_clients, &self.context())
    }

    /// Runs the sweep over an explicit list of population sizes (parallel).
    pub fn run(&self, ns: &[usize]) -> Vec<ComparisonPoint> {
        self.run_with(&Backend::ClosedForm, ns)
    }

    /// Runs the sweep through an explicit backend; every point shares one
    /// [`SimContext`] (and therefore one allocation cache).
    pub fn run_with(&self, engine: &dyn CycleEngine, ns: &[usize]) -> Vec<ComparisonPoint> {
        self.run_with_context(engine, ns, &self.context())
    }

    /// Runs the sweep through an explicit backend and an explicit
    /// context — the instrumented entry point: pass a
    /// [`SimContext::with_telemetry`] context to collect cache counters,
    /// backend spans and DES traces across the whole sweep. The context's
    /// seed should equal this config's seed for reproducible results.
    pub fn run_with_context(
        &self,
        engine: &dyn CycleEngine,
        ns: &[usize],
        ctx: &SimContext,
    ) -> Vec<ComparisonPoint> {
        for &n in ns {
            if let Err(e) = validate_client_count(n) {
                panic!("{e}");
            }
        }
        let spec = self.spec();
        ns.par_iter().map(|&n| engine.compare(&spec, n, ctx)).collect()
    }

    /// Runs the sweep over an inclusive range with a step.
    pub fn run_range(&self, from: usize, to: usize, step: usize) -> Vec<ComparisonPoint> {
        self.run_range_with(&Backend::ClosedForm, from, to, step)
    }

    /// Range sweep through an explicit backend.
    pub fn run_range_with(
        &self,
        engine: &dyn CycleEngine,
        from: usize,
        to: usize,
        step: usize,
    ) -> Vec<ComparisonPoint> {
        assert!(step > 0, "step must be positive");
        let ns: Vec<usize> = (from..=to).step_by(step).collect();
        self.run_with(engine, &ns)
    }
}

/// Analyzes the crossover structure of sweep results (assumed sorted by
/// ascending population).
pub fn analyze_crossover(points: &[ComparisonPoint]) -> CrossoverReport {
    let first_crossover = points.iter().find(|p| p.cloud_wins()).map(|p| p.n_clients);
    let always_after = {
        let mut cut = None;
        for p in points.iter().rev() {
            if p.cloud_wins() {
                cut = Some(p.n_clients);
            } else {
                break;
            }
        }
        cut
    };
    // First strictly-greatest advantage: at every multiple of the server
    // capacity the advantage re-peaks at the same value (all servers full),
    // and the paper reports the first such peak (630 clients in Fig. 7b).
    let mut max_advantage: Option<(usize, Joules)> = None;
    for p in points {
        let adv = p.advantage();
        if p.cloud_wins() && max_advantage.is_none_or(|(_, best)| adv > best + Joules(1e-9)) {
            max_advantage = Some((p.n_clients, adv));
        }
    }
    CrossoverReport { first_crossover, always_after, max_advantage }
}

/// The analytic tipping point of Section VI-B: the smallest slot capacity
/// at which a *fully used* edge+cloud deployment beats the edge scenario.
/// The paper reports 26 for the CNN service.
pub fn tipping_slot_capacity(
    edge_client: &ClientModel,
    cloud_client: &ClientModel,
    server_for_capacity: impl Fn(usize) -> ServerModel,
) -> Option<usize> {
    (1..=1000).find(|&cap| {
        let server = server_for_capacity(cap);
        let n_slots = server.n_slots(None);
        let capacity = n_slots * cap;
        if capacity == 0 {
            return false;
        }
        // Full server energy per cycle.
        let busy: f64 = (0..n_slots).map(|_| server.slot_duration(cap, None).value()).sum();
        let slot_e: f64 = (0..n_slots).map(|_| server.slot_energy(cap, None).value()).sum();
        let total = server.idle_power.value() * (server.cycle.value() - busy) + slot_e;
        let per_client = total / capacity as f64;
        cloud_client.cycle_energy().value() + per_client < edge_client.cycle_energy().value()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::presets;
    use crate::ServiceKind;

    fn cnn_sweep(max_parallel: usize, loss: LossModel) -> SweepConfig {
        SweepConfig {
            edge_client: presets::edge_client(ServiceKind::Cnn),
            cloud_client: presets::edge_cloud_client(),
            server: presets::cloud_server(ServiceKind::Cnn, max_parallel),
            loss,
            policy: FillPolicy::PackSlots,
            seed: 0xF1E1D,
        }
    }

    #[test]
    fn client_counts_within_the_seed_stream_are_accepted() {
        assert!(validate_client_count(0).is_ok());
        assert!(validate_client_count(1_000_000).is_ok());
        assert!(validate_client_count(MAX_SWEEP_CLIENTS).is_ok());
        assert!(validate_client_count(MAX_SWEEP_CLIENTS + 1).is_err());
    }

    #[test]
    #[should_panic(expected = "seed-derivation limit")]
    fn oversized_populations_are_rejected_not_wrapped() {
        let sweep = cnn_sweep(35, LossModel::NONE);
        let _ = sweep.run(&[MAX_SWEEP_CLIENTS + 1]);
    }

    #[test]
    fn cap10_never_beats_edge_in_ideal_model() {
        // Figure 7a: with 10 clients per slot, the blue (edge-wins) region
        // covers the whole range.
        let sweep = cnn_sweep(10, LossModel::NONE);
        let points = sweep.run_range(100, 2000, 100);
        assert!(points.iter().all(|p| !p.cloud_wins()));
        let report = analyze_crossover(&points);
        assert_eq!(report.first_crossover, None);
        assert_eq!(report.max_advantage, None);
    }

    #[test]
    fn cap35_crosses_over_at_the_papers_406() {
        // Figure 7b: "406 clients are needed to make the edge+cloud
        // scenario more energy-efficient".
        let sweep = cnn_sweep(35, LossModel::NONE);
        let points = sweep.run_range(380, 440, 1);
        let report = analyze_crossover(&points);
        let crossover = report.first_crossover.expect("crossover must exist");
        assert!((405..=408).contains(&crossover), "crossover at {crossover}, paper reports 406");
    }

    #[test]
    fn cap35_max_advantage_at_630_clients() {
        // Figure 7b: "the maximum difference in favor of the edge+cloud
        // scenario is 12.5 joules at 630 clients".
        let sweep = cnn_sweep(35, LossModel::NONE);
        let points = sweep.run_range(100, 2000, 1);
        let report = analyze_crossover(&points);
        let (n, adv) = report.max_advantage.expect("advantage must exist");
        assert_eq!(n, 630, "max advantage at {n}, paper reports 630");
        assert!((adv - Joules(12.1)).abs() < Joules(1.0), "advantage {adv}, paper reports 12.5 J");
    }

    #[test]
    fn cap35_always_wins_from_803() {
        // Figure 7b: "from 803 clients, the edge+cloud scenario is more
        // energy-efficient … and remains this way".
        let sweep = cnn_sweep(35, LossModel::NONE);
        let points = sweep.run_range(100, 2000, 1);
        let report = analyze_crossover(&points);
        let cut = report.always_after.expect("stable region must exist");
        // Our reconstruction stabilizes at 815 (the win at 805 is isolated:
        // opening the second server's 6th slot at 806 tips briefly back);
        // the paper reports 803. Same regime, ±2% on the boundary.
        assert!((800..=820).contains(&cut), "always-after at {cut}, paper reports 803");
    }

    #[test]
    fn tipping_capacity_is_26() {
        // Section VI-B: "26 clients are the tipping point".
        let tip = tipping_slot_capacity(
            &presets::edge_client(ServiceKind::Cnn),
            &presets::edge_cloud_client(),
            |cap| presets::cloud_server(ServiceKind::Cnn, cap),
        );
        assert_eq!(tip, Some(26));
    }

    #[test]
    fn sweep_is_deterministic_and_parallel_safe() {
        let sweep = cnn_sweep(10, LossModel::all());
        let a = sweep.run_range(50, 500, 50);
        let b = sweep.run_range(50, 500, 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cloud.n_active, y.cloud.n_active);
            assert!((x.cloud.total_energy - y.cloud.total_energy).abs() < Joules(1e-9));
        }
    }

    #[test]
    fn parallel_run_matches_sequential_compare_at() {
        // The rayon fan-out shares one SimContext (and allocation cache)
        // across workers; cache hits and scheduling order must not change
        // a single bit of the result.
        let sweep = cnn_sweep(10, LossModel::all());
        let ns: Vec<usize> = (50..=500).step_by(25).collect();
        let parallel = sweep.run(&ns);
        for (p, &n) in parallel.iter().zip(&ns) {
            let sequential = sweep.compare_at(n);
            assert_eq!(p.cloud.n_active, sequential.cloud.n_active, "n = {n}");
            assert!((p.cloud.total_energy - sequential.cloud.total_energy).abs() < Joules(1e-12));
            assert!((p.edge.total_energy - sequential.edge.total_energy).abs() < Joules(1e-12));
        }
    }

    #[test]
    fn timeline_backend_reproduces_the_406_crossover() {
        // Backend choice is a runtime parameter; the state-machine backend
        // must land on the same paper headline as the closed forms.
        let sweep = cnn_sweep(35, LossModel::NONE);
        let points = sweep.run_range_with(&Backend::EventTimeline, 395, 415, 1);
        let crossover = analyze_crossover(&points).first_crossover.expect("crossover must exist");
        assert!((405..=408).contains(&crossover), "crossover at {crossover}");
    }

    #[test]
    fn loss_c_strikes_both_scenarios_equally() {
        let sweep = cnn_sweep(10, LossModel::client_loss_only());
        for p in sweep.run_range(100, 400, 100) {
            assert_eq!(p.edge.n_active, p.cloud.n_active, "n = {}", p.n_clients);
        }
    }

    #[test]
    fn fig9_losses_leave_winning_intervals() {
        // Figure 9: with all losses at cap 35 the setting becomes "a little
        // bit worse … but still has some intervals where the edge+cloud
        // scenario is more energy-efficient". The figure's server counts
        // imply the per-slot transfer reading and an efficient (balanced)
        // allocation — see `PenaltyMode` for the calibration argument.
        let ideal = cnn_sweep(35, LossModel::NONE);
        let lossy =
            SweepConfig { policy: FillPolicy::BalanceSlots, ..cnn_sweep(35, LossModel::fig9()) };
        let ideal_adv = analyze_crossover(&ideal.run_range(100, 2000, 10)).max_advantage;
        let lossy_points = lossy.run_range(100, 2000, 10);
        let lossy_report = analyze_crossover(&lossy_points);
        // Some winning interval still exists…
        assert!(lossy_points.iter().any(|p| p.cloud_wins()), "no winning interval with losses");
        // …but the best advantage is not better than the ideal one.
        let (_, ia) = ideal_adv.expect("ideal sweep must have a winning region");
        let (_, la) = lossy_report.max_advantage.expect("lossy sweep must have a winning region");
        assert!(la <= ia + Joules(1.0), "lossy {la} > ideal {ia}");
    }

    #[test]
    fn fig9_three_servers_win_between_1600_and_1750() {
        // "it is safe to assign three servers when the number of clients is
        // between 1600 and 1750, and the edge+cloud scenario will be more
        // energy-efficient than the edge scenario."
        let lossy =
            SweepConfig { policy: FillPolicy::BalanceSlots, ..cnn_sweep(35, LossModel::fig9()) };
        let points = lossy.run_range(1600, 1750, 25);
        for p in &points {
            assert_eq!(p.cloud.n_servers, 3, "n = {}", p.n_clients);
        }
        // The effect is razor-thin (≈±1 J on a 367 J baseline, exactly as
        // the near-tied curves of Figure 9 show): edge+cloud must win on
        // part of the interval and never lose by more than ~1 %.
        assert!(points.iter().any(ComparisonPoint::cloud_wins), "no win in [1600, 1750]");
        for p in &points {
            assert!(
                p.advantage() > Joules(-4.0),
                "edge+cloud loses by {} at n = {}",
                -p.advantage().value(),
                p.n_clients
            );
        }
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = cnn_sweep(10, LossModel::NONE).run_range(0, 10, 0);
    }
}
