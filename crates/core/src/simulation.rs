//! One-cycle energy simulation of the two scenarios.
//!
//! Given a client model, a server model, a loss model and a fill policy,
//! computes the energy of one wake-up cycle for a population of clients —
//! the quantity plotted in Figures 6–9.

use crate::allocator::{allocate, Allocation, FillPolicy};
use crate::client::ClientModel;
use crate::faults::FaultStats;
use crate::loss::LossModel;
use crate::server::ServerModel;
use pb_energy::EnergyLedger;
use pb_units::Joules;
use rand::Rng;

/// Energy accounting of one simulated cycle.
#[derive(Clone, Debug, PartialEq)]
pub struct CycleReport {
    /// Clients requested (before random loss).
    pub n_requested: usize,
    /// Clients that actually participated (after Loss C).
    pub n_active: usize,
    /// Servers provisioned (zero in the edge scenario).
    pub n_servers: usize,
    /// Mean edge energy per active client.
    pub edge_energy_per_client: Joules,
    /// Total edge energy across active clients.
    pub edge_energy_total: Joules,
    /// Total server energy across all provisioned servers.
    pub server_energy_total: Joules,
    /// Server energy divided by active clients (zero when no clients).
    pub server_energy_per_client: Joules,
    /// Grand total (edge + servers).
    pub total_energy: Joules,
    /// Grand total per active client (zero when no clients).
    pub total_per_client: Joules,
    /// Fault/retry/fallback accounting (all zero without a fault plan).
    pub faults: FaultStats,
}

impl CycleReport {
    pub(crate) fn from_parts(
        n_requested: usize,
        n_active: usize,
        n_servers: usize,
        edge_total: Joules,
        server_total: Joules,
    ) -> Self {
        Self::from_parts_with_faults(
            n_requested,
            n_active,
            n_servers,
            edge_total,
            server_total,
            FaultStats::default(),
        )
    }

    pub(crate) fn from_parts_with_faults(
        n_requested: usize,
        n_active: usize,
        n_servers: usize,
        edge_total: Joules,
        server_total: Joules,
        faults: FaultStats,
    ) -> Self {
        let per = |e: Joules| if n_active > 0 { e / n_active as f64 } else { Joules::ZERO };
        CycleReport {
            n_requested,
            n_active,
            n_servers,
            edge_energy_per_client: per(edge_total),
            edge_energy_total: edge_total,
            server_energy_total: server_total,
            server_energy_per_client: per(server_total),
            total_energy: edge_total + server_total,
            total_per_client: per(edge_total + server_total),
            faults,
        }
    }

    /// Renders the report as a two-row system [`EnergyLedger`] — the edge
    /// fleet and the server fleet — in the layout of the paper's scenario
    /// tables. The row energies are the report's totals carried over
    /// verbatim (not re-folded from per-instance values), so the ledger's
    /// total is bitwise equal to [`total_energy`](Self::total_energy):
    /// both are the single addition `edge + server`.
    pub fn to_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        ledger.record(
            format!("Edge clients ({} active)", self.n_active),
            self.edge_energy_total,
            pb_units::Seconds::ZERO,
        );
        ledger.record(
            format!("Cloud servers ({})", self.n_servers),
            self.server_energy_total,
            pb_units::Seconds::ZERO,
        );
        ledger
    }
}

/// Simulates one cycle of the **edge scenario**: every client runs the
/// service locally; no servers exist. Loss C (client loss) still applies —
/// a crashed hive performs nothing that cycle.
#[deprecated(
    since = "0.1.0",
    note = "use the engine layer instead — `engine::Backend::ClosedForm.evaluate_edge(&spec, n, &ctx)` \
            derives the RNG and shares the allocation cache"
)]
pub fn simulate_edge<R: Rng + ?Sized>(
    n_clients: usize,
    client: &ClientModel,
    loss: &LossModel,
    rng: &mut R,
) -> CycleReport {
    let lost = loss.client_loss.map_or(0, |l| l.draw(n_clients, rng));
    let active = n_clients - lost;
    let edge_total = client.cycle_energy() * active as f64;
    CycleReport::from_parts(n_clients, active, 0, edge_total, Joules::ZERO)
}

/// Simulates one cycle of the **edge+cloud scenario**: clients upload to
/// slotted servers which run the service. All three losses apply.
#[deprecated(
    since = "0.1.0",
    note = "use the engine layer instead — `engine::Backend::ClosedForm.evaluate(&spec, n, &ctx)` \
            derives the RNG and shares the allocation cache"
)]
pub fn simulate_edge_cloud<R: Rng + ?Sized>(
    n_clients: usize,
    client: &ClientModel,
    server: &ServerModel,
    loss: &LossModel,
    policy: FillPolicy,
    rng: &mut R,
) -> CycleReport {
    let lost = loss.client_loss.map_or(0, |l| l.draw(n_clients, rng));
    let active = n_clients - lost;
    let allocation = allocate(active, server, policy, loss.transfer.as_ref());
    let server_total = servers_cycle_energy(server, &allocation, loss);
    let edge_total = edge_cycle_energy(client, &allocation, loss);
    CycleReport::from_parts(n_clients, active, allocation.n_servers(), edge_total, server_total)
}

/// Total server-side energy of one cycle for a given allocation.
pub fn servers_cycle_energy(
    server: &ServerModel,
    allocation: &Allocation,
    loss: &LossModel,
) -> Joules {
    let penalty = loss.transfer.as_ref();
    let mut total = Joules::ZERO;
    for (count, sa) in allocation.groups() {
        // Price the shape once; every server in the group is identical, so
        // repeated addition reproduces the historical per-server sum bit
        // for bit (a single multiply would round differently).
        let mut busy = pb_units::Seconds::ZERO;
        let mut slot_energy = Joules::ZERO;
        for &k in &sa.slots {
            if k == 0 {
                continue;
            }
            busy += server.slot_duration(k, penalty);
            let mut e = server.slot_energy(k, penalty);
            if let Some(sat) = &loss.saturation {
                e *= sat.multiplier(k, server.max_parallel);
            }
            slot_energy += e;
        }
        assert!(
            busy.value() <= server.cycle.value() + 1e-9,
            "server busy time {busy} exceeds the cycle"
        );
        let per_server = server.idle_power * (server.cycle - busy) + slot_energy;
        for _ in 0..*count {
            total += per_server;
        }
    }
    total
}

/// Total edge-side energy of one cycle for a given allocation. Under Loss B
/// each client's transfer stretches with its slot's occupancy.
pub fn edge_cycle_energy(
    client: &ClientModel,
    allocation: &Allocation,
    loss: &LossModel,
) -> Joules {
    match loss.transfer.as_ref() {
        None => client.cycle_energy() * allocation.n_clients() as f64,
        Some(p) => {
            let mut total = Joules::ZERO;
            for (count, sa) in allocation.groups() {
                // Per-slot contributions priced once per distinct shape,
                // then replayed per server to keep the addition order —
                // and hence the rounding — identical to a dense loop.
                let per_slot: Vec<Joules> = sa
                    .slots
                    .iter()
                    .filter(|&&k| k > 0)
                    .map(|&k| client.cycle_energy_with_transfer_penalty(p.extra_for(k)) * k as f64)
                    .collect();
                for _ in 0..*count {
                    for &e in &per_slot {
                        total += e;
                    }
                }
            }
            total
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // the wrappers stay pinned to the paper's numbers
mod tests {
    use super::*;
    use crate::client::Action;
    use crate::loss::{ClientLoss, PenaltyMode, SaturationPenalty, TransferPenalty};
    use pb_units::{Seconds, Watts};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_client() -> ClientModel {
        ClientModel::new(
            Watts(0.625),
            vec![
                Action::new("collect", Watts(131.8 / 64.0), Seconds(64.0)),
                Action::new("send audio", Watts(37.3 / 15.0), Seconds(15.0)),
                Action::new("shutdown", Watts(21.0 / 9.9), Seconds(9.9)),
            ],
            Seconds(300.0),
            Some(1),
        )
    }

    fn edge_client_cnn() -> ClientModel {
        ClientModel::new(
            Watts(0.625),
            vec![
                Action::new("collect", Watts(131.8 / 64.0), Seconds(64.0)),
                Action::new("cnn", Watts(94.8 / 37.6), Seconds(37.6)),
                Action::new("send results", Watts(2.0), Seconds(1.5)),
                Action::new("shutdown", Watts(21.0 / 9.9), Seconds(9.9)),
            ],
            Seconds(300.0),
            None,
        )
    }

    fn paper_server(max_parallel: usize) -> ServerModel {
        ServerModel::new(
            Watts(44.6),
            Watts(68.8),
            Seconds(15.0),
            Watts(108.0),
            Seconds(1.0),
            max_parallel,
            Seconds(300.0),
        )
    }

    #[test]
    fn edge_scenario_scales_linearly() {
        let client = edge_client_cnn();
        let mut rng = StdRng::seed_from_u64(1);
        let r = simulate_edge(100, &client, &LossModel::NONE, &mut rng);
        assert_eq!(r.n_servers, 0);
        assert_eq!(r.n_active, 100);
        assert!((r.edge_energy_per_client - Joules(367.5)).abs() < Joules(0.5));
        assert!((r.total_energy - r.edge_energy_total).abs() < Joules(1e-9));
        // Per-client cost is population-independent (the Figure 6 red line).
        let r2 = simulate_edge(400, &client, &LossModel::NONE, &mut rng);
        assert!((r2.total_per_client - r.total_per_client).abs() < Joules(1e-9));
    }

    #[test]
    fn full_server_converges_to_paper_asymptote() {
        // Figure 6: "The server's overall energy consumption per client
        // converges towards 116 joules" at capacity (we compute 117.0).
        let client = paper_client();
        let server = paper_server(10);
        let mut rng = StdRng::seed_from_u64(2);
        let r = simulate_edge_cloud(
            180,
            &client,
            &server,
            &LossModel::NONE,
            FillPolicy::PackSlots,
            &mut rng,
        );
        assert_eq!(r.n_servers, 1);
        assert!(
            (r.server_energy_per_client - Joules(117.0)).abs() < Joules(0.5),
            "per-client {}",
            r.server_energy_per_client
        );
        // Edge side stays at 322 J (Figure 6's flat red line).
        assert!((r.edge_energy_per_client - Joules(322.0)).abs() < Joules(0.5));
        // Best total ≈ 438–439 J (the paper's blue asymptote).
        assert!(
            (r.total_per_client - Joules(439.0)).abs() < Joules(1.5),
            "total {}",
            r.total_per_client
        );
    }

    #[test]
    fn ledger_view_carries_totals_verbatim() {
        let client = paper_client();
        let server = paper_server(10);
        let mut rng = StdRng::seed_from_u64(7);
        let r = simulate_edge_cloud(
            180,
            &client,
            &server,
            &LossModel::NONE,
            FillPolicy::PackSlots,
            &mut rng,
        );
        let ledger = r.to_ledger();
        assert_eq!(ledger.len(), 2);
        // Totals carry over bitwise — both sides are the same single
        // `edge + server` addition, nothing is re-folded.
        assert_eq!(ledger.total_energy(), r.total_energy);
        assert_eq!(ledger.energy_of("Edge clients (180 active)"), r.edge_energy_total);
        assert_eq!(ledger.energy_of("Cloud servers (1)"), r.server_energy_total);
        assert_eq!(ledger.total_time(), Seconds::ZERO);
        // The rendered table keeps the paper's layout.
        let text = format!("{ledger}");
        assert!(text.contains("Edge clients"));
        assert!(text.contains("Total"));
    }

    #[test]
    fn single_client_pays_the_whole_server() {
        let client = paper_client();
        let server = paper_server(10);
        let mut rng = StdRng::seed_from_u64(3);
        let r = simulate_edge_cloud(
            1,
            &client,
            &server,
            &LossModel::NONE,
            FillPolicy::PackSlots,
            &mut rng,
        );
        // One slot of one client: idle 300−16 s, receive 15 s, process 1 s.
        let expected = Watts(44.6) * Seconds(284.0) + Watts(68.8) * Seconds(15.0) + Joules(108.0);
        assert!((r.server_energy_total - expected).abs() < Joules(0.5));
        assert!(r.total_per_client > Joules(13_000.0));
    }

    #[test]
    fn packing_uses_fewer_slots_and_less_energy_without_losses() {
        // Every used slot costs one receive window + one execution, so the
        // paper's pack-first policy dominates balancing in the loss-free
        // model; the two agree exactly when every slot is full.
        let client = paper_client();
        let server = paper_server(10);
        for n in [7usize, 95, 250] {
            let mut rng = StdRng::seed_from_u64(4);
            let a = simulate_edge_cloud(
                n,
                &client,
                &server,
                &LossModel::NONE,
                FillPolicy::PackSlots,
                &mut rng,
            );
            let mut rng = StdRng::seed_from_u64(4);
            let b = simulate_edge_cloud(
                n,
                &client,
                &server,
                &LossModel::NONE,
                FillPolicy::BalanceSlots,
                &mut rng,
            );
            assert!(a.total_energy <= b.total_energy + Joules(1e-6), "n = {n}");
        }
        // At exact capacity both policies produce 18 full slots.
        let mut rng = StdRng::seed_from_u64(4);
        let a = simulate_edge_cloud(
            180,
            &client,
            &server,
            &LossModel::NONE,
            FillPolicy::PackSlots,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(4);
        let b = simulate_edge_cloud(
            180,
            &client,
            &server,
            &LossModel::NONE,
            FillPolicy::BalanceSlots,
            &mut rng,
        );
        assert!((a.total_energy - b.total_energy).abs() < Joules(1e-6));
    }

    #[test]
    fn balancing_beats_packing_under_heavy_saturation() {
        // Ablation: at cap 35 with near-full servers, packing pays the
        // ×1.5 saturation multiplier on every full slot, while balancing
        // spreads occupancy to ~31 (multiplier ×1.1) at the price of two
        // extra used slots — and wins.
        let client = paper_client();
        let server = paper_server(35);
        let loss = LossModel { saturation: Some(SaturationPenalty::default()), ..LossModel::NONE };
        let n = 558; // 18 slots × 31 balanced; 15 full + one 33-slot packed
        let mut rng = StdRng::seed_from_u64(5);
        let packed =
            simulate_edge_cloud(n, &client, &server, &loss, FillPolicy::PackSlots, &mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let balanced =
            simulate_edge_cloud(n, &client, &server, &loss, FillPolicy::BalanceSlots, &mut rng);
        assert!(
            balanced.server_energy_total + Joules(1000.0) < packed.server_energy_total,
            "balanced {} vs packed {}",
            balanced.server_energy_total,
            packed.server_energy_total
        );
    }

    #[test]
    fn saturated_full_server_converges_to_fig8a_level() {
        // Figure 8a: "the cost of the server converges towards 186 joules"
        // per client under the saturation penalty.
        let client = paper_client();
        let server = paper_server(10);
        let loss = LossModel::saturation_only();
        let mut rng = StdRng::seed_from_u64(6);
        let r = simulate_edge_cloud(180, &client, &server, &loss, FillPolicy::PackSlots, &mut rng);
        // Full slots pay ×1.5: slot energy 1140 → 1710; per client:
        // (44.6·12 + 18·1710)/180 = 174 J. The paper reports 186 J — same
        // regime, within the tolerance we accept for a reconstruction.
        assert!(
            (r.server_energy_per_client - Joules(174.0)).abs() < Joules(1.0),
            "per-client {}",
            r.server_energy_per_client
        );
    }

    #[test]
    fn transfer_penalty_needs_more_servers_and_energy() {
        // Figure 8b: minimum server cost per client rises to ≈212 J.
        let client = paper_client();
        let server = paper_server(10);
        let loss = LossModel::transfer_only();
        let mut rng = StdRng::seed_from_u64(7);
        let r = simulate_edge_cloud(100, &client, &server, &loss, FillPolicy::PackSlots, &mut rng);
        assert_eq!(r.n_servers, 1); // capacity shrank to exactly 100
        let per = r.server_energy_per_client;
        assert!((per - Joules(209.0)).abs() < Joules(5.0), "per-client {per}");
        // The client side also pays for the longer transfer.
        assert!(r.edge_energy_per_client > Joules(322.0));
    }

    #[test]
    fn client_loss_reduces_active_population() {
        let client = paper_client();
        let server = paper_server(10);
        let loss = LossModel { client_loss: Some(ClientLoss::default()), ..LossModel::NONE };
        let mut rng = StdRng::seed_from_u64(8);
        let r = simulate_edge_cloud(200, &client, &server, &loss, FillPolicy::PackSlots, &mut rng);
        assert!(r.n_active < 200 && r.n_active > 160, "active {}", r.n_active);
        assert_eq!(r.n_requested, 200);
        // Energy billed for active clients only: per-client cost stays at
        // the Table II 322 J regardless of how many clients were lost.
        assert!((r.edge_energy_per_client - Joules(322.0)).abs() < Joules(0.5));
    }

    #[test]
    fn zero_clients_zero_energy() {
        let client = paper_client();
        let server = paper_server(10);
        let mut rng = StdRng::seed_from_u64(9);
        let r = simulate_edge_cloud(
            0,
            &client,
            &server,
            &LossModel::NONE,
            FillPolicy::PackSlots,
            &mut rng,
        );
        assert_eq!(r.n_servers, 0);
        assert_eq!(r.total_energy, Joules::ZERO);
        assert_eq!(r.total_per_client, Joules::ZERO);
    }

    #[test]
    fn per_extra_vs_per_client_penalty_modes_differ() {
        let client = paper_client();
        let server = paper_server(10);
        let per_extra = LossModel {
            transfer: Some(TransferPenalty {
                extra_per_client: Seconds(1.5),
                mode: PenaltyMode::PerExtraClient,
            }),
            ..LossModel::NONE
        };
        let per_client = LossModel {
            transfer: Some(TransferPenalty {
                extra_per_client: Seconds(1.5),
                mode: PenaltyMode::PerClient,
            }),
            ..LossModel::NONE
        };
        let mut rng = StdRng::seed_from_u64(10);
        let a =
            simulate_edge_cloud(90, &client, &server, &per_extra, FillPolicy::PackSlots, &mut rng);
        let mut rng = StdRng::seed_from_u64(10);
        let b =
            simulate_edge_cloud(90, &client, &server, &per_client, FillPolicy::PackSlots, &mut rng);
        assert!(b.total_energy > a.total_energy);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(48))]
            #[test]
            fn totals_are_consistent(n in 0usize..800, cap in 1usize..40, seed in 0u64..100) {
                let client = paper_client();
                let server = paper_server(cap);
                let mut rng = StdRng::seed_from_u64(seed);
                let r = simulate_edge_cloud(n, &client, &server, &LossModel::all(), FillPolicy::PackSlots, &mut rng);
                prop_assert!(r.n_active <= r.n_requested);
                prop_assert!((r.total_energy - (r.edge_energy_total + r.server_energy_total)).abs() < Joules(1e-6));
                if r.n_active > 0 {
                    let recomputed = r.total_energy / r.n_active as f64;
                    prop_assert!((recomputed - r.total_per_client).abs() < Joules(1e-6));
                }
                // More clients on one server never cheapens the server total.
                prop_assert!(r.server_energy_total.value() >= 0.0);
            }

            #[test]
            fn server_energy_monotone_in_clients(cap in 5usize..20, seed in 0u64..20) {
                let client = paper_client();
                let server = paper_server(cap);
                let mut prev = Joules::ZERO;
                for n in (0..400).step_by(37) {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let r = simulate_edge_cloud(n, &client, &server, &LossModel::NONE, FillPolicy::PackSlots, &mut rng);
                    prop_assert!(r.server_energy_total >= prev - Joules(1e-9));
                    prev = r.server_energy_total;
                }
            }
        }
    }
}
