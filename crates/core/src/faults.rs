//! Deterministic fault injection for the cycle engines.
//!
//! The paper's three loss models (Section VI-C) are *static* per-cycle
//! draws. A production orchestrator must also survive dynamic faults:
//! cloud outage windows, flaky links, degraded servers, battery
//! brown-outs and dead sensors. This module defines a seedable
//! [`FaultPlan`] carried by [`SimContext`] and threaded through all
//! three backends:
//!
//! * **closed form** — expected-value approximation: the first-attempt
//!   failure probability combines the outage's cycle fraction with the
//!   packet-loss probability, and retry/fallback counts follow the
//!   geometric retry series;
//! * **event timeline** — exact injection: every client's transfer is
//!   attempted at its slot's start time, checked against the outage
//!   window and the per-transfer loss draw, and retried on the jittered
//!   exponential backoff schedule of [`RetryPolicy`];
//! * **DES** — exact event-level injection at each client's random
//!   arrival time (see [`crate::des::simulate_async_cycle_faulted`]).
//!
//! The graceful-degradation rule is shared: a client whose radio is
//! browned out, or whose transfer exhausts the retry budget, falls back
//! to **edge CNN inference** — the sample is still processed, and the
//! energy ledger charges the edge-client cycle cost instead of the
//! upload cost. Only a sensor dropout (nothing was recorded) loses the
//! sample. Every backend therefore preserves
//! `delivered + fallbacks + sensor_dropouts == active`.
//!
//! Semantics of the individual faults:
//!
//! * an **outage window** makes every transfer attempt whose start time
//!   falls inside `[start, end)` fail (no RNG draw);
//! * **packet loss** fails an attempt outside the outage with
//!   probability `packet_loss`;
//! * a **server slow-down** stretches the server's receive and process
//!   durations by a factor ≥ 1, shrinking its slot count — provisioning
//!   and server energy both see the degraded machine;
//! * a **brown-out** kills a client's *radio* for the cycle (the battery
//!   cannot sustain the transmit burst but still powers local compute),
//!   forcing an immediate edge fallback with no retries;
//! * a **sensor dropout** means nothing was recorded: the client still
//!   runs its routine (energy unchanged) but the sample is lost.
//!
//! Determinism: all fault draws come from a dedicated stream
//! ([`SimContext::fault_rng`], the point seed XOR a dedicated gamma), so
//! the same seed produces bit-identical results at any thread count,
//! and a plan with zero probabilities reproduces the fault-free numbers.

use std::fmt;
use std::str::FromStr;

use crate::client::ClientModel;
use crate::columns::{publish_columns, CountingRng, FleetColumns};
use crate::engine::{draw_active, record_client_loss, ScenarioSpec, SimContext, GOLDEN_GAMMA};
use crate::server::ServerModel;
use crate::simulation::{edge_cycle_energy, servers_cycle_energy, CycleReport};
use crate::timeline::{client_timeline, servers_energy_from_timelines, slot_start_times};
use pb_energy::battery::Battery;
use pb_telemetry::trace::{trace_id, SpanCtx, HOP_TERMINAL};
use pb_telemetry::Telemetry;
use pb_units::{Joules, Seconds, Watts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// XOR'd into a point seed to derive its independent fault stream
/// (disjoint from the loss-draw stream by construction).
pub(crate) const FAULT_GAMMA: u64 = 0xA076_1D64_78BD_642F;

/// A cloud-unreachability window within the cycle, in seconds.
/// Half-open: an attempt at `t` fails iff `start ≤ t < end`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutageWindow {
    /// Window start (seconds from cycle start).
    pub start: Seconds,
    /// Window end (exclusive).
    pub end: Seconds,
}

impl OutageWindow {
    /// Builds a window, validating `0 ≤ start ≤ end`.
    pub fn new(start: Seconds, end: Seconds) -> Self {
        assert!(start.value() >= 0.0, "outage start must be non-negative");
        assert!(end >= start, "outage end must not precede its start");
        OutageWindow { start, end }
    }

    /// True when a transfer attempt at `t` hits the outage.
    pub fn contains(&self, t: Seconds) -> bool {
        t >= self.start && t < self.end
    }

    /// Window length.
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }
}

/// Bounded-retry policy with exponential backoff and deterministic
/// jitter drawn from the simulation's fault stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Seconds,
    /// Multiplier applied per further retry.
    pub backoff_factor: f64,
    /// Ceiling on any single backoff (the retry timeout).
    pub max_backoff: Seconds,
    /// Jitter fraction in `[0, 1)`: each backoff is scaled by a factor
    /// uniform in `[1 − jitter, 1 + jitter]`. Zero consumes no RNG.
    pub jitter: f64,
}

impl RetryPolicy {
    /// The default policy: 3 retries, 10 s base, ×2 growth, 60 s cap,
    /// ±10 % jitter.
    pub const DEFAULT: RetryPolicy = RetryPolicy {
        max_retries: 3,
        base_backoff: Seconds(10.0),
        backoff_factor: 2.0,
        max_backoff: Seconds(60.0),
        jitter: 0.1,
    };

    /// The jittered backoff before retry number `retry` (1-based).
    pub fn backoff<R: Rng + ?Sized>(&self, retry: u32, rng: &mut R) -> Seconds {
        assert!(retry >= 1, "retries are numbered from 1");
        let base = (self.base_backoff.value() * self.backoff_factor.powi(retry as i32 - 1))
            .min(self.max_backoff.value());
        if self.jitter > 0.0 {
            Seconds(base * (1.0 + self.jitter * (2.0 * rng.gen::<f64>() - 1.0)))
        } else {
            Seconds(base)
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Per-cycle probability that a client's radio browns out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Brownout {
    /// Probability that a given client browns out this cycle.
    pub probability: f64,
}

impl Brownout {
    /// Derives the brown-out probability from a battery's headroom for a
    /// transmit burst of `load` over `dt` (see [`Battery::brownout_risk`]).
    pub fn from_battery(battery: &Battery, load: Watts, dt: Seconds) -> Self {
        Brownout { probability: battery.brownout_risk(load, dt) }
    }
}

/// A deterministic, seedable fault plan for one simulation run.
///
/// Carried by [`SimContext`] (see [`SimContext::with_fault_plan`]); the
/// structural [`FaultPlan::NONE`] takes the exact fault-free code path
/// in every backend, reproducing pre-fault results bit for bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Cloud-outage window, if any.
    pub outage: Option<OutageWindow>,
    /// Per-transfer-attempt packet-loss probability in `[0, 1]`.
    pub packet_loss: f64,
    /// Server slow-down factor ≥ 1 (stretches receive and process
    /// durations, shrinking per-server capacity).
    pub slowdown: f64,
    /// Battery brown-out events, if any.
    pub brownout: Option<Brownout>,
    /// Per-client probability that its sensor recorded nothing.
    pub sensor_dropout: f64,
    /// Retry policy for failed transfers.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The fault-free plan (every backend takes its pre-fault path).
    pub const NONE: FaultPlan = FaultPlan {
        outage: None,
        packet_loss: 0.0,
        slowdown: 1.0,
        brownout: None,
        sensor_dropout: 0.0,
        retry: RetryPolicy::DEFAULT,
    };

    /// A mid-severity plan for smoke tests and the CLI `--faults mid`
    /// shorthand: a 60 s outage, 5 % packet loss, 10 % server slow-down,
    /// 2 % brown-outs and 2 % sensor dropouts under the default retries.
    pub fn mid_severity() -> Self {
        FaultPlan {
            outage: Some(OutageWindow::new(Seconds(60.0), Seconds(120.0))),
            packet_loss: 0.05,
            slowdown: 1.1,
            brownout: Some(Brownout { probability: 0.02 }),
            sensor_dropout: 0.02,
            retry: RetryPolicy::DEFAULT,
        }
    }

    /// Structurally equal to [`FaultPlan::NONE`]? Backends use this to
    /// select the exact fault-free code path. A plan with zero
    /// probabilities but, say, a customized retry policy still runs the
    /// faulted path — and must produce the same energies (tested).
    pub fn is_none(&self) -> bool {
        *self == Self::NONE
    }

    /// A cache-key fingerprint of the plan: 0 for [`FaultPlan::NONE`],
    /// a nonzero FNV-1a hash of every field otherwise, so allocations
    /// cached for one plan are never served for another (the slow-down
    /// factor changes the allocation shape).
    pub fn fingerprint(&self) -> u64 {
        if self.is_none() {
            return 0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0100_0000_01b3);
        };
        match self.outage {
            None => mix(0),
            Some(w) => {
                mix(1);
                mix(w.start.value().to_bits());
                mix(w.end.value().to_bits());
            }
        }
        mix(self.packet_loss.to_bits());
        mix(self.slowdown.to_bits());
        match self.brownout {
            None => mix(0),
            Some(b) => {
                mix(1);
                mix(b.probability.to_bits());
            }
        }
        mix(self.sensor_dropout.to_bits());
        mix(self.retry.max_retries as u64);
        mix(self.retry.base_backoff.value().to_bits());
        mix(self.retry.backoff_factor.to_bits());
        mix(self.retry.max_backoff.value().to_bits());
        mix(self.retry.jitter.to_bits());
        h | 1
    }

    /// The server as the plan degrades it: receive and process durations
    /// stretched by the slow-down factor. With factor 1 this is the
    /// input server, bit for bit.
    pub fn effective_server(&self, server: &ServerModel) -> ServerModel {
        assert!(self.slowdown >= 1.0, "slow-down factor must be ≥ 1");
        let eff = ServerModel {
            receive_duration: server.receive_duration * self.slowdown,
            process_duration: server.process_duration * self.slowdown,
            ..server.clone()
        };
        assert!(
            eff.n_slots(None) >= 1,
            "slow-down factor {} leaves no usable slot in the cycle",
            self.slowdown
        );
        eff
    }

    /// Probability that a single transfer attempt fails, combining the
    /// outage's fraction of the cycle with the packet-loss probability
    /// (the closed-form backend's expected-value approximation).
    pub fn first_attempt_failure(&self, cycle: Seconds) -> f64 {
        let p_out = self.outage.map_or(0.0, |w| {
            let overlap = (w.end.value().min(cycle.value()) - w.start.value().max(0.0)).max(0.0);
            (overlap / cycle.value()).clamp(0.0, 1.0)
        });
        let p_loss = self.packet_loss.clamp(0.0, 1.0);
        p_out + (1.0 - p_out) * p_loss
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return f.write_str("none");
        }
        let mut parts: Vec<String> = Vec::new();
        if let Some(w) = self.outage {
            parts.push(format!("outage={}..{}", w.start.value(), w.end.value()));
        }
        if self.packet_loss > 0.0 {
            parts.push(format!("loss={}", self.packet_loss));
        }
        if self.slowdown != 1.0 {
            parts.push(format!("slowdown={}", self.slowdown));
        }
        if let Some(b) = self.brownout {
            parts.push(format!("brownout={}", b.probability));
        }
        if self.sensor_dropout > 0.0 {
            parts.push(format!("dropout={}", self.sensor_dropout));
        }
        parts.push(format!("retries={}", self.retry.max_retries));
        // Non-default retry knobs must survive a Display → FromStr
        // round trip.
        let d = RetryPolicy::DEFAULT;
        if self.retry.base_backoff != d.base_backoff {
            parts.push(format!("backoff={}", self.retry.base_backoff.value()));
        }
        if self.retry.backoff_factor != d.backoff_factor {
            parts.push(format!("factor={}", self.retry.backoff_factor));
        }
        if self.retry.max_backoff != d.max_backoff {
            parts.push(format!("max-backoff={}", self.retry.max_backoff.value()));
        }
        if self.retry.jitter != d.jitter {
            parts.push(format!("jitter={}", self.retry.jitter));
        }
        f.write_str(&parts.join(","))
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    /// Parses a comma-separated spec, e.g.
    /// `outage=60..120,loss=0.05,slowdown=1.1,brownout=0.02,dropout=0.02,retries=3`.
    /// Retry knobs: `backoff=S`, `factor=F`, `max-backoff=S`, `jitter=J`.
    /// The shorthands `none` and `mid` name the canonical plans.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "none" => return Ok(FaultPlan::NONE),
            "mid" => return Ok(FaultPlan::mid_severity()),
            _ => {}
        }
        fn num(key: &str, raw: &str) -> Result<f64, String> {
            raw.parse::<f64>().map_err(|_| format!("{key}: '{raw}' is not a number"))
        }
        fn prob(key: &str, raw: &str) -> Result<f64, String> {
            let p = num(key, raw)?;
            if (0.0..=1.0).contains(&p) {
                Ok(p)
            } else {
                Err(format!("{key}: probability '{raw}' must be in [0, 1]"))
            }
        }
        let mut plan = FaultPlan::NONE;
        for token in s.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token.split_once('=').ok_or_else(|| {
                format!("fault token '{token}' is not key=value (or 'mid'/'none')")
            })?;
            match key {
                "outage" => {
                    let (a, b) = value
                        .split_once("..")
                        .ok_or_else(|| format!("outage: '{value}' must be START..END seconds"))?;
                    let (start, end) = (num("outage", a)?, num("outage", b)?);
                    if !(0.0 <= start && start <= end) {
                        return Err(format!("outage: need 0 ≤ start ≤ end, got '{value}'"));
                    }
                    plan.outage = Some(OutageWindow::new(Seconds(start), Seconds(end)));
                }
                "loss" => plan.packet_loss = prob(key, value)?,
                "slowdown" => {
                    let f = num(key, value)?;
                    if f < 1.0 {
                        return Err(format!("slowdown: factor '{value}' must be ≥ 1"));
                    }
                    plan.slowdown = f;
                }
                "brownout" => plan.brownout = Some(Brownout { probability: prob(key, value)? }),
                "dropout" => plan.sensor_dropout = prob(key, value)?,
                "retries" => {
                    plan.retry.max_retries =
                        value.parse().map_err(|_| format!("retries: '{value}' is not a count"))?;
                }
                "backoff" => plan.retry.base_backoff = Seconds(num(key, value)?),
                "factor" => plan.retry.backoff_factor = num(key, value)?,
                "max-backoff" => plan.retry.max_backoff = Seconds(num(key, value)?),
                "jitter" => plan.retry.jitter = prob(key, value)?,
                other => return Err(format!("unknown fault key '{other}'")),
            }
        }
        Ok(plan)
    }
}

/// Fault/retry/fallback accounting of one cycle report. All zero when
/// no fault plan is active. Every backend preserves
/// `delivered + fallbacks + sensor_dropouts == n_active` on the
/// edge+cloud side — fallback never loses a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transfer attempts made by uploading clients (first tries + retries).
    pub attempts: u64,
    /// Attempts beyond each uploader's first.
    pub retries: u64,
    /// Clients that fell back to edge inference (radio brown-outs plus
    /// uploaders whose retry budget ran out).
    pub fallbacks: u64,
    /// Clients whose radio browned out (a subset of `fallbacks`).
    pub brownouts: u64,
    /// Clients whose sensor recorded nothing (the sample is lost).
    pub sensor_dropouts: u64,
    /// Samples that reached the cloud.
    pub delivered: u64,
}

impl FaultStats {
    /// Samples processed somewhere — delivered to the cloud or inferred
    /// at the edge after a fallback.
    pub fn samples_processed(&self) -> u64 {
        self.delivered + self.fallbacks
    }
}

/// How a client participates in a faulted cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientClass {
    /// Attempts the upload (and may retry or fall back).
    Uploader,
    /// Radio browned out: immediate edge fallback, no attempts.
    Brownout,
    /// Sensor recorded nothing: runs its routine, uploads nothing.
    SensorDropout,
}

/// Energy of one extra transfer attempt: the transmit action re-runs,
/// displacing sleep time — `(tx_power − sleep_power) · tx_duration`.
pub(crate) fn retry_energy(client: &ClientModel) -> Joules {
    match client.transfer_action {
        Some(i) => {
            let tx = &client.actions[i];
            (tx.power - client.sleep_power) * tx.duration
        }
        None => Joules::ZERO,
    }
}

/// Causal-trace context for one uploader's transfer resolution: the
/// client's global identity plus the per-hop energy attributions only
/// the call site knows. `None` keeps [`exact_transfer`]'s event stream
/// byte-identical to the untagged historical shape; the fault draws are
/// never affected either way.
pub(crate) struct TransferTrace {
    /// Global client index (bit-stable across thread counts).
    pub client: u64,
    /// The client's trace id ([`pb_telemetry::trace::trace_id`]).
    pub trace: u64,
    /// Energy charged per extra attempt, attributed to `fault.retry`.
    pub retry_energy_j: f64,
    /// Energy of the edge fallback, attributed to `fault.fallback`.
    pub fallback_energy_j: f64,
}

/// Exact per-client transfer resolution: attempt at `t0`, fail on outage
/// or packet loss, retry on the backoff schedule. Returns the attempt
/// count and the successful attempt's start time (`None` = budget
/// exhausted, the client falls back to edge inference). Emits
/// `fault.{outage,packet_drop,retry,fallback}` trace events when the
/// telemetry sink records events; with a [`TransferTrace`] each event
/// additionally carries the causal span chain (attempt *k* is hop *k*,
/// parented on hop *k−1*) and the fallback carries its root cause,
/// attempt count and energy attribution.
pub(crate) fn exact_transfer<R: Rng + ?Sized>(
    plan: &FaultPlan,
    t0: Seconds,
    rng: &mut R,
    telemetry: &Telemetry,
    causal: Option<&TransferTrace>,
) -> (u64, Option<Seconds>) {
    let trace = telemetry.events_recording();
    let mut t = t0.value();
    let max = plan.retry.max_retries;
    let mut saw_outage = false;
    let mut saw_drop = false;
    for attempt in 0..=max {
        let in_outage = plan.outage.is_some_and(|w| w.contains(Seconds(t)));
        let dropped = !in_outage && plan.packet_loss > 0.0 && rng.gen::<f64>() < plan.packet_loss;
        if !in_outage && !dropped {
            return (u64::from(attempt) + 1, Some(Seconds(t)));
        }
        saw_outage |= in_outage;
        saw_drop |= dropped;
        if trace {
            let kind = if in_outage { "fault.outage" } else { "fault.packet_drop" };
            let fields = vec![("attempt", (attempt as usize + 1).into())];
            match causal {
                None => telemetry.event(t, kind, fields),
                Some(tc) => {
                    let mut fields = fields;
                    fields.push(("client", tc.client.into()));
                    telemetry.trace_event(t, kind, SpanCtx::attempt(tc.trace, attempt + 1), fields);
                }
            }
        }
        if attempt == max {
            break;
        }
        t += plan.retry.backoff(attempt + 1, rng).value();
        if trace {
            let fields = vec![("attempt", (attempt as usize + 2).into())];
            match causal {
                None => telemetry.event(t, "fault.retry", fields),
                Some(tc) => {
                    let mut fields = fields;
                    fields.push(("client", tc.client.into()));
                    fields.push(("energy_j", tc.retry_energy_j.into()));
                    let span = SpanCtx::attempt(tc.trace, attempt + 2);
                    telemetry.trace_event(t, "fault.retry", span, fields);
                }
            }
        }
    }
    if trace {
        let fields = vec![("t0", t0.value().into())];
        match causal {
            None => telemetry.event(t, "fault.fallback", fields),
            Some(tc) => {
                let cause = match (saw_outage, saw_drop) {
                    (true, true) => "mixed",
                    (true, false) => "outage",
                    _ => "packet-loss",
                };
                let mut fields = fields;
                fields.push(("client", tc.client.into()));
                fields.push(("attempts", u64::from(max + 1).into()));
                fields.push(("cause", cause.into()));
                fields.push(("energy_j", tc.fallback_energy_j.into()));
                let span = SpanCtx::attempt(tc.trace, max + 1).child(HOP_TERMINAL);
                telemetry.trace_event(t, "fault.fallback", span, fields);
            }
        }
    }
    (u64::from(max) + 1, None)
}

/// Emits the root `trace.sample` span for client `client` of trace
/// `trace` (`class` is the drawn [`ClientClass`] in lowercase).
pub(crate) fn emit_sample(
    telemetry: &Telemetry,
    t: f64,
    trace: u64,
    client: u64,
    class: &'static str,
) {
    telemetry.trace_event(
        t,
        "trace.sample",
        SpanCtx::root(trace),
        vec![("client", client.into()), ("class", class.into())],
    );
}

/// Emits the terminal `trace.delivered` span: the sample reached the
/// cloud on attempt `attempts`, costing `energy_j` on the client.
pub(crate) fn emit_delivered(
    telemetry: &Telemetry,
    t: f64,
    trace: u64,
    client: u64,
    attempts: u64,
    energy_j: f64,
) {
    let span = SpanCtx::attempt(trace, attempts as u32).child(HOP_TERMINAL);
    telemetry.trace_event(
        t,
        "trace.delivered",
        span,
        vec![
            ("client", client.into()),
            ("attempt", attempts.into()),
            ("energy_j", energy_j.into()),
        ],
    );
}

/// Emits the terminal `fault.fallback` span for a browned-out client:
/// no attempts were possible, the cause is the brown-out itself.
pub(crate) fn emit_brownout_fallback(
    telemetry: &Telemetry,
    t: f64,
    trace: u64,
    client: u64,
    energy_j: f64,
) {
    telemetry.trace_event(
        t,
        "fault.fallback",
        SpanCtx::root(trace).child(HOP_TERMINAL),
        vec![
            ("client", client.into()),
            ("attempts", 0u64.into()),
            ("cause", "brownout".into()),
            ("energy_j", energy_j.into()),
        ],
    );
}

/// Mirrors a cycle's fault accounting into the `fault.*` counters.
pub(crate) fn publish_stats(telemetry: &Telemetry, stats: &FaultStats) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.add_to_counter("fault.attempts", stats.attempts);
    telemetry.add_to_counter("fault.retries", stats.retries);
    telemetry.add_to_counter("fault.fallbacks", stats.fallbacks);
    telemetry.add_to_counter("fault.brownouts", stats.brownouts);
    telemetry.add_to_counter("fault.sensor_dropouts", stats.sensor_dropouts);
    telemetry.add_to_counter("fault.delivered", stats.delivered);
}

/// Shared faulted-cycle preamble: loss-C draw, the columnar population
/// state, the degraded server and its (fingerprint-keyed) allocation.
struct FaultedSetup {
    active: usize,
    columns: FleetColumns,
    brownouts: usize,
    sensor_dropouts: usize,
    eff: ServerModel,
    allocation: std::sync::Arc<crate::allocator::Allocation>,
    frng: StdRng,
}

fn setup(
    spec: &ScenarioSpec,
    n_clients: usize,
    ctx: &SimContext,
    plan: &FaultPlan,
) -> FaultedSetup {
    let mut rng = ctx.point_rng(n_clients as u64);
    let active = draw_active(&spec.loss, n_clients, &mut rng);
    record_client_loss(ctx, n_clients, active);
    let mut frng = ctx.fault_rng(n_clients as u64);
    let columns = FleetColumns::draw(plan, active, &mut frng);
    let (brownouts, sensor_dropouts) = columns.class_counts();
    publish_columns(ctx.telemetry(), &columns);
    let eff = plan.effective_server(&spec.server);
    let allocation = ctx.cache().get_or_allocate_for(
        active,
        &eff,
        spec.policy,
        spec.loss.transfer.as_ref(),
        plan.fingerprint(),
    );
    FaultedSetup { active, columns, brownouts, sensor_dropouts, eff, allocation, frng }
}

/// Closed-form backend under a fault plan: exact brown-out / sensor
/// draws, expected-value retry and fallback mass from the geometric
/// retry series. Server provisioning is pre-fault: the server cannot
/// know which clients will fail, so it runs its full slot schedule.
pub(crate) fn closed_form_with_faults(
    spec: &ScenarioSpec,
    n_clients: usize,
    ctx: &SimContext,
) -> CycleReport {
    let _span = ctx.telemetry().span("engine.cycle.closed_form");
    let plan = ctx.fault_plan();
    let s = setup(spec, n_clients, ctx, plan);
    let uploaders = s.active - s.brownouts - s.sensor_dropouts;

    let server_total = servers_cycle_energy(&s.eff, &s.allocation, &spec.loss);
    let base_cloud = edge_cycle_energy(&spec.cloud_client, &s.allocation, &spec.loss);
    let per_cloud = if s.active > 0 { base_cloud / s.active as f64 } else { Joules::ZERO };

    let p1 = plan.first_attempt_failure(spec.server.cycle);
    let max = plan.retry.max_retries;
    let p_exhaust = p1.powi(max as i32 + 1);
    let expected_retries_per_uploader: f64 = (1..=max).map(|k| p1.powi(k as i32)).sum();
    let tx_fallbacks = uploaders as f64 * p_exhaust;
    let total_retries = uploaders as f64 * expected_retries_per_uploader;
    let fallback_mass = s.brownouts as f64 + tx_fallbacks;

    let fallback_cost = spec.edge_client.cycle_energy();
    let edge_total = base_cloud
        + (fallback_cost - per_cloud) * fallback_mass
        + retry_energy(&spec.cloud_client) * total_retries;

    let fallbacks = s.brownouts as u64 + tx_fallbacks.round() as u64;
    let stats = FaultStats {
        attempts: uploaders as u64 + total_retries.round() as u64,
        retries: total_retries.round() as u64,
        fallbacks,
        brownouts: s.brownouts as u64,
        sensor_dropouts: s.sensor_dropouts as u64,
        delivered: (s.active as u64).saturating_sub(fallbacks + s.sensor_dropouts as u64),
    };
    publish_stats(ctx.telemetry(), &stats);
    CycleReport::from_parts_with_faults(
        n_clients,
        s.active,
        s.allocation.n_servers(),
        edge_total,
        server_total,
        stats,
    )
}

/// Event-timeline backend under a fault plan: every client's transfer is
/// attempted at its slot's scheduled start time and resolved exactly
/// through [`exact_transfer`]. Fault outcomes are drawn in
/// (server, slot, client) order from the point's fault stream.
pub(crate) fn timeline_with_faults(
    spec: &ScenarioSpec,
    n_clients: usize,
    ctx: &SimContext,
) -> CycleReport {
    let _span = ctx.telemetry().span("engine.cycle.timeline");
    let plan = ctx.fault_plan();
    let mut s = setup(spec, n_clients, ctx, plan);

    let server_total = servers_energy_from_timelines(&s.eff, &s.allocation, &spec.loss);
    let fallback_cost = spec.edge_client.cycle_energy();
    let retry_cost = retry_energy(&spec.cloud_client);
    let telemetry = ctx.telemetry();
    // Causal tagging is opt-in (`Telemetry::with_tracing`): without it
    // the event stream stays byte-identical to the untagged shape.
    let causal = telemetry.tracing_active();
    let trace_seed = ctx.point_seed(n_clients as u64);

    let mut stats = FaultStats {
        brownouts: s.brownouts as u64,
        sensor_dropouts: s.sensor_dropouts as u64,
        fallbacks: s.brownouts as u64,
        ..FaultStats::default()
    };
    let mut edge_total = Joules::ZERO;
    let mut idx = 0usize;
    for sa in s.allocation.servers() {
        let starts = slot_start_times(&s.eff, &sa.slots, &spec.loss);
        for (i, &k) in sa.slots.iter().enumerate() {
            if k == 0 {
                continue;
            }
            // All clients of the slot share its cost (loss-B stretch
            // included) and its scheduled transfer start time.
            let slot_cost = client_timeline(&spec.cloud_client, k, &spec.loss).total_energy();
            let t0 = starts[i];
            let mut paying_slot_cost = 0usize;
            for _ in 0..k {
                let tid = if causal { trace_id(trace_seed, idx as u64) } else { 0 };
                match s.columns.class(idx) {
                    ClientClass::Brownout => {
                        edge_total += fallback_cost;
                        if causal {
                            emit_sample(telemetry, t0.value(), tid, idx as u64, "brownout");
                            emit_brownout_fallback(
                                telemetry,
                                t0.value(),
                                tid,
                                idx as u64,
                                fallback_cost.value(),
                            );
                        }
                    }
                    ClientClass::SensorDropout => {
                        paying_slot_cost += 1;
                        if causal {
                            emit_sample(telemetry, t0.value(), tid, idx as u64, "dropout");
                        }
                    }
                    ClientClass::Uploader => {
                        let tc = TransferTrace {
                            client: idx as u64,
                            trace: tid,
                            retry_energy_j: retry_cost.value(),
                            fallback_energy_j: fallback_cost.value(),
                        };
                        if causal {
                            emit_sample(telemetry, t0.value(), tid, idx as u64, "uploader");
                        }
                        let mut frng = CountingRng::new(&mut s.frng);
                        let (attempts, success) =
                            exact_transfer(plan, t0, &mut frng, telemetry, causal.then_some(&tc));
                        let draws = frng.draws();
                        s.columns.record_transfer(idx, attempts, draws);
                        if attempts > 1 {
                            edge_total += retry_cost * (attempts - 1) as f64;
                        }
                        if let Some(t_eff) = success {
                            paying_slot_cost += 1;
                            stats.delivered += 1;
                            if causal {
                                emit_delivered(
                                    telemetry,
                                    t_eff.value(),
                                    tid,
                                    idx as u64,
                                    attempts,
                                    slot_cost.value(),
                                );
                            }
                        } else {
                            edge_total += fallback_cost;
                            stats.fallbacks += 1;
                        }
                    }
                }
                idx += 1;
            }
            edge_total += slot_cost * paying_slot_cost as f64;
        }
    }
    debug_assert_eq!(idx, s.active, "allocation must cover every active client");
    // Attempt/retry totals come off the attempts column: chunked integer
    // reductions over the pool, bit-identical at any thread count.
    stats.attempts = s.columns.total_attempts();
    stats.retries = s.columns.total_retries();
    if telemetry.is_enabled() {
        s.columns.fill_retry_energy(retry_cost);
        telemetry.observe("columns.retry_energy_j", s.columns.energy_total().value());
    }
    publish_stats(telemetry, &stats);
    CycleReport::from_parts_with_faults(
        n_clients,
        s.active,
        s.allocation.n_servers(),
        edge_total,
        server_total,
        stats,
    )
}

/// DES backend under a fault plan: exact event-level injection at each
/// client's random arrival time; failed attempts never occupy the
/// uplink, successful ones arrive at their final attempt time. Each
/// server derives its own arrival and fault streams from the point seed.
pub(crate) fn des_with_faults(
    spec: &ScenarioSpec,
    n_clients: usize,
    ctx: &SimContext,
) -> CycleReport {
    let _span = ctx.telemetry().span("engine.cycle.des");
    let plan = ctx.fault_plan();
    let s = setup(spec, n_clients, ctx, plan);

    let point_seed = ctx.point_seed(n_clients as u64);
    let fault_seed = ctx.fault_seed(n_clients as u64);
    // Fallbacks accumulate from the per-server reports, which already
    // count their brown-out-class clients — don't seed them here too.
    let mut stats = FaultStats {
        brownouts: s.brownouts as u64,
        sensor_dropouts: s.sensor_dropouts as u64,
        ..FaultStats::default()
    };
    // One job per server: (server index, class-column offset, clients).
    // Each server derives its own RNG streams from the point seed, so
    // the servers are independent and fan out over the pool; the fold
    // below walks the results in server order, keeping the energy sum
    // bit-identical to the historical serial loop at any thread count.
    let mut jobs: Vec<(usize, usize, usize)> = Vec::with_capacity(s.allocation.n_servers());
    let mut offset = 0usize;
    for (i, sa) in s.allocation.servers().enumerate() {
        let k = sa.n_clients();
        jobs.push((i, offset, k));
        offset += k;
    }
    debug_assert_eq!(offset, s.active, "allocation must cover every active client");
    let classes = s.columns.classes();
    let telemetry = ctx.telemetry();
    let causal = telemetry.tracing_active();
    let deliver_cost = spec.cloud_client.cycle_energy();
    let fallback_cost = spec.edge_client.cycle_energy();
    let retry_cost = retry_energy(&spec.cloud_client);
    // Shape memo over the degraded server: servers whose every transfer
    // resolves cleanly keep their allocation shape and hit the memo;
    // divergent counts fold inline.
    let memo = crate::des::ShapeMemo::for_server(&s.eff, jobs.iter().map(|&(_, _, k)| k));
    let outs: Vec<crate::des::FaultedAsyncReport> = jobs
        .par_iter()
        .map(|&(i, offset, k)| {
            let salt = (i as u64 + 1).wrapping_mul(GOLDEN_GAMMA);
            let mut server_rng = StdRng::seed_from_u64(point_seed ^ salt);
            let mut server_frng = StdRng::seed_from_u64(fault_seed ^ salt);
            // Trace ids derive from the point seed and the client's
            // *global* index (`offset + local`), so tags are bit-stable
            // no matter how the jobs land on the worker pool.
            let tr = crate::des::DesTrace {
                point_seed,
                base: offset,
                deliver_energy_j: deliver_cost.value(),
                retry_energy_j: retry_cost.value(),
                fallback_energy_j: fallback_cost.value(),
            };
            crate::des::simulate_async_cycle_faulted(
                k,
                &s.eff,
                &mut server_rng,
                &mut server_frng,
                plan,
                classes.slice(offset..offset + k),
                telemetry,
                causal.then_some(&tr),
                Some(&memo),
            )
        })
        .collect();
    let mut server_total = Joules::ZERO;
    for out in &outs {
        server_total += out.report.server_energy;
        stats.attempts += out.attempts;
        stats.retries += out.retries;
        stats.delivered += out.delivered;
        stats.fallbacks += out.fallbacks;
    }

    // Unsynchronized uploads see no slot contention (penalty-free cycle
    // cost); sensor-dropout clients still run their full routine.
    let edge_total = deliver_cost * (stats.delivered + stats.sensor_dropouts) as f64
        + fallback_cost * stats.fallbacks as f64
        + retry_cost * stats.retries as f64;
    publish_stats(ctx.telemetry(), &stats);
    CycleReport::from_parts_with_faults(
        n_clients,
        s.active,
        s.allocation.n_servers(),
        edge_total,
        server_total,
        stats,
    )
}

/// Pure-edge side under a fault plan: nodes never touch the network, so
/// outages, packet loss and radio brown-outs cannot strike them — only
/// sensor dropouts cost samples (the node still runs its full routine,
/// so energy is unchanged). The classes come from the same fault stream
/// as the cloud side, so per-class counts match across scenarios.
pub(crate) fn edge_with_faults(
    spec: &ScenarioSpec,
    n_clients: usize,
    ctx: &SimContext,
) -> CycleReport {
    let _span = ctx.telemetry().span("engine.cycle.edge");
    let plan = ctx.fault_plan();
    let mut rng = ctx.point_rng(n_clients as u64);
    let active = draw_active(&spec.loss, n_clients, &mut rng);
    record_client_loss(ctx, n_clients, active);
    let edge_total = spec.edge_client.cycle_energy() * active as f64;
    let mut frng = ctx.fault_rng(n_clients as u64);
    let columns = FleetColumns::draw(plan, active, &mut frng);
    let (_, sensor_dropouts) = columns.class_counts();
    let stats = FaultStats {
        sensor_dropouts: sensor_dropouts as u64,
        delivered: (active - sensor_dropouts) as u64,
        ..FaultStats::default()
    };
    CycleReport::from_parts_with_faults(n_clients, active, 0, edge_total, Joules::ZERO, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::presets;
    use crate::ServiceKind;

    fn plan_with(f: impl FnOnce(&mut FaultPlan)) -> FaultPlan {
        let mut p = FaultPlan::NONE;
        f(&mut p);
        p
    }

    #[test]
    fn outage_window_is_half_open() {
        let w = OutageWindow::new(Seconds(60.0), Seconds(120.0));
        assert!(!w.contains(Seconds(59.9)));
        assert!(w.contains(Seconds(60.0)));
        assert!(w.contains(Seconds(119.9)));
        assert!(!w.contains(Seconds(120.0)));
        assert_eq!(w.duration(), Seconds(60.0));
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let policy = RetryPolicy { jitter: 0.0, ..RetryPolicy::DEFAULT };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(policy.backoff(1, &mut rng), Seconds(10.0));
        assert_eq!(policy.backoff(2, &mut rng), Seconds(20.0));
        assert_eq!(policy.backoff(3, &mut rng), Seconds(40.0));
        // Exponential growth hits the 60 s ceiling from retry 4 on.
        assert_eq!(policy.backoff(4, &mut rng), Seconds(60.0));
        assert_eq!(policy.backoff(9, &mut rng), Seconds(60.0));

        let jittered = RetryPolicy::DEFAULT;
        let a = jittered.backoff(1, &mut StdRng::seed_from_u64(7));
        let b = jittered.backoff(1, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b, "same stream, same jitter");
        assert!((a.value() - 10.0).abs() <= 1.0 + 1e-12, "±10 % of 10 s, got {a}");
    }

    #[test]
    fn fingerprint_separates_plans_and_zeroes_none() {
        assert_eq!(FaultPlan::NONE.fingerprint(), 0);
        let a = plan_with(|p| p.slowdown = 1.5);
        let b = plan_with(|p| p.slowdown = 2.0);
        let c = plan_with(|p| p.packet_loss = 0.1);
        assert_ne!(a.fingerprint(), 0);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }

    #[test]
    fn effective_server_stretches_durations() {
        let server = presets::cloud_server(ServiceKind::Cnn, 10);
        let eff = plan_with(|p| p.slowdown = 2.0).effective_server(&server);
        assert_eq!(eff.receive_duration, Seconds(30.0));
        assert_eq!(eff.process_duration, Seconds(2.0));
        // 300 / 32 = 9.375 → 9 slots instead of 18.
        assert_eq!(eff.n_slots(None), 9);
        // Factor 1 is the identity, bit for bit.
        let same = FaultPlan::NONE.effective_server(&server);
        assert_eq!(
            same.receive_duration.value().to_bits(),
            server.receive_duration.value().to_bits()
        );
    }

    #[test]
    fn first_attempt_failure_combines_outage_and_loss() {
        let cycle = Seconds(300.0);
        assert_eq!(FaultPlan::NONE.first_attempt_failure(cycle), 0.0);
        let outage =
            plan_with(|p| p.outage = Some(OutageWindow::new(Seconds(0.0), Seconds(150.0))));
        assert!((outage.first_attempt_failure(cycle) - 0.5).abs() < 1e-12);
        let both = plan_with(|p| {
            p.outage = Some(OutageWindow::new(Seconds(0.0), Seconds(150.0)));
            p.packet_loss = 0.1;
        });
        assert!((both.first_attempt_failure(cycle) - 0.55).abs() < 1e-12);
        // A window past the cycle end contributes only its overlap.
        let tail =
            plan_with(|p| p.outage = Some(OutageWindow::new(Seconds(270.0), Seconds(900.0))));
        assert!((tail.first_attempt_failure(cycle) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn spec_round_trips_through_fromstr() {
        let plan: FaultPlan =
            "outage=60..120,loss=0.05,slowdown=1.1,brownout=0.02,dropout=0.02,retries=2,backoff=5,factor=3,max-backoff=45,jitter=0"
                .parse()
                .unwrap();
        assert_eq!(plan.outage, Some(OutageWindow::new(Seconds(60.0), Seconds(120.0))));
        assert_eq!(plan.packet_loss, 0.05);
        assert_eq!(plan.slowdown, 1.1);
        assert_eq!(plan.brownout, Some(Brownout { probability: 0.02 }));
        assert_eq!(plan.sensor_dropout, 0.02);
        assert_eq!(
            plan.retry,
            RetryPolicy {
                max_retries: 2,
                base_backoff: Seconds(5.0),
                backoff_factor: 3.0,
                max_backoff: Seconds(45.0),
                jitter: 0.0,
            }
        );
        assert_eq!("none".parse::<FaultPlan>().unwrap(), FaultPlan::NONE);
        assert_eq!("mid".parse::<FaultPlan>().unwrap(), FaultPlan::mid_severity());
        assert!("loss=2".parse::<FaultPlan>().is_err());
        assert!("outage=120..60".parse::<FaultPlan>().is_err());
        assert!("warp=9".parse::<FaultPlan>().is_err());
        assert!("slowdown=0.5".parse::<FaultPlan>().is_err());
        // Display → FromStr is lossless, including every non-default
        // retry knob.
        for plan in [FaultPlan::mid_severity(), plan] {
            assert_eq!(plan.to_string().parse::<FaultPlan>().unwrap(), plan, "{plan}");
        }
    }

    #[test]
    fn display_echoes_the_plan() {
        assert_eq!(FaultPlan::NONE.to_string(), "none");
        let shown = FaultPlan::mid_severity().to_string();
        assert!(shown.contains("outage=60..120"), "{shown}");
        assert!(shown.contains("loss=0.05"), "{shown}");
        assert!(shown.contains("retries=3"), "{shown}");
    }

    #[test]
    fn population_draw_is_deterministic_and_gated() {
        let plan = plan_with(|p| {
            p.brownout = Some(Brownout { probability: 0.3 });
            p.sensor_dropout = 0.3;
        });
        let a = FleetColumns::draw(&plan, 500, &mut StdRng::seed_from_u64(9));
        let b = FleetColumns::draw(&plan, 500, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let (brown, sensor) = a.class_counts();
        assert!(brown > 0 && sensor > 0);
        // Zero probabilities consume no RNG and produce only uploaders.
        use rand::RngCore;
        let mut rng = StdRng::seed_from_u64(9);
        let before = rng.clone().next_u64();
        let none = FleetColumns::draw(&FaultPlan::NONE, 100, &mut rng);
        assert_eq!(rng.next_u64(), before, "no RNG consumed");
        assert!(none.classes().iter().all(|c| c == ClientClass::Uploader));
    }

    #[test]
    fn exact_transfer_escapes_an_outage_via_backoff() {
        let plan = plan_with(|p| {
            p.outage = Some(OutageWindow::new(Seconds(0.0), Seconds(20.0)));
            p.retry.jitter = 0.0;
            p.retry.base_backoff = Seconds(30.0);
        });
        let tel = Telemetry::disabled();
        let (attempts, success) =
            exact_transfer(&plan, Seconds(0.0), &mut StdRng::seed_from_u64(1), &tel, None);
        assert_eq!(attempts, 2, "one retry at t = 30 s clears the window");
        assert_eq!(success, Some(Seconds(30.0)));
        // Retries that cannot escape the window exhaust the budget.
        let stuck = plan_with(|p| {
            p.outage = Some(OutageWindow::new(Seconds(0.0), Seconds(1e9)));
        });
        let (attempts, success) =
            exact_transfer(&stuck, Seconds(10.0), &mut StdRng::seed_from_u64(1), &tel, None);
        assert_eq!(attempts, 1 + u64::from(stuck.retry.max_retries));
        assert_eq!(success, None);
    }

    #[test]
    fn retry_energy_is_tx_minus_sleep() {
        let client = presets::edge_cloud_client();
        // Table II: the 37.3 J send re-runs, displacing 15 s of sleep.
        let tx = &client.actions[client.transfer_action.unwrap()];
        let expected = (tx.power - client.sleep_power) * tx.duration;
        assert!((retry_energy(&client) - expected).abs() < Joules(1e-9));
        assert!((retry_energy(&client) - Joules(27.9)).abs() < Joules(0.1));
        let edge = presets::edge_client(ServiceKind::Cnn);
        assert_eq!(retry_energy(&edge), Joules::ZERO, "no transfer action, no retry cost");
    }

    #[test]
    fn stats_conservation_helper() {
        let stats =
            FaultStats { delivered: 90, fallbacks: 7, sensor_dropouts: 3, ..FaultStats::default() };
        assert_eq!(stats.samples_processed(), 97);
    }
}
