//! Discrete-event simulation of an *unsynchronized* server.
//!
//! The paper's server design rests on synchronized time slots: "every
//! client within a group has to start their communication with the server
//! at the same time … all synchronized in time thanks to a specific
//! hardware (GPS, for example)". This module asks what that buys by
//! simulating the alternative — clients wake uniformly at random within
//! the cycle, upload over a capacity-limited link (FIFO waiting) and are
//! processed one at a time — and accounting the same energy quantities,
//! so the slotted and asynchronous designs can be compared head-to-head
//! (`ablation_async` binary).

use crate::calendar::{BucketModel, CalendarQueue, EventKey};
use crate::columns::{ClassView, TransferColumns};
use crate::faults::{
    emit_brownout_fallback, emit_delivered, emit_sample, exact_transfer, ClientClass, FaultPlan,
    TransferTrace,
};
use crate::server::ServerModel;
use pb_telemetry::trace::{trace_id, SpanCtx, HOP_ARRIVAL, HOP_PROCESS, HOP_TRANSFER};
use pb_telemetry::Telemetry;
use pb_units::{Joules, Seconds, Watts};
use rand::Rng;
use std::collections::VecDeque;

/// Outcome of one asynchronous cycle.
#[derive(Clone, Debug)]
pub struct AsyncCycleReport {
    /// Number of clients served.
    pub n_clients: usize,
    /// Wall-clock horizon: end of cycle or last completion, whichever is
    /// later (synchronization-free arrivals can spill past the cycle).
    pub horizon: Seconds,
    /// Total server energy over the horizon.
    pub server_energy: Joules,
    /// Time during which at least one upload was in progress.
    pub receive_busy: Seconds,
    /// Time during which the processor was busy.
    pub process_busy: Seconds,
    /// Mean client latency from wake-up to processed result.
    pub mean_latency: Seconds,
    /// Worst client latency.
    pub max_latency: Seconds,
    /// Largest number of clients simultaneously waiting for the uplink.
    pub peak_queue: usize,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// A client wakes and wants the uplink.
    Arrival { client: usize },
    /// A client's upload finishes; it joins the processing queue.
    TransferDone { client: usize },
    /// The processor finishes a client's job.
    ProcessDone { client: usize },
}

/// Simulates one unsynchronized cycle: `n_clients` wake uniformly at
/// random in `[0, cycle)`, each uploads for the server's receive window
/// (at most `max_parallel` concurrent uploads; FIFO waiting), and jobs are
/// processed one at a time for `process_duration` each.
///
/// Energy model (matching the slotted accounting): idle power over the
/// whole horizon, plus the receive-power *delta* while ≥ 1 upload is
/// active, plus the process-power delta while the processor is busy.
pub fn simulate_async_cycle<R: Rng + ?Sized>(
    n_clients: usize,
    server: &ServerModel,
    rng: &mut R,
) -> AsyncCycleReport {
    simulate_async_cycle_traced(n_clients, server, rng, &Telemetry::disabled())
}

/// [`simulate_async_cycle`] with observability: event counts by type
/// (`des.events.*`), the peak uplink queue depth (`des.queue_depth.peak`
/// gauge), the horizon histogram (`des.cycle.horizon_s`), and — when the
/// sink keeps events — one sim-time-stamped trace record per simulation
/// event plus a `des.cycle_done` summary. Telemetry never touches the
/// RNG, so results are bit-identical to the untraced call.
pub fn simulate_async_cycle_traced<R: Rng + ?Sized>(
    n_clients: usize,
    server: &ServerModel,
    rng: &mut R,
    telemetry: &Telemetry,
) -> AsyncCycleReport {
    simulate_async_cycle_causal(n_clients, server, rng, telemetry, None)
}

/// Causal-tagging context for one DES server job: where this server's
/// clients sit in the fleet's global index space and what each terminal
/// hop costs, so the `des.*` and `trace.*` events can carry exact trace
/// ids and energy attribution. Tags only materialize when the
/// telemetry's tracing flag is active ([`Telemetry::with_tracing`]);
/// `None` (or an inactive flag) keeps the event stream byte-identical
/// to the untagged historical shape. Never touches the RNG streams.
#[derive(Clone, Copy, Debug)]
pub struct DesTrace {
    /// The sweep point's seed; trace ids derive from `(seed, client)`.
    pub point_seed: u64,
    /// Global index of this server's first client.
    pub base: usize,
    /// Client-side energy of a delivered sample.
    pub deliver_energy_j: f64,
    /// Energy charged per extra transfer attempt.
    pub retry_energy_j: f64,
    /// Energy of the edge fallback after a brown-out or retry
    /// exhaustion.
    pub fallback_energy_j: f64,
}

/// Shape-memoized per-trajectory constants, shared by every server of
/// the same shape within one sweep point.
///
/// The paper's populations are uniform, so after the RLE allocation a
/// million clients collapse to at most two distinct per-server client
/// counts. The quantities a DES trajectory accumulates by *repeated
/// addition of a constant* — today the CPU busy time, `m` additions of
/// the process duration — are therefore identical bit-for-bit across
/// every server of the same shape, and can be folded once per distinct
/// shape instead of once per server. Repeated addition is deliberate:
/// `m × p` rounds differently from `p + p + ⋯ + p` for non-dyadic `p`,
/// and the exact event loop performs the additions one at a time.
#[derive(Clone, Debug)]
pub struct ShapeMemo {
    process: f64,
    /// `(client count, Σ process)` per distinct shape, folded once.
    shapes: Vec<(usize, f64)>,
}

impl ShapeMemo {
    /// Folds the repeated-addition process-busy sum for every distinct
    /// shape in `shape_counts` (duplicates are folded once).
    pub fn for_server(server: &ServerModel, shape_counts: impl IntoIterator<Item = usize>) -> Self {
        let process = server.process_duration.value();
        let mut shapes: Vec<(usize, f64)> = Vec::new();
        for k in shape_counts {
            if !shapes.iter().any(|&(seen, _)| seen == k) {
                shapes.push((k, repeated_sum(process, k)));
            }
        }
        ShapeMemo { process, shapes }
    }

    /// The repeated-addition sum of `m` process durations: memoized for
    /// the allocation's shapes, folded inline for divergent counts (a
    /// faulted server delivers fewer clients than its shape holds).
    fn busy_for(&self, m: usize) -> f64 {
        self.shapes
            .iter()
            .find(|&&(k, _)| k == m)
            .map(|&(_, sum)| sum)
            .unwrap_or_else(|| repeated_sum(self.process, m))
    }
}

/// `value + value + ⋯` (`m` terms), the exact fold order of the event
/// loop's per-client `process_busy += process` accumulation.
fn repeated_sum(value: f64, m: usize) -> f64 {
    let mut sum = 0.0f64;
    for _ in 0..m {
        sum += value;
    }
    sum
}

/// [`simulate_async_cycle_traced`] with causal span tags: each client
/// gets a root `trace.sample` span at its arrival instant, the
/// `des.{arrival,transfer_done,process_done}` hops chain under it, and
/// a terminal `trace.delivered` span lands at the client's processing
/// completion. Results are bit-identical to the untagged call.
pub fn simulate_async_cycle_causal<R: Rng + ?Sized>(
    n_clients: usize,
    server: &ServerModel,
    rng: &mut R,
    telemetry: &Telemetry,
    causal: Option<&DesTrace>,
) -> AsyncCycleReport {
    simulate_async_cycle_memoized(n_clients, server, rng, telemetry, causal, None)
}

/// [`simulate_async_cycle_causal`] with a [`ShapeMemo`]: when the
/// caller simulates many servers of identical shape (the engine's
/// normal fan-out), the memo supplies the shape's repeated-addition
/// constants so each replayed trajectory skips re-folding them. Results
/// are bit-identical with or without the memo.
pub fn simulate_async_cycle_memoized<R: Rng + ?Sized>(
    n_clients: usize,
    server: &ServerModel,
    rng: &mut R,
    telemetry: &Telemetry,
    causal: Option<&DesTrace>,
    memo: Option<&ShapeMemo>,
) -> AsyncCycleReport {
    let cycle = server.cycle.value();
    let mut arrivals: Vec<f64> = (0..n_clients).map(|_| rng.gen_range(0.0..cycle)).collect();
    sort_arrival_times(&mut arrivals);
    let tag = causal.filter(|_| telemetry.tracing_active());
    let out = if fast_path_eligible(telemetry, tag.is_some(), server) {
        // Sorted fault-free arrivals are already in pop order with
        // client i at position i — no entry list needed.
        replay_core(n_clients, &arrivals, None, server, memo)
    } else {
        let entries: Vec<(f64, usize)> =
            arrivals.iter().enumerate().map(|(client, &t)| (t, client)).collect();
        let links: Option<Vec<Option<SpanCtx>>> = tag.map(|dt| {
            entries
                .iter()
                .map(|&(t, client)| {
                    let tid = trace_id(dt.point_seed, (dt.base + client) as u64);
                    emit_sample(telemetry, t, tid, (dt.base + client) as u64, "uploader");
                    Some(SpanCtx::root(tid))
                })
                .collect()
        });
        exact_event_loop(n_clients, &entries, server, telemetry, links.as_deref())
    };
    if let Some(dt) = tag {
        for client in 0..n_clients {
            let t_done = out.completion[client];
            let global = (dt.base + client) as u64;
            let tid = trace_id(dt.point_seed, global);
            emit_delivered(telemetry, t_done, tid, global, 1, dt.deliver_energy_j);
        }
    }

    let horizon = out.last_time.max(cycle);
    let server_energy = energy_over(server, horizon, out.receive_busy, out.process_busy);
    // Client-order latency accumulation, same fold order as the
    // historical intermediate `Vec` (sum first, then a 0-seeded max).
    let mut lat_sum = 0.0f64;
    let mut max_latency = 0.0f64;
    for (c, a) in out.completion.iter().zip(&arrivals) {
        let l = c - a;
        lat_sum += l;
        max_latency = max_latency.max(l);
    }
    let mean_latency = if n_clients > 0 { lat_sum / n_clients as f64 } else { 0.0 };

    flush_telemetry(telemetry, n_clients, &out, horizon, server_energy);

    AsyncCycleReport {
        n_clients,
        horizon: Seconds(horizon),
        server_energy,
        receive_busy: Seconds(out.receive_busy),
        process_busy: Seconds(out.process_busy),
        mean_latency: Seconds(mean_latency),
        max_latency: Seconds(max_latency),
        peak_queue: out.peak_queue,
    }
}

/// [`simulate_async_cycle_traced`] under a [`FaultPlan`]: every client
/// still wakes at a uniform random instant (the same arrival stream as
/// the fault-free run, bit for bit), but its participation follows its
/// drawn [`ClientClass`] — browned-out and sensor-dropped clients never
/// touch the uplink, and uploaders resolve their transfer through the
/// outage/packet-loss/retry machinery of the faults module *before*
/// entering the server's event loop (a failed attempt never occupies the
/// uplink; a successful retry arrives at its final attempt time). Fault
/// draws come from the dedicated `fault_rng` stream so the arrival
/// stream is untouched. With a [`DesTrace`] and an active tracing flag,
/// every client's events carry the causal span chain
/// (sample → attempt(s) → network hops → delivered-or-fallback).
#[allow(clippy::too_many_arguments)] // the two RNG streams, the causal tag and the memo are all distinct concerns
pub fn simulate_async_cycle_faulted<R: Rng + ?Sized, F: Rng + ?Sized>(
    n_clients: usize,
    server: &ServerModel,
    rng: &mut R,
    fault_rng: &mut F,
    plan: &FaultPlan,
    classes: ClassView<'_>,
    telemetry: &Telemetry,
    causal: Option<&DesTrace>,
    memo: Option<&ShapeMemo>,
) -> FaultedAsyncReport {
    assert_eq!(classes.len(), n_clients, "one class per client");
    let cycle = server.cycle.value();
    let mut arrivals: Vec<f64> = (0..n_clients).map(|_| rng.gen_range(0.0..cycle)).collect();
    sort_arrival_times(&mut arrivals);

    let tag = causal.filter(|_| telemetry.tracing_active());
    let mut attempts = 0u64;
    let mut retries = 0u64;
    let mut fallbacks = 0u64;
    // Columnar fault pre-pass: resolved transfers land as flat columns
    // (effective time, client, attempt count) so the fast path can
    // partition clean first-attempt deliveries from divergent retried
    // ones without re-walking per-client structs.
    let mut cols = TransferColumns::with_capacity(n_clients);
    // Per local client: the span its network hops chain under (the
    // successful attempt), plus the delivered set's attempt counts for
    // the terminal spans emitted after the loop.
    let mut links: Vec<Option<SpanCtx>> =
        if tag.is_some() { vec![None; n_clients] } else { vec![] };
    let mut delivered_tags: Vec<(usize, u64, u64)> = Vec::new();
    for (client, &t) in arrivals.iter().enumerate() {
        let tid = tag.map(|dt| trace_id(dt.point_seed, (dt.base + client) as u64));
        match classes.get(client) {
            ClientClass::Brownout => {
                fallbacks += 1;
                if let (Some(dt), Some(tid)) = (tag, tid) {
                    let global = (dt.base + client) as u64;
                    emit_sample(telemetry, t, tid, global, "brownout");
                    emit_brownout_fallback(telemetry, t, tid, global, dt.fallback_energy_j);
                }
            }
            ClientClass::SensorDropout => {
                if let (Some(dt), Some(tid)) = (tag, tid) {
                    emit_sample(telemetry, t, tid, (dt.base + client) as u64, "dropout");
                }
            }
            ClientClass::Uploader => {
                let tc = tag.zip(tid).map(|(dt, tid)| {
                    let global = (dt.base + client) as u64;
                    emit_sample(telemetry, t, tid, global, "uploader");
                    TransferTrace {
                        client: global,
                        trace: tid,
                        retry_energy_j: dt.retry_energy_j,
                        fallback_energy_j: dt.fallback_energy_j,
                    }
                });
                let (a, success) =
                    exact_transfer(plan, Seconds(t), fault_rng, telemetry, tc.as_ref());
                attempts += a;
                retries += a - 1;
                match success {
                    Some(t_eff) => {
                        cols.push(t_eff.value(), client, a);
                        if let Some(tid) = tid {
                            links[client] = Some(SpanCtx::attempt(tid, a as u32));
                            delivered_tags.push((client, tid, a));
                        }
                    }
                    None => fallbacks += 1,
                }
            }
        }
    }
    let delivered = cols.len() as u64;
    // The replay needs entries in calendar *pop* order — (time, push
    // index) — which the clean/divergent merge produces in O(m + d log d)
    // for d divergent clients; the exact loop needs the original push
    // order so its event sequence numbers stay bit-identical.
    let out = if fast_path_eligible(telemetry, tag.is_some(), server) {
        let (times, clients) = cols.pop_order_columns();
        replay_core(n_clients, &times, Some(&clients), server, memo)
    } else {
        let entries = cols.push_order_entries();
        exact_event_loop(
            n_clients,
            &entries,
            server,
            telemetry,
            if tag.is_some() { Some(&links) } else { None },
        )
    };
    if let Some(dt) = tag {
        for &(client, tid, a) in &delivered_tags {
            let global = (dt.base + client) as u64;
            emit_delivered(telemetry, out.completion[client], tid, global, a, dt.deliver_energy_j);
        }
    }

    let horizon = out.last_time.max(cycle);
    let server_energy = energy_over(server, horizon, out.receive_busy, out.process_busy);
    // Latency from the *original* wake-up instant, over delivered
    // clients only (the others never produce a server-side completion).
    let latencies: Vec<f64> = out
        .completion
        .iter()
        .zip(&arrivals)
        .zip(classes.iter())
        .filter(|((c, _), class)| *class == ClientClass::Uploader && **c > 0.0)
        .map(|((c, a), _)| c - a)
        .collect();
    let mean_latency =
        if delivered > 0 { latencies.iter().sum::<f64>() / delivered as f64 } else { 0.0 };
    let max_latency = latencies.iter().copied().fold(0.0, f64::max);

    flush_telemetry(telemetry, n_clients, &out, horizon, server_energy);

    FaultedAsyncReport {
        report: AsyncCycleReport {
            n_clients,
            horizon: Seconds(horizon),
            server_energy,
            receive_busy: Seconds(out.receive_busy),
            process_busy: Seconds(out.process_busy),
            mean_latency: Seconds(mean_latency),
            max_latency: Seconds(max_latency),
            peak_queue: out.peak_queue,
        },
        attempts,
        retries,
        delivered,
        fallbacks,
    }
}

/// [`simulate_async_cycle_faulted`]'s outcome: the cycle report plus the
/// server's share of the fault accounting.
#[derive(Clone, Debug)]
pub struct FaultedAsyncReport {
    /// The usual asynchronous-cycle report (latency over delivered
    /// clients only).
    pub report: AsyncCycleReport,
    /// Transfer attempts made by this server's uploaders.
    pub attempts: u64,
    /// Attempts beyond each uploader's first.
    pub retries: u64,
    /// Uploads that reached the server.
    pub delivered: u64,
    /// Clients that fell back to edge inference (brown-outs plus
    /// exhausted retry budgets).
    pub fallbacks: u64,
}

/// What the event loop measures; energy and latency are derived by the
/// callers.
struct LoopOutcome {
    receive_busy: f64,
    process_busy: f64,
    /// Per-client completion instant (0 when the client never completed).
    completion: Vec<f64>,
    peak_queue: usize,
    last_time: f64,
    n_arrivals: u64,
    n_transfers: u64,
    n_processed: u64,
    /// Highest calendar-queue occupancy the cycle reached.
    peak_events: usize,
    /// Calendar-queue bucket resizes the cycle performed.
    queue_resizes: u64,
    /// Clients whose trajectory the shape-memoized fast path replayed
    /// (0 when the exact event loop ran).
    replayed: u64,
}

/// The slotted accounting's energy model over an asynchronous horizon:
/// idle power throughout, plus the receive/process power *deltas* while
/// the NIC or CPU is busy.
fn energy_over(server: &ServerModel, horizon: f64, receive_busy: f64, process_busy: f64) -> Joules {
    let receive_delta = server.receive_power - server.idle_power;
    let process_delta = (server.process_power - server.idle_power).max(Watts::ZERO);
    server.idle_power * Seconds(horizon)
        + receive_delta * Seconds(receive_busy)
        + process_delta * Seconds(process_busy)
}

/// True when a cycle may take the shape-memoized replay instead of the
/// exact event loop. Recording sinks and causal tags force the exact
/// path: the replay produces no per-event records, and span chains must
/// follow the real pop sequence. (`max_parallel == 0` starves the
/// uplink forever — a degenerate shape the recurrence does not model.)
fn fast_path_eligible(telemetry: &Telemetry, tagged: bool, server: &ServerModel) -> bool {
    !(telemetry.events_recording() || tagged || server.max_parallel == 0)
}

/// Per-worker scratch for [`replay_core`]: the intermediate per-entry
/// columns are reused across the thousands of servers a sweep point
/// fans over one worker, so the replay allocates nothing but its
/// completion column. Every cell is rewritten before it is read (the
/// columns are rebuilt front to back each call), so reuse cannot leak
/// state between servers.
#[derive(Default)]
struct ReplayScratch {
    finish: Vec<f64>,
    proc_end: Vec<f64>,
    queued: Vec<bool>,
    cpu_free: Vec<bool>,
    queued_starts: Vec<f64>,
}

thread_local! {
    static REPLAY_SCRATCH: std::cell::RefCell<ReplayScratch> =
        std::cell::RefCell::new(ReplayScratch::default());
    static SORT_SCRATCH: std::cell::RefCell<(Vec<u32>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Sorts an arrival-time array ascending, byte-identical to
/// `sort_unstable_by(f64::total_cmp)`.
///
/// Arrival draws are uniform over the cycle, so a bucket scatter leaves
/// ~1 element per bucket and a single insertion pass finishes the job
/// in O(m) — roughly 2–3× faster than the comparison sort at the fleet
/// populations the scale sweep runs. Stability is irrelevant (values
/// carry no payload), and the inputs are finite and non-negative (no
/// NaN, no `-0.0`), so value order fully determines the output bytes.
/// A skewed or degenerate distribution only costs speed, not
/// correctness: the insertion pass repairs any bucketing.
fn sort_arrival_times(times: &mut [f64]) {
    let m = times.len();
    if m < 64 {
        times.sort_unstable_by(f64::total_cmp);
        return;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &t in times.iter() {
        lo = lo.min(t);
        hi = hi.max(t);
    }
    let span = hi - lo;
    if !(span.is_finite() && span > 0.0) {
        // All-equal (already sorted) or non-finite garbage: fall back.
        times.sort_unstable_by(f64::total_cmp);
        return;
    }
    let n_buckets = m.next_power_of_two();
    let scale = n_buckets as f64 / span;
    let bucket_of = |t: f64| (((t - lo) * scale) as usize).min(n_buckets - 1);
    SORT_SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        let (counts, aux) = &mut *s;
        counts.clear();
        counts.resize(n_buckets, 0);
        aux.clear();
        aux.resize(m, 0.0);
        for &t in times.iter() {
            counts[bucket_of(t)] += 1;
        }
        let mut offset = 0u32;
        for c in counts.iter_mut() {
            let n = *c;
            *c = offset;
            offset += n;
        }
        for &t in times.iter() {
            let slot = &mut counts[bucket_of(t)];
            aux[*slot as usize] = t;
            *slot += 1;
        }
        times.copy_from_slice(aux);
    });
    // Buckets are ordered by value; the pass below orders within them
    // (expected O(1) displacement per element).
    for i in 1..m {
        let t = times[i];
        let mut j = i;
        while j > 0 && times[j - 1] > t {
            times[j] = times[j - 1];
            j -= 1;
        }
        times[j] = t;
    }
    debug_assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

/// The `i`-th value of a sorted event stream, `+inf` past the end (the
/// block-skip merge in [`replay_core`] treats an exhausted stream as an
/// event at the end of time).
#[inline(always)]
fn stream_at(v: &[f64], i: usize) -> f64 {
    v.get(i).copied().unwrap_or(f64::INFINITY)
}

/// Bit-exact O(m) replay of [`exact_event_loop`].
///
/// `times` holds the participating clients' effective arrival instants
/// in calendar *pop* order (time ascending, ties in push order);
/// `clients` maps pop position to client id, or `None` when position
/// `i` *is* client `i` (the sorted fault-free case). In pop order the
/// event loop's behaviour is a pure recurrence — no calendar queue
/// needed:
///
/// * **Uplink**: client `i` (capacity `C`) starts its upload at
///   `max(aᵢ, fᵢ₋C)` where `f` is the upload-finish sequence; it queued
///   iff `fᵢ₋C ≥ aᵢ` (non-strict: at equal times the arrival pops
///   before the transfer-done, so client `i−C` still occupies a lane).
/// * **Receive-busy**: the union of `[startᵢ, fᵢ]` intervals, one
///   `end − begin` addition per maximal busy period in chronological
///   order — operand-identical to the loop's `now − receive_since`. A
///   gap opens iff `startᵢ > fᵢ₋₁` strictly (at a tie the arrival pops
///   first and keeps the NIC busy).
/// * **CPU**: jobs start at `max(fᵢ, procᵢ₋₁)` with the loop's strict
///   wait condition (`busy_until > now`), finish `process` later;
///   `process_busy` is the repeated-addition fold the [`ShapeMemo`]
///   caches per shape.
/// * **Wait queue**: the waiting set at a queued arrival `aᵢ` is the
///   suffix of queued clients whose start is `≥ aᵢ` — a two-pointer
///   scan, since starts and arrivals are both monotone.
/// * **Calendar telemetry**: the queue's occupancy peak and resize
///   history are replayed through a [`BucketModel`] (see the sweep
///   below). This runs even with telemetry disabled so enabling
///   metrics never changes the work done (the overhead gate in
///   `bench_telemetry_overhead` pins that).
///
/// Simultaneous events of different kinds (an arrival at exactly a
/// transfer-finish instant, etc.) are resolved Arrival < TransferDone <
/// ProcessDone, matching the loop's sequence-number order for every
/// reachable tie; with continuously distributed arrival times,
/// cross-kind ties have probability zero and the equivalence suite
/// pins the observable results.
fn replay_core(
    n_clients: usize,
    times: &[f64],
    clients: Option<&[u32]>,
    server: &ServerModel,
    memo: Option<&ShapeMemo>,
) -> LoopOutcome {
    let m = times.len();
    let transfer = server.receive_duration.value();
    let process = server.process_duration.value();
    let cap = server.max_parallel;

    REPLAY_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let ReplayScratch { finish, proc_end, queued, cpu_free, queued_starts } = &mut *scratch;
        finish.clear();
        proc_end.clear();
        queued.clear();
        cpu_free.clear();
        queued_starts.clear();
        finish.reserve(m);
        proc_end.reserve(m);
        queued.reserve(m);
        cpu_free.reserve(m);

        let mut receive_busy = 0.0f64;
        let mut peak_queue = 0usize;
        // `released` counts the prefix of queued clients whose uplink
        // handoff already happened (starts are monotone).
        let mut released = 0usize;

        // Current receive-busy period.
        let mut busy_begin = 0.0f64;
        let mut busy_end = 0.0f64;
        let mut prev_proc_end = 0.0f64;

        for i in 0..m {
            let a = times[i];
            debug_assert!(i == 0 || times[i - 1] <= a, "replay entries must be in pop order");
            let (start, q) =
                if i >= cap && finish[i - cap] >= a { (finish[i - cap], true) } else { (a, false) };
            queued.push(q);
            let f = start + transfer;
            finish.push(f);
            if q {
                queued_starts.push(start);
                while released < queued_starts.len() && queued_starts[released] < a {
                    released += 1;
                }
                peak_queue = peak_queue.max(queued_starts.len() - released);
            }
            if i == 0 {
                busy_begin = start;
                busy_end = f;
            } else if start > busy_end {
                receive_busy += busy_end - busy_begin;
                busy_begin = start;
                busy_end = f;
            } else {
                busy_end = f;
            }
            // `free` is the loop's "CPU idle at this transfer-finish"
            // test; recorded so the calendar replay below can look it
            // up without re-deriving the float comparison.
            let free = !(i > 0 && prev_proc_end > f);
            cpu_free.push(free);
            let cpu_start = if free { f } else { prev_proc_end };
            prev_proc_end = cpu_start + process;
            proc_end.push(prev_proc_end);
        }
        if m > 0 {
            receive_busy += busy_end - busy_begin;
        }

        let process_busy = match memo {
            Some(memo) => memo.busy_for(m),
            None => repeated_sum(process, m),
        };
        let last_time = if m > 0 { proc_end[m - 1] } else { 0.0 };

        let completion = match clients {
            None => {
                // Pop position i is client i: the process-finish column
                // *is* the completion column.
                debug_assert_eq!(n_clients, m, "positional replay needs one entry per client");
                proc_end.clone()
            }
            Some(cl) => {
                debug_assert_eq!(cl.len(), m, "one client id per entry");
                let mut completion = vec![0.0f64; n_clients];
                for (i, &c) in cl.iter().enumerate() {
                    completion[c as usize] = proc_end[i];
                }
                completion
            }
        };

        // Replay the calendar queue's bookkeeping. The m batch arrival
        // pushes are folded analytically by `seed_batch`: the occupancy
        // peak is exactly m, since a client's transfer-done is pushed
        // only at or after its arrival's pop and its process-done only
        // at or after its transfer-done's pop, so the queue never holds
        // more than one pending event per client. The pop sweep is a
        // 3-way merge of the (each individually sorted) arrival /
        // transfer-finish / process-finish streams.
        //
        // Pushes at each pop: an arrival pushes its transfer-done iff
        // it starts immediately; a transfer-done hands the lane to the
        // (cap)-later queued client and pushes its process-done iff the
        // CPU is free; a process-done pushes the next process-done iff
        // that one was waiting on the CPU.
        //
        // The merge runs block-skipped: while `safe_event_budget`
        // proves no resize can fire, a whole block of the merge
        // collapses to three linear scans up to a cutoff time τ (the
        // per-event occupancy walk only moves `len`, which
        // `skip_events` applies in one shot). τ is chosen a third of
        // the budget into each stream, so each scan advances at most
        // budget/3 positions and the block never exceeds the budget;
        // `< τ` strictly keeps the cut time-consistent with the true
        // merge order. Only near a resize boundary (or when τ yields
        // no progress) does the sweep fall back to stepping single
        // events through the branchy 3-way compare.
        let mut model = BucketModel::with_hint(m, server.cycle.value());
        model.seed_batch(m);
        const STEP: usize = 32;
        let (mut ai, mut ti, mut pi) = (0usize, 0usize, 0usize);
        let mut remaining = 3 * m;
        while remaining > 0 {
            let budget = model.safe_event_budget().min(remaining);
            if budget >= STEP {
                let q = budget / 3;
                let tau = stream_at(times, ai + q)
                    .min(stream_at(finish, ti + q))
                    .min(stream_at(proc_end, pi + q));
                let (a0, t0, p0) = (ai, ti, pi);
                let mut gained = 0usize;
                while ai < m && times[ai] < tau {
                    gained += !queued[ai] as usize;
                    ai += 1;
                }
                while ti < m && finish[ti] < tau {
                    gained += (ti + cap < m && queued[ti + cap]) as usize + cpu_free[ti] as usize;
                    ti += 1;
                }
                while pi < m && proc_end[pi] < tau {
                    gained += (pi + 1 < m && !cpu_free[pi + 1]) as usize;
                    pi += 1;
                }
                let popped = (ai - a0) + (ti - t0) + (pi - p0);
                if popped > 0 {
                    model.skip_events(popped, gained);
                    remaining -= popped;
                    continue;
                }
                // τ made no progress (duplicate head times): step.
            }
            let steps = STEP.min(remaining);
            for _ in 0..steps {
                let ta = stream_at(times, ai);
                let tt = stream_at(finish, ti);
                let tp = stream_at(proc_end, pi);
                // Ties resolve Arrival < TransferDone < ProcessDone,
                // the loop's sequence-number order for every reachable
                // tie.
                if ta <= tt && ta <= tp {
                    model.sweep_event(!queued[ai] as u8);
                    ai += 1;
                } else if tt <= tp {
                    model
                        .sweep_event((ti + cap < m && queued[ti + cap]) as u8 + cpu_free[ti] as u8);
                    ti += 1;
                } else {
                    model.sweep_event((pi + 1 < m && !cpu_free[pi + 1]) as u8);
                    pi += 1;
                }
            }
            remaining -= steps;
        }

        LoopOutcome {
            receive_busy,
            process_busy,
            completion,
            peak_queue,
            last_time,
            n_arrivals: m as u64,
            n_transfers: m as u64,
            n_processed: m as u64,
            peak_events: model.peak_len(),
            queue_resizes: model.resizes(),
            replayed: m as u64,
        }
    })
}

/// The exact event-by-event loop (the historical hot path; now the
/// recording/traced path and the fast path's reference).
///
/// Events are scheduled through a [`CalendarQueue`], which preserves the
/// exact (time, seq) pop order of the `BinaryHeap` it replaced (pinned
/// by the `calendar_parity` suite) while staying O(1) per operation at
/// high occupancy.
fn exact_event_loop(
    n_clients: usize,
    entries: &[(f64, usize)],
    server: &ServerModel,
    telemetry: &Telemetry,
    links: Option<&[Option<SpanCtx>]>,
) -> LoopOutcome {
    // The span each client's network hops chain under (None = untagged).
    let link = |client: usize| links.and_then(|l| l[client]);
    let transfer = server.receive_duration.value();
    let process = server.process_duration.value();

    // All arrivals land up front, so the entry count is the occupancy
    // high-water mark and the cycle duration spans their times.
    let mut events: CalendarQueue<Event> =
        CalendarQueue::with_hint(entries.len(), server.cycle.value());
    let mut seq = 0u64;
    let mut push = |events: &mut CalendarQueue<Event>, time: f64, ev: Event| {
        events.push(EventKey { time, seq }, ev);
        seq += 1;
    };

    for &(t, client) in entries {
        push(&mut events, t, Event::Arrival { client });
    }

    let mut uplink_in_use = 0usize;
    let mut uplink_wait: VecDeque<usize> = VecDeque::new();
    let mut cpu_busy_until: Option<f64> = None;
    let mut cpu_wait: VecDeque<usize> = VecDeque::new();

    let mut receive_busy = 0.0f64;
    let mut receive_since = 0.0f64;
    let mut process_busy = 0.0f64;
    let mut completion = vec![0.0f64; n_clients];
    let mut peak_queue = 0usize;
    let mut last_time = 0.0f64;

    // Event counts stay in locals during the loop; they flush into the
    // registry once at the end so the hot path pays no atomic traffic.
    let trace_events = telemetry.events_recording();
    let mut n_arrivals = 0u64;
    let mut n_transfers = 0u64;
    let mut n_processed = 0u64;

    while let Some((key, ev)) = events.pop() {
        let now = key.time;
        debug_assert!(now >= last_time, "event popped out of order: {now} after {last_time}");
        last_time = now;
        match ev {
            Event::Arrival { client } => {
                n_arrivals += 1;
                if trace_events {
                    let fields = vec![
                        ("client", client.into()),
                        ("queued", (uplink_in_use >= server.max_parallel).into()),
                    ];
                    match link(client) {
                        Some(ctx) => {
                            telemetry.trace_event(
                                now,
                                "des.arrival",
                                ctx.child(HOP_ARRIVAL),
                                fields,
                            );
                        }
                        None => telemetry.event(now, "des.arrival", fields),
                    }
                }
                if uplink_in_use < server.max_parallel {
                    if uplink_in_use == 0 {
                        receive_since = now;
                    }
                    uplink_in_use += 1;
                    push(&mut events, now + transfer, Event::TransferDone { client });
                } else {
                    uplink_wait.push_back(client);
                    peak_queue = peak_queue.max(uplink_wait.len());
                }
            }
            Event::TransferDone { client } => {
                n_transfers += 1;
                if trace_events {
                    let fields =
                        vec![("client", client.into()), ("queue", uplink_wait.len().into())];
                    match link(client) {
                        Some(ctx) => {
                            let span = ctx.child(HOP_ARRIVAL).child(HOP_TRANSFER);
                            telemetry.trace_event(now, "des.transfer_done", span, fields);
                        }
                        None => telemetry.event(now, "des.transfer_done", fields),
                    }
                }
                // Hand the uplink to the next waiter (if any).
                if let Some(next) = uplink_wait.pop_front() {
                    push(&mut events, now + transfer, Event::TransferDone { client: next });
                } else {
                    uplink_in_use -= 1;
                    if uplink_in_use == 0 {
                        receive_busy += now - receive_since;
                    }
                }
                // Queue for processing. The CPU is free only when no
                // one is waiting AND the current run has ended. The
                // wait-queue check matters at exact float ties: when a
                // transfer finishes at precisely `cpu_busy_until` (the
                // constant transfer/process durations put both event
                // streams on a shared lattice under saturation), the
                // pending process-done for that instant has not popped
                // yet — starting this client here would jump it past
                // the FIFO waiters and double-book the CPU.
                match cpu_busy_until {
                    Some(t) if t > now || !cpu_wait.is_empty() => cpu_wait.push_back(client),
                    _ => {
                        cpu_busy_until = Some(now + process);
                        process_busy += process;
                        push(&mut events, now + process, Event::ProcessDone { client });
                    }
                }
            }
            Event::ProcessDone { client } => {
                n_processed += 1;
                if trace_events {
                    let fields = vec![("client", client.into())];
                    match link(client) {
                        Some(ctx) => {
                            let span =
                                ctx.child(HOP_ARRIVAL).child(HOP_TRANSFER).child(HOP_PROCESS);
                            telemetry.trace_event(now, "des.process_done", span, fields);
                        }
                        None => telemetry.event(now, "des.process_done", fields),
                    }
                }
                completion[client] = now;
                if let Some(next) = cpu_wait.pop_front() {
                    cpu_busy_until = Some(now + process);
                    process_busy += process;
                    push(&mut events, now + process, Event::ProcessDone { client: next });
                }
            }
        }
    }
    if uplink_in_use > 0 {
        receive_busy += last_time - receive_since;
    }

    LoopOutcome {
        receive_busy,
        process_busy,
        completion,
        peak_queue,
        last_time,
        n_arrivals,
        n_transfers,
        n_processed,
        peak_events: events.peak_len(),
        queue_resizes: events.resizes(),
        replayed: 0,
    }
}

/// Mirrors one cycle's event counts, queue peak, horizon and — when the
/// sink keeps events — the `des.cycle_done` summary into telemetry.
fn flush_telemetry(
    telemetry: &Telemetry,
    n_clients: usize,
    out: &LoopOutcome,
    horizon: f64,
    server_energy: Joules,
) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.add_to_counter("des.events.arrival", out.n_arrivals);
    telemetry.add_to_counter("des.events.transfer_done", out.n_transfers);
    telemetry.add_to_counter("des.events.process_done", out.n_processed);
    telemetry.add_to_counter("des.queue.resizes", out.queue_resizes);
    if out.replayed > 0 {
        telemetry.add_to_counter("des.fastpath.replayed", out.replayed);
    }
    if let Some(r) = telemetry.registry() {
        r.gauge("des.queue_depth.peak").set_max(out.peak_queue as f64);
    }
    telemetry.observe("des.queue.occupancy", out.peak_events as f64);
    telemetry.observe("des.cycle.horizon_s", horizon);
    if telemetry.events_recording() {
        telemetry.event(
            horizon,
            "des.cycle_done",
            vec![
                ("n_clients", n_clients.into()),
                ("peak_queue", out.peak_queue.into()),
                ("receive_busy_s", out.receive_busy.into()),
                ("process_busy_s", out.process_busy.into()),
                ("server_energy_j", server_energy.value().into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::presets;
    use crate::ServiceKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server(cap: usize) -> ServerModel {
        presets::cloud_server(ServiceKind::Cnn, cap)
    }

    #[test]
    #[ignore = "manual profiling aid"]
    fn profile_fastpath_phases() {
        use std::time::Instant;
        let srv = server(35);
        let n_servers = 5556usize;
        let k = 180usize;
        let total = (n_servers * k) as f64;
        let memo = ShapeMemo::for_server(&srv, std::iter::repeat_n(k, n_servers));
        let telemetry = Telemetry::disabled();
        let cycle = srv.cycle.value();
        let mut sink = 0.0f64;

        let mut time = |label: &str, f: &mut dyn FnMut() -> f64| {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t0 = Instant::now();
                sink += f();
                best = best.min(t0.elapsed().as_secs_f64());
            }
            eprintln!("{label:<18} {:>8.1} ms  {:>6.1} ns/client", best * 1e3, best * 1e9 / total);
        };

        time("rng only", &mut || {
            let mut acc = 0.0;
            for s in 0..n_servers {
                let mut rng = StdRng::seed_from_u64(s as u64);
                for _ in 0..k {
                    acc += rng.gen_range(0.0..cycle);
                }
            }
            acc
        });
        time("rng+sort_unstable", &mut || {
            let mut acc = 0.0;
            for s in 0..n_servers {
                let mut rng = StdRng::seed_from_u64(s as u64);
                let mut arrivals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..cycle)).collect();
                arrivals.sort_unstable_by(f64::total_cmp);
                acc += arrivals[0];
            }
            acc
        });
        time("rng+bucket_sort", &mut || {
            let mut acc = 0.0;
            for s in 0..n_servers {
                let mut rng = StdRng::seed_from_u64(s as u64);
                let mut arrivals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..cycle)).collect();
                sort_arrival_times(&mut arrivals);
                acc += arrivals[0];
            }
            acc
        });
        time("+replay_core", &mut || {
            let mut acc = 0.0;
            for s in 0..n_servers {
                let mut rng = StdRng::seed_from_u64(s as u64);
                let mut arrivals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..cycle)).collect();
                sort_arrival_times(&mut arrivals);
                let out = replay_core(k, &arrivals, None, &srv, Some(&memo));
                acc += out.receive_busy;
            }
            acc
        });
        time("full memoized", &mut || {
            let mut acc = 0.0;
            for s in 0..n_servers {
                let mut rng = StdRng::seed_from_u64(s as u64);
                let r =
                    simulate_async_cycle_memoized(k, &srv, &mut rng, &telemetry, None, Some(&memo));
                acc += r.server_energy.value();
            }
            acc
        });
        time("Des::evaluate 1e6", &mut || {
            use crate::engine::{Backend, CycleEngine, ScenarioSpec, SimContext};
            use crate::loss::LossModel;
            let spec = ScenarioSpec::paper(ServiceKind::Cnn, 35, LossModel::NONE);
            let ctx = SimContext::new(0xF1E1D);
            let r = Backend::Des.evaluate(&spec, 1_000_000, &ctx);
            r.edge_energy_total.value()
        });
        eprintln!("sink={sink}");
    }

    /// The CPU hand-off at an exact float tie: a transfer finishing at
    /// precisely `cpu_busy_until` must join the back of a non-empty
    /// wait queue, not seize the CPU past the FIFO waiters. Constant
    /// transfer/process durations put both event streams on a shared
    /// lattice once the uplink saturates, so these ties are reachable
    /// (transfer 15 s, process 1 s, cap 35, 1000 clients hits them);
    /// the single-CPU makespan lower bound `m × process` is the
    /// tell-tale a queue-jump would break.
    #[test]
    fn cpu_ties_keep_fifo_order_and_single_occupancy() {
        let srv = server(35);
        let k = 1000usize;
        let cycle = srv.cycle.value();
        let mut rng = StdRng::seed_from_u64(0xABCD ^ k as u64);
        let mut arrivals: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..cycle)).collect();
        sort_arrival_times(&mut arrivals);
        let entries: Vec<(f64, usize)> =
            arrivals.iter().enumerate().map(|(client, &t)| (t, client)).collect();
        let exact = exact_event_loop(k, &entries, &srv, &Telemetry::ring(1), None);
        let process = srv.process_duration.value();
        assert!(
            exact.last_time >= k as f64 * process,
            "single CPU cannot finish {k} jobs of {process} s by {} s",
            exact.last_time
        );
        let fast = replay_core(k, &arrivals, None, &srv, None);
        assert_eq!(fast.completion, exact.completion);
        assert_eq!(fast.last_time, exact.last_time);
    }

    #[test]
    fn zero_clients_idle_cycle() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = simulate_async_cycle(0, &server(10), &mut rng);
        assert_eq!(r.n_clients, 0);
        assert_eq!(r.horizon, Seconds(300.0));
        assert!((r.server_energy - Joules(44.6 * 300.0)).abs() < Joules(0.5));
        assert_eq!(r.peak_queue, 0);
        assert_eq!(r.mean_latency, Seconds(0.0));
    }

    #[test]
    fn single_client_latency_is_transfer_plus_process() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = simulate_async_cycle(1, &server(10), &mut rng);
        assert!((r.mean_latency - Seconds(16.0)).abs() < Seconds(1e-9));
        assert!((r.receive_busy - Seconds(15.0)).abs() < Seconds(1e-9));
        assert!((r.process_busy - Seconds(1.0)).abs() < Seconds(1e-9));
    }

    #[test]
    fn uplink_capacity_one_serializes_transfers() {
        // Capacity 1: 5 clients → transfers serialize, so receive-busy
        // time ≥ 5×15 − overlaps-impossible = exactly the span of the busy
        // periods; worst latency ≥ 16 s.
        let mut rng = StdRng::seed_from_u64(3);
        let r = simulate_async_cycle(5, &server(1), &mut rng);
        assert!(r.receive_busy >= Seconds(75.0 - 1e-9));
        assert!(r.max_latency >= Seconds(16.0));
        assert!((r.process_busy - Seconds(5.0)).abs() < Seconds(1e-9));
    }

    #[test]
    fn all_clients_complete_and_latency_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(4);
        let r = simulate_async_cycle(180, &server(10), &mut rng);
        // Everyone processed: 180 × 1 s of CPU.
        assert!((r.process_busy - Seconds(180.0)).abs() < Seconds(1e-9));
        assert!(r.mean_latency >= Seconds(16.0 - 1e-9));
        assert!(r.max_latency >= r.mean_latency);
        assert!(r.horizon >= Seconds(300.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = simulate_async_cycle(100, &server(10), &mut StdRng::seed_from_u64(5));
        let b = simulate_async_cycle(100, &server(10), &mut StdRng::seed_from_u64(5));
        assert!((a.server_energy - b.server_energy).abs() < Joules(1e-9));
        assert_eq!(a.peak_queue, b.peak_queue);
    }

    #[test]
    fn synchronized_slots_beat_async_on_energy() {
        // The design-justifying comparison: the slotted server batches one
        // execution per slot (18 total) where the async server runs one per
        // client (180), and its receive NIC is up only 18×15 s instead of
        // the near-full union of random intervals.
        use crate::allocator::{allocate, FillPolicy};
        use crate::loss::LossModel;
        use crate::simulation::servers_cycle_energy;
        let s = server(10);
        let allocation = allocate(180, &s, FillPolicy::PackSlots, None);
        let slotted = servers_cycle_energy(&s, &allocation, &LossModel::NONE);
        let mut rng = StdRng::seed_from_u64(6);
        let async_r = simulate_async_cycle(180, &s, &mut rng);
        assert!(
            slotted + Joules(5000.0) < async_r.server_energy,
            "slotted {slotted} vs async {}",
            async_r.server_energy
        );
    }

    #[test]
    fn async_latency_is_lower_than_worst_slot_wait() {
        // What asynchrony buys instead: a client never waits for its
        // group's time slot. Mean latency ≈ 16 s versus up to a whole
        // cycle of slot wait in the synchronized design.
        let mut rng = StdRng::seed_from_u64(7);
        let r = simulate_async_cycle(180, &server(10), &mut rng);
        assert!(r.mean_latency < Seconds(40.0), "mean latency {}", r.mean_latency);
    }

    #[test]
    fn saturated_uplink_grows_queue() {
        // 400 clients on capacity 2: the uplink is the bottleneck
        // (400×15/2 = 3000 s ≫ 300 s cycle) — queue builds, horizon spills.
        let mut rng = StdRng::seed_from_u64(8);
        let r = simulate_async_cycle(400, &server(2), &mut rng);
        assert!(r.peak_queue > 50, "peak queue {}", r.peak_queue);
        assert!(r.horizon > Seconds(2000.0));
    }

    #[test]
    fn traced_cycle_counts_every_event_and_matches_untraced() {
        let n = 120;
        let tel = Telemetry::enabled();
        let mut rng = StdRng::seed_from_u64(9);
        let traced = simulate_async_cycle_traced(n, &server(10), &mut rng, &tel);
        let plain = simulate_async_cycle(n, &server(10), &mut StdRng::seed_from_u64(9));
        assert!((traced.server_energy - plain.server_energy).abs() < Joules(1e-12));
        assert_eq!(traced.peak_queue, plain.peak_queue);

        // Every client arrives, transfers and is processed exactly once.
        let snap = tel.snapshot();
        for kind in ["des.events.arrival", "des.events.transfer_done", "des.events.process_done"] {
            assert_eq!(snap.counter(kind), Some(n as u64), "{kind}");
        }
        assert_eq!(snap.gauge("des.queue_depth.peak"), Some(plain.peak_queue as f64));
        let horizon = snap.histogram("des.cycle.horizon_s").expect("horizon recorded");
        assert_eq!(horizon.count, 1);
        assert!((horizon.max - plain.horizon.value()).abs() < 1e-9);
    }

    #[test]
    fn trace_is_jsonl_with_monotone_timestamps() {
        use pb_telemetry::json::{self, Json};
        let tel = Telemetry::enabled();
        let mut rng = StdRng::seed_from_u64(10);
        let _ = simulate_async_cycle_traced(50, &server(5), &mut rng, &tel);
        // 3 events per client + the cycle_done summary.
        assert_eq!(tel.events().len(), 151);
        let jsonl = tel.to_jsonl();
        let mut last_t = f64::NEG_INFINITY;
        let mut kinds_seen = 0usize;
        for line in jsonl.lines() {
            let v = json::parse(line).expect("every trace line parses as JSON");
            let t = v.get("t").and_then(Json::as_f64).expect("t field");
            assert!(t >= last_t, "timestamps must be monotone non-decreasing");
            last_t = t;
            if v.get("kind").and_then(Json::as_str) == Some("des.cycle_done") {
                kinds_seen += 1;
                assert_eq!(v.get("n_clients").and_then(Json::as_f64), Some(50.0));
            }
        }
        assert_eq!(kinds_seen, 1, "exactly one cycle summary");
    }

    #[test]
    fn metrics_only_telemetry_skips_event_construction() {
        let tel = Telemetry::metrics_only();
        let mut rng = StdRng::seed_from_u64(11);
        let _ = simulate_async_cycle_traced(30, &server(5), &mut rng, &tel);
        assert!(tel.events().is_empty());
        assert_eq!(tel.snapshot().counter("des.events.arrival"), Some(30));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(32))]
            #[test]
            fn invariants(n in 0usize..300, cap in 1usize..40, seed in 0u64..100) {
                let s = server(cap);
                let mut rng = StdRng::seed_from_u64(seed);
                let r = simulate_async_cycle(n, &s, &mut rng);
                // CPU time is exactly n × process duration.
                prop_assert!((r.process_busy.value() - n as f64).abs() < 1e-6);
                // Receive-busy bounded by n × transfer and by the horizon.
                prop_assert!(r.receive_busy.value() <= n as f64 * 15.0 + 1e-6);
                prop_assert!(r.receive_busy.value() <= r.horizon.value() + 1e-6);
                // Energy at least the idle floor.
                let floor = s.idle_power * r.horizon;
                prop_assert!(r.server_energy >= floor - Joules(1e-6));
            }
        }
    }
}
