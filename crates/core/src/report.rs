//! Text rendering of sweep results — the figure regenerators print these.

use crate::sweep::ComparisonPoint;
use pb_telemetry::TelemetrySnapshot;
use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; the cell count must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "cell count must match headers");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned text with a header separator.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let _ = write!(out, "{cell:>w$}");
                if i + 1 < n {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (no quoting; the renderers only emit numbers and
    /// simple labels).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Builds the standard comparison table used by the Figure 7/9 renderers.
pub fn comparison_table(points: &[ComparisonPoint]) -> TextTable {
    let mut t = TextTable::new(vec![
        "clients",
        "active",
        "servers",
        "edge_J_per_client",
        "cloud_edge_J_per_client",
        "cloud_server_J_per_client",
        "cloud_total_J_per_client",
        "advantage_J",
        "winner",
    ]);
    for p in points {
        t.row(vec![
            p.n_clients.to_string(),
            p.cloud.n_active.to_string(),
            p.cloud.n_servers.to_string(),
            format!("{:.1}", p.edge.total_per_client.value()),
            format!("{:.1}", p.cloud.edge_energy_per_client.value()),
            format!("{:.1}", p.cloud.server_energy_per_client.value()),
            format!("{:.1}", p.cloud.total_per_client.value()),
            format!("{:.1}", p.advantage().value()),
            if p.cloud_wins() { "edge+cloud" } else { "edge" }.to_string(),
        ]);
    }
    t
}

/// Renders a [`TelemetrySnapshot`] as one table: counters and gauges as
/// single-value rows, histograms with their full summary. The `pb` CLI
/// prints this under `--metrics`.
pub fn metrics_table(snapshot: &TelemetrySnapshot) -> TextTable {
    let mut t =
        TextTable::new(vec!["metric", "kind", "count", "total", "min", "p50", "p95", "max"]);
    let blank = || "-".to_string();
    for (name, v) in &snapshot.counters {
        t.row(vec![
            name.clone(),
            "counter".to_string(),
            v.to_string(),
            blank(),
            blank(),
            blank(),
            blank(),
            blank(),
        ]);
    }
    for (name, v) in &snapshot.gauges {
        t.row(vec![
            name.clone(),
            "gauge".to_string(),
            blank(),
            format!("{v:.6}"),
            blank(),
            blank(),
            blank(),
            blank(),
        ]);
    }
    for (name, h) in &snapshot.histograms {
        t.row(vec![
            name.clone(),
            "histogram".to_string(),
            h.count.to_string(),
            format!("{:.6}", h.total),
            format!("{:.6}", h.min),
            format!("{:.6}", h.p50),
            format!("{:.6}", h.p95),
            format!("{:.6}", h.max),
        ]);
    }
    t
}

/// Publishes the rayon shim's process-wide pool statistics into `tel`
/// as `pool.*` metrics: counters for jobs submitted, chunk tasks
/// executed and tasks stolen by idle workers, gauges for the peak queue
/// depth and worker threads spawned, and a worker-utilization histogram
/// (fraction of the eligible lanes that actually engaged per job,
/// replayed as one observation per job at the owning bucket's
/// midpoint).
///
/// The bridge lives here rather than in the shim so the shim keeps zero
/// dependencies; call it right before snapshotting, as `pb sweep
/// --metrics` does.
pub fn publish_pool_metrics(tel: &pb_telemetry::Telemetry) {
    let stats = rayon::pool::stats();
    tel.add_to_counter("pool.jobs", stats.jobs);
    tel.add_to_counter("pool.tasks_executed", stats.tasks_executed);
    tel.add_to_counter("pool.steals", stats.steals);
    tel.set_gauge("pool.queue_depth_peak", stats.queue_depth_peak as f64);
    tel.set_gauge("pool.threads_spawned", stats.threads_spawned as f64);
    let n_buckets = stats.worker_utilization.len();
    for (i, &count) in stats.worker_utilization.iter().enumerate() {
        let midpoint = (i as f64 + 0.5) / n_buckets as f64;
        for _ in 0..count {
            tel.observe("pool.worker_utilization", midpoint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::FillPolicy;
    use crate::loss::LossModel;
    use crate::scenario::presets;
    use crate::sweep::SweepConfig;
    use crate::ServiceKind;

    #[test]
    fn render_aligns_and_separates() {
        let mut t = TextTable::new(vec!["a", "long_header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["100", "20000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers line up with headers.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(vec!["x", "y"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn pool_metrics_publish_into_telemetry() {
        use rayon::prelude::*;
        // Touch the pool so the counters are non-zero.
        let v: Vec<usize> = (0..1000).collect();
        let _: Vec<usize> = v.par_iter().map(|&x| x + 1).collect();
        let tel = pb_telemetry::Telemetry::metrics_only();
        publish_pool_metrics(&tel);
        let snap = tel.snapshot();
        assert!(snap.counter("pool.tasks_executed").unwrap() > 0);
        assert!(snap.counter("pool.jobs").is_some());
        assert!(snap.counter("pool.steals").is_some());
        assert!(snap.gauge("pool.queue_depth_peak").is_some());
        assert!(snap.gauge("pool.threads_spawned").is_some());
        // Utilization replays one observation per pooled job.
        let h = snap.histogram("pool.worker_utilization");
        if let Some(h) = h {
            assert!(h.min >= 0.0 && h.max <= 1.0);
        }
        // Rendering the combined table must not panic.
        let _ = metrics_table(&snap).render();
    }

    #[test]
    #[should_panic(expected = "match headers")]
    fn wrong_cell_count_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn metrics_table_renders_all_three_kinds() {
        use pb_telemetry::Telemetry;
        let tel = Telemetry::metrics_only();
        tel.add_to_counter("allocation_cache.hits", 7);
        tel.set_gauge("des.queue_depth.peak", 4.0);
        tel.observe("dsp.mel", 0.002);
        tel.observe("dsp.mel", 0.004);
        let t = metrics_table(&tel.snapshot());
        assert_eq!(t.len(), 3);
        let text = t.render();
        assert!(text.contains("allocation_cache.hits"));
        assert!(text.contains("counter"));
        assert!(text.contains("gauge"));
        assert!(text.contains("histogram"));
        // Histogram row carries its count and exact extremes.
        assert!(text.contains("0.002000"));
        assert!(text.contains("0.004000"));
    }

    #[test]
    fn comparison_table_from_sweep() {
        let sweep = SweepConfig {
            edge_client: presets::edge_client(ServiceKind::Cnn),
            cloud_client: presets::edge_cloud_client(),
            server: presets::cloud_server(ServiceKind::Cnn, 35),
            loss: LossModel::NONE,
            policy: FillPolicy::PackSlots,
            seed: 1,
        };
        let points = sweep.run_range(600, 700, 50);
        let t = comparison_table(&points);
        assert_eq!(t.len(), 3);
        let text = t.render();
        assert!(text.contains("edge+cloud"));
        let csv = t.to_csv();
        assert!(csv.starts_with("clients,"));
    }
}
