//! Columnar (struct-of-arrays) fleet state.
//!
//! Per-client simulation state used to live in `Vec`s of structs and
//! enums scattered across the fault machinery; at fleet sizes of 10⁵–10⁶
//! clients those allocations and their pointer-chasing dominate a sweep
//! point. [`FleetColumns`] keeps the per-client state as four flat
//! buffers — phase, transfer attempts, fault-stream cursor (`u32`) and a
//! fault-energy surcharge (`f64`) — that batched operations chunk over
//! with a **deterministic chunk plan**: chunk boundaries are a pure
//! function of the column length ([`FleetColumns::CHUNK`]-sized pieces),
//! never of the worker count, so the persistent work-stealing pool can
//! execute them in any order while integer reductions stay bit-identical
//! across `RAYON_NUM_THREADS` ∈ {1, 2, N}.
//!
//! The columns never touch RNG streams: [`FleetColumns::draw`] consumes
//! the point's fault stream in exactly the order the old
//! `Vec<ClientClass>` population draw did (pinned by the fault-replay
//! suite), and the cursor column merely *records* how many draws each
//! client consumed, giving replay tooling a per-client offset into the
//! fault stream.

use crate::faults::{ClientClass, FaultPlan};
use pb_telemetry::Telemetry;
use pb_units::Joules;
use rand::{Rng, RngCore};
use rayon::prelude::*;

/// Encodes a [`ClientClass`] into its phase-column representation.
const fn encode(class: ClientClass) -> u32 {
    match class {
        ClientClass::Uploader => 0,
        ClientClass::Brownout => 1,
        ClientClass::SensorDropout => 2,
    }
}

/// Decodes a phase-column entry back into a [`ClientClass`].
fn decode(phase: u32) -> ClientClass {
    match phase {
        0 => ClientClass::Uploader,
        1 => ClientClass::Brownout,
        2 => ClientClass::SensorDropout,
        other => unreachable!("invalid phase column entry {other}"),
    }
}

/// A borrowed, zero-copy view over a contiguous range of the phase
/// column, decoding [`ClientClass`] on access. Replaces `&[ClientClass]`
/// in the faulted-cycle signatures so callers slice columns instead of
/// materializing per-client vectors.
#[derive(Clone, Copy, Debug)]
pub struct ClassView<'a> {
    phase: &'a [u32],
}

impl<'a> ClassView<'a> {
    /// Number of clients in the view.
    pub fn len(&self) -> usize {
        self.phase.len()
    }

    /// True when the view covers no clients.
    pub fn is_empty(&self) -> bool {
        self.phase.is_empty()
    }

    /// The class of client `i` (relative to the view's start).
    pub fn get(&self, i: usize) -> ClientClass {
        decode(self.phase[i])
    }

    /// Iterates the classes in client order.
    pub fn iter(&self) -> impl Iterator<Item = ClientClass> + 'a {
        self.phase.iter().map(|&p| decode(p))
    }

    /// A sub-view over `range` (client indices relative to this view).
    pub fn slice(&self, range: std::ops::Range<usize>) -> ClassView<'a> {
        ClassView { phase: &self.phase[range] }
    }
}

/// Struct-of-arrays per-client fleet state for one faulted cycle.
///
/// One row per *active* client, in client-index order (the same order
/// the fault stream is consumed in):
///
/// * `phase` — the drawn [`ClientClass`], encoded;
/// * `attempts` — transfer attempts resolved for the client (0 until its
///   transfer is resolved; 1 = first try succeeded; retries beyond the
///   first show up as `attempts − 1`);
/// * `cursor` — fault-stream draws the client consumed (classification
///   plus transfer resolution), i.e. its offset width in the stream;
/// * `energy` — per-client fault-energy surcharge in joules (filled by
///   [`FleetColumns::fill_retry_energy`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetColumns {
    phase: Vec<u32>,
    attempts: Vec<u32>,
    cursor: Vec<u32>,
    energy: Vec<f64>,
}

impl FleetColumns {
    /// Deterministic chunk width for batched column operations. A pure
    /// constant — chunk boundaries depend only on the column length, so
    /// reductions over chunks are bit-identical at any thread count.
    pub const CHUNK: usize = 8192;

    /// Draws every client's class for the cycle, in client-index order,
    /// from the point's fault stream — byte-for-byte the same draw
    /// sequence as the historical `Vec<ClientClass>` population draw
    /// (zero probabilities consume no RNG), now recorded columnar.
    pub fn draw<R: Rng + ?Sized>(plan: &FaultPlan, active: usize, rng: &mut R) -> FleetColumns {
        let p_brown = plan.brownout.map_or(0.0, |b| b.probability);
        let p_sensor = plan.sensor_dropout;
        let mut cols = FleetColumns {
            phase: Vec::with_capacity(active),
            attempts: vec![0; active],
            cursor: Vec::with_capacity(active),
            energy: vec![0.0; active],
        };
        for _ in 0..active {
            let mut draws = 0u32;
            let class = if p_brown > 0.0 && {
                draws += 1;
                rng.gen::<f64>() < p_brown
            } {
                ClientClass::Brownout
            } else if p_sensor > 0.0 && {
                draws += 1;
                rng.gen::<f64>() < p_sensor
            } {
                ClientClass::SensorDropout
            } else {
                ClientClass::Uploader
            };
            cols.phase.push(encode(class));
            cols.cursor.push(draws);
        }
        cols
    }

    /// Number of clients (rows).
    pub fn len(&self) -> usize {
        self.phase.len()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.phase.is_empty()
    }

    /// Number of chunks the deterministic chunk plan covers this fleet
    /// with (what batched operations hand to the pool).
    pub fn chunk_count(&self) -> usize {
        self.len().div_ceil(Self::CHUNK)
    }

    /// The class of client `i`.
    pub fn class(&self, i: usize) -> ClientClass {
        decode(self.phase[i])
    }

    /// A view over the whole phase column.
    pub fn classes(&self) -> ClassView<'_> {
        ClassView { phase: &self.phase }
    }

    /// Counts (brown-outs, sensor dropouts), reduced chunk-wise over the
    /// worker pool. Integer sums are associative, so the result is
    /// bit-identical at any thread count.
    pub fn class_counts(&self) -> (usize, usize) {
        if self.phase.is_empty() {
            return (0, 0);
        }
        self.phase
            .par_chunks(Self::CHUNK)
            .map(|chunk| {
                let mut brown = 0usize;
                let mut sensor = 0usize;
                for &p in chunk {
                    brown += usize::from(p == encode(ClientClass::Brownout));
                    sensor += usize::from(p == encode(ClientClass::SensorDropout));
                }
                (brown, sensor)
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
    }

    /// Records the resolved transfer of client `i`: its attempt count
    /// and how many further fault-stream draws the resolution consumed.
    pub fn record_transfer(&mut self, i: usize, attempts: u64, draws: u32) {
        self.attempts[i] = attempts.min(u32::MAX as u64) as u32;
        self.cursor[i] = self.cursor[i].saturating_add(draws);
    }

    /// Transfer attempts recorded for client `i`.
    pub fn attempts(&self, i: usize) -> u32 {
        self.attempts[i]
    }

    /// Fault-stream draws client `i` consumed (classification plus
    /// transfer resolution).
    pub fn cursor(&self, i: usize) -> u32 {
        self.cursor[i]
    }

    /// Per-client fault-energy surcharge.
    pub fn energy(&self, i: usize) -> f64 {
        self.energy[i]
    }

    /// Total retries across the fleet (attempts beyond each client's
    /// first), reduced chunk-wise over the pool.
    pub fn total_retries(&self) -> u64 {
        if self.attempts.is_empty() {
            return 0;
        }
        self.attempts
            .par_chunks(Self::CHUNK)
            .map(|chunk| chunk.iter().map(|&a| u64::from(a.saturating_sub(1))).sum::<u64>())
            .reduce(|| 0, |a, b| a + b)
    }

    /// Total transfer attempts across the fleet, reduced chunk-wise over
    /// the pool (clients whose transfer never resolved contribute 0).
    pub fn total_attempts(&self) -> u64 {
        if self.attempts.is_empty() {
            return 0;
        }
        self.attempts
            .par_chunks(Self::CHUNK)
            .map(|chunk| chunk.iter().map(|&a| u64::from(a)).sum::<u64>())
            .reduce(|| 0, |a, b| a + b)
    }

    /// Sum of the energy column, reduced chunk-wise over the pool. The
    /// chunk plan (and the shim's in-order partial combine) is a pure
    /// function of the column length, so the floating-point result is
    /// bit-identical at any thread count.
    pub fn energy_total(&self) -> Joules {
        if self.energy.is_empty() {
            return Joules::ZERO;
        }
        Joules(
            self.energy
                .par_chunks(Self::CHUNK)
                .map(|chunk| chunk.iter().sum::<f64>())
                .reduce(|| 0.0, |a, b| a + b),
        )
    }

    /// Fills the energy column from the attempts column: client `i` pays
    /// `(attempts − 1) · per_retry`. Elementwise (no cross-client
    /// reduction), executed as an order-preserving parallel map over the
    /// deterministic chunk plan.
    pub fn fill_retry_energy(&mut self, per_retry: Joules) {
        let per = per_retry.value();
        self.energy = self
            .attempts
            .par_iter()
            .with_min_len(Self::CHUNK)
            .map(|&a| f64::from(a.saturating_sub(1)) * per)
            .collect();
    }
}

/// Columnar record of one server's *resolved* transfers: effective
/// arrival time, local client index and attempt count as flat columns,
/// filled in client order by the faulted cycle's fault pre-pass.
///
/// The DES fast path partitions these rows into **clean** deliveries
/// (first attempt succeeded, so the effective time *is* the client's
/// sorted wake-up instant — the rows are already time-ordered) and
/// **divergent** ones (retries pushed the client to a later, unordered
/// instant). Merging the sorted clean run with the sorted divergent
/// tail reproduces the calendar queue's exact `(time, push index)` pop
/// order in O(m + d log d) for `d` divergent clients, instead of
/// re-sorting all m rows — and instead of running the event loop at
/// all.
#[derive(Clone, Debug, Default)]
pub struct TransferColumns {
    t_eff: Vec<f64>,
    client: Vec<u32>,
    attempts: Vec<u32>,
}

impl TransferColumns {
    /// An empty column set with room for `n` rows.
    pub fn with_capacity(n: usize) -> Self {
        TransferColumns {
            t_eff: Vec::with_capacity(n),
            client: Vec::with_capacity(n),
            attempts: Vec::with_capacity(n),
        }
    }

    /// Appends a resolved transfer (rows arrive in client order).
    pub fn push(&mut self, t_eff: f64, client: usize, attempts: u64) {
        self.t_eff.push(t_eff);
        self.client.push(client as u32);
        self.attempts.push(attempts.min(u32::MAX as u64) as u32);
    }

    /// Number of resolved transfers.
    pub fn len(&self) -> usize {
        self.t_eff.len()
    }

    /// True when no transfer resolved.
    pub fn is_empty(&self) -> bool {
        self.t_eff.is_empty()
    }

    /// Rows whose effective time diverged from the arrival stream
    /// (needed more than one attempt).
    pub fn divergent_count(&self) -> usize {
        self.attempts.iter().filter(|&&a| a > 1).count()
    }

    /// The rows as `(time, client)` pairs in *push* order (client
    /// order) — what the exact event loop consumes, so its sequence
    /// numbers match the historical per-client push loop.
    pub fn push_order_entries(&self) -> Vec<(f64, usize)> {
        self.t_eff.iter().zip(&self.client).map(|(&t, &c)| (t, c as usize)).collect()
    }

    /// The rows in calendar *pop* order — time ascending, ties in push
    /// order — as separate time and client columns (the shape the DES
    /// replay consumes), via the clean/divergent merge described on
    /// the type.
    pub fn pop_order_columns(&self) -> (Vec<f64>, Vec<u32>) {
        let m = self.len();
        let mut clean: Vec<(f64, u32, u32)> = Vec::with_capacity(m);
        let mut divergent: Vec<(f64, u32, u32)> = Vec::new();
        for i in 0..m {
            let row = (self.t_eff[i], i as u32, self.client[i]);
            if self.attempts[i] > 1 {
                divergent.push(row);
            } else {
                clean.push(row);
            }
        }
        // Clean rows inherit the arrival sort; only the divergent tail
        // needs ordering. The sort key (time, push index) matches the
        // calendar queue's (time, seq) tie-break exactly.
        divergent.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut times: Vec<f64> = Vec::with_capacity(m);
        let mut clients: Vec<u32> = Vec::with_capacity(m);
        let (mut ci, mut di) = (0usize, 0usize);
        while ci < clean.len() || di < divergent.len() {
            let take_clean = match (clean.get(ci), divergent.get(di)) {
                (Some(c), Some(d)) => c.0.total_cmp(&d.0).then(c.1.cmp(&d.1)).is_lt(),
                (Some(_), None) => true,
                _ => false,
            };
            let (t, _, client) = if take_clean {
                ci += 1;
                clean[ci - 1]
            } else {
                di += 1;
                divergent[di - 1]
            };
            times.push(t);
            clients.push(client);
        }
        (times, clients)
    }

    /// [`TransferColumns::pop_order_columns`] zipped into `(time,
    /// client)` pairs.
    pub fn pop_order_entries(&self) -> Vec<(f64, usize)> {
        let (times, clients) = self.pop_order_columns();
        times.into_iter().zip(clients).map(|(t, c)| (t, c as usize)).collect()
    }
}

/// Mirrors the fleet's columnar shape into telemetry: the
/// `columns.clients` and `columns.chunks` gauges record the largest
/// fleet seen and how many pool chunks its batched operations span.
pub(crate) fn publish_columns(telemetry: &Telemetry, columns: &FleetColumns) {
    if !telemetry.is_enabled() {
        return;
    }
    if let Some(r) = telemetry.registry() {
        r.gauge("columns.clients").set_max(columns.len() as f64);
        r.gauge("columns.chunks").set_max(columns.chunk_count() as f64);
    }
}

/// Wraps an RNG and counts the draws passing through, so per-client
/// fault-stream consumption can be recorded into the cursor column
/// without touching the stream itself.
pub(crate) struct CountingRng<'a, R: RngCore + ?Sized> {
    inner: &'a mut R,
    draws: u32,
}

impl<'a, R: RngCore + ?Sized> CountingRng<'a, R> {
    /// Wraps `inner`, starting the draw count at zero.
    pub(crate) fn new(inner: &'a mut R) -> Self {
        CountingRng { inner, draws: 0 }
    }

    /// Draws counted so far.
    pub(crate) fn draws(&self) -> u32 {
        self.draws
    }
}

impl<R: RngCore + ?Sized> RngCore for CountingRng<'_, R> {
    fn next_u32(&mut self) -> u32 {
        self.draws = self.draws.saturating_add(1);
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.draws = self.draws.saturating_add(1);
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.draws = self.draws.saturating_add(1);
        self.inner.fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Brownout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_plan() -> FaultPlan {
        FaultPlan {
            brownout: Some(Brownout { probability: 0.3 }),
            sensor_dropout: 0.3,
            ..FaultPlan::NONE
        }
    }

    #[test]
    fn draw_matches_row_wise_reference() {
        // The columnar draw must consume the fault stream exactly like
        // the historical per-client enum draw.
        let plan = mixed_plan();
        let cols = FleetColumns::draw(&plan, 500, &mut StdRng::seed_from_u64(9));
        let mut rng = StdRng::seed_from_u64(9);
        let reference: Vec<ClientClass> = (0..500)
            .map(|_| {
                if rng.gen::<f64>() < 0.3 {
                    ClientClass::Brownout
                } else if rng.gen::<f64>() < 0.3 {
                    ClientClass::SensorDropout
                } else {
                    ClientClass::Uploader
                }
            })
            .collect();
        assert_eq!(cols.len(), 500);
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(cols.class(i), *want, "client {i}");
        }
        // Cursor: brown-outs consumed one draw, everyone else two.
        for i in 0..cols.len() {
            let want = if cols.class(i) == ClientClass::Brownout { 1 } else { 2 };
            assert_eq!(cols.cursor(i), want, "client {i}");
        }
    }

    #[test]
    fn zero_probabilities_consume_no_rng() {
        use rand::RngCore;
        let mut rng = StdRng::seed_from_u64(9);
        let before = rng.clone().next_u64();
        let cols = FleetColumns::draw(&FaultPlan::NONE, 100, &mut rng);
        assert_eq!(rng.next_u64(), before, "no RNG consumed");
        assert!(cols.classes().iter().all(|c| c == ClientClass::Uploader));
        assert!((0..cols.len()).all(|i| cols.cursor(i) == 0));
    }

    #[test]
    fn class_counts_match_a_serial_scan_across_chunk_boundaries() {
        // Cross several chunk boundaries so the pooled reduction is
        // genuinely multi-chunk.
        let plan = mixed_plan();
        let n = 3 * FleetColumns::CHUNK + 17;
        let cols = FleetColumns::draw(&plan, n, &mut StdRng::seed_from_u64(4));
        let brown = cols.classes().iter().filter(|c| *c == ClientClass::Brownout).count();
        let sensor = cols.classes().iter().filter(|c| *c == ClientClass::SensorDropout).count();
        assert_eq!(cols.class_counts(), (brown, sensor));
        assert_eq!(cols.chunk_count(), 4);
    }

    #[test]
    fn class_counts_are_thread_count_invariant() {
        let plan = mixed_plan();
        let cols = FleetColumns::draw(&plan, 50_000, &mut StdRng::seed_from_u64(11));
        let wide = cols.class_counts();
        let narrow = rayon::pool::with_thread_cap(1, || cols.class_counts());
        assert_eq!(wide, narrow);
    }

    #[test]
    fn views_slice_without_copying() {
        let plan = mixed_plan();
        let cols = FleetColumns::draw(&plan, 100, &mut StdRng::seed_from_u64(2));
        let view = cols.classes();
        let tail = view.slice(60..100);
        assert_eq!(tail.len(), 40);
        for i in 0..40 {
            assert_eq!(tail.get(i), cols.class(60 + i));
        }
        assert!(!tail.is_empty());
        assert_eq!(view.slice(0..0).len(), 0);
    }

    #[test]
    fn transfer_records_flow_into_retries_and_energy() {
        let mut cols = FleetColumns::draw(&FaultPlan::NONE, 4, &mut StdRng::seed_from_u64(1));
        cols.record_transfer(0, 1, 0); // clean first try
        cols.record_transfer(1, 3, 5); // two retries, five stream draws
        cols.record_transfer(2, 4, 6);
        // Client 3 never resolves (e.g. brown-out): attempts stay 0.
        assert_eq!(cols.attempts(1), 3);
        assert_eq!(cols.cursor(1), 5);
        assert_eq!(cols.total_retries(), 5, "two retries plus three, none elsewhere");
        assert_eq!(cols.total_attempts(), 8);
        cols.fill_retry_energy(Joules(10.0));
        assert_eq!(cols.energy(0), 0.0);
        assert_eq!(cols.energy(1), 20.0);
        assert_eq!(cols.energy(2), 30.0);
        assert_eq!(cols.energy(3), 0.0);
        assert_eq!(cols.energy_total(), Joules(50.0));
    }

    #[test]
    fn counting_rng_is_transparent() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut counted = CountingRng::new(&mut a);
        let x: f64 = counted.gen();
        let y: f64 = counted.gen();
        assert!(counted.draws() >= 2);
        assert_eq!((x, y), (b.gen::<f64>(), b.gen::<f64>()));
        // The wrapped stream continues where the wrapper left off.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn pop_order_merge_matches_a_stable_sort() {
        // Clean rows keep a sorted time column; divergent rows scatter.
        // The merge must equal a stable sort of all rows by time (stable
        // sort preserves push order at ties — the calendar tie-break).
        let mut cols = TransferColumns::with_capacity(8);
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = 0.0;
        let mut reference: Vec<(f64, usize)> = Vec::new();
        for client in 0..200usize {
            t += rng.gen::<f64>();
            let retried = rng.gen::<f64>() < 0.3;
            let (t_eff, attempts) = if retried { (t + 40.0 * rng.gen::<f64>(), 3) } else { (t, 1) };
            cols.push(t_eff, client, attempts);
            reference.push((t_eff, client));
        }
        assert_eq!(cols.push_order_entries(), reference);
        reference.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(cols.pop_order_entries(), reference);
        assert!(cols.divergent_count() > 10);
        assert_eq!(cols.len(), 200);
        assert!(!cols.is_empty());
    }

    #[test]
    fn all_clean_pop_order_is_push_order() {
        let mut cols = TransferColumns::with_capacity(4);
        for (i, t) in [1.0, 2.5, 7.0].into_iter().enumerate() {
            cols.push(t, i, 1);
        }
        assert_eq!(cols.pop_order_entries(), cols.push_order_entries());
        assert_eq!(cols.divergent_count(), 0);
        assert!(TransferColumns::default().pop_order_entries().is_empty());
    }

    #[test]
    fn empty_fleet_is_well_behaved() {
        let cols = FleetColumns::default();
        assert!(cols.is_empty());
        assert_eq!(cols.class_counts(), (0, 0));
        assert_eq!(cols.total_retries(), 0);
        assert_eq!(cols.chunk_count(), 0);
    }
}
