//! Heterogeneous fleets: several beekeepers, one network.
//!
//! Section VI motivates "an organization of several beekeepers putting
//! their hardware in one unique network of edge and cloud computing". The
//! paper simulates a homogeneous population; this module extends the model
//! to a fleet of *groups* with different wake-up periods (each an integer
//! multiple of the server's base cycle): a group with ratio 3 only uploads
//! every third cycle. Server provisioning must cover the *peak* cycle,
//! while energy is averaged over the fleet's hyper-period — so staggering
//! group phases reduces both, which the fleet simulator quantifies.

use crate::allocator::FillPolicy;
use crate::client::ClientModel;
use crate::engine::SimContext;
use crate::loss::LossModel;
use crate::server::ServerModel;
use crate::simulation::{edge_cycle_energy, servers_cycle_energy};
use pb_units::Joules;
use rayon::prelude::*;

/// One homogeneous group within the fleet.
#[derive(Clone, Debug)]
pub struct FleetGroup {
    /// Group label (e.g. a beekeeper's name).
    pub name: String,
    /// The group's client model. Its `wake_period` must be an integer
    /// multiple of the server cycle.
    pub client: ClientModel,
    /// Number of hives in the group.
    pub count: usize,
    /// Phase offset in base cycles (0 ≤ phase < ratio). Groups with the
    /// same ratio but different phases never collide.
    pub phase: usize,
}

impl FleetGroup {
    /// The group's wake-up ratio with respect to `cycle`: how many base
    /// cycles pass between the group's uploads.
    pub fn ratio(&self, server: &ServerModel) -> usize {
        let r = self.client.wake_period / server.cycle;
        let rounded = r.round();
        assert!(
            (r - rounded).abs() < 1e-9 && rounded >= 1.0,
            "group '{}': wake period must be a positive integer multiple of the server cycle",
            self.name
        );
        rounded as usize
    }

    /// True when the group uploads in base cycle `j`.
    pub fn active_in(&self, j: usize, server: &ServerModel) -> bool {
        j % self.ratio(server) == self.phase % self.ratio(server)
    }
}

/// Aggregate results of a fleet simulation over one hyper-period.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Length of the hyper-period in base cycles.
    pub hyper_period: usize,
    /// Largest simultaneous upload population across the hyper-period.
    pub peak_clients: usize,
    /// Servers needed to cover the peak cycle.
    pub servers_provisioned: usize,
    /// Mean server energy per base cycle, averaged over the hyper-period.
    pub mean_server_energy_per_cycle: Joules,
    /// Total edge energy of the whole fleet over the hyper-period.
    pub edge_energy_per_hyper_period: Joules,
    /// Total (edge + server) energy per hive per base cycle.
    pub total_per_hive_per_cycle: Joules,
}

fn lcm(a: usize, b: usize) -> usize {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    a / gcd(a, b) * b
}

/// Simulates one hyper-period of a heterogeneous fleet sharing servers.
///
/// Random client loss is intentionally excluded (it would make the peak
/// provisioning ill-defined); apply Loss A/B via `loss` as usual.
pub fn simulate_fleet(
    groups: &[FleetGroup],
    server: &ServerModel,
    loss: &LossModel,
    policy: FillPolicy,
) -> FleetReport {
    simulate_fleet_with(groups, server, loss, policy, &SimContext::new(0))
}

/// [`simulate_fleet`] with an explicit [`SimContext`], so the per-cycle
/// allocations are memoized in `ctx`'s shared cache. A hyper-period
/// re-allocates the same group populations every cycle, which makes the
/// fleet the heaviest allocator customer in the crate — and the best
/// cache customer. The fleet model draws no randomness, so only the
/// context's cache matters.
pub fn simulate_fleet_with(
    groups: &[FleetGroup],
    server: &ServerModel,
    loss: &LossModel,
    policy: FillPolicy,
    ctx: &SimContext,
) -> FleetReport {
    assert!(!groups.is_empty(), "fleet must contain at least one group");
    assert!(loss.client_loss.is_none(), "random client loss is not supported in fleet mode");
    let hyper_period = groups.iter().map(|g| g.ratio(server)).fold(1, lcm);
    let n_hives: usize = groups.iter().map(|g| g.count).sum();
    let penalty = loss.transfer.as_ref();
    let cache = ctx.cache();

    // First pass: per-cycle participation and the provisioning peak.
    let participants_per_cycle: Vec<usize> = (0..hyper_period)
        .map(|j| groups.iter().filter(|g| g.active_in(j, server)).map(|g| g.count).sum())
        .collect();
    let peak_clients = participants_per_cycle.iter().copied().max().unwrap_or(0);
    let servers_provisioned =
        cache.get_or_allocate(peak_clients, server, policy, penalty).n_servers();

    // Second pass: energy. Provisioned servers are always on (the paper's
    // "a server that must be turned on and available at all times"), so a
    // cycle that uses fewer servers than provisioned bills the difference
    // at idle. Cycles are independent given the shared allocation cache,
    // so the hyper-period fans out in parallel; the per-cycle pairs are
    // then folded in cycle order, keeping the totals deterministic.
    let per_cycle: Vec<(Joules, Joules)> = (0..hyper_period)
        .into_par_iter()
        .map(|j| {
            let participants = participants_per_cycle[j];
            let allocation = cache.get_or_allocate(participants, server, policy, penalty);
            let mut server_energy = servers_cycle_energy(server, &allocation, loss);
            let spare = servers_provisioned - allocation.n_servers();
            server_energy += server.idle_cycle_energy() * spare as f64;
            // Each active group pays one upload cycle of its own client
            // model; its transfer penalty is evaluated against its own
            // slot occupancy.
            let mut edge_energy = Joules::ZERO;
            for g in groups.iter().filter(|g| g.active_in(j, server)) {
                let own_allocation = cache.get_or_allocate(g.count, server, policy, penalty);
                edge_energy += edge_cycle_energy(&g.client, &own_allocation, loss);
            }
            (server_energy, edge_energy)
        })
        .collect();
    let mut server_energy_total = Joules::ZERO;
    let mut edge_energy_upload_cycles = Joules::ZERO;
    for (server_energy, edge_energy) in per_cycle {
        server_energy_total += server_energy;
        edge_energy_upload_cycles += edge_energy;
    }

    let mean_server = server_energy_total / hyper_period as f64;
    let total = edge_energy_upload_cycles + server_energy_total;
    let total_per_hive_per_cycle = total / (n_hives * hyper_period) as f64;

    FleetReport {
        hyper_period,
        peak_clients,
        servers_provisioned,
        mean_server_energy_per_cycle: mean_server,
        edge_energy_per_hyper_period: edge_energy_upload_cycles,
        total_per_hive_per_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::presets;
    use crate::ServiceKind;
    use pb_units::Seconds;

    fn base_client() -> ClientModel {
        presets::edge_cloud_client()
    }

    fn slow_client(ratio: f64) -> ClientModel {
        presets::edge_cloud_client_with_period(Seconds(300.0 * ratio))
    }

    fn server(cap: usize) -> ServerModel {
        presets::cloud_server(ServiceKind::Cnn, cap)
    }

    fn group(name: &str, client: ClientModel, count: usize, phase: usize) -> FleetGroup {
        FleetGroup { name: name.into(), client, count, phase }
    }

    #[test]
    fn homogeneous_fleet_matches_plain_simulation() {
        let g = group("solo", base_client(), 180, 0);
        let report = simulate_fleet(&[g], &server(10), &LossModel::NONE, FillPolicy::PackSlots);
        assert_eq!(report.hyper_period, 1);
        assert_eq!(report.peak_clients, 180);
        assert_eq!(report.servers_provisioned, 1);
        // 322 J edge + 117 J server share per hive per cycle.
        assert!((report.total_per_hive_per_cycle - Joules(439.0)).abs() < Joules(1.5));
    }

    #[test]
    fn ratios_and_activity() {
        let s = server(10);
        let g2 = group("g2", slow_client(2.0), 5, 0);
        assert_eq!(g2.ratio(&s), 2);
        assert!(g2.active_in(0, &s));
        assert!(!g2.active_in(1, &s));
        assert!(g2.active_in(2, &s));
        let g2p = group("g2p", slow_client(2.0), 5, 1);
        assert!(!g2p.active_in(0, &s));
        assert!(g2p.active_in(1, &s));
    }

    #[test]
    #[should_panic(expected = "integer multiple")]
    fn fractional_ratio_panics() {
        let g = group("bad", slow_client(1.5), 5, 0);
        let _ = g.ratio(&server(10));
    }

    #[test]
    fn hyper_period_is_lcm_of_ratios() {
        let groups = [
            group("fast", base_client(), 10, 0),
            group("slow", slow_client(3.0), 10, 0),
            group("slower", slow_client(4.0), 10, 0),
        ];
        let report = simulate_fleet(&groups, &server(10), &LossModel::NONE, FillPolicy::PackSlots);
        assert_eq!(report.hyper_period, 12);
        // All three collide at cycle 0 → peak 30.
        assert_eq!(report.peak_clients, 30);
    }

    #[test]
    fn staggering_cuts_the_peak() {
        // Two slow groups of 180: in phase they need 2 servers at the
        // collision cycle; staggered they fit in 1 server per cycle.
        let aligned = [group("a", slow_client(2.0), 180, 0), group("b", slow_client(2.0), 180, 0)];
        let staggered =
            [group("a", slow_client(2.0), 180, 0), group("b", slow_client(2.0), 180, 1)];
        let s = server(10);
        let ra = simulate_fleet(&aligned, &s, &LossModel::NONE, FillPolicy::PackSlots);
        let rs = simulate_fleet(&staggered, &s, &LossModel::NONE, FillPolicy::PackSlots);
        assert_eq!(ra.peak_clients, 360);
        assert_eq!(rs.peak_clients, 180);
        assert_eq!(ra.servers_provisioned, 2);
        assert_eq!(rs.servers_provisioned, 1);
        // Staggering also lowers the mean server energy (fewer idle-heavy
        // partial servers).
        assert!(rs.mean_server_energy_per_cycle <= ra.mean_server_energy_per_cycle + Joules(1e-6));
    }

    #[test]
    fn slow_groups_amortize_their_uploads() {
        // A group that wakes every other cycle pays for one upload per two
        // cycles: its long sleep is embedded in its own cycle energy.
        let fast = simulate_fleet(
            &[group("fast", base_client(), 50, 0)],
            &server(10),
            &LossModel::NONE,
            FillPolicy::PackSlots,
        );
        let slow = simulate_fleet(
            &[group("slow", slow_client(2.0), 50, 0)],
            &server(10),
            &LossModel::NONE,
            FillPolicy::PackSlots,
        );
        // Per hive per base cycle the slow group pays less at the edge
        // (sleeping is cheaper than waking) and less at the server (half
        // the uploads, though the idle server still burns).
        assert!(slow.total_per_hive_per_cycle < fast.total_per_hive_per_cycle);
    }

    #[test]
    fn losses_apply_in_fleet_mode() {
        let groups = [group("g", base_client(), 100, 0)];
        let none = simulate_fleet(&groups, &server(10), &LossModel::NONE, FillPolicy::PackSlots);
        let lossy = simulate_fleet(
            &groups,
            &server(10),
            &LossModel::saturation_only(),
            FillPolicy::PackSlots,
        );
        assert!(lossy.mean_server_energy_per_cycle > none.mean_server_energy_per_cycle);
    }

    #[test]
    fn shared_context_memoizes_hyper_period_allocations() {
        let groups = [
            group("fast", base_client(), 10, 0),
            group("slow", slow_client(3.0), 10, 0),
            group("slower", slow_client(4.0), 10, 0),
        ];
        let ctx = SimContext::new(0);
        let a = simulate_fleet_with(
            &groups,
            &server(10),
            &LossModel::NONE,
            FillPolicy::PackSlots,
            &ctx,
        );
        // 12 cycles over ≤ 4 distinct participation levels plus 3 group
        // sizes: almost everything after the first cycle is a cache hit…
        assert!(
            ctx.cache().hits() > ctx.cache().misses(),
            "hits {} misses {}",
            ctx.cache().hits(),
            ctx.cache().misses()
        );
        // …and memoization must not change the physics.
        let b = simulate_fleet(&groups, &server(10), &LossModel::NONE, FillPolicy::PackSlots);
        assert_eq!(a.hyper_period, b.hyper_period);
        assert_eq!(a.servers_provisioned, b.servers_provisioned);
        assert!((a.total_per_hive_per_cycle - b.total_per_hive_per_cycle).abs() < Joules(1e-9));
    }

    #[test]
    #[should_panic(expected = "not supported in fleet mode")]
    fn client_loss_rejected() {
        let groups = [group("g", base_client(), 10, 0)];
        let _ = simulate_fleet(
            &groups,
            &server(10),
            &LossModel::client_loss_only(),
            FillPolicy::PackSlots,
        );
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_fleet_panics() {
        let _ = simulate_fleet(&[], &server(10), &LossModel::NONE, FillPolicy::PackSlots);
    }
}
