//! Event-level timeline rendering of one cycle.
//!
//! The sweep layer computes cycle energies in closed form. This module
//! renders the same cycle as an explicit event timeline — every slot's
//! receive window and service execution as dwell intervals on the server's
//! power-state machine, and the client's actions on its own machine — so
//! the closed-form numbers can be validated against a trapezoidal
//! integration of the resulting power trace, and so the Figure 4-style
//! chronology ("the edge starts shutting down as the server executes the
//! service's tasks") can be inspected and plotted.

use crate::allocator::{Allocation, FillPolicy};
use crate::client::ClientModel;
use crate::loss::LossModel;
use crate::server::ServerModel;
use pb_energy::state::{PowerState, StateMachine};
use pb_units::{Joules, Seconds};

/// Renders one server's cycle as a power-state machine: the slots run
/// back-to-back from the start of the cycle, then the server idles.
pub fn server_timeline(server: &ServerModel, slots: &[usize], loss: &LossModel) -> StateMachine {
    let penalty = loss.transfer.as_ref();
    let mut m = StateMachine::new(PowerState::active("idle"));
    for (i, &k) in slots.iter().enumerate() {
        if k == 0 {
            continue;
        }
        let sat = loss.saturation.as_ref().map_or(1.0, |s| s.multiplier(k, server.max_parallel));
        let recv = server.receive_window(k, penalty);
        m.dwell(PowerState::active(format!("receive slot {i}")), server.receive_power * sat, recv);
        m.dwell(
            PowerState::active(format!("process slot {i}")),
            server.process_power * sat,
            server.process_duration,
        );
    }
    let busy = m.clock();
    assert!(busy.value() <= server.cycle.value() + 1e-9, "slots overflow the cycle: busy {busy}");
    m.dwell(PowerState::active("idle"), server.idle_power, server.cycle - busy);
    m
}

/// Renders one client's cycle as a power-state machine, with its transfer
/// stretched by the Loss-B penalty for a slot of `occupancy` clients.
pub fn client_timeline(client: &ClientModel, occupancy: usize, loss: &LossModel) -> StateMachine {
    let extra = loss.transfer.as_ref().map_or(Seconds::ZERO, |p| p.extra_for(occupancy));
    let mut m = StateMachine::new(PowerState::Sleep);
    for (i, a) in client.actions.iter().enumerate() {
        let duration =
            if Some(i) == client.transfer_action { a.duration + extra } else { a.duration };
        m.dwell(PowerState::active(a.name.clone()), a.power, duration);
    }
    let active = m.clock();
    assert!(
        active.value() <= client.wake_period.value() + 1e-9,
        "actions overflow the wake period"
    );
    m.dwell(PowerState::Sleep, client.sleep_power, client.wake_period - active);
    m
}

/// The scheduled start time of every slot in `slots`, mirroring
/// [`server_timeline`]'s chronology: used slots run back-to-back from the
/// cycle start (receive window then processing), empty slots report the
/// clock where they would have started. This is where a slot's clients
/// begin their upload — the fault layer checks these instants against
/// the outage window.
pub fn slot_start_times(server: &ServerModel, slots: &[usize], loss: &LossModel) -> Vec<Seconds> {
    let penalty = loss.transfer.as_ref();
    let mut clock = Seconds::ZERO;
    slots
        .iter()
        .map(|&k| {
            let start = clock;
            if k > 0 {
                clock += server.receive_window(k, penalty) + server.process_duration;
            }
            start
        })
        .collect()
}

/// Total server energy of an allocation, integrated from event timelines.
/// Must agree with [`crate::simulation::servers_cycle_energy`] — an
/// internal consistency check exposed for tests and validation binaries.
pub fn servers_energy_from_timelines(
    server: &ServerModel,
    allocation: &Allocation,
    loss: &LossModel,
) -> Joules {
    allocation
        .groups()
        .iter()
        .flat_map(|(count, sa)| {
            // One timeline per distinct shape; its energy is added once
            // per server so the sum order matches a dense iteration.
            std::iter::repeat_n(server_timeline(server, &sa.slots, loss).total_energy(), *count)
        })
        .sum()
}

/// Total client-side energy of an allocation, integrated from timelines.
pub fn clients_energy_from_timelines(
    client: &ClientModel,
    allocation: &Allocation,
    loss: &LossModel,
) -> Joules {
    allocation
        .groups()
        .iter()
        .flat_map(|(count, sa)| {
            // One timeline per distinct occupancy; the per-slot energies
            // are replayed per server in the group, preserving the exact
            // addition order of a dense per-server iteration.
            let per_slot: Vec<Joules> = sa
                .slots
                .iter()
                .filter(|&&k| k > 0)
                .map(|&k| client_timeline(client, k, loss).total_energy() * k as f64)
                .collect();
            std::iter::repeat_n(per_slot, *count).flatten()
        })
        .sum()
}

/// Validates the closed-form cycle accounting against the event timelines
/// for `n_clients`; returns the absolute discrepancy (should be ≈ 0).
pub fn validate_cycle(
    n_clients: usize,
    client: &ClientModel,
    server: &ServerModel,
    loss: &LossModel,
    policy: FillPolicy,
) -> Joules {
    let allocation = crate::allocator::allocate(n_clients, server, policy, loss.transfer.as_ref());
    let closed_servers = crate::simulation::servers_cycle_energy(server, &allocation, loss);
    let closed_clients = crate::simulation::edge_cycle_energy(client, &allocation, loss);
    let event_servers = servers_energy_from_timelines(server, &allocation, loss);
    let event_clients = clients_energy_from_timelines(client, &allocation, loss);
    (closed_servers - event_servers).abs() + (closed_clients - event_clients).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::presets;
    use crate::ServiceKind;
    use pb_units::Watts;

    fn setup(cap: usize) -> (ClientModel, ServerModel) {
        (presets::edge_cloud_client(), presets::cloud_server(ServiceKind::Cnn, cap))
    }

    #[test]
    fn server_timeline_covers_whole_cycle() {
        let (_, server) = setup(10);
        let m = server_timeline(&server, &[10, 10, 3], &LossModel::NONE);
        assert!((m.clock() - Seconds(300.0)).abs() < Seconds(1e-9));
        // Three receive windows of 15 s each.
        assert!((m.time_in("receive slot 0") - Seconds(15.0)).abs() < Seconds(1e-9));
        assert!((m.time_in("process slot 2") - Seconds(1.0)).abs() < Seconds(1e-9));
    }

    #[test]
    fn client_timeline_matches_cycle_energy() {
        let (client, _) = setup(10);
        let m = client_timeline(&client, 10, &LossModel::NONE);
        assert!((m.total_energy() - client.cycle_energy()).abs() < Joules(1e-9));
        assert!((m.clock() - client.wake_period).abs() < Seconds(1e-9));
    }

    #[test]
    fn client_timeline_with_transfer_penalty() {
        let (client, _) = setup(10);
        let loss = LossModel::transfer_only();
        let m = client_timeline(&client, 10, &loss);
        // Transfer stretched by 1.5 × 9 = 13.5 s.
        assert!((m.time_in("Send audio") - Seconds(28.5)).abs() < Seconds(1e-9));
        assert!(
            (m.total_energy() - client.cycle_energy_with_transfer_penalty(Seconds(13.5))).abs()
                < Joules(1e-9)
        );
    }

    #[test]
    fn slot_start_times_mirror_the_timeline_chronology() {
        let (_, server) = setup(10);
        // Paper setting: 16 s per used slot (15 s receive + 1 s process).
        let starts = slot_start_times(&server, &[10, 10, 3, 0, 0], &LossModel::NONE);
        assert_eq!(starts.len(), 5);
        assert!((starts[0] - Seconds(0.0)).abs() < Seconds(1e-9));
        assert!((starts[1] - Seconds(16.0)).abs() < Seconds(1e-9));
        assert!((starts[2] - Seconds(32.0)).abs() < Seconds(1e-9));
        // Empty slots don't advance the clock.
        assert!((starts[3] - Seconds(48.0)).abs() < Seconds(1e-9));
        assert!((starts[4] - Seconds(48.0)).abs() < Seconds(1e-9));
        // Loss B stretches the receive window with occupancy.
        let b = slot_start_times(&server, &[10, 10], &LossModel::transfer_only());
        assert!(b[1] > starts[1]);
    }

    #[test]
    fn closed_form_matches_event_timeline_no_loss() {
        let (client, server) = setup(10);
        for n in [1usize, 9, 95, 180, 181, 400] {
            let gap = validate_cycle(n, &client, &server, &LossModel::NONE, FillPolicy::PackSlots);
            assert!(gap < Joules(1e-6), "n = {n}: gap {gap}");
        }
    }

    #[test]
    fn closed_form_matches_event_timeline_under_losses() {
        let (client, server) = setup(10);
        // Loss C is irrelevant here (validate_cycle takes the population
        // as given); A and B change both paths identically.
        for loss in [LossModel::saturation_only(), LossModel::transfer_only(), LossModel::all()] {
            for policy in [FillPolicy::PackSlots, FillPolicy::BalanceSlots] {
                for n in [1usize, 37, 100, 250] {
                    let gap = validate_cycle(n, &client, &server, &loss, policy);
                    assert!(
                        gap < Joules(1e-6),
                        "loss {loss:?}, policy {policy:?}, n {n}: gap {gap}"
                    );
                }
            }
        }
    }

    #[test]
    fn fig9_calibration_also_validates() {
        let (client, server) = setup(35);
        let gap =
            validate_cycle(1700, &client, &server, &LossModel::fig9(), FillPolicy::BalanceSlots);
        assert!(gap < Joules(1e-6), "gap {gap}");
    }

    #[test]
    fn saturated_slot_power_is_scaled_in_timeline() {
        let (_, server) = setup(10);
        let loss = LossModel::saturation_only();
        let m = server_timeline(&server, &[10], &loss);
        // Full slot of 10 with limit 5: ×1.5 on the receive power.
        let receive = m.history().iter().find(|t| t.state.label() == "receive slot 0").unwrap();
        assert!((receive.power - Watts(68.8 * 1.5)).abs() < Watts(1e-6));
    }

    #[test]
    fn sampled_trace_integrates_to_same_energy() {
        // Cross-check with the pb-energy trapezoidal integrator at 0.1 s
        // sampling: the stepwise trace integrates to within 1% (boundary
        // samples straddle power steps).
        let (_, server) = setup(10);
        let m = server_timeline(&server, &[10, 10], &LossModel::NONE);
        let trace = m.sample_trace(Seconds(0.1));
        let integrated = trace.energy();
        let exact = m.total_energy();
        let rel = ((integrated - exact) / exact).abs();
        assert!(rel < 0.01, "relative gap {rel}");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(32))]
            #[test]
            fn closed_form_and_timeline_always_agree(
                n in 1usize..600,
                cap in 1usize..40,
                which_loss in 0u8..4,
                balance in proptest::bool::ANY,
            ) {
                let (client, server) = setup(cap);
                let loss = match which_loss {
                    0 => LossModel::NONE,
                    1 => LossModel::saturation_only(),
                    2 => LossModel::transfer_only(),
                    _ => LossModel::fig9(),
                };
                let policy = if balance { FillPolicy::BalanceSlots } else { FillPolicy::PackSlots };
                let gap = validate_cycle(n, &client, &server, &loss, policy);
                prop_assert!(gap < Joules(1e-6), "gap {gap}");
            }
        }
    }
}
