//! Million-hive scale sweep: throughput of one Fig. 7-style sweep point
//! at 10⁴, 10⁵ and 10⁶ clients on all three backends.
//!
//! The columnar fleet state, run-length-encoded allocation and
//! calendar-queue DES exist to make this workload tractable; the bench
//! records clients/sec per (backend, population) into
//! `BENCH_scale.json` at the repository root and asserts that every
//! point is **bit-identical** across worker counts 1, 2 and N — the
//! contract the deterministic chunk plans exist to keep.
//!
//! Set `SCALE_SWEEP_MAX` (a client count) to cap the largest population
//! — CI's smoke run uses `SCALE_SWEEP_MAX=100000` so the reduced sweep
//! finishes inside the job budget.

use criterion::{black_box, Criterion};
use pb_orchestra::engine::{Backend, CycleEngine, ScenarioSpec, SimContext};
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::simulation::CycleReport;
use rayon::pool::{current_num_threads, with_thread_cap};
use std::time::Instant;

const CAP: usize = 35;
const SEED: u64 = 0xF1E1D;
const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

fn fig7_spec() -> ScenarioSpec {
    ScenarioSpec {
        edge_client: presets::edge_client(ServiceKind::Cnn),
        cloud_client: presets::edge_cloud_client(),
        server: presets::cloud_server(ServiceKind::Cnn, CAP),
        loss: LossModel::NONE,
        policy: FillPolicy::PackSlots,
    }
}

/// One sweep point through `backend` with a fresh context (no warm
/// allocation cache), so the timing covers the whole pipeline.
fn evaluate(backend: Backend, n: usize) -> CycleReport {
    let spec = fig7_spec();
    backend.evaluate(&spec, n, &SimContext::new(SEED))
}

/// The same DES sweep point under the `mid` fault plan: the columnar
/// fault pre-pass resolves every client's outage/retry fate, then the
/// clean/divergent split feeds the shape-memoized replay.
fn evaluate_faulted(n: usize) -> CycleReport {
    let spec = fig7_spec();
    let ctx = SimContext::new(SEED).with_fault_plan(FaultPlan::mid_severity());
    Backend::Des.evaluate(&spec, n, &ctx)
}

/// Times `f` `reps` times; returns the minimum in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        min = min.min(t.elapsed().as_secs_f64() * 1e3);
    }
    min
}

struct Row {
    backend: &'static str,
    n_clients: usize,
    elapsed_ms: f64,
    clients_per_sec: f64,
}

fn max_population() -> usize {
    std::env::var("SCALE_SWEEP_MAX")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(*SIZES.last().expect("SIZES is non-empty"))
}

fn measure_rows() -> Vec<Row> {
    let cap_n = max_population();
    let n_threads = current_num_threads();
    let mut rows = Vec::new();
    for backend in Backend::ALL {
        for n in SIZES.into_iter().filter(|&n| n <= cap_n) {
            // The exit bar: the same point, bit-identical at 1, 2 and N
            // worker threads.
            let nt = evaluate(backend, n);
            let one = with_thread_cap(1, || evaluate(backend, n));
            let two = with_thread_cap(2.min(n_threads), || evaluate(backend, n));
            assert_eq!(nt, one, "{backend} at {n} clients diverges at 1 thread");
            assert_eq!(nt, two, "{backend} at {n} clients diverges at 2 threads");

            let reps = if n >= 1_000_000 { 2 } else { 3 };
            let elapsed_ms = time_ms(reps, || evaluate(backend, n));
            rows.push(Row {
                backend: backend.name(),
                n_clients: n,
                elapsed_ms,
                clients_per_sec: n as f64 / (elapsed_ms / 1e3),
            });
        }
    }
    // The faulted DES point (mid severity) rides the same exit bar:
    // bit-identical across worker counts, clients/sec recorded.
    for n in SIZES.into_iter().filter(|&n| n <= cap_n) {
        let nt = evaluate_faulted(n);
        let one = with_thread_cap(1, || evaluate_faulted(n));
        let two = with_thread_cap(2.min(n_threads), || evaluate_faulted(n));
        assert_eq!(nt, one, "faulted des at {n} clients diverges at 1 thread");
        assert_eq!(nt, two, "faulted des at {n} clients diverges at 2 threads");

        let reps = if n >= 1_000_000 { 2 } else { 3 };
        let elapsed_ms = time_ms(reps, || evaluate_faulted(n));
        rows.push(Row {
            backend: "des_faulted_mid",
            n_clients: n,
            elapsed_ms,
            clients_per_sec: n as f64 / (elapsed_ms / 1e3),
        });
    }
    rows
}

fn write_json(rows: &[Row]) {
    let mut out = String::from("{\n  \"bench\": \"scale_sweep\",\n");
    out.push_str(&format!("  \"n_threads\": {},\n", current_num_threads()));
    out.push_str(&format!("  \"max_population\": {},\n", max_population()));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"n_clients\": {}, \"elapsed_ms\": {:.3}, \
             \"clients_per_sec\": {:.1}}}{}\n",
            r.backend,
            r.n_clients,
            r.elapsed_ms,
            r.clients_per_sec,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn criterion_groups() {
    let mut c = Criterion::from_args();
    let mut group = c.benchmark_group("scale_sweep");
    group.sample_size(10);
    for backend in Backend::ALL {
        group.bench_function(format!("{backend}_10k"), |b| {
            b.iter(|| black_box(evaluate(backend, 10_000)))
        });
    }
    group.finish();
    c.final_summary();
}

fn main() {
    criterion_groups();
    let rows = measure_rows();
    for r in &rows {
        println!(
            "{:<12} {:>9} clients: {:>10.3} ms  ({:>12.0} clients/sec)",
            r.backend, r.n_clients, r.elapsed_ms, r.clients_per_sec
        );
    }
    write_json(&rows);
}
