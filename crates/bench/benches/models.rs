//! Criterion benchmarks for the two queen-detection models.
//!
//! Measures what the paper prices in joules: one SVM prediction and one
//! CNN inference at several input resolutions (the Figure 5 x-axis), plus
//! the training-side costs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pb_ml::dataset::Dataset;
use pb_ml::nn::resnet::{ResNetConfig, ResNetGrads, ResNetLite};
use pb_ml::svm::{RbfSvm, SvmConfig};
use pb_ml::tensor::FeatureMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn blob_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new();
    for i in 0..n {
        let label = i % 2;
        let centre = if label == 1 { 2.0 } else { -2.0 };
        d.push((0..dim).map(|_| centre + rng.gen_range(-1.0..1.0)).collect(), label);
    }
    d
}

fn bench_svm(c: &mut Criterion) {
    let data = blob_dataset(128, 128, 1);
    let config = SvmConfig { gamma: 0.01, ..SvmConfig::default() };
    c.bench_function("svm_train_128x128d", |b| {
        b.iter(|| black_box(RbfSvm::train(&data, config).n_support_vectors()))
    });
    let svm = RbfSvm::train(&data, config);
    let probe: Vec<f64> = vec![0.1; 128];
    c.bench_function("svm_predict_128d", |b| b.iter(|| black_box(svm.predict(&probe))));
}

fn random_image(side: usize, seed: u64) -> FeatureMap {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..side * side).map(|_| rng.gen_range(0.0..1.0)).collect();
    FeatureMap::from_vec(1, side, side, data)
}

fn bench_cnn_inference(c: &mut Criterion) {
    let net = ResNetLite::new(ResNetConfig::default());
    let mut group = c.benchmark_group("cnn_forward");
    for side in [20usize, 60, 100] {
        let img = random_image(side, side as u64);
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, _| {
            b.iter(|| black_box(net.forward(&img)[0]))
        });
    }
    group.finish();
}

fn bench_cnn_training_step(c: &mut Criterion) {
    let net = ResNetLite::new(ResNetConfig::default());
    let img = random_image(32, 9);
    c.bench_function("cnn_loss_and_gradients_32px", |b| {
        b.iter(|| {
            let mut grads = ResNetGrads::zeros_for(&net);
            black_box(net.loss_and_gradients(&img, 1, &mut grads))
        })
    });
}

criterion_group!(benches, bench_svm, bench_cnn_inference, bench_cnn_training_step);
criterion_main!(benches);
