//! Serial-vs-pool scaling of the three heaviest parallel workloads: the
//! Monte Carlo replicate sweep, the Fig. 7 range sweep and one CNN
//! training epoch.
//!
//! Besides the criterion group (exercised by the CI smoke run), the
//! binary measures each workload under
//!
//! * `spawn_per_call` — a faithful local copy of the old shim's
//!   execution model (a fresh `std::thread::scope` wave per combinator
//!   call), the baseline this PR retires;
//! * the persistent pool at 1, 2 and N threads (N =
//!   `rayon::pool::current_num_threads()`), pinned in-process with
//!   [`rayon::pool::with_thread_cap`];
//!
//! and writes `BENCH_parallel.json` at the repository root. On a
//! single-core host the interesting column is `pool_1t_ms` vs
//! `spawn_per_call_ms` (scheduler overhead alone); the 1 → N scaling
//! shows up on multi-core CI.

use criterion::{black_box, Criterion};
use pb_ml::nn::resnet::{ResNetConfig, ResNetGrads, ResNetLite, StageSpec};
use pb_ml::tensor::FeatureMap;
use pb_orchestra::engine::Backend;
use pb_orchestra::loss::LossModel;
use pb_orchestra::montecarlo::replicate_range;
use pb_orchestra::prelude::*;
use pb_orchestra::sweep::SweepConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::pool::{current_num_threads, with_thread_cap};
use rayon::prelude::*;
use std::time::Instant;

fn cnn_sweep(cap: usize, loss: LossModel) -> SweepConfig {
    SweepConfig {
        edge_client: presets::edge_client(ServiceKind::Cnn),
        cloud_client: presets::edge_cloud_client(),
        server: presets::cloud_server(ServiceKind::Cnn, cap),
        loss,
        policy: FillPolicy::PackSlots,
        seed: 99,
    }
}

/// The old shim's execution model, kept here as the measurement
/// baseline: every call spawns `current_num_threads()` fresh OS threads
/// over contiguous chunks and joins them before returning.
fn spawn_per_call_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n_threads = current_num_threads().max(1);
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let chunk = len.div_ceil(n_threads);
    let mut slots: Vec<Vec<R>> = Vec::with_capacity(n_threads);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut items = items;
        // Split back-to-front so drain indices stay valid.
        let mut bounds: Vec<Vec<T>> = Vec::new();
        while !items.is_empty() {
            let take = items.len().min(chunk);
            let rest = items.split_off(take);
            bounds.push(std::mem::replace(&mut items, rest));
        }
        for part in bounds {
            let f = &f;
            handles.push(s.spawn(move || part.into_iter().map(f).collect::<Vec<R>>()));
        }
        for h in handles {
            slots.push(h.join().expect("bench worker panicked"));
        }
    });
    slots.into_iter().flatten().collect()
}

/// Times `f` `reps` times; returns the minimum in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        min = min.min(t.elapsed().as_secs_f64() * 1e3);
    }
    min
}

struct Row {
    name: &'static str,
    spawn_per_call_ms: f64,
    pool_1t_ms: f64,
    pool_2t_ms: f64,
    pool_nt_ms: f64,
}

// ---- workload: Monte Carlo replicate sweep --------------------------------

const MC_FROM: usize = 100;
const MC_TO: usize = 600;
const MC_STEP: usize = 100;
const MC_REPS: usize = 32;

fn montecarlo_pooled() -> f64 {
    let cfg = cnn_sweep(35, LossModel::client_loss_only());
    let points = replicate_range(&cfg, MC_FROM, MC_TO, MC_STEP, MC_REPS);
    points.iter().map(|p| p.cloud_mean.value()).sum()
}

fn montecarlo_spawn_per_call() -> f64 {
    // The same (point, replicate) draws, but executed the way the old
    // shim would have: one thread wave per point's replicate batch.
    let cfg = cnn_sweep(35, LossModel::client_loss_only());
    let spec = cfg.spec();
    let mut total = 0.0;
    for n in (MC_FROM..=MC_TO).step_by(MC_STEP) {
        let ctx = cfg.context();
        let draws = spawn_per_call_map((0..MC_REPS as u64).collect(), |r| {
            Backend::ClosedForm.compare(&spec, n, &ctx.replicate(r)).cloud.total_per_client.value()
        });
        total += draws.iter().sum::<f64>() / draws.len() as f64;
    }
    total
}

// ---- workload: Fig. 7 range sweep -----------------------------------------

fn fig7_pooled() -> usize {
    let cfg = cnn_sweep(35, LossModel::NONE);
    cfg.run_range(100, 2000, 2).len()
}

fn fig7_spawn_per_call() -> usize {
    let cfg = cnn_sweep(35, LossModel::NONE);
    let spec = cfg.spec();
    let ctx = cfg.context();
    let ns: Vec<usize> = (100..=2000).step_by(2).collect();
    spawn_per_call_map(ns, |n| Backend::ClosedForm.compare(&spec, n, &ctx)).len()
}

// ---- workload: one CNN training epoch -------------------------------------

fn toy_images(n: usize, side: usize, seed: u64) -> Vec<(FeatureMap, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let label = i % 2;
            let data: Vec<f64> = (0..side * side)
                .map(|_| if label == 1 { 0.8 } else { 0.2 } + rng.gen_range(-0.05..0.05))
                .collect();
            (FeatureMap::from_vec(1, side, side, data), label)
        })
        .collect()
}

fn tiny_net() -> ResNetLite {
    ResNetLite::new(ResNetConfig {
        input_channels: 1,
        base_width: 4,
        stages: vec![StageSpec { channels: 4, stride: 1 }, StageSpec { channels: 8, stride: 2 }],
        n_classes: 2,
        seed: 3,
    })
}

const EPOCH_BATCH: usize = 8;

type GradMap<'a> = dyn Fn(&ResNetLite, &[usize]) -> Vec<(f64, ResNetGrads)> + 'a;

/// One epoch with the batch-gradient map run by `grad_map` — the same
/// arithmetic for both execution models.
fn epoch_with(model: &mut ResNetLite, data: &[(FeatureMap, usize)], grad_map: &GradMap<'_>) -> f64 {
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(7));
    let mut epoch_loss = 0.0;
    for batch in order.chunks(EPOCH_BATCH) {
        let parts = grad_map(model, batch);
        let mut grads = ResNetGrads::zeros_for(model);
        for (loss, g) in &parts {
            epoch_loss += loss;
            grads.add_assign(g);
        }
        grads.scale(1.0 / batch.len() as f64);
        model.apply_gradients(&grads, 0.05);
    }
    epoch_loss / data.len() as f64
}

fn train_epoch_pooled(data: &[(FeatureMap, usize)]) -> f64 {
    let mut model = tiny_net();
    epoch_with(&mut model, data, &|model, batch| {
        batch
            .par_iter()
            .with_min_len(2)
            .map(|&i| {
                let (x, label) = &data[i];
                let mut g = ResNetGrads::zeros_for(model);
                let loss = model.loss_and_gradients(x, *label, &mut g);
                (loss, g)
            })
            .collect()
    })
}

fn train_epoch_spawn_per_call(data: &[(FeatureMap, usize)]) -> f64 {
    let mut model = tiny_net();
    epoch_with(&mut model, data, &|model, batch| {
        spawn_per_call_map(batch.to_vec(), |i| {
            let (x, label) = &data[i];
            let mut g = ResNetGrads::zeros_for(model);
            let loss = model.loss_and_gradients(x, *label, &mut g);
            (loss, g)
        })
    })
}

// ---- measurement ----------------------------------------------------------

fn measure_rows() -> Vec<Row> {
    let n = current_num_threads();
    let data = toy_images(48, 12, 1);
    let reps = 5;

    let measure =
        |name: &'static str, spawn: &mut dyn FnMut() -> f64, pooled: &mut dyn FnMut() -> f64| {
            // Warm the pool (and caches) once before timing.
            let _ = pooled();
            Row {
                name,
                spawn_per_call_ms: time_ms(reps, &mut *spawn),
                pool_1t_ms: with_thread_cap(1, || time_ms(reps, &mut *pooled)),
                pool_2t_ms: with_thread_cap(2.min(n), || time_ms(reps, &mut *pooled)),
                pool_nt_ms: time_ms(reps, &mut *pooled),
            }
        };

    vec![
        measure(
            "montecarlo_replicate_sweep",
            &mut montecarlo_spawn_per_call,
            &mut montecarlo_pooled,
        ),
        measure("fig7_range_sweep", &mut || fig7_spawn_per_call() as f64, &mut || {
            fig7_pooled() as f64
        }),
        measure("train_epoch", &mut || train_epoch_spawn_per_call(&data), &mut || {
            train_epoch_pooled(&data)
        }),
    ]
}

fn write_json(rows: &[Row]) {
    let n = current_num_threads();
    let mut out = String::from("{\n  \"bench\": \"parallel_scaling\",\n");
    out.push_str(&format!("  \"n_threads\": {n},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"spawn_per_call_ms\": {:.3}, \"pool_1t_ms\": {:.3}, \
             \"pool_2t_ms\": {:.3}, \"pool_nt_ms\": {:.3}}}{}\n",
            r.name,
            r.spawn_per_call_ms,
            r.pool_1t_ms,
            r.pool_2t_ms,
            r.pool_nt_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn criterion_groups() {
    let mut c = Criterion::from_args();
    let data = toy_images(48, 12, 1);
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.bench_function("montecarlo_pool", |b| b.iter(|| black_box(montecarlo_pooled())));
    group.bench_function("fig7_pool", |b| b.iter(|| black_box(fig7_pooled())));
    group.bench_function("train_epoch_pool", |b| b.iter(|| black_box(train_epoch_pooled(&data))));
    group.finish();
    c.final_summary();
}

fn main() {
    criterion_groups();
    let rows = measure_rows();
    for r in &rows {
        println!(
            "{:<28} spawn/call {:>9.3} ms | pool 1t {:>9.3} ms | 2t {:>9.3} ms | {}t {:>9.3} ms",
            r.name,
            r.spawn_per_call_ms,
            r.pool_1t_ms,
            r.pool_2t_ms,
            current_num_threads(),
            r.pool_nt_ms
        );
    }
    write_json(&rows);
}
