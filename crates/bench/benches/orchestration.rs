//! Criterion benchmarks for the orchestration simulator — one group per
//! reproduced figure, measuring the cost of regenerating it.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::sweep::SweepConfig;

fn cnn_sweep(cap: usize, loss: LossModel) -> SweepConfig {
    SweepConfig {
        edge_client: presets::edge_client(ServiceKind::Cnn),
        cloud_client: presets::edge_cloud_client(),
        server: presets::cloud_server(ServiceKind::Cnn, cap),
        loss,
        policy: FillPolicy::PackSlots,
        seed: 99,
    }
}

fn bench_single_cycle(c: &mut Criterion) {
    let spec = ScenarioSpec::paper(ServiceKind::Cnn, 10, LossModel::all());
    let mut group = c.benchmark_group("simulate_cycle");
    for n in [100usize, 1000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let ctx = SimContext::new(1);
            b.iter(|| black_box(Backend::ClosedForm.evaluate(&spec, n, &ctx).total_energy))
        });
    }
    group.finish();
}

/// Satellite benchmark for the engine layer: the same Fig. 7-shaped sweep
/// (100–2000 clients at cap 35) evaluated with a cold allocation cache
/// (fresh [`SimContext`] every iteration) versus a pre-warmed shared one.
fn bench_engine_cache(c: &mut Criterion) {
    let spec = cnn_sweep(35, LossModel::NONE).spec();
    let ns: Vec<usize> = (100..=2000).collect();
    let mut group = c.benchmark_group("engine_cache");
    group.bench_function("cold", |b| {
        b.iter(|| {
            let ctx = SimContext::new(99); // fresh, empty cache
            black_box(
                ns.iter()
                    .map(|&n| Backend::ClosedForm.evaluate(&spec, n, &ctx).total_energy.value())
                    .sum::<f64>(),
            )
        })
    });
    group.bench_function("warm", |b| {
        let ctx = SimContext::new(99);
        for &n in &ns {
            Backend::ClosedForm.evaluate(&spec, n, &ctx); // pre-warm every point
        }
        b.iter(|| {
            black_box(
                ns.iter()
                    .map(|&n| Backend::ClosedForm.evaluate(&spec, n, &ctx).total_energy.value())
                    .sum::<f64>(),
            )
        })
    });
    group.finish();
}

fn bench_fig6_sweep(c: &mut Criterion) {
    let sweep = cnn_sweep(10, LossModel::NONE);
    c.bench_function("fig6_sweep_10_400", |b| {
        b.iter(|| black_box(sweep.run_range(10, 400, 10).len()))
    });
}

fn bench_fig7_sweep(c: &mut Criterion) {
    let sweep = cnn_sweep(35, LossModel::NONE);
    c.bench_function("fig7b_sweep_100_2000_step1", |b| {
        b.iter(|| black_box(sweep.run_range(100, 2000, 1).len()))
    });
}

fn bench_fig8_lossy_sweep(c: &mut Criterion) {
    let sweep = cnn_sweep(10, LossModel::all());
    c.bench_function("fig8d_sweep_10_400", |b| {
        b.iter(|| black_box(sweep.run_range(10, 400, 10).len()))
    });
}

fn bench_fig9_sweep(c: &mut Criterion) {
    let sweep =
        SweepConfig { policy: FillPolicy::BalanceSlots, ..cnn_sweep(35, LossModel::fig9()) };
    c.bench_function("fig9_sweep_100_2000", |b| {
        b.iter(|| black_box(sweep.run_range(100, 2000, 10).len()))
    });
}

fn bench_async_des(c: &mut Criterion) {
    use pb_orchestra::des::simulate_async_cycle;
    let server = presets::cloud_server(ServiceKind::Cnn, 10);
    c.bench_function("des_async_cycle_180_clients", |b| {
        let mut rng = seeded_rng(3);
        b.iter(|| black_box(simulate_async_cycle(180, &server, &mut rng).server_energy))
    });
}

fn bench_capacity_planner(c: &mut Criterion) {
    use pb_orchestra::planner::plan_slot_capacity;
    let client = presets::edge_cloud_client();
    c.bench_function("planner_630_clients_caps_1_60", |b| {
        b.iter(|| {
            black_box(
                plan_slot_capacity(
                    630,
                    1..=60,
                    |cap| presets::cloud_server(ServiceKind::Cnn, cap),
                    &client,
                    &LossModel::transfer_only(),
                    FillPolicy::PackSlots,
                    1,
                )
                .best
                .cap,
            )
        })
    });
}

fn bench_fleet(c: &mut Criterion) {
    use pb_orchestra::fleet::{simulate_fleet, FleetGroup};
    use pb_units::Seconds;
    let server = presets::cloud_server(ServiceKind::Cnn, 10);
    let groups: Vec<FleetGroup> = (0..4)
        .map(|i| FleetGroup {
            name: format!("g{i}"),
            client: presets::edge_cloud_client_with_period(Seconds(300.0 * (i + 1) as f64)),
            count: 60,
            phase: i,
        })
        .collect();
    c.bench_function("fleet_4_groups_hyperperiod_12", |b| {
        b.iter(|| {
            black_box(
                simulate_fleet(&groups, &server, &LossModel::NONE, FillPolicy::PackSlots)
                    .total_per_hive_per_cycle,
            )
        })
    });
}

/// Satellite guard for the observability layer: telemetry with the no-op
/// event sink (live spans and counters, discarded events) must add less
/// than 2 % to a warm Fig. 7 DES sweep relative to a disabled handle
/// (where every span collapses to a single branch). The DES backend is the
/// telemetry-heaviest path — it counts every simulated event — so this
/// bounds the worst per-backend cost of leaving `--metrics` on.
///
/// A third row measures event recording without span tags (ring sink,
/// no tracing flag) — the price of keeping `--trace` on, which also
/// forces the DES off the shape-memoized replay and onto the exact
/// event loop. A fourth adds causal span tags on every DES event +
/// per-client `trace.*` spans — the full `pb sweep --causal --trace`
/// cost. Both are recorded for visibility but unbounded: materializing
/// events is allowed to cost real time.
fn bench_telemetry_overhead(c: &mut Criterion) {
    use std::time::{Duration, Instant};
    let sweep = cnn_sweep(35, LossModel::NONE);
    let spec = sweep.spec();
    let ns: Vec<usize> = (100..=2000).step_by(100).collect();
    let disabled = SimContext::new(99);
    let noop_sink = SimContext::with_telemetry(99, Telemetry::metrics_only());
    // Recording sinks use a bounded ring so the benchmark's memory stays
    // flat across iterations.
    let recorded = SimContext::with_telemetry(99, Telemetry::ring(65_536));
    let causal = SimContext::with_telemetry(99, Telemetry::ring(65_536).with_tracing());
    let run = |ctx: &SimContext| {
        ns.iter().map(|&n| Backend::Des.evaluate(&spec, n, ctx).total_energy.value()).sum::<f64>()
    };
    // Warm the allocation caches, then take the minimum of interleaved
    // repetitions so scheduler noise and clock drift cancel out.
    black_box(run(&disabled));
    black_box(run(&noop_sink));
    black_box(run(&recorded));
    black_box(run(&causal));
    let mut mins = [Duration::MAX; 4];
    for _ in 0..10 {
        for (min, ctx) in mins.iter_mut().zip([&disabled, &noop_sink, &recorded, &causal]) {
            let t = Instant::now();
            black_box(run(ctx));
            *min = (*min).min(t.elapsed());
        }
    }
    let [base, traced, rec, tagged] = mins;
    let ratio = traced.as_secs_f64() / base.as_secs_f64();
    let rec_ratio = rec.as_secs_f64() / base.as_secs_f64();
    let causal_ratio = tagged.as_secs_f64() / base.as_secs_f64();
    println!(
        "telemetry_overhead: disabled {base:?}, no-op sink {traced:?} (ratio {ratio:.4}), \
         recording {rec:?} (ratio {rec_ratio:.4}), \
         causal tracing {tagged:?} (ratio {causal_ratio:.4})"
    );
    assert!(
        ratio < 1.02,
        "no-op-sink telemetry costs {:.2}% on the warm fig7 DES sweep (budget 2%)",
        (ratio - 1.0) * 100.0
    );
    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("disabled", |b| b.iter(|| black_box(run(&disabled))));
    group.bench_function("noop_sink", |b| b.iter(|| black_box(run(&noop_sink))));
    group.bench_function("recorded", |b| b.iter(|| black_box(run(&recorded))));
    group.bench_function("causal_tracing", |b| b.iter(|| black_box(run(&causal))));
    group.finish();
}

criterion_group!(
    benches,
    bench_single_cycle,
    bench_engine_cache,
    bench_telemetry_overhead,
    bench_fig6_sweep,
    bench_fig7_sweep,
    bench_fig8_lossy_sweep,
    bench_fig9_sweep,
    bench_async_des,
    bench_capacity_planner,
    bench_fleet
);
criterion_main!(benches);
