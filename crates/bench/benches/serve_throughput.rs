//! Serving-layer throughput: sustained req/s through a resident
//! `pb serve` daemon under concurrent clients, with client-side latency
//! percentiles.
//!
//! Three workloads, all over loopback TCP through the real framed
//! protocol (so the numbers include codec, admission and fan-out cost):
//!
//! * `recommend_distinct`    — every request is unique; nothing can
//!   coalesce, so this is the daemon's per-request floor.
//! * `recommend_coalesced`   — every client asks the same question;
//!   in-flight duplicates share one execution.
//! * `montecarlo_distinct`   — a heavier op (32 replications) that
//!   exercises the engine through the shared allocation cache.
//!
//! Results (req/s plus p50/p95/p99 ms computed from the raw client-side
//! samples — the telemetry histograms only summarize to p95) go to
//! `BENCH_serve.json` at the repository root, which
//! `bench_sentinel --serve` gates in CI.
//!
//! Set `SERVE_BENCH_REQUESTS` to cap per-client request counts — CI's
//! smoke run shrinks the sweep to fit the job budget.

use criterion::{black_box, Criterion};
use precision_beekeeping::serve::{spawn, ServeClient, ServeOptions};
use rayon::pool::current_num_threads;
use std::time::Instant;

/// Concurrent client connections per workload.
const CLIENTS: usize = 8;

/// Requests each client issues, per workload (before the env cap).
const REQUESTS_PER_CLIENT: usize = 50;

fn requests_per_client() -> usize {
    std::env::var("SERVE_BENCH_REQUESTS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(REQUESTS_PER_CLIENT)
}

struct Row {
    name: &'static str,
    requests: usize,
    req_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Nearest-rank percentile over sorted samples (milliseconds).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one workload: `CLIENTS` connections each issuing `per_client`
/// requests produced by `request(client, i)`, against a fresh daemon.
/// Returns the throughput row; panics if any reply is not ok/shed-retried
/// or conservation is violated at drain.
fn run_workload(
    name: &'static str,
    per_client: usize,
    request: impl Fn(usize, usize) -> String + Send + Sync + Clone + 'static,
) -> Row {
    let daemon = spawn(
        "127.0.0.1:0",
        ServeOptions { queue_capacity: 1024, workers: 4, ..ServeOptions::default() },
    )
    .expect("spawn daemon");
    let addr = daemon.addr();

    let started = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let request = request.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut latencies_ms = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let t = Instant::now();
                    let reply = client.call_with_retry(&request(c, i), 16).expect("request failed");
                    assert!(
                        reply.starts_with("{\"status\":\"ok\""),
                        "{name}: unexpected reply {reply}"
                    );
                    latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
                latencies_ms
            })
        })
        .collect();

    let mut samples: Vec<f64> = Vec::with_capacity(CLIENTS * per_client);
    for w in workers {
        samples.extend(w.join().expect("client thread panicked"));
    }
    let elapsed = started.elapsed().as_secs_f64();

    let report = daemon.shutdown();
    assert!(report.conservation_ok(), "{name}: {report}");

    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let requests = samples.len();
    Row {
        name,
        requests,
        req_per_sec: requests as f64 / elapsed,
        p50_ms: percentile(&samples, 50.0),
        p95_ms: percentile(&samples, 95.0),
        p99_ms: percentile(&samples, 99.0),
    }
}

fn measure_rows() -> Vec<Row> {
    let per_client = requests_per_client();
    vec![
        run_workload("recommend_distinct", per_client, move |c, i| {
            // Unique hive counts per request: nothing can coalesce.
            format!("{{\"op\":\"recommend\",\"hives\":{},\"cap\":35}}", 100 + c * per_client + i)
        }),
        run_workload("recommend_coalesced", per_client, |_, _| {
            "{\"op\":\"recommend\",\"hives\":630,\"cap\":35}".to_string()
        }),
        run_workload("montecarlo_distinct", per_client, move |c, i| {
            format!(
                "{{\"op\":\"montecarlo\",\"clients\":200,\"replications\":32,\"cap\":10,\
                 \"seed\":{}}}",
                1 + c * per_client + i
            )
        }),
    ]
}

fn write_json(rows: &[Row]) {
    let mut out = String::from("{\n  \"bench\": \"serve_throughput\",\n");
    out.push_str(&format!("  \"n_threads\": {},\n", current_num_threads()));
    out.push_str(&format!("  \"clients\": {},\n", CLIENTS));
    out.push_str(&format!("  \"requests_per_client\": {},\n", requests_per_client()));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"requests\": {}, \"req_per_sec\": {:.1}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            r.name,
            r.requests,
            r.req_per_sec,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn criterion_groups() {
    let mut c = Criterion::from_args();
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.bench_function("recommend_round_trip", |b| {
        let daemon = spawn("127.0.0.1:0", ServeOptions::default()).expect("spawn daemon");
        let mut client = ServeClient::connect(daemon.addr()).expect("connect");
        let mut n = 0usize;
        b.iter(|| {
            n += 1;
            let req = format!("{{\"op\":\"recommend\",\"hives\":{},\"cap\":35}}", 100 + n);
            black_box(client.call(&req).expect("call"))
        });
        daemon.shutdown();
    });
    group.finish();
    c.final_summary();
}

fn main() {
    criterion_groups();
    let rows = measure_rows();
    for r in &rows {
        println!(
            "{:<22} {:>5} reqs: {:>9.1} req/s  p50 {:>8.3} ms  p95 {:>8.3} ms  p99 {:>8.3} ms",
            r.name, r.requests, r.req_per_sec, r.p50_ms, r.p95_ms, r.p99_ms
        );
    }
    write_json(&rows);
}
