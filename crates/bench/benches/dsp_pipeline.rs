//! The clip→prediction hot path: feature extraction plus CNN inference on
//! the paper-default 10 s / 22 050 Hz clip.
//!
//! Besides the criterion group (which the CI smoke run exercises), the
//! binary times the same stages itself and writes `BENCH_dsp.json` at the
//! repository root — a machine-readable perf baseline for future PRs.
//! "Cold" includes planning (FFT twiddles, window, filterbank); "warm"
//! reuses the plans, which is the steady per-cycle cost the energy model
//! prices.

use criterion::{black_box, Criterion};
use pb_ml::nn::resnet::{ResNetConfig, ResNetLite};
use pb_ml::quant::{QuantScratch, QuantizedResNetLite};
use pb_ml::tensor::FeatureMap;
use pb_signal::audio::{BeeAudioSynth, ColonyState};
use pb_signal::pipeline::MelPipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// CNN input side used by the end-to-end path (the paper's Figure 5 anchor
/// resolution, whose 100×100 inference is pinned to 94.8 J).
const CNN_SIDE: usize = 100;

fn paper_clip() -> Vec<f64> {
    let synth = BeeAudioSynth::default();
    synth.generate(ColonyState::Queenright, 10.0, &mut StdRng::seed_from_u64(2))
}

/// Eight paper-length clips with alternating colony state — the pending
/// backlog a batched inference pass drains in one call.
fn batch_clips() -> Vec<Vec<f64>> {
    let synth = BeeAudioSynth::default();
    let mut rng = StdRng::seed_from_u64(7);
    (0..8)
        .map(|i| {
            let state = if i % 2 == 0 { ColonyState::Queenright } else { ColonyState::Queenless };
            synth.generate(state, 10.0, &mut rng)
        })
        .collect()
}

fn to_feature_map(img: &pb_signal::image::Image) -> FeatureMap {
    FeatureMap::from_image(img.width(), img.height(), img.pixels())
}

/// Times `f` `reps` times; returns the minimum in milliseconds.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        min = min.min(t.elapsed().as_secs_f64() * 1e3);
    }
    min
}

struct Row {
    name: &'static str,
    cold_ms: f64,
    warm_ms: f64,
}

fn measure_rows() -> Vec<Row> {
    let clip = paper_clip();
    let pipeline = MelPipeline::paper_default();
    let net = ResNetLite::new(ResNetConfig::default());
    let cnn_input = to_feature_map(&pipeline.image(&clip, CNN_SIDE));
    let reps = 12;

    // Cold: plan + transform from scratch (one measurement each).
    let clip_to_mel_cold = time_ms(1, || MelPipeline::paper_default().mel(&clip).n_frames());
    let clip_to_mfcc_cold = time_ms(1, || MelPipeline::paper_default().mfcc(&clip, 13).n_frames());
    let end_to_end_cold = time_ms(1, || {
        let p = MelPipeline::paper_default();
        let input = to_feature_map(&p.image(&clip, CNN_SIDE));
        net.forward(&input)[0]
    });

    // Warm: plans reused; min over reps is the steady-state figure.
    let clip_to_mel = time_ms(reps, || pipeline.mel(&clip).n_frames());
    let clip_to_mfcc = time_ms(reps, || pipeline.mfcc(&clip, 13).n_frames());
    let cnn = time_ms(reps, || net.forward(&cnn_input)[0]);
    // The retained direct-loop oracle versus the GEMM path, for the conv
    // speedup ratio on an interior-layer-shaped workload.
    let conv_layer = {
        use pb_ml::nn::conv::Conv2d;
        let mut rng = StdRng::seed_from_u64(5);
        Conv2d::new(8, 8, 3, 1, 1, &mut rng)
    };
    let conv_input = FeatureMap::from_vec(8, 50, 50, vec![0.1; 8 * 50 * 50]);
    let conv_direct = time_ms(4, || conv_layer.forward_direct(&conv_input).data()[0]);
    let conv_gemm = time_ms(4, || conv_layer.forward(&conv_input).data()[0]);
    let end_to_end = time_ms(reps, || {
        let input = to_feature_map(&pipeline.image(&clip, CNN_SIDE));
        net.forward(&input)[0]
    });

    // Int8 engine: cold includes the one-shot calibration + weight
    // quantization; warm is the steady forward with a reused scratch.
    let qnet = QuantizedResNetLite::quantize(&net, std::slice::from_ref(&cnn_input));
    let mut scratch = QuantScratch::default();
    let cnn_int8_cold = time_ms(1, || {
        let q = QuantizedResNetLite::quantize(&net, std::slice::from_ref(&cnn_input));
        let mut s = QuantScratch::default();
        q.forward(&cnn_input, &mut s)[0]
    });
    let cnn_int8 = time_ms(reps, || qnet.forward(&cnn_input, &mut scratch)[0]);

    // Batched end-to-end: eight pending clips through the shared pipeline
    // and one `forward_batch` call on the quantized network.
    let clips8 = batch_clips();
    let batch8_cold = time_ms(1, || {
        let p = MelPipeline::paper_default();
        let inputs: Vec<FeatureMap> =
            p.images(&clips8, CNN_SIDE).iter().map(to_feature_map).collect();
        let q = QuantizedResNetLite::quantize(&net, &inputs);
        let mut s = QuantScratch::default();
        q.forward_batch(&inputs, &mut s)[0][0]
    });
    let batch8 = time_ms(reps, || {
        let inputs: Vec<FeatureMap> =
            pipeline.images(&clips8, CNN_SIDE).iter().map(to_feature_map).collect();
        qnet.forward_batch(&inputs, &mut scratch)[0][0]
    });

    vec![
        Row { name: "clip_to_mel", cold_ms: clip_to_mel_cold, warm_ms: clip_to_mel },
        Row { name: "clip_to_mfcc13", cold_ms: clip_to_mfcc_cold, warm_ms: clip_to_mfcc },
        Row { name: "cnn_forward_100px", cold_ms: cnn, warm_ms: cnn },
        Row { name: "cnn_forward_100px_int8", cold_ms: cnn_int8_cold, warm_ms: cnn_int8 },
        Row { name: "conv3x3_8c_50px_direct", cold_ms: conv_direct, warm_ms: conv_direct },
        Row { name: "conv3x3_8c_50px_gemm", cold_ms: conv_gemm, warm_ms: conv_gemm },
        Row {
            name: "end_to_end_clip_to_prediction",
            cold_ms: end_to_end_cold,
            warm_ms: end_to_end,
        },
        Row { name: "end_to_end_batch8", cold_ms: batch8_cold, warm_ms: batch8 },
    ]
}

fn write_json(rows: &[Row]) {
    let mut out = String::from("{\n  \"bench\": \"dsp_pipeline\",\n");
    out.push_str("  \"clip_seconds\": 10.0,\n  \"sample_rate_hz\": 22050,\n");
    out.push_str("  \"cnn_input_side\": 100,\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cold_ms\": {:.3}, \"warm_ms\": {:.3}}}{}\n",
            r.name,
            r.cold_ms,
            r.warm_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dsp.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn criterion_groups() {
    let mut c = Criterion::from_args();
    let clip = paper_clip();
    let pipeline = MelPipeline::paper_default();
    let net = ResNetLite::new(ResNetConfig::default());
    let cnn_input = to_feature_map(&pipeline.image(&clip, CNN_SIDE));

    let mut group = c.benchmark_group("dsp_pipeline");
    group.bench_function("clip_to_mel", |b| b.iter(|| black_box(pipeline.mel(&clip).n_frames())));
    group.bench_function("clip_to_mfcc13", |b| {
        b.iter(|| black_box(pipeline.mfcc(&clip, 13).n_frames()))
    });
    group.bench_function("cnn_forward_100px", |b| b.iter(|| black_box(net.forward(&cnn_input)[0])));
    let qnet = QuantizedResNetLite::quantize(&net, std::slice::from_ref(&cnn_input));
    let mut scratch = QuantScratch::default();
    group.bench_function("cnn_forward_100px_int8", |b| {
        b.iter(|| black_box(qnet.forward(&cnn_input, &mut scratch)[0]))
    });
    group.bench_function("end_to_end", |b| {
        b.iter(|| {
            let input = to_feature_map(&pipeline.image(&clip, CNN_SIDE));
            black_box(net.forward(&input)[0])
        })
    });
    group.finish();
    c.final_summary();
}

fn main() {
    criterion_groups();
    write_json(&measure_rows());
}
