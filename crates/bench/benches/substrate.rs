//! Criterion benchmarks for the DSP and energy substrates.
//!
//! These are throughput benchmarks for the building blocks the figure
//! regenerators lean on: the FFT, the full mel pipeline on a standard
//! 10-second clip, audio synthesis and spectrogram-image resizing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pb_signal::audio::{BeeAudioSynth, ColonyState};
use pb_signal::complex::Complex;
use pb_signal::fft::Fft;
use pb_signal::image::Image;
use pb_signal::mel::{MelFilterbank, MelSpectrogram};
use pb_signal::stft::{SpectrogramParams, Stft};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [256usize, 2048, 8192] {
        let plan = Fft::new(n);
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<Complex> =
            (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), 0.0)).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = data.clone();
                plan.forward(&mut buf);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

fn bench_mel_pipeline(c: &mut Criterion) {
    // One full paper-standard clip: 10 s at 22 050 Hz → 128-mel features.
    let synth = BeeAudioSynth::default();
    let mut rng = StdRng::seed_from_u64(2);
    let clip = synth.generate(ColonyState::Queenright, 10.0, &mut rng);
    let stft = Stft::new(SpectrogramParams::default());
    let bank = MelFilterbank::paper_default();
    c.bench_function("mel_spectrogram_10s_clip", |b| {
        b.iter(|| black_box(MelSpectrogram::compute(&clip, &stft, &bank).n_frames()))
    });
}

fn bench_audio_synthesis(c: &mut Criterion) {
    let synth = BeeAudioSynth::default();
    c.bench_function("synthesize_1s_clip", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(synth.generate(ColonyState::Queenless, 1.0, &mut rng).len()))
    });
}

fn bench_image_resize(c: &mut Criterion) {
    let pixels: Vec<f64> = (0..427 * 128).map(|i| (i % 97) as f64 / 97.0).collect();
    let img = Image::from_pixels(427, 128, pixels);
    let mut group = c.benchmark_group("resize_bilinear");
    for side in [20usize, 100, 220] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            b.iter(|| black_box(img.resize_bilinear(side, side).mean()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft, bench_mel_pipeline, bench_audio_synthesis, bench_image_resize);
criterion_main!(benches);
