//! Regenerates **Figure 7**: end-to-end energy per client of the two
//! scenarios for 100–2000 clients, with 10 (7a) and 35 (7b) clients per
//! time slot, plus the crossover analysis.
//!
//! `cargo run -p pb-bench --bin fig7 [--csv] [--step 100]`

use pb_bench::{emit, Args};
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::report::comparison_table;
use pb_orchestra::sweep::{analyze_crossover, SweepConfig};

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: fig7 [--csv] [--plot] [--step N]");
        return;
    }
    let step: usize = args.get("step", 100);

    for (panel, cap) in [("7a", 10usize), ("7b", 35)] {
        let sweep = SweepConfig {
            edge_client: presets::edge_client(ServiceKind::Cnn),
            cloud_client: presets::edge_cloud_client(),
            server: presets::cloud_server(ServiceKind::Cnn, cap),
            loss: LossModel::NONE,
            policy: FillPolicy::PackSlots,
            seed: 7,
        };
        if !args.csv {
            println!("== Figure {panel}: {cap} clients per time slot ==\n");
        }
        let points = sweep.run_range(100, 2000, step);
        emit(&comparison_table(&points), args.csv);

        if args.plot && !args.csv {
            let edge: Vec<(f64, f64)> = points
                .iter()
                .map(|p| (p.n_clients as f64, p.edge.total_per_client.value()))
                .collect();
            let cloud: Vec<(f64, f64)> = points
                .iter()
                .map(|p| (p.n_clients as f64, p.cloud.total_per_client.value()))
                .collect();
            println!("\nJ/client vs clients — e = edge, c = edge+cloud:\n");
            println!(
                "{}",
                pb_orchestra::plot::AsciiChart::new(72, 16)
                    .series('e', edge)
                    .series('c', cloud)
                    .render()
            );
        }

        if !args.csv {
            let fine = sweep.run_range(100, 2000, 1);
            let report = analyze_crossover(&fine);
            match report.first_crossover {
                Some(n) => println!("\nfirst crossover : {n} clients"),
                None => println!("\nfirst crossover : none (edge always wins)"),
            }
            if let Some((n, adv)) = report.max_advantage {
                println!("max advantage   : {:.1} J/client at {n} clients", adv.value());
            }
            if let Some(n) = report.always_after {
                println!("stable win from : {n} clients");
            }
            println!();
        }
    }
    if !args.csv {
        println!("Paper (7b): crossover at 406, max gap 12.5 J at 630, stable from 803.");
        println!("Tipping slot capacity (Section VI-B): 26 clients per slot.");
    }
}
