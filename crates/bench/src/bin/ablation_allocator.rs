//! Allocator-policy ablation (beyond the paper).
//!
//! The paper implements one filling policy ("filling one slot up to its
//! maximum after another") and leaves alternatives to future work. This
//! ablation compares it against the balanced policy under each loss model:
//! packing minimizes used slots (each slot costs a receive window + an
//! execution), balancing minimizes per-slot occupancy (deferring the
//! Loss-A saturation penalty). Neither dominates — the crossover depends
//! on how saturated the fleet is.
//!
//! `cargo run -p pb-bench --bin ablation_allocator [--csv]`

use pb_bench::{emit, Args};
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::report::TextTable;
use pb_orchestra::sweep::SweepConfig;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: ablation_allocator [--csv] [--cap N]");
        return;
    }
    let cap: usize = args.get("cap", 35);

    let scenarios: [(&str, LossModel); 3] = [
        ("no loss", LossModel::NONE),
        ("saturation (A)", LossModel::saturation_only()),
        ("all (fig9 calibration)", LossModel::fig9()),
    ];

    let mut t = TextTable::new(vec![
        "loss_model",
        "clients",
        "pack_J_per_client",
        "balance_J_per_client",
        "winner",
    ]);
    for (label, loss) in scenarios {
        for n in [60usize, 180, 558, 630, 1200] {
            let mut per_policy = Vec::new();
            for policy in [FillPolicy::PackSlots, FillPolicy::BalanceSlots] {
                let sweep = SweepConfig {
                    edge_client: presets::edge_client(ServiceKind::Cnn),
                    cloud_client: presets::edge_cloud_client(),
                    server: presets::cloud_server(ServiceKind::Cnn, cap),
                    loss,
                    policy,
                    seed: 0xA11,
                };
                per_policy.push(sweep.compare_at(n).cloud.total_per_client);
            }
            let winner = if per_policy[0] <= per_policy[1] { "pack" } else { "balance" };
            t.row(vec![
                label.to_string(),
                n.to_string(),
                format!("{:.1}", per_policy[0].value()),
                format!("{:.1}", per_policy[1].value()),
                winner.to_string(),
            ]);
        }
    }
    emit(&t, args.csv);
    if !args.csv {
        println!("\npack wins the loss-free model (fewer receive windows); balance wins");
        println!("once the saturation penalty bites at near-full occupancy.");
    }
}
