//! Edge-hardware ablation (beyond the paper).
//!
//! Ranks candidate node designs by edge-scenario cycle energy for the CNN
//! service across wake-up periods: raw compute speed matters far less than
//! sleep draw on a duty-cycled workload.
//!
//! `cargo run -p pb-bench --bin ablation_hardware [--csv]`

use pb_bench::{emit, Args};
use pb_device::catalog::HardwareOption;
use pb_orchestra::report::TextTable;
use pb_units::Seconds;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: ablation_hardware [--csv]");
        return;
    }

    let mut t = TextTable::new(vec![
        "hardware",
        "cnn_exec_J",
        "cnn_exec_s",
        "sleep_W",
        "cycle_J_at_5min",
        "cycle_J_at_60min",
    ]);
    for h in HardwareOption::catalog() {
        t.row(vec![
            h.profile.name.clone(),
            format!("{:.1}", h.profile.cnn_exec.0.value()),
            format!("{:.1}", h.profile.cnn_exec.1.value()),
            format!("{:.3}", h.profile.sleep_power.value()),
            format!("{:.1}", h.edge_cnn_cycle_energy(Seconds::from_minutes(5.0)).value()),
            format!("{:.1}", h.edge_cnn_cycle_energy(Seconds::from_minutes(60.0)).value()),
        ]);
    }
    emit(&t, args.csv);

    if !args.csv {
        println!("\nRanking at the paper's 5-minute cycle:");
        for (i, (name, energy)) in
            pb_device::catalog::rank_hardware(Seconds::from_minutes(5.0)).into_iter().enumerate()
        {
            println!("  {}. {name}: {:.1} J/cycle", i + 1, energy.value());
        }
        println!("\nAlternatives are the calibrated Pi 3b+ rescaled by device-class");
        println!("factors (see pb_device::catalog); only the baseline row is measured.");
    }
}
