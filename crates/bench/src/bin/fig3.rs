//! Regenerates **Figure 3**: mean cycle power of the Raspberry Pi 3b+ at
//! wake-up frequencies of 5, 10, 15, 30, 60 and 120 minutes, plus the
//! Section IV campaign statistics (319 routines).
//!
//! `cargo run -p pb-bench --bin fig3 [--csv]`

use pb_bench::{emit, Args};
use pb_device::constants as k;
use pb_device::routine::RoutineBuilder;
use pb_energy::trace::{mean, std_dev};
use pb_orchestra::report::TextTable;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: fig3 [--csv] [--seed N]");
        return;
    }
    let builder = RoutineBuilder::deployed();

    let mut t = TextTable::new(vec!["wake_period_min", "mean_cycle_power_W"]);
    for (period, power) in builder.fig3_sweep() {
        t.row(vec![format!("{:.0}", period.as_minutes()), format!("{:.3}", power.value())]);
    }
    emit(&t, args.csv);

    if !args.csv {
        println!("\nPaper: 1.19 W at 5 minutes, converging toward the 0.62 W sleep draw.");
        println!("(Our table-calibrated routine gives 1.07 W at 5 minutes; the paper's");
        println!("campaign includes boot transients that the table rows exclude.)");

        // Section IV campaign reproduction.
        let mut rng = StdRng::seed_from_u64(args.get("seed", 319u64));
        let runs = builder.campaign(k::ROUTINE_CAMPAIGN_SIZE, &mut rng);
        let durations: Vec<f64> = runs.iter().map(|r| r.0.value()).collect();
        let powers: Vec<f64> = runs.iter().map(|r| r.1.value()).collect();
        println!("\ncampaign of {} routines:", runs.len());
        println!(
            "  duration {:.1} s (sd {:.1} s)   [paper: 89 s, sd 3.5 s]",
            mean(&durations),
            std_dev(&durations)
        );
        println!(
            "  power    {:.3} W (sd {:.4} W) [paper: 2.14 W, sd 0.009 W]",
            mean(&powers),
            std_dev(&powers)
        );
    }
}
