//! Slot-capacity planning (beyond the paper).
//!
//! The paper fixes the "clients allowed in parallel" parameter by hand;
//! this planner sweeps it and reports the energy-optimal setting per
//! population — with and without transfer contention, where an interior
//! optimum appears.
//!
//! `cargo run -p pb-bench --bin capacity_planning [--csv]`

use pb_bench::{emit, Args};
use pb_orchestra::loss::LossModel;
use pb_orchestra::planner::plan_slot_capacity;
use pb_orchestra::prelude::*;
use pb_orchestra::report::TextTable;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: capacity_planning [--csv] [--max-cap N]");
        return;
    }
    let max_cap: usize = args.get("max-cap", 60);
    let client = presets::edge_cloud_client();

    let mut t = TextTable::new(vec![
        "loss_model",
        "clients",
        "best_cap",
        "J_per_client",
        "servers",
        "at_cap_10",
        "at_cap_35",
    ]);
    for (label, loss) in
        [("no loss", LossModel::NONE), ("transfer contention", LossModel::transfer_only())]
    {
        for n in [100usize, 406, 630, 1200, 2000] {
            let plan = plan_slot_capacity(
                n,
                1..=max_cap,
                |cap| presets::cloud_server(ServiceKind::Cnn, cap),
                &client,
                &loss,
                FillPolicy::PackSlots,
                7,
            );
            let at = |cap: usize| {
                plan.curve
                    .iter()
                    .find(|c| c.cap == cap)
                    .map_or("-".to_string(), |c| format!("{:.1}", c.per_client.value()))
            };
            t.row(vec![
                label.to_string(),
                n.to_string(),
                plan.best.cap.to_string(),
                format!("{:.1}", plan.best.per_client.value()),
                plan.best.n_servers.to_string(),
                at(10),
                at(35),
            ]);
        }
    }
    emit(&t, args.csv);
    if !args.csv {
        println!("\nLoss-free: the optimum minimizes used receive windows (ceil(n/cap)).");
        println!("Under contention the window stretches with occupancy and the optimum");
        println!("moves inward — a setting the paper's fixed caps of 10 and 35 straddle.");
    }
}
