//! CI bench-regression sentinel.
//!
//! Reads the machine-readable baselines the bench harnesses write at the
//! repository root — `BENCH_dsp.json` (per-stage DSP/CNN latencies),
//! `BENCH_scale.json` (per-backend sweep throughput),
//! `BENCH_parallel.json` (pooled sweep latencies) and `BENCH_serve.json`
//! (daemon request throughput) — and fails (exit 1) when any pinned row
//! regressed beyond the allowed envelope.
//!
//! The envelope has two named factors so the policy reads off the code:
//!
//! * [`MACHINE_SLACK`] absorbs the spread between the dev box that pinned
//!   the reference numbers and whatever shared runner CI lands on;
//! * [`REGRESSION_FACTOR`] is the actual gate — a change that makes a
//!   pinned row more than 25 % worse than the slack-adjusted reference
//!   fails the job.
//!
//! Missing files and missing rows are *tolerated with a notice*, never a
//! failure: CI's bench-smoke runs a `SCALE_SWEEP_MAX`-capped sweep that
//! legitimately omits the 10⁶ rows, and a future rename should not brick
//! the pipeline — the sentinel prints what it skipped so silent coverage
//! loss is visible in the log.
//!
//! Usage: `bench_sentinel [--dsp FILE] [--scale FILE] [--parallel FILE]
//! [--serve FILE]` (defaults to the repo-root filenames, resolved
//! against the current directory).

use pb_telemetry::json::{self, Json};
use std::process::ExitCode;

/// Dev-box-to-CI-runner spread the envelope absorbs before the
/// regression gate applies.
const MACHINE_SLACK: f64 = 1.6;

/// The gate: >25 % worse than the slack-adjusted reference fails.
const REGRESSION_FACTOR: f64 = 1.25;

/// Pinned warm-path latencies (milliseconds) from `BENCH_dsp.json` on the
/// reference box — see that file's committed copy for provenance.
const DSP_WARM_MS: &[(&str, f64)] = &[
    ("clip_to_mel", 6.117),
    ("clip_to_mfcc13", 13.252),
    ("cnn_forward_100px", 10.576),
    ("cnn_forward_100px_int8", 3.965),
    ("conv3x3_8c_50px_gemm", 0.352),
    ("end_to_end_clip_to_prediction", 17.198),
    ("end_to_end_batch8", 90.131),
];

/// Pinned throughput floors (clients/second) from `BENCH_scale.json`,
/// keyed by `(backend, n_clients)`. Only the CI-sized populations are
/// gated; the 10⁶ rows are absent under `SCALE_SWEEP_MAX=100000`.
const SCALE_CLIENTS_PER_SEC: &[(&str, u64, f64)] = &[
    ("closed-form", 10_000, 7_980_845_969.7),
    ("closed-form", 100_000, 74_460_163_812.4),
    ("timeline", 10_000, 424_538_314.6),
    ("timeline", 100_000, 2_937_806_633.6),
    // The DES floors assume the shape-memoized replay fast path; losing
    // it (a ~10× drop back to the per-event loop) fails these rows.
    ("des", 10_000, 36_463_214.1),
    ("des", 100_000, 31_511_655.1),
    ("des_faulted_mid", 10_000, 14_564_626.9),
    ("des_faulted_mid", 100_000, 13_354_888.1),
];

/// Pinned pooled-sweep latencies (milliseconds, `pool_nt_ms`) from
/// `BENCH_parallel.json` on the reference box. These guard the persistent
/// pool's dispatch path: a row regressing past the envelope means either
/// the chunk plan or the per-point evaluation got slower.
const PARALLEL_MS: &[(&str, f64)] =
    &[("montecarlo_replicate_sweep", 0.059), ("fig7_range_sweep", 0.646), ("train_epoch", 7.221)];

/// Pinned serving-throughput floors (requests/second) from
/// `BENCH_serve.json` on the reference box. These guard the daemon's
/// whole request path — framed codec, admission, coalescing, executor
/// fan-out — over loopback TCP; the `recommend` rows assume the
/// single-write frame + `TCP_NODELAY` path (losing either re-parks every
/// reply behind a ~40 ms delayed ACK, a >1000× drop).
const SERVE_REQ_PER_SEC: &[(&str, f64)] = &[
    ("recommend_distinct", 20_630.7),
    ("recommend_coalesced", 25_714.8),
    ("montecarlo_distinct", 10_801.7),
];

struct Outcome {
    checked: usize,
    skipped: usize,
    failures: Vec<String>,
}

impl Outcome {
    fn new() -> Self {
        Outcome { checked: 0, skipped: 0, failures: Vec::new() }
    }

    fn skip(&mut self, what: &str) {
        self.skipped += 1;
        println!("  skip  {what}");
    }
}

fn load(path: &str) -> Option<Json> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("bench_sentinel: {path}: {e} — skipping this baseline");
            return None;
        }
    };
    match json::parse(&text) {
        Ok(j) => Some(j),
        Err(e) => {
            println!("bench_sentinel: {path}: parse error: {e} — skipping this baseline");
            None
        }
    }
}

fn rows(doc: &Json) -> &[Json] {
    match doc.get("results") {
        Some(Json::Arr(items)) => items,
        _ => &[],
    }
}

/// Latency gate: measured must stay under `pinned × slack × factor`.
fn check_dsp(doc: &Json, out: &mut Outcome) {
    let rows = rows(doc);
    for (name, pinned_ms) in DSP_WARM_MS {
        let Some(row) = rows.iter().find(|r| r.get("name").and_then(Json::as_str) == Some(name))
        else {
            out.skip(&format!("dsp row `{name}` missing"));
            continue;
        };
        let Some(warm_ms) = row.get("warm_ms").and_then(Json::as_f64) else {
            out.skip(&format!("dsp row `{name}` has no warm_ms"));
            continue;
        };
        out.checked += 1;
        let limit = pinned_ms * MACHINE_SLACK * REGRESSION_FACTOR;
        let verdict = if warm_ms > limit { "FAIL" } else { "ok" };
        println!("  {verdict:<4}  dsp   {name:<30} {warm_ms:>10.3} ms (limit {limit:.3})");
        if warm_ms > limit {
            out.failures.push(format!(
                "dsp `{name}`: {warm_ms:.3} ms > {limit:.3} ms \
                 (pinned {pinned_ms:.3} × {MACHINE_SLACK} machine × {REGRESSION_FACTOR} gate)"
            ));
        }
    }
}

/// Throughput gate: measured must stay above `pinned / (slack × factor)`.
fn check_scale(doc: &Json, out: &mut Outcome) {
    let rows = rows(doc);
    for (backend, n_clients, pinned_cps) in SCALE_CLIENTS_PER_SEC {
        let Some(row) = rows.iter().find(|r| {
            r.get("backend").and_then(Json::as_str) == Some(backend)
                && r.get("n_clients").and_then(Json::as_f64) == Some(*n_clients as f64)
        }) else {
            out.skip(&format!("scale row `{backend}` @ {n_clients} missing"));
            continue;
        };
        let Some(cps) = row.get("clients_per_sec").and_then(Json::as_f64) else {
            out.skip(&format!("scale row `{backend}` @ {n_clients} has no clients_per_sec"));
            continue;
        };
        out.checked += 1;
        let floor = pinned_cps / (MACHINE_SLACK * REGRESSION_FACTOR);
        let verdict = if cps < floor { "FAIL" } else { "ok" };
        println!(
            "  {verdict:<4}  scale {:<30} {cps:>14.0} clients/s (floor {floor:.0})",
            format!("{backend} @ {n_clients}")
        );
        if cps < floor {
            out.failures.push(format!(
                "scale `{backend}` @ {n_clients}: {cps:.0} clients/s < {floor:.0} \
                 (pinned {pinned_cps:.0} ÷ {MACHINE_SLACK} machine ÷ {REGRESSION_FACTOR} gate)"
            ));
        }
    }
}

/// Pooled-sweep latency gate: `pool_nt_ms` must stay under
/// `pinned × slack × factor`, same envelope as the DSP rows.
fn check_parallel(doc: &Json, out: &mut Outcome) {
    let rows = rows(doc);
    for (name, pinned_ms) in PARALLEL_MS {
        let Some(row) = rows.iter().find(|r| r.get("name").and_then(Json::as_str) == Some(name))
        else {
            out.skip(&format!("parallel row `{name}` missing"));
            continue;
        };
        let Some(pool_ms) = row.get("pool_nt_ms").and_then(Json::as_f64) else {
            out.skip(&format!("parallel row `{name}` has no pool_nt_ms"));
            continue;
        };
        out.checked += 1;
        let limit = pinned_ms * MACHINE_SLACK * REGRESSION_FACTOR;
        let verdict = if pool_ms > limit { "FAIL" } else { "ok" };
        println!("  {verdict:<4}  pool  {name:<30} {pool_ms:>10.3} ms (limit {limit:.3})");
        if pool_ms > limit {
            out.failures.push(format!(
                "parallel `{name}`: {pool_ms:.3} ms > {limit:.3} ms \
                 (pinned {pinned_ms:.3} × {MACHINE_SLACK} machine × {REGRESSION_FACTOR} gate)"
            ));
        }
    }
}

/// Serving-throughput gate: `req_per_sec` must stay above
/// `pinned / (slack × factor)`, same envelope as the scale rows.
fn check_serve(doc: &Json, out: &mut Outcome) {
    let rows = rows(doc);
    for (name, pinned_rps) in SERVE_REQ_PER_SEC {
        let Some(row) = rows.iter().find(|r| r.get("name").and_then(Json::as_str) == Some(name))
        else {
            out.skip(&format!("serve row `{name}` missing"));
            continue;
        };
        let Some(rps) = row.get("req_per_sec").and_then(Json::as_f64) else {
            out.skip(&format!("serve row `{name}` has no req_per_sec"));
            continue;
        };
        out.checked += 1;
        let floor = pinned_rps / (MACHINE_SLACK * REGRESSION_FACTOR);
        let verdict = if rps < floor { "FAIL" } else { "ok" };
        println!("  {verdict:<4}  serve {name:<30} {rps:>14.1} req/s (floor {floor:.1})");
        if rps < floor {
            out.failures.push(format!(
                "serve `{name}`: {rps:.1} req/s < {floor:.1} \
                 (pinned {pinned_rps:.1} ÷ {MACHINE_SLACK} machine ÷ {REGRESSION_FACTOR} gate)"
            ));
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dsp_path = "BENCH_dsp.json".to_string();
    let mut scale_path = "BENCH_scale.json".to_string();
    let mut parallel_path = "BENCH_parallel.json".to_string();
    let mut serve_path = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dsp" => dsp_path = it.next().cloned().unwrap_or(dsp_path),
            "--scale" => scale_path = it.next().cloned().unwrap_or(scale_path),
            "--parallel" => parallel_path = it.next().cloned().unwrap_or(parallel_path),
            "--serve" => serve_path = it.next().cloned().unwrap_or(serve_path),
            other => {
                eprintln!("bench_sentinel: unknown argument `{other}`");
                eprintln!(
                    "usage: bench_sentinel [--dsp FILE] [--scale FILE] \
                     [--parallel FILE] [--serve FILE]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let mut out = Outcome::new();
    println!("bench_sentinel: gate ×{REGRESSION_FACTOR} over ×{MACHINE_SLACK} machine slack");
    if let Some(doc) = load(&dsp_path) {
        check_dsp(&doc, &mut out);
    } else {
        out.skipped += DSP_WARM_MS.len();
    }
    if let Some(doc) = load(&scale_path) {
        check_scale(&doc, &mut out);
    } else {
        out.skipped += SCALE_CLIENTS_PER_SEC.len();
    }
    if let Some(doc) = load(&parallel_path) {
        check_parallel(&doc, &mut out);
    } else {
        out.skipped += PARALLEL_MS.len();
    }
    if let Some(doc) = load(&serve_path) {
        check_serve(&doc, &mut out);
    } else {
        out.skipped += SERVE_REQ_PER_SEC.len();
    }

    println!(
        "bench_sentinel: {} rows checked, {} skipped, {} regressed",
        out.checked,
        out.skipped,
        out.failures.len()
    );
    if out.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &out.failures {
            eprintln!("bench_sentinel: REGRESSION: {f}");
        }
        ExitCode::FAILURE
    }
}
