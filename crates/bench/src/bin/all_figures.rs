//! Writes every cheap regenerator's CSV into `results/` in one shot.
//!
//! `cargo run -p pb-bench --bin all_figures [--out results]`
//!
//! (Figure 5 is excluded — it trains CNNs for minutes; run `--bin fig5`
//! separately when needed. Figure 2 is included at hourly resolution.)

use pb_beehive::deployment::{simulate, DeploymentConfig};
use pb_beehive::hive::SmartBeehive;
use pb_bench::Args;
use pb_device::constants::CYCLE_PERIOD;
use pb_device::routine::{RoutineBuilder, ServiceKind};
use pb_energy::battery::Battery;
use pb_energy::harvest::PowerSystemConfig;
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::report::{comparison_table, TextTable};
use pb_orchestra::sweep::SweepConfig;
use pb_units::{Seconds, WattHours};
use std::fs;
use std::path::Path;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: all_figures [--out DIR]");
        return;
    }
    let out_dir = args.get("out", "results".to_string());
    fs::create_dir_all(&out_dir).expect("create output directory");
    let out = Path::new(&out_dir);

    let write = |name: &str, table: &TextTable| {
        let path = out.join(name);
        fs::write(&path, table.to_csv()).expect("write CSV");
        println!("wrote {} ({} rows)", path.display(), table.len());
    };

    // Table I / II as CSV.
    let builder = RoutineBuilder::deployed();
    let mut t = TextTable::new(vec!["scenario", "task", "energy_J", "time_s"]);
    for service in [ServiceKind::Svm, ServiceKind::Cnn] {
        let cycle = builder.edge_cycle(service, CYCLE_PERIOD);
        for e in cycle.to_ledger().entries() {
            t.row(vec![
                format!("Edge ({})", service.name()),
                e.task.clone(),
                format!("{:.1}", e.energy.value()),
                format!("{:.1}", e.time.value()),
            ]);
        }
    }
    let cloud_cycle = builder.edge_cloud_cycle(CYCLE_PERIOD);
    for e in cloud_cycle.to_ledger().entries() {
        t.row(vec![
            "Edge+Cloud (edge side)".to_string(),
            e.task.clone(),
            format!("{:.1}", e.energy.value()),
            format!("{:.1}", e.time.value()),
        ]);
    }
    write("tables.csv", &t);

    // Figure 2 at hourly resolution.
    let hive = SmartBeehive::deployed("fig2", Seconds::from_minutes(10.0)).with_power_system(
        PowerSystemConfig {
            battery: Battery::new(WattHours(10.0), 0.6),
            ..PowerSystemConfig::default()
        },
    );
    let (records, _) = simulate(&hive, &DeploymentConfig::default());
    let mut t =
        TextTable::new(vec!["t_hours", "load_W", "soc", "brown_out", "hive_T_C", "ambient_T_C"]);
    for r in records.iter().step_by(60) {
        t.row(vec![
            format!("{:.2}", r.at.as_hours()),
            format!("{:.3}", r.load.value()),
            format!("{:.3}", r.soc),
            usize::from(r.brown_out).to_string(),
            format!("{:.1}", r.hive_temp.value()),
            format!("{:.1}", r.ambient_temp.value()),
        ]);
    }
    write("fig2.csv", &t);

    // Figure 3.
    let mut t = TextTable::new(vec!["wake_period_min", "mean_cycle_power_W"]);
    for (period, power) in builder.fig3_sweep() {
        t.row(vec![format!("{:.0}", period.as_minutes()), format!("{:.3}", power.value())]);
    }
    write("fig3.csv", &t);

    // Figures 6–9.
    let sweep = |cap: usize, loss: LossModel, policy: FillPolicy| SweepConfig {
        edge_client: presets::edge_client(ServiceKind::Cnn),
        cloud_client: presets::edge_cloud_client(),
        server: presets::cloud_server(ServiceKind::Cnn, cap),
        loss,
        policy,
        seed: 0xA11F,
    };
    write(
        "fig6.csv",
        &comparison_table(
            &sweep(10, LossModel::NONE, FillPolicy::PackSlots).run_range(10, 400, 10),
        ),
    );
    write(
        "fig7a.csv",
        &comparison_table(
            &sweep(10, LossModel::NONE, FillPolicy::PackSlots).run_range(100, 2000, 25),
        ),
    );
    write(
        "fig7b.csv",
        &comparison_table(
            &sweep(35, LossModel::NONE, FillPolicy::PackSlots).run_range(100, 2000, 25),
        ),
    );
    for (name, loss) in [
        ("fig8a.csv", LossModel::saturation_only()),
        ("fig8b.csv", LossModel::transfer_only()),
        ("fig8c.csv", LossModel::client_loss_only()),
        ("fig8d.csv", LossModel::all()),
    ] {
        write(
            name,
            &comparison_table(&sweep(10, loss, FillPolicy::PackSlots).run_range(10, 400, 10)),
        );
    }
    write(
        "fig9.csv",
        &comparison_table(
            &sweep(35, LossModel::fig9(), FillPolicy::BalanceSlots).run_range(100, 2000, 25),
        ),
    );

    println!("\nAll CSVs written to {}/ (fig5 excluded: run `--bin fig5` separately).", out_dir);
}
