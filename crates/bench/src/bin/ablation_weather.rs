//! Correlated vs independent client loss (beyond the paper).
//!
//! The paper's Loss C loses clients independently (𝒩(10 %·n, σ = 2)).
//! Real apiaries share weather, so outages arrive in correlated bursts —
//! same mean, far fatter tails. This ablation compares the per-cycle
//! loss distributions and the server-energy consequences.
//!
//! `cargo run -p pb-bench --bin ablation_weather [--csv]`

use pb_beehive::region::{loss_statistics, CorrelatedLoss};
use pb_bench::{emit, Args};
use pb_orchestra::allocator::{allocate, FillPolicy};
use pb_orchestra::loss::{ClientLoss, LossModel};
use pb_orchestra::prelude::*;
use pb_orchestra::report::TextTable;
use pb_orchestra::simulation::servers_cycle_energy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: ablation_weather [--csv] [--hives N] [--cycles N]");
        return;
    }
    let n_hives: usize = args.get("hives", 180);
    let cycles: usize = args.get("cycles", 2000);
    let server = presets::cloud_server(ServiceKind::Cnn, 10);

    // Loss series under both models.
    let mut rng = StdRng::seed_from_u64(17);
    let correlated = CorrelatedLoss::paper_mean().losses(n_hives, cycles, &mut rng);
    let mut rng = StdRng::seed_from_u64(17);
    let paper = ClientLoss::default();
    let independent: Vec<usize> = (0..cycles).map(|_| paper.draw(n_hives, &mut rng)).collect();

    let mut t = TextTable::new(vec![
        "loss_model",
        "mean_lost_pct",
        "std_lost_hives",
        "worst_cycle_lost",
        "mean_server_J_per_cycle",
    ]);
    for (label, losses) in
        [("independent (paper)", &independent), ("weather-correlated", &correlated)]
    {
        let stats = loss_statistics(losses, n_hives);
        // Server energy per cycle with the actual active population.
        let total: f64 = losses
            .iter()
            .map(|&lost| {
                let active = n_hives - lost;
                let allocation = allocate(active, &server, FillPolicy::PackSlots, None);
                servers_cycle_energy(&server, &allocation, &LossModel::NONE).value()
            })
            .sum();
        t.row(vec![
            label.to_string(),
            format!("{:.1}", stats.mean_fraction * 100.0),
            format!("{:.1}", stats.std_hives),
            stats.max_hives.to_string(),
            format!("{:.0}", total / cycles as f64),
        ]);
    }
    emit(&t, args.csv);

    if !args.csv {
        println!("\nSame mean loss, very different tails: correlated weather loses");
        println!("several times the mean in its worst cycles, so provisioning and");
        println!("data-completeness estimates based on the paper's independent model");
        println!("are optimistic.");
    }
}
