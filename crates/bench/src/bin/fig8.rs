//! Regenerates **Figure 8**: energy per client for 10–400 clients at 10
//! clients per slot under each loss model — (a) slot saturation, (b)
//! transfer-time penalty, (c) random client loss, (d) all three combined.
//!
//! `cargo run -p pb-bench --bin fig8 [--csv] [--step 10]`

use pb_bench::{emit, Args};
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::report::TextTable;
use pb_orchestra::sweep::SweepConfig;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: fig8 [--csv] [--step N] [--from N] [--to N] [--ci REPLICATIONS]");
        println!("  --ci N  replace single draws with Monte-Carlo means ± 95% CI over N seeds");
        return;
    }
    let ci: usize = args.get("ci", 0);
    let panels: [(&str, LossModel); 4] = [
        ("8a: saturation penalty", LossModel::saturation_only()),
        ("8b: transfer-time penalty", LossModel::transfer_only()),
        ("8c: random client loss", LossModel::client_loss_only()),
        ("8d: all losses", LossModel::all()),
    ];

    for (panel, loss) in panels {
        let sweep = SweepConfig {
            edge_client: presets::edge_client(ServiceKind::Cnn),
            cloud_client: presets::edge_cloud_client(),
            server: presets::cloud_server(ServiceKind::Cnn, 10),
            loss,
            policy: FillPolicy::PackSlots,
            seed: 8,
        };
        if !args.csv {
            println!("== Figure {panel} ==\n");
        }
        let (from, to, step) = (args.get("from", 10), args.get("to", 400), args.get("step", 10));
        // Replication only makes sense for panels with random client loss;
        // 8a/8b are deterministic, so N seeds would yield N identical runs.
        if ci >= 2 && loss.client_loss.is_some() {
            // Monte-Carlo mode: mean ± 95% CI over `ci` seeds per point.
            let points = pb_orchestra::montecarlo::replicate_range(&sweep, from, to, step, ci);
            let mut t = TextTable::new(vec![
                "clients",
                "cloud_total_mean_J",
                "ci95_J",
                "edge_total_J",
                "cloud_win_frac",
            ]);
            for p in &points {
                t.row(vec![
                    p.n_clients.to_string(),
                    format!("{:.1}", p.cloud_mean.value()),
                    format!("{:.2}", p.cloud_ci95.value()),
                    format!("{:.1}", p.edge_mean.value()),
                    format!("{:.2}", p.cloud_win_fraction),
                ]);
            }
            emit(&t, args.csv);
        } else {
            let points = sweep.run_range(from, to, step);
            let mut t = TextTable::new(vec![
                "clients",
                "active",
                "servers",
                "server_J_per_client",
                "total_J_per_client",
            ]);
            for p in &points {
                t.row(vec![
                    p.n_clients.to_string(),
                    p.cloud.n_active.to_string(),
                    p.cloud.n_servers.to_string(),
                    format!("{:.1}", p.cloud.server_energy_per_client.value()),
                    format!("{:.1}", p.cloud.total_per_client.value()),
                ]);
            }
            emit(&t, args.csv);
        }
        if !args.csv {
            println!();
        }
    }
    if !args.csv {
        println!("Paper: (a) server cost converges to 186 J (ours: 174 J); (b) minimum");
        println!("server cost 212 J with 4 servers at 350 clients (ours: 209 J, 4");
        println!("servers); (c) ≈10% of clients lost each cycle; (d) compounded, with");
        println!("server-count steps moving as losses shrink the active population.");
    }
}
