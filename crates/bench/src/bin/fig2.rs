//! Regenerates **Figure 2**: one week of a deployed smart beehive —
//! activity power, in-hive climate, ambient weather and the night
//! brown-outs (2a), plus the 10-minute wake-up spikes (2b).
//!
//! `cargo run --release -p pb-bench --bin fig2 [--csv] [--days 7] [--step-s 60]`

use pb_beehive::deployment::{simulate, DeploymentConfig};
use pb_beehive::hive::SmartBeehive;
use pb_bench::{emit, Args};
use pb_energy::battery::Battery;
use pb_energy::harvest::PowerSystemConfig;
use pb_orchestra::report::TextTable;
use pb_units::{Seconds, WattHours};

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: fig2 [--csv] [--days N] [--step-s S] [--battery-wh W]");
        return;
    }
    let days: f64 = args.get("days", 7.0);
    let step: f64 = args.get("step-s", 60.0);
    let battery_wh: f64 = args.get("battery-wh", 10.0);

    let hive = SmartBeehive::deployed("fig2", Seconds::from_minutes(10.0)).with_power_system(
        PowerSystemConfig {
            battery: Battery::new(WattHours(battery_wh), 0.6),
            ..PowerSystemConfig::default()
        },
    );
    let config = DeploymentConfig {
        duration: Seconds::from_days(days),
        step: Seconds(step),
        ..DeploymentConfig::default()
    };
    let (records, summary) = simulate(&hive, &config);

    // Figure 2a series (hourly samples keep the table readable; --csv with
    // a small --step-s gives the full-resolution series).
    let stride = if args.csv { 1 } else { (3600.0 / step).round() as usize };
    let mut t = TextTable::new(vec![
        "t_hours",
        "load_W",
        "delivered_W",
        "soc",
        "brown_out",
        "hive_T_C",
        "hive_RH_pct",
        "ambient_T_C",
    ]);
    for r in records.iter().step_by(stride.max(1)) {
        t.row(vec![
            format!("{:.2}", r.at.as_hours()),
            format!("{:.3}", r.load.value()),
            format!("{:.3}", r.delivered_power.value()),
            format!("{:.3}", r.soc),
            usize::from(r.brown_out).to_string(),
            format!("{:.1}", r.hive_temp.value()),
            format!("{:.1}", r.hive_humidity.value()),
            format!("{:.1}", r.ambient_temp.value()),
        ]);
    }
    emit(&t, args.csv);

    if !args.csv {
        println!("\nsummary over {days} day(s):");
        println!("  harvested       {:.1} Wh", summary.harvested.to_watt_hours().value());
        println!("  delivered       {:.1} Wh", summary.delivered.to_watt_hours().value());
        println!("  brown-out time  {:.1} h", summary.brown_out_time.as_hours());
        println!(
            "  routines        {} completed / {} missed",
            summary.routines_completed, summary.routines_missed
        );
        println!("\nPaper: Figure 2a shows night outages (no colony yet → hive tracks");
        println!("ambient temperature); Figure 2b shows 10-minute wake-up spikes.");
    }
}
