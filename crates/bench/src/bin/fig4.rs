//! Regenerates **Figure 4**: the chronological unfolding of one
//! edge+cloud cycle — the edge device's steps interleaved with the cloud
//! server's, including the overlap the paper highlights ("the edge starts
//! shutting down as the server executes the service's tasks").
//!
//! `cargo run -p pb-bench --bin fig4 [--csv]`

use pb_bench::{emit, Args};
use pb_device::constants as k;
use pb_device::profile::CloudServerProfile;
use pb_device::routine::{RoutineBuilder, ServiceKind};
use pb_orchestra::report::TextTable;

struct Phase {
    start: f64,
    end: f64,
    edge: &'static str,
    cloud: String,
}

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: fig4 [--csv] — chronology of one edge+cloud cycle (CNN)");
        return;
    }
    let service = ServiceKind::Cnn;
    let server = CloudServerProfile::i7_rtx2070();
    let edge = RoutineBuilder::deployed().edge_cloud_cycle(k::CYCLE_PERIOD);

    // Chronology: collect → send (server receives) → model in the cloud
    // overlapping the edge shutdown → both idle/sleep until the next cycle.
    let t_collect = k::EDGE_COLLECT_TIME.value();
    let t_send = k::EDGE_SEND_AUDIO_TIME.value();
    let exec = match service {
        ServiceKind::Svm => server.svm_exec.1.value(),
        ServiceKind::Cnn | ServiceKind::CnnInt8 => server.cnn_exec.1.value(),
    };
    let t_shutdown = k::EDGE_SHUTDOWN_TIME.value();
    let cycle = k::CYCLE_PERIOD.value();

    let s0 = 0.0;
    let s1 = t_collect; // send starts
    let s2 = s1 + t_send; // send done, shutdown + cloud model start
    let s3 = s2 + exec; // model done, shutdown continues
    let s4 = s2 + t_shutdown; // edge asleep
    let phases = [
        Phase { start: s0, end: s1, edge: "Wake up & Data collection", cloud: "Idle".into() },
        Phase { start: s1, end: s2, edge: "Send audio", cloud: "Receive audio".into() },
        Phase {
            start: s2,
            end: s3,
            edge: "Shutdown (begins)",
            cloud: format!("Queen detection model ({})", service.name()),
        },
        Phase { start: s3, end: s4, edge: "Shutdown (completes)", cloud: "Idle".into() },
        Phase { start: s4, end: cycle, edge: "Sleep", cloud: "Idle".into() },
    ];

    let mut t = TextTable::new(vec!["t_start_s", "t_end_s", "edge_device", "cloud_server"]);
    for p in &phases {
        t.row(vec![
            format!("{:.1}", p.start),
            format!("{:.1}", p.end),
            p.edge.to_string(),
            p.cloud.clone(),
        ]);
    }
    emit(&t, args.csv);
    if !args.csv {
        println!(
            "\nEdge cycle energy: {:.1} J; the cloud model ({}) runs for {exec} s inside the\n\
             edge's {t_shutdown} s shutdown window — which is why Table II splits the\n\
             shutdown row in two.",
            edge.total_energy().value(),
            service.name(),
        );
    }
}
