//! Regenerates **Figure 6**: servers required and energy per client for
//! 10–400 clients with 10 clients allowed in parallel per time slot, in
//! the ideal (no-loss) model.
//!
//! `cargo run -p pb-bench --bin fig6 [--csv] [--cap 10] [--from 10] [--to 400]`

use pb_bench::{emit, Args};
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::report::TextTable;
use pb_orchestra::sweep::SweepConfig;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: fig6 [--csv] [--cap N] [--from N] [--to N] [--step N]");
        return;
    }
    let cap: usize = args.get("cap", 10);
    let sweep = SweepConfig {
        edge_client: presets::edge_client(ServiceKind::Cnn),
        cloud_client: presets::edge_cloud_client(),
        server: presets::cloud_server(ServiceKind::Cnn, cap),
        loss: LossModel::NONE,
        policy: FillPolicy::PackSlots,
        seed: 6,
    };
    let points = sweep.run_range(args.get("from", 10), args.get("to", 400), args.get("step", 10));

    let mut t = TextTable::new(vec![
        "clients",
        "servers",
        "edge_J_per_client",
        "server_J_per_client",
        "total_J_per_client",
    ]);
    for p in &points {
        t.row(vec![
            p.n_clients.to_string(),
            p.cloud.n_servers.to_string(),
            format!("{:.1}", p.cloud.edge_energy_per_client.value()),
            format!("{:.1}", p.cloud.server_energy_per_client.value()),
            format!("{:.1}", p.cloud.total_per_client.value()),
        ]);
    }
    emit(&t, args.csv);

    if !args.csv {
        println!("\nPaper: edge flat at 322 J; server converges toward 116 J; best total");
        println!("438 J per client — 16% above the 367.5 J edge scenario.");
    }
}
