//! Regenerates **Figure 9**: the two scenarios compared for 100–2000
//! clients at 35 clients per slot with all three losses active.
//!
//! The transfer penalty uses the per-slot calibration and the balanced
//! fill policy — the reading of Section VI-C that reproduces the figure's
//! server counts ("three servers when the number of clients is between
//! 1600 and 1750"); see `pb_orchestra::loss::PenaltyMode` for why
//! Figures 8b and 9 need different readings.
//!
//! `cargo run -p pb-bench --bin fig9 [--csv] [--step 100]`

use pb_bench::{emit, Args};
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::report::comparison_table;
use pb_orchestra::sweep::{analyze_crossover, SweepConfig};

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: fig9 [--csv] [--step N]");
        return;
    }
    let sweep = SweepConfig {
        edge_client: presets::edge_client(ServiceKind::Cnn),
        cloud_client: presets::edge_cloud_client(),
        server: presets::cloud_server(ServiceKind::Cnn, 35),
        loss: LossModel::fig9(),
        policy: FillPolicy::BalanceSlots,
        seed: 9,
    };
    let points = sweep.run_range(100, 2000, args.get("step", 100));
    emit(&comparison_table(&points), args.csv);

    if args.plot && !args.csv {
        let edge: Vec<(f64, f64)> =
            points.iter().map(|p| (p.n_clients as f64, p.edge.total_per_client.value())).collect();
        let cloud: Vec<(f64, f64)> =
            points.iter().map(|p| (p.n_clients as f64, p.cloud.total_per_client.value())).collect();
        println!("\nJ/client vs clients — e = edge, c = edge+cloud (all losses):\n");
        println!(
            "{}",
            pb_orchestra::plot::AsciiChart::new(72, 16)
                .series('e', edge)
                .series('c', cloud)
                .render()
        );
    }

    if !args.csv {
        let fine = sweep.run_range(100, 2000, 5);
        let report = analyze_crossover(&fine);
        let wins = fine.iter().filter(|p| p.cloud_wins()).count();
        println!("\nwinning points : {wins}/{} sampled", fine.len());
        if let Some((n, adv)) = report.max_advantage {
            println!("max advantage  : {:.1} J/client at {n} clients", adv.value());
        }
        println!("\nPaper: the cap-35 setting becomes \"a little bit worse\" than its");
        println!("no-loss counterpart but keeps intervals where edge+cloud wins, e.g.");
        println!("three servers covering 1600–1750 clients.");
    }
}
