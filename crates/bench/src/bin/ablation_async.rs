//! Synchronized time slots vs unsynchronized FCFS arrivals (beyond the
//! paper).
//!
//! Quantifies what the paper's GPS-synchronized time slots buy: with
//! random arrivals the server's receive NIC is up for the near-full union
//! of upload intervals and the model runs once per client instead of once
//! per slot; with slots it is up 18 × 15 s and runs 18 batched executions.
//! Asynchrony buys latency instead — no client waits for its group's slot.
//!
//! `cargo run -p pb-bench --bin ablation_async [--csv]`

use pb_bench::{emit, Args};
use pb_orchestra::allocator::allocate;
use pb_orchestra::des::simulate_async_cycle;
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::report::TextTable;
use pb_orchestra::simulation::servers_cycle_energy;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: ablation_async [--csv] [--cap N] [--seed N]");
        return;
    }
    let cap: usize = args.get("cap", 10);
    let server = presets::cloud_server(ServiceKind::Cnn, cap);

    let mut t = TextTable::new(vec![
        "clients",
        "slotted_J",
        "async_J",
        "overhead_pct",
        "async_mean_latency_s",
        "async_peak_queue",
    ]);
    for n in [10usize, 60, 120, 180] {
        let allocation = allocate(n, &server, FillPolicy::PackSlots, None);
        let slotted = servers_cycle_energy(&server, &allocation, &LossModel::NONE);
        let mut rng = seeded_rng(args.get("seed", 42u64));
        let a = simulate_async_cycle(n, &server, &mut rng);
        t.row(vec![
            n.to_string(),
            format!("{:.0}", slotted.value()),
            format!("{:.0}", a.server_energy.value()),
            format!("{:.1}", (a.server_energy / slotted - 1.0) * 100.0),
            format!("{:.1}", a.mean_latency.value()),
            a.peak_queue.to_string(),
        ]);
    }
    emit(&t, args.csv);
    if !args.csv {
        println!("\nSynchronized slots + batched execution save substantial server energy;");
        println!("asynchrony's payoff is the ~16 s mean latency (no slot waiting).");
    }
}
