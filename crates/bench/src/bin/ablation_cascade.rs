//! Cascade placement ablation (beyond the paper).
//!
//! Adds a third placement to the paper's two: the hive runs the near-free
//! Goertzel detector on every clip and uploads only the uncertain ones to
//! the cloud CNN. Compares per-hive energy across the three placements at
//! several apiary sizes.
//!
//! `cargo run --release -p pb-bench --bin ablation_cascade [--csv]`

use pb_beehive::baseline::PipingDetector;
use pb_beehive::cascade::CascadePlacement;
use pb_bench::{emit, Args};
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::report::TextTable;
use pb_orchestra::sweep::SweepConfig;
use pb_signal::corpus::{Corpus, CorpusConfig};

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: ablation_cascade [--csv] [--clips N] [--band B] [--cap N]");
        return;
    }
    let clips: usize = args.get("clips", 60);
    let band: f64 = args.get("band", 1.0);
    let cap: usize = args.get("cap", 35);

    eprintln!("training the stage-1 detector on {clips} synthetic clips…");
    let labelled: Vec<(Vec<f64>, _)> = Corpus::generate(&CorpusConfig::small(clips, 3.0, 5))
        .clips()
        .iter()
        .map(|c| (c.samples.clone(), c.state))
        .collect();
    let detector = PipingDetector::train(&labelled, 22_050.0);
    let validation: Vec<(Vec<f64>, _)> = Corpus::generate(&CorpusConfig::small(clips, 3.0, 99))
        .clips()
        .iter()
        .map(|c| (c.samples.clone(), c.state))
        .collect();
    let cascade = CascadePlacement::from_detector(&detector, &validation, band);

    let sweep = SweepConfig {
        edge_client: presets::edge_client(ServiceKind::Cnn),
        cloud_client: presets::edge_cloud_client(),
        server: presets::cloud_server(ServiceKind::Cnn, cap),
        loss: LossModel::NONE,
        policy: FillPolicy::PackSlots,
        seed: 3,
    };

    let mut t = TextTable::new(vec![
        "hives",
        "edge_J",
        "edge_cloud_J",
        "cascade_J",
        "cascade_upload_pct",
        "winner",
    ]);
    for n in [50usize, 200, 630, 1200] {
        let p = sweep.compare_at(n);
        let cascade_total = cascade.total_per_client(n, cap);
        let edge = p.edge.total_per_client;
        let cloud = p.cloud.total_per_client;
        let winner = if cascade_total < edge.min(cloud) {
            "cascade"
        } else if cloud < edge {
            "edge+cloud"
        } else {
            "edge"
        };
        t.row(vec![
            n.to_string(),
            format!("{:.1}", edge.value()),
            format!("{:.1}", cloud.value()),
            format!("{:.1}", cascade_total.value()),
            format!("{:.0}", cascade.upload_fraction * 100.0),
            winner.to_string(),
        ]);
    }
    emit(&t, args.csv);

    if !args.csv {
        println!(
            "\nstage-1 detector: validation accuracy {:.0}%, uncertainty band ±{band},",
            detector.accuracy(&validation) * 100.0
        );
        println!(
            "stage-1 energy {:.1} J per clip (vs 94.8 J for the on-device CNN).",
            cascade.stage1_energy.value()
        );
        println!("The cascade pays the upload only on uncertain clips: once the apiary");
        println!("is large enough to keep a server busy, it undercuts both of the");
        println!("paper's placements (small apiaries still belong at the edge).");
    }
}
