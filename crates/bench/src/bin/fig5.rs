//! Regenerates **Figure 5**: queen-detection accuracy and Raspberry-Pi
//! inference energy as functions of the CNN's input image side.
//!
//! Trains the residual CNN at each resolution on a synthetic corpus and
//! prices the inference with the FLOP model anchored at the paper's
//! 100×100 measurement (94.8 J / 37.6 s on the Pi 3b+).
//!
//! `cargo run --release -p pb-bench --bin fig5 [--csv] [--clips 240]
//!  [--secs 2.0] [--sides 12,20,32,48,64,100]`

use pb_beehive::service::{PipelineConfig, QueenDetectionPipeline};
use pb_bench::{emit, Args};
use pb_orchestra::report::TextTable;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: fig5 [--csv] [--clips N] [--secs S] [--seed N] [--sides a,b,c]");
        return;
    }
    let clips: usize = args.get("clips", 240);
    let secs: f64 = args.get("secs", 2.0);
    let seed: u64 = args.get("seed", 55);
    let sides: Vec<usize> = args
        .get("sides", "12,20,32,48,64,100".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--sides expects comma-separated integers"))
        .collect();

    eprintln!(
        "synthesizing {clips} clips of {secs} s and training at {} resolutions…",
        sides.len()
    );
    // The paper's feature pipeline (n_fft 2048, hop 512, 128 mels) so the
    // spectrogram has fine structure for the high-resolution inputs to keep.
    let config = PipelineConfig {
        n_mels: 128,
        stft: pb_signal::stft::SpectrogramParams::default(),
        ..PipelineConfig::small(clips, secs, seed)
    };
    let pipeline = QueenDetectionPipeline::new(config);

    let (_, svm_acc) = pipeline.train_svm();
    let points = pipeline.resolution_sweep(&sides);

    let mut t = TextTable::new(vec!["side_px", "accuracy_pct", "macs", "pi_energy_J"]);
    for p in &points {
        t.row(vec![
            p.side.to_string(),
            format!("{:.1}", p.accuracy * 100.0),
            p.macs.to_string(),
            format!("{:.1}", p.edge_energy.value()),
        ]);
    }
    emit(&t, args.csv);

    if !args.csv {
        println!("\nSVM reference accuracy: {:.1}%", svm_acc * 100.0);
        println!("\nPaper: accuracy converges by 100×100 (99%); energy grows");
        println!("quadratically with the side and passes through 94.8 J at 100 px.");
    }
}
