//! Service ablation: SVM vs CNN at scale (beyond the paper).
//!
//! The paper's large-scale section fixes the CNN service. The SVM executes
//! in 0.1 s instead of 1.0 s on the server, so its time slots are 15.1 s
//! instead of 16 s → 19 slots per cycle instead of 18, changing server
//! capacity and every crossover. This ablation reruns the placement
//! analysis per service.
//!
//! `cargo run -p pb-bench --bin ablation_service [--csv]`

use pb_bench::{emit, Args};
use pb_orchestra::loss::LossModel;
use pb_orchestra::prelude::*;
use pb_orchestra::report::TextTable;
use pb_orchestra::sweep::{analyze_crossover, tipping_slot_capacity, SweepConfig};

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: ablation_service [--csv] [--cap N]");
        return;
    }
    let cap: usize = args.get("cap", 35);

    let mut t = TextTable::new(vec![
        "service",
        "slots_per_cycle",
        "clients_per_server",
        "tipping_slot_capacity",
        "first_crossover",
        "max_advantage_J",
        "at_clients",
    ]);

    for service in [ServiceKind::Svm, ServiceKind::Cnn] {
        let server = presets::cloud_server(service, cap);
        let sweep = SweepConfig {
            edge_client: presets::edge_client(service),
            cloud_client: presets::edge_cloud_client(),
            server: server.clone(),
            loss: LossModel::NONE,
            policy: FillPolicy::PackSlots,
            seed: 0x5E1,
        };
        let points = sweep.run_range(100, 2000, 1);
        let report = analyze_crossover(&points);
        let tip = tipping_slot_capacity(
            &presets::edge_client(service),
            &presets::edge_cloud_client(),
            |c| presets::cloud_server(service, c),
        );
        let (max_n, max_adv) = report
            .max_advantage
            .map(|(n, a)| (n.to_string(), format!("{:.1}", a.value())))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        t.row(vec![
            service.name().to_string(),
            server.n_slots(None).to_string(),
            server.capacity(None).to_string(),
            tip.map_or("-".into(), |v| v.to_string()),
            report.first_crossover.map_or("-".into(), |v| v.to_string()),
            max_adv,
            max_n,
        ]);
    }
    emit(&t, args.csv);
    if !args.csv {
        println!("\nThe SVM's shorter server execution packs one extra slot per cycle,");
        println!("raising per-server capacity and moving every crossover earlier.");
    }
}
