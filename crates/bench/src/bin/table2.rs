//! Regenerates **Table II**: per-task time and energy of the edge+cloud
//! scenario — the edge column from the device model and the cloud column
//! from one single-client cycle of the orchestration simulator.
//!
//! `cargo run -p pb-bench --bin table2`

use pb_device::constants::CYCLE_PERIOD;
use pb_device::profile::CloudServerProfile;
use pb_device::routine::{RoutineBuilder, ServiceKind};
use pb_energy::ledger::EnergyLedger;
use pb_units::Seconds;

fn main() {
    let builder = RoutineBuilder::deployed();
    let server = CloudServerProfile::i7_rtx2070();

    for service in [ServiceKind::Svm, ServiceKind::Cnn] {
        println!("Scenario: Edge+Cloud ({})\n", service.name());
        println!("Edge device:");
        let edge = builder.edge_cloud_cycle(CYCLE_PERIOD);
        println!("{}\n", edge.to_ledger());

        // Cloud column, aligned to the edge timeline exactly as the paper
        // prints it: idle during sleep, idle during collection, receive
        // during the upload, the model during the start of the shutdown,
        // then idle for the rest of the shutdown.
        let exec = match service {
            ServiceKind::Svm => server.svm_exec,
            ServiceKind::Cnn | ServiceKind::CnnInt8 => server.cnn_exec,
        };
        let sleep = edge.sleep_duration();
        let collect = Seconds(64.0);
        let receive = Seconds(15.0);
        let shutdown_rest = Seconds(9.9) - exec.1;
        let mut cloud = EnergyLedger::new();
        cloud.record("Idle (edge sleeps)", server.idle_power * sleep, sleep);
        cloud.record("Idle (edge collects)", server.idle_power * collect, collect);
        cloud.record("Receive audio", server.receive_power * receive, receive);
        cloud.record(format!("Queen detection model ({})", service.name()), exec.0, exec.1);
        cloud.record("Idle (edge shuts down)", server.idle_power * shutdown_rest, shutdown_rest);
        println!("Cloud server:");
        println!("{}\n", cloud);
    }
    println!("Paper totals: edge 322.0 J; cloud 13 744.3 J (SVM) / 13 806 J (CNN).");
}
