//! Regenerates **Table I**: per-task time and energy of the edge scenario
//! (SVM and CNN) over one 5-minute cycle.
//!
//! `cargo run -p pb-bench --bin table1`

use pb_device::constants::CYCLE_PERIOD;
use pb_device::routine::{RoutineBuilder, ServiceKind};

fn main() {
    let builder = RoutineBuilder::deployed();
    for service in [ServiceKind::Svm, ServiceKind::Cnn] {
        println!("Scenario: Edge ({})", service.name());
        println!("{}\n", builder.edge_cycle(service, CYCLE_PERIOD).to_ledger());
    }
    println!("Paper totals: 366.3 J (SVM), 367.5 J (CNN), 300 s each.");
}
