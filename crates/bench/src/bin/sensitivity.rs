//! Sensitivity of the headline results to the calibrated constants
//! (beyond the paper).
//!
//! Perturbs each measured constant by ±10 % / ±20 % and reports how the
//! tipping slot capacity (paper: 26) and the cap-35 crossover population
//! (paper: 406) move — i.e. how robust the paper's conclusions are to
//! measurement error.
//!
//! `cargo run -p pb-bench --bin sensitivity [--csv]`

use pb_bench::{emit, Args};
use pb_orchestra::report::TextTable;
use pb_orchestra::sensitivity::sensitivity_sweep;

fn main() {
    let args = Args::from_env();
    if args.help {
        println!("usage: sensitivity [--csv]");
        return;
    }
    let rows = sensitivity_sweep(&[0.8, 0.9, 1.0, 1.1, 1.2]);

    let mut t = TextTable::new(vec!["parameter", "factor", "tipping_capacity", "crossover_cap35"]);
    for r in &rows {
        t.row(vec![
            r.parameter.label().to_string(),
            format!("{:.1}", r.factor),
            r.tipping.map_or("never".into(), |v| v.to_string()),
            r.crossover_cap35.map_or("never".into(), |v| v.to_string()),
        ]);
    }
    emit(&t, args.csv);

    if !args.csv {
        println!("\nReading: the crossover is most sensitive to the cloud idle power");
        println!("(it dominates a part-full server), the tipping capacity to the");
        println!("receive power (it dominates a full one). Per-task edge energies");
        println!("shift both by tens of clients per ±10% — the paper's qualitative");
        println!("story survives every ±20% perturbation that keeps a crossover.");
    }
}
