#![warn(missing_docs)]

//! Shared plumbing for the figure/table regenerators.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper as a text table (default) or CSV (`--csv`). Regenerators accept a
//! small set of flags parsed by [`Args`]; run any of them with `--help`.

use std::collections::HashMap;

/// Minimal flag parser: `--key value` pairs plus boolean `--csv`/`--help`.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    /// Emit CSV instead of an aligned text table.
    pub csv: bool,
    /// Additionally render an ASCII chart (supported by the sweep figures).
    pub plot: bool,
    /// Print usage and exit.
    pub help: bool,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--csv" => out.csv = true,
                "--plot" => out.plot = true,
                "--help" | "-h" => out.help = true,
                flag if flag.starts_with("--") => {
                    let key = flag.trim_start_matches("--").to_string();
                    let value =
                        iter.next().unwrap_or_else(|| panic!("flag --{key} expects a value"));
                    out.values.insert(key, value);
                }
                other => panic!("unexpected argument: {other}"),
            }
        }
        out
    }

    /// A typed flag value, falling back to `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.values
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|e| panic!("bad value for --{key}: {e:?}")))
            .unwrap_or(default)
    }
}

/// Prints a rendered table or its CSV form depending on the `--csv` flag.
pub fn emit(table: &pb_orchestra::report::TextTable, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_values() {
        let a = Args::parse_from(["--clips", "64", "--csv", "--secs", "1.5"].map(String::from));
        assert!(a.csv);
        assert!(!a.help);
        assert_eq!(a.get("clips", 0usize), 64);
        assert_eq!(a.get("secs", 0.0f64), 1.5);
        assert_eq!(a.get("missing", 7usize), 7);
    }

    #[test]
    fn help_flag() {
        let a = Args::parse_from(["--help"].map(String::from));
        assert!(a.help);
    }

    #[test]
    #[should_panic(expected = "expects a value")]
    fn dangling_flag_panics() {
        let _ = Args::parse_from(["--clips"].map(String::from));
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn positional_panics() {
        let _ = Args::parse_from(["clips"].map(String::from));
    }
}
