//! Time quantities: durations and wall-clock time-of-day.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Rem, Sub, SubAssign};

/// A duration (or timestamp relative to a simulation origin) in seconds.
///
/// The simulator works in continuous time with `f64` seconds; sub-second task
/// durations appear throughout the paper's tables (e.g. the 0.1 s SVM
/// execution in Table II), so an integer tick type would be lossy.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(pub f64);

impl Seconds {
    /// The zero duration.
    pub const ZERO: Self = Seconds(0.0);

    /// Builds a duration from whole minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Seconds(minutes * 60.0)
    }

    /// Builds a duration from whole hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Seconds(hours * 3600.0)
    }

    /// Builds a duration from whole days.
    #[inline]
    pub fn from_days(days: f64) -> Self {
        Seconds(days * 86_400.0)
    }

    /// Raw value in seconds.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Duration expressed in minutes.
    #[inline]
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// Duration expressed in hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Duration expressed in days.
    #[inline]
    pub fn as_days(self) -> f64 {
        self.0 / 86_400.0
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Seconds(self.0.abs())
    }

    /// Larger of the two durations.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Seconds(self.0.max(other.0))
    }

    /// Smaller of the two durations.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Seconds(self.0.min(other.0))
    }

    /// Clamps to `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        Seconds(self.0.clamp(lo.0, hi.0))
    }

    /// True when the contained value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add for Seconds {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Seconds(self.0 - rhs.0)
    }
}

impl SubAssign for Seconds {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Seconds {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Seconds(self.0 * rhs)
    }
}

impl Mul<Seconds> for f64 {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Seconds) -> Seconds {
        Seconds(self * rhs.0)
    }
}

impl MulAssign<f64> for Seconds {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.0 *= rhs;
    }
}

impl Div<f64> for Seconds {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Seconds(self.0 / rhs)
    }
}

impl DivAssign<f64> for Seconds {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        self.0 /= rhs;
    }
}

/// Ratio of two durations is dimensionless.
impl Div for Seconds {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Self) -> f64 {
        self.0 / rhs.0
    }
}

/// Remainder, used to fold simulation time onto a daily cycle.
impl Rem for Seconds {
    type Output = Self;
    #[inline]
    fn rem(self, rhs: Self) -> Self {
        Seconds(self.0.rem_euclid(rhs.0))
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Seconds(iter.map(|s| s.0).sum())
    }
}

impl<'a> Sum<&'a Seconds> for Seconds {
    fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
        Seconds(iter.map(|s| s.0).sum())
    }
}

impl fmt::Debug for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} s", self.0)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match f.precision() {
            Some(p) => write!(f, "{:.*} s", p, self.0),
            None => write!(f, "{:.3} s", self.0),
        }
    }
}

/// Wall-clock time of day, wrapped to `[0, 86 400)` seconds after midnight.
///
/// Used by the solar model to decide whether the sun is up and by the
/// deployment simulation to align wake-ups with Figure 2's day/night bands.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct TimeOfDay(f64);

impl TimeOfDay {
    /// Midnight.
    pub const MIDNIGHT: Self = TimeOfDay(0.0);
    /// Solar noon (12:00).
    pub const NOON: Self = TimeOfDay(43_200.0);

    /// Builds from seconds after midnight (wraps modulo 24 h).
    #[inline]
    pub fn from_seconds(s: f64) -> Self {
        TimeOfDay(s.rem_euclid(86_400.0))
    }

    /// Builds from `hh:mm` (wraps modulo 24 h).
    #[inline]
    pub fn from_hm(hours: u32, minutes: u32) -> Self {
        Self::from_seconds(f64::from(hours) * 3600.0 + f64::from(minutes) * 60.0)
    }

    /// Time of day at an absolute simulation timestamp.
    #[inline]
    pub fn at(timestamp: Seconds) -> Self {
        Self::from_seconds(timestamp.value())
    }

    /// Seconds after midnight, in `[0, 86 400)`.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Hour of day as a fraction, in `[0, 24)`.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// True if this time falls in `[start, end)`, handling windows that wrap
    /// past midnight (e.g. 21:00–06:00).
    pub fn within(self, start: TimeOfDay, end: TimeOfDay) -> bool {
        if start.0 <= end.0 {
            self.0 >= start.0 && self.0 < end.0
        } else {
            self.0 >= start.0 || self.0 < end.0
        }
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0 as u64;
        write!(f, "{:02}:{:02}:{:02}", total / 3600, (total / 60) % 60, total % 60)
    }
}
