#![warn(missing_docs)]

//! Typed physical quantities for the precision-beekeeping workspace.
//!
//! Every energy figure in the reproduced paper is a product of a power and a
//! duration; mixing the three up is the easiest way to corrupt a simulation
//! silently. This crate wraps each dimension in a newtype over `f64` and only
//! implements the physically meaningful operations:
//!
//! ```
//! use pb_units::{Watts, Seconds, Joules};
//!
//! let routine = Watts(2.14) * Seconds(89.0);
//! assert!((routine - Joules(190.46)).abs() < Joules(0.1));
//! assert_eq!(Joules(190.1) / Seconds(89.0), Watts(190.1 / 89.0));
//! ```
//!
//! All types are `Copy` and ordered. Values are plain SI: joules, watts,
//! seconds, hertz, volts, amperes, degrees Celsius.

mod quantity;
mod time;

pub use quantity::{Amperes, Celsius, Hertz, Joules, Percent, Volts, WattHours, Watts};
pub use time::{Seconds, TimeOfDay};

#[cfg(test)]
mod tests;
