//! Scalar physical quantities and the arithmetic that relates them.

use crate::Seconds;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Implements the boilerplate shared by every scalar quantity: same-type
/// addition/subtraction, scaling by `f64`, comparison helpers and display.
macro_rules! scalar_quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw `f64` value in base SI units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps to `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// True when the contained value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:?} {}", self.0, $unit)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match f.precision() {
                    Some(p) => write!(f, "{:.*} {}", p, self.0, $unit),
                    None => write!(f, "{:.3} {}", self.0, $unit),
                }
            }
        }
    };
}

scalar_quantity!(
    /// Energy in joules.
    Joules,
    "J"
);
scalar_quantity!(
    /// Power in watts.
    Watts,
    "W"
);
scalar_quantity!(
    /// Energy in watt-hours (used for battery capacities and daily budgets).
    WattHours,
    "Wh"
);
scalar_quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
scalar_quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
scalar_quantity!(
    /// Electric current in amperes.
    Amperes,
    "A"
);
scalar_quantity!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C"
);
scalar_quantity!(
    /// Dimensionless ratio expressed in percent (0–100).
    Percent,
    "%"
);

impl Joules {
    /// Converts to watt-hours (1 Wh = 3600 J).
    #[inline]
    pub fn to_watt_hours(self) -> WattHours {
        WattHours(self.0 / 3600.0)
    }
}

impl WattHours {
    /// Converts to joules (1 Wh = 3600 J).
    #[inline]
    pub fn to_joules(self) -> Joules {
        Joules(self.0 * 3600.0)
    }
}

impl Percent {
    /// Builds a percentage from a fraction in `[0, 1]`.
    #[inline]
    pub fn from_fraction(f: f64) -> Self {
        Percent(f * 100.0)
    }

    /// Fraction in `[0, 1]` corresponding to this percentage.
    #[inline]
    pub fn fraction(self) -> f64 {
        self.0 / 100.0
    }
}

impl Hertz {
    /// Period of one cycle at this frequency.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds(1.0 / self.0)
    }
}

// --- Cross-dimension arithmetic -----------------------------------------

/// Power × time = energy.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.value())
    }
}

/// Time × power = energy.
impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.value() * rhs.0)
    }
}

/// Energy ÷ time = mean power.
impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.value())
    }
}

/// Energy ÷ power = time.
impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// Voltage × current = power.
impl Mul<Amperes> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amperes) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// Current × voltage = power.
impl Mul<Volts> for Amperes {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// Power ÷ voltage = current.
impl Div<Volts> for Watts {
    type Output = Amperes;
    #[inline]
    fn div(self, rhs: Volts) -> Amperes {
        Amperes(self.0 / rhs.0)
    }
}
