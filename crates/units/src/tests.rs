use crate::*;

const EPS: f64 = 1e-12;

#[test]
fn power_times_time_is_energy() {
    assert!(((Watts(2.14) * Seconds(89.0)).value() - 190.46).abs() < 1e-9);
    assert!(((Seconds(89.0) * Watts(2.14)).value() - 190.46).abs() < 1e-9);
}

#[test]
fn energy_over_time_is_power() {
    let p = Joules(190.1) / Seconds(89.0);
    assert!((p.value() - 190.1 / 89.0).abs() < EPS);
}

#[test]
fn energy_over_power_is_time() {
    let t = Joules(190.1) / Watts(2.14);
    assert!((t.value() - 190.1 / 2.14).abs() < EPS);
}

#[test]
fn volts_times_amps_is_watts() {
    assert_eq!(Volts(5.0) * Amperes(0.6), Watts(3.0));
    assert_eq!(Amperes(0.6) * Volts(5.0), Watts(3.0));
    assert_eq!(Watts(3.0) / Volts(5.0), Amperes(0.6));
}

#[test]
fn watt_hour_round_trip() {
    let e = Joules(7200.0);
    assert_eq!(e.to_watt_hours(), WattHours(2.0));
    assert_eq!(WattHours(2.0).to_joules(), e);
}

#[test]
fn additive_ops() {
    let mut e = Joules(1.0);
    e += Joules(2.0);
    assert_eq!(e, Joules(3.0));
    e -= Joules(0.5);
    assert_eq!(e, Joules(2.5));
    assert_eq!(-e, Joules(-2.5));
    assert_eq!(e.abs(), Joules(2.5));
    assert_eq!((-e).abs(), Joules(2.5));
}

#[test]
fn scaling_ops() {
    let mut p = Watts(2.0);
    p *= 3.0;
    assert_eq!(p, Watts(6.0));
    p /= 2.0;
    assert_eq!(p, Watts(3.0));
    assert_eq!(2.0 * p, Watts(6.0));
    assert_eq!(p * 2.0, Watts(6.0));
}

#[test]
fn like_ratio_is_dimensionless() {
    let r: f64 = Joules(10.0) / Joules(4.0);
    assert!((r - 2.5).abs() < EPS);
    let r: f64 = Seconds(300.0) / Seconds(60.0);
    assert!((r - 5.0).abs() < EPS);
}

#[test]
fn sums() {
    let total: Joules = [Joules(1.0), Joules(2.0), Joules(3.0)].iter().sum();
    assert_eq!(total, Joules(6.0));
    let total: Seconds = vec![Seconds(1.5), Seconds(2.5)].into_iter().sum();
    assert_eq!(total, Seconds(4.0));
}

#[test]
fn min_max_clamp() {
    assert_eq!(Watts(1.0).max(Watts(2.0)), Watts(2.0));
    assert_eq!(Watts(1.0).min(Watts(2.0)), Watts(1.0));
    assert_eq!(Watts(5.0).clamp(Watts(0.0), Watts(2.0)), Watts(2.0));
    assert_eq!(Watts(-5.0).clamp(Watts(0.0), Watts(2.0)), Watts(0.0));
}

#[test]
fn percent_fraction_round_trip() {
    assert_eq!(Percent::from_fraction(0.121), Percent(12.1));
    assert!((Percent(12.1).fraction() - 0.121).abs() < EPS);
}

#[test]
fn hertz_period() {
    assert_eq!(Hertz(2.0).period(), Seconds(0.5));
}

#[test]
fn seconds_constructors_and_views() {
    assert_eq!(Seconds::from_minutes(5.0), Seconds(300.0));
    assert_eq!(Seconds::from_hours(2.0), Seconds(7200.0));
    assert_eq!(Seconds::from_days(1.0), Seconds(86_400.0));
    assert!((Seconds(300.0).as_minutes() - 5.0).abs() < EPS);
    assert!((Seconds(7200.0).as_hours() - 2.0).abs() < EPS);
    assert!((Seconds(43_200.0).as_days() - 0.5).abs() < EPS);
}

#[test]
fn seconds_rem_wraps_like_modulo() {
    let day = Seconds::from_days(1.0);
    let t = Seconds::from_days(2.0) + Seconds(17.0);
    assert!(((t % day).value() - 17.0).abs() < EPS);
    // rem_euclid semantics: negative timestamps fold into [0, day).
    let neg = Seconds(-10.0);
    assert!(((neg % day).value() - 86_390.0).abs() < EPS);
}

#[test]
fn time_of_day_wraps() {
    let t = TimeOfDay::from_seconds(86_400.0 + 30.0);
    assert!((t.seconds() - 30.0).abs() < EPS);
    assert_eq!(TimeOfDay::from_hm(25, 0), TimeOfDay::from_hm(1, 0));
}

#[test]
fn time_of_day_within_plain_window() {
    let start = TimeOfDay::from_hm(9, 0);
    let end = TimeOfDay::from_hm(17, 0);
    assert!(TimeOfDay::NOON.within(start, end));
    assert!(!TimeOfDay::MIDNIGHT.within(start, end));
    // start is inclusive, end exclusive
    assert!(start.within(start, end));
    assert!(!end.within(start, end));
}

#[test]
fn time_of_day_within_wrapping_window() {
    let night_start = TimeOfDay::from_hm(21, 0);
    let night_end = TimeOfDay::from_hm(6, 0);
    assert!(TimeOfDay::MIDNIGHT.within(night_start, night_end));
    assert!(TimeOfDay::from_hm(23, 59).within(night_start, night_end));
    assert!(TimeOfDay::from_hm(5, 59).within(night_start, night_end));
    assert!(!TimeOfDay::NOON.within(night_start, night_end));
}

#[test]
fn time_of_day_at_timestamp() {
    let t = TimeOfDay::at(Seconds::from_days(3.0) + Seconds::from_hours(14.0));
    assert!((t.hours() - 14.0).abs() < EPS);
}

#[test]
fn display_formats() {
    assert_eq!(format!("{}", Joules(190.1)), "190.100 J");
    assert_eq!(format!("{:.1}", Watts(0.62)), "0.6 W");
    assert_eq!(format!("{}", TimeOfDay::from_hm(9, 5)), "09:05:00");
    assert_eq!(format!("{}", Seconds(1.5)), "1.500 s");
}

#[test]
fn finite_checks() {
    assert!(Joules(1.0).is_finite());
    assert!(!Joules(f64::NAN).is_finite());
    assert!(!Seconds(f64::INFINITY).is_finite());
}

mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn energy_power_time_triangle(p in 0.01f64..1e4, t in 0.01f64..1e6) {
            let e = Watts(p) * Seconds(t);
            let p_back = e / Seconds(t);
            let t_back = e / Watts(p);
            prop_assert!((p_back.value() - p).abs() / p < 1e-12);
            prop_assert!((t_back.value() - t).abs() / t < 1e-12);
        }

        #[test]
        fn addition_commutes(a in -1e9f64..1e9, b in -1e9f64..1e9) {
            prop_assert_eq!(Joules(a) + Joules(b), Joules(b) + Joules(a));
        }

        #[test]
        fn watt_hours_round_trip(j in -1e12f64..1e12) {
            let back = Joules(j).to_watt_hours().to_joules();
            prop_assert!((back.value() - j).abs() <= j.abs() * 1e-12);
        }

        #[test]
        fn time_of_day_always_in_range(s in -1e9f64..1e9) {
            let t = TimeOfDay::from_seconds(s);
            prop_assert!(t.seconds() >= 0.0 && t.seconds() < 86_400.0);
        }

        #[test]
        fn within_full_day_window_is_always_true(s in 0f64..86_400.0) {
            let t = TimeOfDay::from_seconds(s);
            // A [start, start) window wraps the whole day except nothing:
            // within() treats equal endpoints as wrap-around covering nothing
            // on the same-second boundary only.
            let win_all = t.within(TimeOfDay::MIDNIGHT, TimeOfDay::from_seconds(86_399.999));
            let late = t.seconds() >= 86_399.999;
            prop_assert_eq!(win_all, !late);
        }
    }
}
