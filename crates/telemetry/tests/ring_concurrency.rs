//! `RingBufferSink` concurrency properties.
//!
//! Writers on the persistent pool hammer one shared ring concurrently;
//! whatever the interleaving, the sink must uphold:
//!
//! 1. **Capacity**: never more than `capacity` events retained, and
//!    exactly `min(capacity, total)` once the dust settles;
//! 2. **Per-writer recording order**: each writer's surviving events
//!    appear in the order that writer recorded them;
//! 3. **Suffix retention**: eviction is globally oldest-first, so the
//!    events a writer keeps are a *contiguous suffix* of what it wrote —
//!    a writer can lose its head, never its tail.
//!
//! Writers emit fixed-size chunks with their identity and a
//! monotonically increasing index in the fields, so the assertions can
//! be made chunk-ordered per writer without assuming any cross-writer
//! interleaving.

use pb_telemetry::{Event, EventSink, RingBufferSink, Value};
use proptest::prelude::*;
use rayon::prelude::*;

fn event(writer: usize, index: usize) -> Event {
    Event {
        t_sim: index as f64,
        // seq is normally assigned by the Telemetry handle; the sink
        // itself must not depend on it for ordering.
        seq: 0,
        kind: "proptest.write".to_string(),
        fields: vec![("writer", writer.into()), ("index", index.into())],
    }
}

fn field(e: &Event, key: &str) -> usize {
    match e.fields.iter().find(|(k, _)| *k == key) {
        Some((_, Value::U64(v))) => *v as usize,
        other => panic!("missing field {key}: {other:?}"),
    }
}

/// Runs `writers` concurrent producers of `per_writer` events each
/// against one shared ring and returns the retained events.
fn hammer(capacity: usize, writers: usize, per_writer: usize) -> (RingBufferSink, Vec<Event>) {
    let sink = RingBufferSink::new(capacity);
    let ids: Vec<usize> = (0..writers).collect();
    ids.par_iter().for_each(|&w| {
        for i in 0..per_writer {
            sink.record(event(w, i));
        }
    });
    let events = sink.events();
    (sink, events)
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(64))]

    #[test]
    fn capacity_and_order_hold_under_concurrent_writers(
        capacity in 1usize..96,
        writers in 1usize..8,
        per_writer in 0usize..48,
    ) {
        let (sink, events) = hammer(capacity, writers, per_writer);
        let total = writers * per_writer;

        // Capacity invariant: the ring retains exactly the bounded tail.
        prop_assert_eq!(events.len(), total.min(capacity));
        prop_assert_eq!(sink.len(), events.len());
        prop_assert_eq!(sink.capacity(), capacity);

        // Chunk-ordered per-writer assertions: split the retained stream
        // by writer and check each writer's slice independently.
        for w in 0..writers {
            let indices: Vec<usize> = events
                .iter()
                .filter(|e| field(e, "writer") == w)
                .map(|e| field(e, "index"))
                .collect();

            // Recording order: strictly increasing per writer (the ring
            // preserves arrival order and never reorders).
            for pair in indices.windows(2) {
                prop_assert!(
                    pair[0] < pair[1],
                    "writer {} out of order: {:?}", w, indices
                );
            }

            // Suffix retention: eviction is oldest-first, and a writer's
            // own records enter in index order, so whatever survives is
            // the contiguous tail `per_writer - k .. per_writer`.
            if let Some(&first) = indices.first() {
                let expect: Vec<usize> = (first..per_writer).collect();
                prop_assert_eq!(
                    &indices, &expect,
                    "writer {} must keep a contiguous suffix", w
                );
            }
        }
    }

    #[test]
    fn single_writer_tail_is_exact(capacity in 1usize..64, n in 0usize..128) {
        // Degenerate single-writer case pins the exact retained window.
        let (_, events) = hammer(capacity, 1, n);
        let got: Vec<usize> = events.iter().map(|e| field(e, "index")).collect();
        let expect: Vec<usize> = (n.saturating_sub(capacity)..n).collect();
        prop_assert_eq!(got, expect);
    }
}
