#![warn(missing_docs)]

//! Cross-cutting observability for the precision-beekeeping workspace.
//!
//! The simulator's core claim — placement chosen by energy accounting at
//! fleet scale — is only auditable if one can see *where* joules, time
//! slots and wall-clock milliseconds go. This crate is the layer every
//! other crate hangs that visibility off:
//!
//! * **Spans** ([`Span`], [`Telemetry::span`]) — lightweight RAII wall-time
//!   timers that aggregate into histograms (count, total, min, max, p50,
//!   p95), safe to use inside rayon-parallel sweeps;
//! * **Metrics** ([`metrics::MetricsRegistry`]) — named counters, gauges
//!   and histograms with cheap typed handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) backed by atomics;
//! * **Events** ([`events`]) — a structured, sim-time-stamped event log
//!   with three sinks: an in-memory buffer exported as JSONL
//!   ([`events::BufferSink`]), a bounded ring buffer
//!   ([`events::RingBufferSink`]) and a no-op sink
//!   ([`events::NoopSink`]).
//!
//! The entry point is [`Telemetry`], a cheaply clonable handle that is
//! either *enabled* (carries a registry and a sink) or *disabled* (a
//! `None`; every operation is an inlineable branch that does nothing).
//! Disabled telemetry performs no clock reads, no allocation and no
//! atomic traffic, so instrumented code paths stay bit- and
//! performance-identical to uninstrumented ones.
//!
//! The crate deliberately has **zero dependencies** — no serde, no
//! tracing, not even the workspace's own `pb-units` — so it can sit below
//! every other crate without cycles.
//!
//! # Example
//!
//! ```
//! use pb_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! {
//!     let _guard = tel.span("allocate"); // records wall time on drop
//! }
//! tel.add_to_counter("cache.hits", 3);
//! tel.event(12.5, "slot.filled", vec![("occupancy", 10u64.into())]);
//!
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("cache.hits"), Some(3));
//! assert_eq!(snap.histogram("allocate").unwrap().count, 1);
//! assert_eq!(tel.events().len(), 1);
//! ```

pub mod events;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use events::{BufferSink, Event, EventSink, NoopSink, RingBufferSink, Value};
pub use flight::FlightRecorderSink;
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry};
pub use snapshot::TelemetrySnapshot;
pub use span::Span;
pub use trace::{Forensics, SpanCtx};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct Inner {
    registry: MetricsRegistry,
    sink: Box<dyn EventSink>,
    seq: AtomicU64,
    tracing: AtomicBool,
}

/// A cheaply clonable telemetry handle: either enabled (registry + event
/// sink) or disabled (every operation is a no-op branch).
///
/// Clones share the same registry and sink, so a handle can fan out
/// across rayon workers while all of them aggregate into one place.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A disabled handle: no registry, no sink, no overhead beyond a
    /// `None` check at each instrumentation point. This is the default.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with an unbounded in-memory event buffer
    /// ([`BufferSink`]) — the right choice when a JSONL trace will be
    /// exported at the end of the run.
    pub fn enabled() -> Self {
        Telemetry::with_sink(Box::new(BufferSink::new()))
    }

    /// An enabled handle that records metrics but drops every event
    /// ([`NoopSink`]) — metrics without trace memory growth.
    pub fn metrics_only() -> Self {
        Telemetry::with_sink(Box::new(NoopSink))
    }

    /// An enabled handle keeping only the most recent `capacity` events
    /// ([`RingBufferSink`]).
    pub fn ring(capacity: usize) -> Self {
        Telemetry::with_sink(Box::new(RingBufferSink::new(capacity)))
    }

    /// An enabled handle with an explicit event sink.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: MetricsRegistry::new(),
                sink,
                seq: AtomicU64::new(0),
                tracing: AtomicBool::new(false),
            })),
        }
    }

    /// Turns on causal tracing for this handle (and every clone sharing
    /// it): replay paths additionally emit `trace.*` span events and tag
    /// fault/DES events with `trace`/`span`/`parent` ids. A no-op on a
    /// disabled handle. With tracing *off*, recorded events are
    /// byte-identical to pre-tracing builds.
    #[must_use]
    pub fn with_tracing(self) -> Self {
        if let Some(inner) = &self.inner {
            inner.tracing.store(true, Ordering::Relaxed);
        }
        self
    }

    /// True when causal tracing was requested *and* events actually reach
    /// a retaining sink — the gate instrumented replay paths check before
    /// building span contexts.
    #[inline]
    pub fn tracing_active(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.tracing.load(Ordering::Relaxed) && i.sink.is_recording())
    }

    /// True when this handle carries a registry (metrics are recorded).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when events reach a sink that keeps them — callers building
    /// non-trivial field vectors should guard on this first.
    #[inline]
    pub fn events_recording(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.sink.is_recording())
    }

    /// The metrics registry, when enabled. Hot paths resolve handles once
    /// through this and store them instead of looking names up per call.
    #[inline]
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// Starts a wall-time span that records into the histogram `name` on
    /// drop. Disabled handles return an inert guard without reading the
    /// clock.
    #[inline]
    pub fn span(&self, name: &str) -> Span {
        match self.registry() {
            Some(r) => Span::active(r.histogram(name)),
            None => Span::inert(),
        }
    }

    /// Adds `v` to the counter `name` (no-op when disabled). Convenience
    /// for cold call sites; hot paths should hold a [`Counter`] handle.
    pub fn add_to_counter(&self, name: &str, v: u64) {
        if let Some(r) = self.registry() {
            r.counter(name).add(v);
        }
    }

    /// Records `v` into the histogram `name` (no-op when disabled).
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(r) = self.registry() {
            r.histogram(name).observe(v);
        }
    }

    /// Sets the gauge `name` to `v` (no-op when disabled).
    pub fn set_gauge(&self, name: &str, v: f64) {
        if let Some(r) = self.registry() {
            r.gauge(name).set(v);
        }
    }

    /// Appends a sim-time-stamped event to the sink (no-op when disabled
    /// or when the sink drops events). `t_sim` is simulation time in
    /// seconds; the fields become the JSONL record's extra keys.
    pub fn event(&self, t_sim: f64, kind: &str, fields: Vec<(&'static str, Value)>) {
        if let Some(inner) = &self.inner {
            if inner.sink.is_recording() {
                let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
                inner.sink.record(Event { t_sim, seq, kind: kind.to_string(), fields });
            }
        }
    }

    /// [`Telemetry::event`] with the span context appended as
    /// `trace`/`span`/`parent` fields (16-digit hex strings, since the
    /// raw 64-bit ids exceed JSON's exact-integer range). This is the
    /// one way causal tags enter a trace, so every tagged event shares
    /// the same field names and encoding.
    pub fn trace_event(
        &self,
        t_sim: f64,
        kind: &str,
        span: SpanCtx,
        mut fields: Vec<(&'static str, Value)>,
    ) {
        if self.events_recording() {
            // Raw ids, not pre-rendered hex strings: `Value::Hex` defers
            // the 16-digit formatting to export time, so tagging an
            // event allocates nothing beyond the fields vector itself.
            fields.push(("trace", Value::Hex(span.trace)));
            fields.push(("span", Value::Hex(span.span)));
            fields.push(("parent", Value::Hex(span.parent)));
            self.event(t_sim, kind, fields);
        }
    }

    /// Every retained event, in recording order (unsorted).
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.sink.events())
    }

    /// Every retained event sorted by `(t_sim, seq)` — the order traces
    /// are exported in, guaranteeing monotone non-decreasing timestamps
    /// even when events were recorded from parallel workers.
    pub fn events_sorted(&self) -> Vec<Event> {
        let mut events = self.events();
        events.sort_by(|a, b| a.t_sim.total_cmp(&b.t_sim).then(a.seq.cmp(&b.seq)));
        events
    }

    /// Renders the retained events as line-delimited JSON, sorted by sim
    /// time (one [`Event::to_json`] object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events_sorted() {
            e.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL trace to `path`; returns the number of lines.
    pub fn write_trace(&self, path: &str) -> std::io::Result<usize> {
        let events = self.events_sorted();
        let mut out = String::new();
        for e in &events {
            e.write_json(&mut out);
            out.push('\n');
        }
        std::fs::write(path, out)?;
        Ok(events.len())
    }

    /// A frozen, sorted view of every metric (empty when disabled).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry().map_or_else(TelemetrySnapshot::default, MetricsRegistry::snapshot)
    }
}

/// Starts a span on a [`Telemetry`] handle: `span!(tel, "allocate")`
/// evaluates to the RAII guard, to be bound (`let _s = span!(…)`) so it
/// drops at scope end.
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:expr) => {
        $telemetry.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert_and_free_of_state() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert!(!tel.events_recording());
        let _s = tel.span("x");
        tel.add_to_counter("c", 5);
        tel.observe("h", 1.0);
        tel.set_gauge("g", 2.0);
        tel.event(0.0, "e", vec![]);
        assert!(tel.events().is_empty());
        let snap = tel.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn enabled_records_metrics_and_events() {
        let tel = Telemetry::enabled();
        assert!(tel.is_enabled() && tel.events_recording());
        tel.add_to_counter("c", 2);
        tel.add_to_counter("c", 3);
        tel.set_gauge("g", 7.5);
        tel.observe("h", 4.0);
        tel.event(1.0, "first", vec![("k", 1u64.into())]);
        tel.event(0.5, "second", vec![]);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.gauge("g"), Some(7.5));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        // Sorted export reorders by sim time.
        let sorted = tel.events_sorted();
        assert_eq!(sorted[0].kind, "second");
        assert_eq!(sorted[1].kind, "first");
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        other.add_to_counter("shared", 1);
        assert_eq!(tel.snapshot().counter("shared"), Some(1));
    }

    #[test]
    fn metrics_only_drops_events() {
        let tel = Telemetry::metrics_only();
        assert!(tel.is_enabled());
        assert!(!tel.events_recording());
        tel.event(0.0, "dropped", vec![]);
        assert!(tel.events().is_empty());
        tel.add_to_counter("kept", 1);
        assert_eq!(tel.snapshot().counter("kept"), Some(1));
    }

    #[test]
    fn span_macro_times_a_scope() {
        let tel = Telemetry::enabled();
        {
            let _s = span!(tel, "scope");
            std::hint::black_box(0u64);
        }
        let h = tel.snapshot().histogram("scope").cloned().expect("span recorded");
        assert_eq!(h.count, 1);
        assert!(h.total >= 0.0);
    }

    #[test]
    fn spans_aggregate_under_threads() {
        let tel = Telemetry::enabled();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = tel.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let _s = t.span("par");
                        std::hint::black_box(1u64);
                    }
                });
            }
        });
        assert_eq!(tel.snapshot().histogram("par").unwrap().count, 800);
    }

    #[test]
    fn tracing_flag_requires_a_recording_sink() {
        assert!(!Telemetry::disabled().with_tracing().tracing_active());
        // Metrics-only sinks drop events, so tracing stays inactive.
        assert!(!Telemetry::metrics_only().with_tracing().tracing_active());
        let tel = Telemetry::enabled();
        assert!(!tel.tracing_active());
        let tel = tel.with_tracing();
        assert!(tel.tracing_active());
        // Clones share the flag.
        assert!(tel.clone().tracing_active());
    }

    #[test]
    fn jsonl_round_trips() {
        let tel = Telemetry::enabled();
        tel.event(2.0, "b", vec![("x", 1.5f64.into())]);
        tel.event(1.0, "a", vec![("s", "hi \"there\"".into())]);
        let jsonl = tel.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let mut last_t = f64::NEG_INFINITY;
        for line in lines {
            let v = json::parse(line).expect("valid JSON");
            let t = v.get("t").and_then(json::Json::as_f64).expect("t field");
            assert!(t >= last_t, "timestamps must be monotone");
            last_t = t;
        }
    }
}
