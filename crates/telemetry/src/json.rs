//! Minimal JSON support: string escaping for the writer side and a small
//! recursive-descent parser for validating/round-tripping JSONL traces.
//!
//! The crate stays zero-dependency, so this is deliberately the smallest
//! JSON subset the event log needs — numbers parse as `f64`, objects
//! preserve key order, and there is no streaming.

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Numbers are `f64`; object key order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (None for other variants/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number '{text}' at {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not needed by the writer
                        // (it never emits them); reject rather than
                        // silently mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("invalid code point {code:#x}"))?;
                        out.push(c);
                    }
                    other => return Err(format!("invalid escape '\\{}'", other as char)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at b.
                let width = utf8_width(b)?;
                let start = *pos - 1;
                let slice = bytes
                    .get(start..start + width)
                    .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                let s = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos = start + width;
            }
        }
    }
}

fn utf8_width(b: u8) -> Result<usize, String> {
    match b {
        0x00..=0x7F => Ok(1),
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(format!("invalid UTF-8 lead byte {b:#x}")),
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand\ttab",
            "control \u{01} char",
            "unicode: héllo 🐝",
            "",
        ] {
            let escaped = escape(s);
            let parsed = parse(&escaped).expect("escaped string parses");
            assert_eq!(parsed.as_str(), Some(s), "round trip of {s:?}");
        }
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap().as_f64(), Some(42.0));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("  0.25  ").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}, null], "d": true}"#).unwrap();
        let arr = match v.get("a") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("c"));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"k\" 1}", "12 34", "tru", "{\"k\":}", "[1 2]"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }
}
