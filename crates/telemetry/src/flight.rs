//! Bounded flight recorder with anomaly-triggered post-mortems.
//!
//! A [`FlightRecorderSink`] keeps only the most recent `N` events *per
//! severity* — so a flood of routine info events can never evict the
//! warning/error context that explains a failure — and, when an anomaly
//! trigger fires (edge fallback, brown-out, conservation mismatch), dumps
//! the merged rings as a JSONL post-mortem file. It is the default sink
//! for `pb sweep --faults`: memory stays bounded on million-client runs,
//! yet the first anomaly leaves a readable black box behind.

use crate::events::{Event, EventSink};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Event severity, classified from the event kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Routine instrumentation (`des.*`, `trace.*`, `harvest.*`, …).
    Info,
    /// Degradation en route to recovery (`fault.outage`,
    /// `fault.packet_drop`, `fault.retry`).
    Warn,
    /// Terminal trouble: `fault.fallback` and every `anomaly.*` kind.
    Error,
}

impl Severity {
    /// Classifies an event kind. The scheme is prefix-based so new fault
    /// or anomaly kinds inherit sensible severities without registration.
    pub fn classify(kind: &str) -> Severity {
        if kind.starts_with("anomaly.") || kind == "fault.fallback" {
            Severity::Error
        } else if kind.starts_with("fault.") {
            Severity::Warn
        } else {
            Severity::Info
        }
    }

    fn index(self) -> usize {
        match self {
            Severity::Info => 0,
            Severity::Warn => 1,
            Severity::Error => 2,
        }
    }
}

/// True when an event kind should trip a post-mortem dump: retry
/// exhaustion / brown-out fallbacks (`fault.fallback`, including
/// `cause=brownout`) and every `anomaly.*` kind (e.g. the
/// `anomaly.conservation` mismatch emitted by `pb sweep`).
pub fn is_trigger(kind: &str) -> bool {
    kind == "fault.fallback" || kind.starts_with("anomaly.")
}

/// A bounded per-severity event recorder with anomaly-triggered JSONL
/// dumps. See the module docs for the retention and trigger model.
#[derive(Debug)]
pub struct FlightRecorderSink {
    per_severity: usize,
    rings: [Mutex<VecDeque<Event>>; 3],
    dump_path: Option<String>,
    max_dumps: u64,
    dumps: AtomicU64,
    triggers: AtomicU64,
    last_trigger: Mutex<Option<String>>,
}

impl FlightRecorderSink {
    /// A recorder keeping the most recent `per_severity` events in each
    /// of the info/warn/error rings, with auto-dump disarmed.
    ///
    /// # Panics
    /// Panics when `per_severity` is zero.
    pub fn new(per_severity: usize) -> Self {
        assert!(per_severity > 0, "flight recorder capacity must be positive");
        FlightRecorderSink {
            per_severity,
            rings: [
                Mutex::new(VecDeque::with_capacity(per_severity.min(1024))),
                Mutex::new(VecDeque::with_capacity(per_severity.min(1024))),
                Mutex::new(VecDeque::with_capacity(per_severity.min(1024))),
            ],
            dump_path: None,
            max_dumps: 0,
            dumps: AtomicU64::new(0),
            triggers: AtomicU64::new(0),
            last_trigger: Mutex::new(None),
        }
    }

    /// Arms auto-dump: the first `max_dumps` trigger events each write
    /// the merged rings to `path` (later triggers still count but stop
    /// rewriting, keeping the *first* anomaly's context on disk).
    pub fn with_auto_dump(mut self, path: impl Into<String>, max_dumps: u64) -> Self {
        self.dump_path = Some(path.into());
        self.max_dumps = max_dumps;
        self
    }

    /// Number of trigger events observed so far.
    pub fn triggers_fired(&self) -> u64 {
        self.triggers.load(Ordering::Relaxed)
    }

    /// Number of post-mortem dumps written so far.
    pub fn dumps_written(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Kind of the most recent trigger event, if any fired.
    pub fn last_trigger(&self) -> Option<String> {
        self.last_trigger.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// The auto-dump path, when armed.
    pub fn dump_path(&self) -> Option<&str> {
        self.dump_path.as_deref()
    }

    /// Retained events per severity ring: `(info, warn, error)`.
    pub fn len_by_severity(&self) -> (usize, usize, usize) {
        let n = |i: usize| self.rings[i].lock().map_or(0, |r| r.len());
        (n(0), n(1), n(2))
    }

    /// The merged rings rendered as a `(t, seq)`-sorted JSONL post-mortem.
    pub fn dump_jsonl(&self) -> String {
        let mut events = self.events();
        events.sort_by(|a, b| a.t_sim.total_cmp(&b.t_sim).then(a.seq.cmp(&b.seq)));
        let mut out = String::new();
        for e in &events {
            e.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// Writes the post-mortem to `path`; returns the number of lines.
    pub fn dump_to(&self, path: &str) -> std::io::Result<usize> {
        let dump = self.dump_jsonl();
        let lines = dump.lines().count();
        std::fs::write(path, dump)?;
        Ok(lines)
    }
}

impl EventSink for FlightRecorderSink {
    fn record(&self, event: Event) {
        let trigger = is_trigger(&event.kind);
        let ring = &self.rings[Severity::classify(&event.kind).index()];
        if let Ok(mut r) = ring.lock() {
            if r.len() == self.per_severity {
                r.pop_front();
            }
            r.push_back(event.clone());
        }
        if trigger {
            self.triggers.fetch_add(1, Ordering::Relaxed);
            if let Ok(mut last) = self.last_trigger.lock() {
                *last = Some(event.kind.clone());
            }
            if let Some(path) = &self.dump_path {
                // First-wins within the dump budget: keep the context of
                // the earliest anomalies rather than churning the file on
                // every subsequent fallback.
                if self.dumps.load(Ordering::Relaxed) < self.max_dumps {
                    let n = self.dumps.fetch_add(1, Ordering::Relaxed);
                    if n < self.max_dumps {
                        let _ = self.dump_to(path);
                    }
                }
            }
        }
    }

    fn events(&self) -> Vec<Event> {
        let mut all = Vec::new();
        for ring in &self.rings {
            if let Ok(r) = ring.lock() {
                all.extend(r.iter().cloned());
            }
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    fn len(&self) -> usize {
        self.rings.iter().map(|r| r.lock().map_or(0, |r| r.len())).sum()
    }

    fn is_recording(&self) -> bool {
        true
    }
}

/// A shared flight recorder is still a sink: `pb sweep` hands the
/// telemetry layer one `Arc` clone and keeps the other to read trigger
/// state and write the final post-mortem after the run.
impl EventSink for Arc<FlightRecorderSink> {
    fn record(&self, event: Event) {
        self.as_ref().record(event);
    }

    fn events(&self) -> Vec<Event> {
        self.as_ref().events()
    }

    fn len(&self) -> usize {
        self.as_ref().len()
    }

    fn is_recording(&self) -> bool {
        self.as_ref().is_recording()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, seq: u64, kind: &str) -> Event {
        Event { t_sim: t, seq, kind: kind.to_string(), fields: vec![] }
    }

    #[test]
    fn severity_classification_is_prefix_based() {
        assert_eq!(Severity::classify("des.arrival"), Severity::Info);
        assert_eq!(Severity::classify("trace.sample"), Severity::Info);
        assert_eq!(Severity::classify("fault.retry"), Severity::Warn);
        assert_eq!(Severity::classify("fault.packet_drop"), Severity::Warn);
        assert_eq!(Severity::classify("fault.fallback"), Severity::Error);
        assert_eq!(Severity::classify("anomaly.conservation"), Severity::Error);
        assert_eq!(Severity::classify("anomaly.brownout"), Severity::Error);
        assert!(is_trigger("fault.fallback"));
        assert!(is_trigger("anomaly.conservation"));
        assert!(!is_trigger("fault.retry"));
    }

    #[test]
    fn rings_are_bounded_per_severity() {
        let sink = FlightRecorderSink::new(4);
        for i in 0..100u64 {
            sink.record(ev(i as f64, i, "des.arrival"));
        }
        for i in 100..110u64 {
            sink.record(ev(i as f64, i, "fault.retry"));
        }
        let (info, warn, error) = sink.len_by_severity();
        assert_eq!((info, warn, error), (4, 4, 0));
        assert_eq!(sink.len(), 8);
        // The info ring kept the *latest* events; the flood did not touch
        // the warn ring.
        let events = sink.events();
        assert!(events.iter().any(|e| e.seq == 99));
        assert!(!events.iter().any(|e| e.seq == 0));
    }

    #[test]
    fn triggers_count_and_dump_once() {
        let dir = std::env::temp_dir().join("pb_flight_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("postmortem.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);

        let sink = FlightRecorderSink::new(16).with_auto_dump(&path_str, 1);
        sink.record(ev(1.0, 0, "des.arrival"));
        sink.record(ev(2.0, 1, "fault.retry"));
        assert_eq!(sink.triggers_fired(), 0);
        sink.record(ev(3.0, 2, "fault.fallback"));
        assert_eq!(sink.triggers_fired(), 1);
        assert_eq!(sink.last_trigger().as_deref(), Some("fault.fallback"));
        assert_eq!(sink.dumps_written(), 1);

        let dump = std::fs::read_to_string(&path).expect("post-mortem written");
        assert_eq!(dump.lines().count(), 3);
        assert!(dump.contains("fault.fallback"));

        // A later trigger counts but does not rewrite the first dump.
        sink.record(ev(4.0, 3, "anomaly.conservation"));
        assert_eq!(sink.triggers_fired(), 2);
        assert_eq!(sink.dumps_written(), 1);
        let again = std::fs::read_to_string(&path).unwrap();
        assert!(!again.contains("anomaly.conservation"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dump_is_time_sorted_across_rings() {
        let sink = FlightRecorderSink::new(8);
        sink.record(ev(5.0, 0, "des.arrival"));
        sink.record(ev(1.0, 1, "fault.retry"));
        sink.record(ev(3.0, 2, "fault.fallback"));
        let dump = sink.dump_jsonl();
        let ts: Vec<f64> = dump
            .lines()
            .map(|l| {
                crate::json::parse(l).unwrap().get("t").and_then(crate::json::Json::as_f64).unwrap()
            })
            .collect();
        assert_eq!(ts, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn arc_delegation_shares_state() {
        let arc = Arc::new(FlightRecorderSink::new(4));
        let sink: Box<dyn EventSink> = Box::new(Arc::clone(&arc));
        sink.record(ev(0.0, 0, "fault.fallback"));
        assert!(sink.is_recording());
        assert_eq!(sink.len(), 1);
        assert_eq!(arc.triggers_fired(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = FlightRecorderSink::new(0);
    }
}
