//! The metrics registry: named counters, gauges and histograms.
//!
//! Every metric is a small atomic cell behind an `Arc`, so handles are
//! cheap to clone, lock-free to update and safe to hammer from rayon
//! workers. Histograms use exponential buckets (sixteen per octave,
//! ≈ 4.4 % relative resolution) plus exact count/total/min/max, which is
//! enough to report p50/p95 within bucket resolution without storing
//! samples.

use crate::snapshot::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Lock-free add on an f64 stored as bits in an [`AtomicU64`].
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(current) + v;
        match cell.compare_exchange_weak(
            current,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Lock-free `min`/`max` fold on an f64 stored as bits.
fn atomic_f64_fold(cell: &AtomicU64, v: f64, fold: impl Fn(f64, f64) -> f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let folded = fold(f64::from_bits(current), v);
        if folded.to_bits() == current {
            return;
        }
        match cell.compare_exchange_weak(
            current,
            folded.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

/// A monotone counter handle. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.value.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct GaugeCell {
    bits: AtomicU64,
}

/// A last-value gauge handle (f64). Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<GaugeCell>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(GaugeCell { bits: AtomicU64::new(0.0f64.to_bits()) }))
    }
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` to the gauge (gauges may go down; pass a negative delta).
    pub fn add(&self, v: f64) {
        atomic_f64_add(&self.0.bits, v);
    }

    /// Raises the gauge to `v` if `v` is larger (a high-water mark).
    pub fn set_max(&self, v: f64) {
        atomic_f64_fold(&self.0.bits, v, f64::max);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }
}

/// Exponential bucket resolution: sixteen buckets per octave ≈ 4.4 %
/// relative width, so reported quantiles sit within ~4.4 % of the true
/// order statistic (then clamped to the exact observed min/max).
const BUCKETS_PER_OCTAVE: f64 = 16.0;
/// Bucket index offset so values down to ~2⁻³² (≈ 2.3e-10) are resolved.
const BUCKET_OFFSET: i64 = 512;
/// Total buckets; index 0 collects non-positive values.
const N_BUCKETS: usize = 1024;

fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0; // zero, negative and NaN all land in the underflow bucket
    }
    let i = (v.log2() * BUCKETS_PER_OCTAVE).floor() as i64 + BUCKET_OFFSET;
    i.clamp(1, (N_BUCKETS - 1) as i64) as usize
}

/// Lower edge of bucket `i` (the underflow bucket collapses to 0).
fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        ((i as f64 - BUCKET_OFFSET as f64) / BUCKETS_PER_OCTAVE).exp2()
    }
}

/// Upper edge of bucket `i` (the underflow bucket collapses to 0).
fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        ((i as f64 - BUCKET_OFFSET as f64 + 1.0) / BUCKETS_PER_OCTAVE).exp2()
    }
}

struct HistogramCell {
    count: AtomicU64,
    total_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl fmt::Debug for HistogramCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistogramCell")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("total", &f64::from_bits(self.total_bits.load(Ordering::Relaxed)))
            .finish_non_exhaustive()
    }
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            total_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A histogram handle: exact count/total/min/max plus exponential
/// buckets for quantiles. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let c = &*self.0;
        c.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&c.total_bits, v);
        atomic_f64_fold(&c.min_bits, v, f64::min);
        atomic_f64_fold(&c.max_bits, v, f64::max);
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn total(&self) -> f64 {
        f64::from_bits(self.0.total_bits.load(Ordering::Relaxed))
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.0.min_bits.load(Ordering::Relaxed))
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.0.max_bits.load(Ordering::Relaxed))
        }
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total() / n as f64
        }
    }

    /// The `q`-quantile (`q` in \[0, 1\]) estimated from the buckets and
    /// clamped to the exact observed range. Empty histograms report 0.0.
    ///
    /// # Contract
    ///
    /// * **Exact extremes.** `q == 0.0` returns the exact tracked
    ///   minimum and `q == 1.0` the exact tracked maximum; the buckets
    ///   are skipped entirely, so the extremes carry no bucket-resolution
    ///   error regardless of which (possibly clamped) bucket the extreme
    ///   observations landed in.
    /// * **Interior quantiles** find the bucket where the cumulative
    ///   count first reaches `rank = max(1, ceil(q·n))` and interpolate
    ///   linearly inside it by the rank's position among that bucket's
    ///   own observations. The crossing bucket is never empty — the
    ///   cumulative count only advances inside non-empty buckets — so
    ///   the interpolation denominator is always ≥ 1. (The historical
    ///   implementation reported the geometric bucket midpoint no matter
    ///   where the rank sat, which biased estimates near bucket
    ///   boundaries by up to half a bucket, ≈ 2.2 %.)
    /// * The result is clamped to the exact `[min, max]`, so sparse and
    ///   single-bucket histograms degrade gracefully.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
        let counts: Vec<u64> = self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        // The extreme quantiles are tracked exactly — skip the buckets.
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max();
        }
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // `c >= 1` here: the rank crossed inside this bucket.
                let below = seen - c;
                let frac = (rank - below) as f64 / c as f64;
                let lo = bucket_lower(i);
                let hi = bucket_upper(i);
                return (lo + (hi - lo) * frac).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// A frozen summary of the histogram.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            total: self.total(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
        }
    }
}

/// A frozen view of one histogram: exact count/total/min/max/mean plus
/// bucket-resolution p50/p95.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub total: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
    /// Mean observation (0.0 when empty).
    pub mean: f64,
    /// Median, within bucket resolution (≈ 4.4 %).
    pub p50: f64,
    /// 95th percentile, within bucket resolution.
    pub p95: f64,
}

/// The registry: a name → handle map per metric kind. Handles are
/// created on first use and shared afterwards; names sort
/// lexicographically in snapshots.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().expect("registry poisoned").get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().expect("registry poisoned").get(name) {
            return g.clone();
        }
        self.gauges.write().expect("registry poisoned").entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().expect("registry poisoned").get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A frozen, name-sorted view of every metric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = MetricsRegistry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("c").get(), 5, "handles share one cell");
        let g = r.gauge("g");
        g.set(2.0);
        g.add(-0.5);
        assert!((g.get() - 1.5).abs() < 1e-12);
        g.set_max(1.0);
        assert!((g.get() - 1.5).abs() < 1e-12, "set_max never lowers");
        g.set_max(3.0);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_exact_stats() {
        let h = Histogram::default();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.total() - 10.0).abs() < 1e-12);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert!((h.min() - 1.0).abs() < 1e-12);
        assert!((h.max() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_on_known_uniform_distribution() {
        // 1..=1000 uniformly: p50 ≈ 500, p95 ≈ 950, within the ≈ 4.4 %
        // bucket resolution.
        let h = Histogram::default();
        for v in 1..=1000 {
            h.observe(v as f64);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        assert!((p50 - 500.0).abs() / 500.0 < 0.08, "p50 = {p50}");
        assert!((p95 - 950.0).abs() / 950.0 < 0.08, "p95 = {p95}");
        assert!((h.quantile(0.0) - 1.0).abs() < 1e-9, "q0 clamps to exact min");
        assert!((h.quantile(1.0) - 1000.0).abs() < 1e-9, "q1 clamps to exact max");
    }

    #[test]
    fn quantiles_on_known_bimodal_distribution() {
        // 90 observations at 1 ms, 10 at 1 s: p50 must sit at the low
        // mode and p95 at the high mode — the shape that matters for
        // latency reporting.
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe(0.001);
        }
        for _ in 0..10 {
            h.observe(1.0);
        }
        assert!((h.quantile(0.50) - 0.001).abs() / 0.001 < 0.05);
        assert!((h.quantile(0.95) - 1.0).abs() < 0.05);
    }

    #[test]
    fn empty_histogram_edge_case() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_observation_quantiles_are_exact() {
        let h = Histogram::default();
        h.observe(42.0);
        // Clamping to the exact min/max pins every quantile to the value.
        assert!((h.quantile(0.5) - 42.0).abs() < 1e-9);
        assert!((h.quantile(0.95) - 42.0).abs() < 1e-9);
    }

    #[test]
    fn zero_and_negative_values_use_underflow_bucket() {
        let h = Histogram::default();
        h.observe(0.0);
        h.observe(-1.0);
        h.observe(2.0);
        assert_eq!(h.count(), 3);
        assert!((h.min() - (-1.0)).abs() < 1e-12);
        // Two of three observations are non-positive, so the median sits
        // in the underflow bucket (reported as the clamp floor).
        assert!(h.quantile(0.5) <= 0.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn out_of_range_quantile_panics() {
        Histogram::default().quantile(1.5);
    }

    #[test]
    fn exact_extremes_skip_the_buckets_entirely() {
        // Extremes beyond the bucket grid (clamped into buckets 1 and
        // 1023) must still come back exactly: q=0/q=1 read the tracked
        // min/max, not any bucket representative.
        let h = Histogram::default();
        h.observe(1e-200);
        h.observe(1e200);
        assert_eq!(h.quantile(0.0), 1e-200);
        assert_eq!(h.quantile(1.0), 1e200);
        // Interior quantiles stay inside the observed range even though
        // both buckets' nominal edges are wildly off after clamping.
        let p50 = h.quantile(0.5);
        assert!((1e-200..=1e200).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn interpolation_tracks_rank_position_within_a_bucket() {
        // 100 observations of the same value fill one bucket. Whatever
        // the rank, the clamp pins the answer to the exact value — and
        // interpolation must not depend on *where* in the bucket the
        // rank lands.
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe(5.0);
        }
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            assert!((h.quantile(q) - 5.0).abs() < 1e-12, "q={q}");
        }
    }

    #[test]
    fn quantile_at_bucket_boundaries_interpolates_monotonically() {
        // Two adjacent octave buckets: 50 observations near 1.0, 50 near
        // 2.0. Sweeping q across the boundary must be monotone and cross
        // from the low bucket's range into the high bucket's range —
        // the midpoint bug reported the same value for every q that
        // landed in a bucket.
        let h = Histogram::default();
        for _ in 0..50 {
            h.observe(1.01);
        }
        for _ in 0..50 {
            h.observe(2.01);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 1..=99 {
            let q = f64::from(i) / 100.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantile must be monotone in q (q={q}: {v} < {last})");
            last = v;
        }
        // Ranks inside one bucket now spread across it instead of
        // collapsing to a single midpoint.
        assert!(h.quantile(0.1) < h.quantile(0.4), "intra-bucket ranks must differ");
        assert!(h.quantile(0.25) < 2.0, "p25 stays in the low bucket");
        assert!(h.quantile(0.75) > 1.9, "p75 reaches the high bucket");
    }

    #[test]
    fn interpolated_quantiles_stay_within_bucket_resolution() {
        // The uniform 1..=1000 sweep again, but pinned tighter than the
        // historical midpoint rule required: interpolation keeps every
        // decile within one bucket width (≈ 4.4 %) of the true order
        // statistic.
        let h = Histogram::default();
        for v in 1..=1000 {
            h.observe(v as f64);
        }
        for i in 1..=9 {
            let q = f64::from(i) / 10.0;
            let exact = q * 1000.0;
            let got = h.quantile(q);
            assert!((got - exact).abs() / exact < 0.045, "q={q}: got {got}, want ≈{exact}");
        }
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let h = Histogram::default();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 + 1.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert!((h.total() - (1..=8000u64).map(|v| v as f64).sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = MetricsRegistry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.histogram("mid").observe(1.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "alpha");
        assert_eq!(snap.counters[1].0, "zeta");
        assert_eq!(snap.histograms[0].0, "mid");
    }
}
