//! Causal tracing: deterministic trace/span identity plus offline
//! forensics over recorded JSONL traces.
//!
//! # Identity
//!
//! Every client service cycle gets a [`trace_id`] derived *only* from the
//! sweep point's seed and the client's global index, so the same client
//! carries the same trace id no matter how the work was sharded across
//! the thread pool — traces are bit-stable at `RAYON_NUM_THREADS` 1, 2
//! or N. Span ids ([`span_id`]) hang off the trace id by hop number, and
//! [`SpanCtx`] threads the parent/child relation through the exact-replay
//! paths (timeline per-slot injection and the DES event loop).
//!
//! Ids are 64-bit but serialized as 16-digit hex *strings* in event
//! fields: the JSONL layer stores numbers as `f64`, which can only
//! represent integers up to 2^53 exactly, so raw `u64` ids would be
//! corrupted on a parse round trip.
//!
//! # Span hierarchy
//!
//! ```text
//! S0 = root span ("sample", hop 0)
//! ├── attempt k   = hop k (k = 1..), parent = attempt k-1 (or S0)
//! │   (fault.outage / fault.packet_drop / fault.retry events)
//! ├── DES network = hops 64/65/66 (arrival → transfer → process)
//! └── terminal    = hop 63 (trace.delivered or fault.fallback)
//! ```
//!
//! # Forensics
//!
//! [`Forensics::from_jsonl`] reconstructs per-trace causal chains from a
//! recorded trace (a `pb sweep --causal --trace` file or a flight-recorder
//! dump) and derives the retry-chain length histogram, the fallback
//! root-cause table, per-trace critical paths and top-k rankings — the
//! analysis behind `pb trace`.

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Weyl increment mixed with the client index when deriving a trace id
/// (same constant family as the engine's point-seed derivation).
pub const TRACE_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Increment mixed with the hop number when deriving a span id.
pub const SPAN_GAMMA: u64 = 0xA076_1D64_78BD_642F;

/// Hop number of the terminal span (delivery or fallback).
pub const HOP_TERMINAL: u32 = 63;
/// Hop number of the DES arrival span.
pub const HOP_ARRIVAL: u32 = 64;
/// Hop number of the DES transfer-done span.
pub const HOP_TRANSFER: u32 = 65;
/// Hop number of the DES process-done span.
pub const HOP_PROCESS: u32 = 66;

/// SplitMix64 finalizer: a bijective avalanche over the seeded index so
/// nearby clients get unrelated ids.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic trace id of global client `client` under a sweep
/// point's seed. Pure function of its inputs — independent of thread
/// count, backend sharding and event ordering.
///
/// The point seed is avalanched *before* the client term joins (by
/// addition, not XOR): sweep point seeds are themselves XOR-derived
/// from the same Weyl constant (`seed ^ n·γ`), so a raw
/// `point_seed ^ client·γ` would let the two γ-multiples cancel and
/// collide ids across sweep points.
#[inline]
pub fn trace_id(point_seed: u64, client: u64) -> u64 {
    mix64(mix64(point_seed).wrapping_add(client.wrapping_add(1).wrapping_mul(TRACE_GAMMA)))
}

/// The span id of hop `hop` within `trace`. Hop 0 is the root (the
/// sample); hops 1.. are upload attempts; see the module-level hierarchy
/// for the reserved hop numbers.
#[inline]
pub fn span_id(trace: u64, hop: u32) -> u64 {
    mix64(trace ^ u64::from(hop).wrapping_add(1).wrapping_mul(SPAN_GAMMA))
}

/// Appends `id` to `out` as exactly 16 lower-case hex digits, without
/// going through the `fmt` machinery (the event exporter renders two to
/// three ids per traced event, so the formatting shows up in traced
/// sweeps).
#[inline]
pub(crate) fn push_hex(out: &mut String, id: u64) {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut buf = [0u8; 16];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = DIGITS[((id >> (60 - 4 * i)) & 0xF) as usize];
    }
    // All bytes are ASCII hex digits, so the buffer is valid UTF-8.
    out.push_str(std::str::from_utf8(&buf).expect("hex digits are ASCII"));
}

/// Renders an id the way event fields carry it: 16 hex digits.
#[inline]
pub fn hex(id: u64) -> String {
    let mut out = String::with_capacity(16);
    push_hex(&mut out, id);
    out
}

/// Parses a 16-hex-digit id back to its `u64` value.
pub fn parse_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

/// A span context: the trace it belongs to, its own span id and its
/// parent's. Copied by value through the replay paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanCtx {
    /// The owning trace id.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// The parent span's id (0 for the root).
    pub parent: u64,
}

impl SpanCtx {
    /// The root span (hop 0) of `trace` — the client's sample.
    #[inline]
    pub fn root(trace: u64) -> Self {
        SpanCtx { trace, span: span_id(trace, 0), parent: 0 }
    }

    /// A child span at hop `hop`, parented to `self`.
    #[inline]
    pub fn child(&self, hop: u32) -> Self {
        SpanCtx { trace: self.trace, span: span_id(self.trace, hop), parent: self.span }
    }

    /// A sibling chain step: hop `hop`, parented to hop `hop - 1` of the
    /// same trace (the attempt-chain rule).
    #[inline]
    pub fn attempt(trace: u64, hop: u32) -> Self {
        let parent = if hop <= 1 { span_id(trace, 0) } else { span_id(trace, hop - 1) };
        SpanCtx { trace, span: span_id(trace, hop), parent }
    }
}

/// One recorded hop of a causal chain.
#[derive(Clone, Debug)]
pub struct Hop {
    /// Simulation time of the hop.
    pub t: f64,
    /// Global recording sequence number (tie-break within equal times).
    pub seq: u64,
    /// Event kind (`trace.sample`, `fault.retry`, `trace.delivered`, …).
    pub kind: String,
    /// Attempt number carried by the event, when present.
    pub attempt: Option<u64>,
    /// Energy attributed to this hop in joules (0 when absent).
    pub energy_j: f64,
}

/// How a causal chain ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The upload reached the cloud.
    Delivered,
    /// Retries were exhausted (or a brown-out struck); the sample was
    /// served by the edge fallback.
    Fallback,
    /// The sensor never produced a sample.
    Dropout,
    /// The trace has no terminal hop in the recorded window.
    Open,
}

impl Outcome {
    /// Lower-case label used in rendered tables.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Delivered => "delivered",
            Outcome::Fallback => "fallback",
            Outcome::Dropout => "dropout",
            Outcome::Open => "open",
        }
    }
}

/// A reconstructed per-client causal chain: sample → upload attempt(s) →
/// retry(s) → delivery-or-fallback.
#[derive(Clone, Debug)]
pub struct TraceChain {
    /// The trace id.
    pub trace: u64,
    /// Global client index, when any hop carried it.
    pub client: Option<u64>,
    /// Hops sorted by `(t, seq)`.
    pub hops: Vec<Hop>,
    /// Terminal classification.
    pub outcome: Outcome,
    /// Upload attempts made (from the terminal event; falls back to the
    /// failure-hop count for open chains).
    pub attempts: u64,
    /// Retries made (`attempts - 1`, saturating).
    pub retries: u64,
    /// Fallback root cause (`outage`, `packet-loss`, `mixed`,
    /// `brownout`), when the chain fell back.
    pub root_cause: Option<String>,
    /// Total energy attributed across hops, in joules.
    pub energy_j: f64,
}

impl TraceChain {
    /// Sim time of the first hop.
    pub fn start(&self) -> f64 {
        self.hops.first().map_or(0.0, |h| h.t)
    }

    /// Sim time of the last hop.
    pub fn end(&self) -> f64 {
        self.hops.last().map_or(0.0, |h| h.t)
    }

    /// Wall of simulated time the chain spans.
    pub fn duration(&self) -> f64 {
        self.end() - self.start()
    }

    /// Number of failed-attempt hops (`fault.outage` + `fault.packet_drop`).
    pub fn failure_hops(&self) -> u64 {
        self.hops
            .iter()
            .filter(|h| h.kind == "fault.outage" || h.kind == "fault.packet_drop")
            .count() as u64
    }

    /// Number of retry hops (`fault.retry`).
    pub fn retry_hops(&self) -> u64 {
        self.hops.iter().filter(|h| h.kind == "fault.retry").count() as u64
    }

    /// The hop the chain spent longest waiting to reach: index and the
    /// gap from its predecessor — the chain's critical step.
    pub fn critical_hop(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for i in 1..self.hops.len() {
            let dt = self.hops[i].t - self.hops[i - 1].t;
            if best.is_none_or(|(_, b)| dt > b) {
                best = Some((i, dt));
            }
        }
        best
    }
}

/// The full offline analysis of a recorded trace file.
#[derive(Clone, Debug, Default)]
pub struct Forensics {
    /// Causal chains sorted by trace id (stable across thread counts).
    pub chains: Vec<TraceChain>,
    /// Total events in the recording.
    pub total_events: usize,
    /// Events carrying no trace id (metrics-adjacent instrumentation).
    pub untraced_events: usize,
}

fn field_u64(obj: &Json, key: &str) -> Option<u64> {
    obj.get(key).and_then(Json::as_f64).map(|v| v as u64)
}

impl Forensics {
    /// Reconstructs causal chains from a JSONL trace (one event object
    /// per line, as written by `Telemetry::write_trace` or a
    /// flight-recorder dump). Blank lines are skipped; a malformed line
    /// is an error naming its line number.
    pub fn from_jsonl(jsonl: &str) -> Result<Forensics, String> {
        let mut total = 0usize;
        let mut untraced = 0usize;
        let mut by_trace: BTreeMap<u64, TraceChain> = BTreeMap::new();
        for (lineno, line) in jsonl.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let obj = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            total += 1;
            let Some(trace) = obj.get("trace").and_then(Json::as_str).and_then(parse_hex) else {
                untraced += 1;
                continue;
            };
            let t = obj.get("t").and_then(Json::as_f64).unwrap_or(0.0);
            let seq = field_u64(&obj, "seq").unwrap_or(0);
            let kind = obj.get("kind").and_then(Json::as_str).unwrap_or("?").to_string();
            let hop = Hop {
                t,
                seq,
                kind,
                attempt: field_u64(&obj, "attempt").or_else(|| field_u64(&obj, "attempts")),
                energy_j: obj.get("energy_j").and_then(Json::as_f64).unwrap_or(0.0),
            };
            let chain = by_trace.entry(trace).or_insert_with(|| TraceChain {
                trace,
                client: None,
                hops: Vec::new(),
                outcome: Outcome::Open,
                attempts: 0,
                retries: 0,
                root_cause: None,
                energy_j: 0.0,
            });
            if chain.client.is_none() {
                chain.client = field_u64(&obj, "client");
            }
            match hop.kind.as_str() {
                "trace.delivered" => {
                    chain.outcome = Outcome::Delivered;
                    chain.attempts = hop.attempt.unwrap_or(1);
                }
                "fault.fallback" => {
                    chain.outcome = Outcome::Fallback;
                    chain.attempts = hop.attempt.unwrap_or(0);
                    chain.root_cause = obj.get("cause").and_then(Json::as_str).map(str::to_string);
                }
                "trace.sample" if obj.get("class").and_then(Json::as_str) == Some("dropout") => {
                    chain.outcome = Outcome::Dropout;
                }
                _ => {}
            }
            chain.energy_j += hop.energy_j;
            chain.hops.push(hop);
        }
        let mut chains: Vec<TraceChain> = by_trace.into_values().collect();
        for c in &mut chains {
            c.hops.sort_by(|a, b| a.t.total_cmp(&b.t).then(a.seq.cmp(&b.seq)));
            if c.outcome == Outcome::Open {
                c.attempts = c.failure_hops();
            }
            c.retries = c.attempts.saturating_sub(1);
        }
        Ok(Forensics { chains, total_events: total, untraced_events: untraced })
    }

    /// Chains with the given outcome.
    pub fn count(&self, outcome: Outcome) -> u64 {
        self.chains.iter().filter(|c| c.outcome == outcome).count() as u64
    }

    /// Retry-chain length histogram: retries per chain → number of
    /// chains (dropout chains excluded; they never attempted).
    pub fn retry_histogram(&self) -> BTreeMap<u64, u64> {
        let mut h = BTreeMap::new();
        for c in self.chains.iter().filter(|c| c.outcome != Outcome::Dropout) {
            *h.entry(c.retries).or_insert(0) += 1;
        }
        h
    }

    /// Fallback root-cause table: cause → number of fallen-back chains.
    pub fn root_cause_table(&self) -> BTreeMap<String, u64> {
        let mut t = BTreeMap::new();
        for c in self.chains.iter().filter(|c| c.outcome == Outcome::Fallback) {
            let cause = c.root_cause.clone().unwrap_or_else(|| "unknown".to_string());
            *t.entry(cause).or_insert(0) += 1;
        }
        t
    }

    /// The `k` chains spanning the most simulated time, slowest first
    /// (ties broken by trace id so the ranking is deterministic).
    pub fn top_slowest(&self, k: usize) -> Vec<&TraceChain> {
        self.ranked(k, |c| c.duration())
    }

    /// The `k` chains with the most attributed energy, costliest first.
    pub fn top_expensive(&self, k: usize) -> Vec<&TraceChain> {
        self.ranked(k, |c| c.energy_j)
    }

    fn ranked(&self, k: usize, score: impl Fn(&TraceChain) -> f64) -> Vec<&TraceChain> {
        let mut v: Vec<&TraceChain> = self.chains.iter().collect();
        v.sort_by(|a, b| score(b).total_cmp(&score(a)).then(a.trace.cmp(&b.trace)));
        v.truncate(k);
        v
    }

    /// Renders the `pb trace` report: summary, retry histogram, fallback
    /// root causes, and top-`k` slowest (with per-hop critical path) and
    /// most-expensive traces.
    pub fn render(&self, k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace forensics: {} events ({} untraced), {} traces",
            self.total_events,
            self.untraced_events,
            self.chains.len()
        );
        let _ = writeln!(
            out,
            "  delivered {} | fallbacks {} | dropouts {} | open {}",
            self.count(Outcome::Delivered),
            self.count(Outcome::Fallback),
            self.count(Outcome::Dropout),
            self.count(Outcome::Open),
        );
        out.push_str("\nretry-chain length histogram:\n");
        let hist = self.retry_histogram();
        if hist.is_empty() {
            out.push_str("  (no attempt chains)\n");
        }
        for (retries, n) in &hist {
            let _ = writeln!(out, "  {retries} retries : {n} traces");
        }
        out.push_str("\nfallback root causes:\n");
        let causes = self.root_cause_table();
        if causes.is_empty() {
            out.push_str("  (no fallbacks)\n");
        }
        for (cause, n) in &causes {
            let _ = writeln!(out, "  {cause:<12} : {n}");
        }
        let _ = writeln!(out, "\ntop {k} slowest traces:");
        for (rank, c) in self.top_slowest(k).iter().enumerate() {
            let client = c.client.map_or_else(|| "?".to_string(), |id| id.to_string());
            let _ = writeln!(
                out,
                "  {}. trace {} client {} [{}] hops {} span {:.2}s energy {:.2}J",
                rank + 1,
                hex(c.trace),
                client,
                c.outcome.label(),
                c.hops.len(),
                c.duration(),
                c.energy_j,
            );
            if let Some((i, dt)) = c.critical_hop() {
                let _ = writeln!(
                    out,
                    "     critical hop: {} at t={:.2}s (+{:.2}s)",
                    c.hops[i].kind, c.hops[i].t, dt
                );
            }
            for h in &c.hops {
                let attempt = h.attempt.map_or(String::new(), |a| format!(" attempt={a}"));
                let energy = if h.energy_j != 0.0 {
                    format!(" energy={:.2}J", h.energy_j)
                } else {
                    String::new()
                };
                let _ = writeln!(out, "       t={:<10.2} {}{attempt}{energy}", h.t, h.kind);
            }
        }
        let _ = writeln!(out, "\ntop {k} most expensive traces:");
        for (rank, c) in self.top_expensive(k).iter().enumerate() {
            let client = c.client.map_or_else(|| "?".to_string(), |id| id.to_string());
            let _ = writeln!(
                out,
                "  {}. trace {} client {} [{}] energy {:.2}J over {} hops",
                rank + 1,
                hex(c.trace),
                client,
                c.outcome.label(),
                c.energy_j,
                c.hops.len(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = trace_id(9, 0);
        assert_eq!(a, trace_id(9, 0));
        assert_ne!(a, trace_id(9, 1));
        assert_ne!(a, trace_id(10, 0));
        // The hex round trip is exact — no f64 truncation.
        assert_eq!(parse_hex(&hex(a)), Some(a));
        assert_eq!(hex(a).len(), 16);
    }

    #[test]
    fn span_chain_parents_link_hop_by_hop() {
        let t = trace_id(7, 3);
        let root = SpanCtx::root(t);
        assert_eq!(root.parent, 0);
        assert_eq!(root.span, span_id(t, 0));
        let a1 = SpanCtx::attempt(t, 1);
        assert_eq!(a1.parent, root.span);
        let a2 = SpanCtx::attempt(t, 2);
        assert_eq!(a2.parent, a1.span);
        let term = a2.child(HOP_TERMINAL);
        assert_eq!(term.parent, a2.span);
        assert_eq!(term.trace, t);
    }

    fn line(t: f64, seq: u64, kind: &str, trace: u64, extra: &str) -> String {
        format!(
            "{{\"t\":{t},\"seq\":{seq},\"kind\":\"{kind}\",\"trace\":\"{}\"{}{extra}}}",
            hex(trace),
            if extra.is_empty() { "" } else { "," },
        )
    }

    #[test]
    fn forensics_reconstructs_chains_and_tables() {
        let t1 = trace_id(1, 0);
        let t2 = trace_id(1, 1);
        let jsonl = [
            line(0.0, 0, "trace.sample", t1, "\"client\":0,\"class\":\"uploader\""),
            line(0.0, 1, "fault.outage", t1, "\"attempt\":1"),
            line(30.0, 2, "fault.retry", t1, "\"attempt\":2,\"energy_j\":27.9"),
            line(
                30.0,
                3,
                "fault.fallback",
                t1,
                "\"attempts\":2,\"cause\":\"outage\",\"energy_j\":41.0",
            ),
            line(5.0, 4, "trace.sample", t2, "\"client\":1,\"class\":\"uploader\""),
            line(5.0, 5, "trace.delivered", t2, "\"attempt\":1,\"energy_j\":12.0"),
            "{\"t\":9.0,\"seq\":6,\"kind\":\"des.cycle_done\"}".to_string(),
        ]
        .join("\n");
        let f = Forensics::from_jsonl(&jsonl).expect("parses");
        assert_eq!(f.total_events, 7);
        assert_eq!(f.untraced_events, 1);
        assert_eq!(f.chains.len(), 2);
        assert_eq!(f.count(Outcome::Fallback), 1);
        assert_eq!(f.count(Outcome::Delivered), 1);

        let fb = f.chains.iter().find(|c| c.outcome == Outcome::Fallback).unwrap();
        assert_eq!(fb.client, Some(0));
        assert_eq!(fb.attempts, 2);
        assert_eq!(fb.retries, 1);
        assert_eq!(fb.retry_hops(), 1);
        assert_eq!(fb.root_cause.as_deref(), Some("outage"));
        assert!((fb.energy_j - 68.9).abs() < 1e-9);
        assert!((fb.duration() - 30.0).abs() < 1e-12);
        // The critical hop is the 30 s backoff wait.
        let (i, dt) = fb.critical_hop().unwrap();
        assert_eq!(fb.hops[i].kind, "fault.retry");
        assert!((dt - 30.0).abs() < 1e-12);

        assert_eq!(f.retry_histogram(), BTreeMap::from([(0, 1), (1, 1)]));
        assert_eq!(f.root_cause_table(), BTreeMap::from([("outage".to_string(), 1)]));

        let slow = f.top_slowest(1);
        assert_eq!(slow[0].trace, t1);
        let rich = f.top_expensive(1);
        assert_eq!(rich[0].trace, t1);

        let report = f.render(2);
        assert!(report.contains("2 traces"));
        assert!(report.contains("1 retries : 1 traces"));
        assert!(report.contains("outage"));
        assert!(report.contains("critical hop: fault.retry"));
    }

    #[test]
    fn malformed_lines_name_their_position() {
        let err = Forensics::from_jsonl("{\"t\":1}\nnot json").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn empty_input_is_an_empty_report() {
        let f = Forensics::from_jsonl("").unwrap();
        assert_eq!(f.total_events, 0);
        assert!(f.chains.is_empty());
        assert!(f.render(3).contains("0 traces"));
    }
}
