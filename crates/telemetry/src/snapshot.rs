//! Frozen metric views.
//!
//! A [`TelemetrySnapshot`] is the exportable form of a registry: plain
//! sorted vectors that reports can embed, serialize or render without
//! holding any lock. `pb-orchestra`'s report module turns one into a
//! fixed-width table; [`TelemetrySnapshot::render`] is the dependency-free
//! fallback used by benches and examples.

use crate::metrics::HistogramSummary;
use std::fmt::Write as _;

/// A frozen, name-sorted view of every metric in a registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl TelemetrySnapshot {
    /// The counter named `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The gauge named `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The histogram summary named `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders a simple human-readable metrics listing (counters, then
    /// gauges, then histograms with count/mean/p50/p95/max/total).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name} = {v:.6}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: count {} mean {:.6} p50 {:.6} p95 {:.6} max {:.6} total {:.6}",
                    h.count, h.mean, h.p50, h.p95, h.max, h.total
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn lookups_and_render() {
        let r = MetricsRegistry::new();
        r.counter("hits").add(12);
        r.gauge("depth").set(3.0);
        r.histogram("lat").observe(0.5);
        let snap = r.snapshot();
        assert!(!snap.is_empty());
        assert_eq!(snap.counter("hits"), Some(12));
        assert_eq!(snap.counter("absent"), None);
        assert_eq!(snap.gauge("depth"), Some(3.0));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        let text = snap.render();
        assert!(text.contains("hits = 12"));
        assert!(text.contains("depth"));
        assert!(text.contains("lat: count 1"));
    }

    #[test]
    fn empty_snapshot() {
        let snap = TelemetrySnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.render(), "");
    }
}
